"""End-to-end public API: compile a kernel, run it, measure it.

Typical use (see ``examples/quickstart.py``)::

    from repro import api, kernels

    module, spec = kernels.matmul(1, 200, 5)
    compiled = api.compile_linalg(module, pipeline="ours")
    result = api.run_kernel(compiled, spec.random_arguments())
    print(result.trace.summary())
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .compiler import CompiledKernel, Compiler
from .dialects.builtin import ModuleOp
from .snitch.machine import SnitchMachine
from .snitch.memory import TCDM
from .snitch.trace import ExecutionTrace


@dataclass
class KernelRun:
    """Outcome of simulating a compiled kernel."""

    trace: ExecutionTrace
    #: Final contents of each array argument, in argument order
    #: (``None`` for scalar arguments).
    arrays: list[np.ndarray | None]
    #: Cycle attribution (:class:`repro.obs.profiler.CycleProfile`)
    #: when ``run_kernel(..., profile=True)``; ``None`` otherwise.
    profile: object | None = None


def _store_fast_path(store, module: ModuleOp, compiler: Compiler, extra=""):
    """(key, cached kernel or None) for a content-addressed compile.

    The key is taken *before* compilation (the pipeline lowers the
    module in place): sha256 of the canonical module text, the
    compiler's canonical pipeline spec, and the engine version.
    """
    from .ir.printer import print_op
    from .service.store import compile_key

    key = compile_key(print_op(module), compiler.pipeline_spec + extra)
    payload = store.get("kernel", key)
    if payload is not None:
        return key, CompiledKernel.from_json(payload)
    return key, None


def compile_linalg(
    module: ModuleOp,
    pipeline: str = "ours",
    unroll_factor: int | None = None,
    snapshots: bool = False,
    store=None,
) -> CompiledKernel:
    """Compile a linalg-level module and emit assembly.

    ``pipeline`` is a named pipeline or any textual pipeline spec —
    a thin wrapper over :class:`repro.compiler.Compiler`.

    ``store`` (an :class:`~repro.service.ArtifactStore`) opts into the
    content-addressed fast path: the kernel is looked up by sha256 of
    (canonical module text, canonical pipeline spec, engine version)
    and rehydrated without recompiling on a hit; a miss compiles and
    persists the artifact.  Rehydrated kernels carry no lowered module
    (see :attr:`CompiledKernel.rehydrated`); requesting ``snapshots``
    bypasses the store, since snapshots only exist on a fresh compile.
    """
    compiler = Compiler(
        pipeline,
        unroll_factor=unroll_factor,
        snapshots=snapshots,
    )
    if store is None or snapshots:
        return compiler.compile(module)
    key, cached = _store_fast_path(store, module, compiler)
    if cached is not None:
        return cached
    compiled = compiler.compile(module)
    store.put("kernel", key, compiled.to_json())
    return compiled


def compile_lowlevel(
    module: ModuleOp, entry: str, store=None
) -> CompiledKernel:
    """Compile a handwritten dialect-level kernel (paper Section 4.2).

    The module already contains ``rv_func``/``snitch_stream``/
    ``rv_snitch`` IR, possibly partially register-allocated; only the
    backend stages of the ``"lowlevel"`` named pipeline run: stream
    lowering, register allocation, loop flattening, emission.

    ``store`` opts into the same content-addressed fast path as
    :func:`compile_linalg` (the entry symbol joins the key, since it
    is an input to compilation here).
    """
    compiler = Compiler("lowlevel", verify_input=False)
    if store is None:
        return compiler.compile(module, entry=entry)
    key, cached = _store_fast_path(
        store, module, compiler, extra=f"|entry={entry}"
    )
    if cached is not None:
        return cached
    compiled = compiler.compile(module, entry=entry)
    store.put("kernel", key, compiled.to_json())
    return compiled


def run_kernel(
    compiled: CompiledKernel,
    arguments: list[np.ndarray | float],
    max_instructions: int = 50_000_000,
    deadline_seconds: float | None = None,
    profile: bool = False,
) -> KernelRun:
    """Simulate a compiled kernel on fresh TCDM contents.

    ``arguments`` parallel the kernel's parameters: numpy arrays are
    copied into TCDM buffers and passed as pointers in ``a0, a1, ...``;
    Python floats are passed in ``fa0, fa1, ...``.  Arrays are copied
    back after execution (``KernelRun.arrays``).  ``deadline_seconds``
    arms the simulator's cooperative wall-clock watchdog: a run that
    exceeds it raises :class:`~repro.snitch.machine.DeadlineExceeded`
    instead of monopolising the process.

    ``profile=True`` attaches the cycle-attribution profiler
    (:mod:`repro.obs.profiler`) and runs on the reference interpreter
    (bit-exact with the engine, slower); ``KernelRun.profile`` then
    carries the per-bucket breakdown and FPU utilization.
    """
    memory = TCDM()
    int_args: dict[str, int] = {}
    float_args: dict[str, float] = {}
    placements: list[tuple[int, np.ndarray] | None] = []
    next_int = 0
    next_float = 0
    for argument in arguments:
        if isinstance(argument, np.ndarray):
            base = memory.allocate(argument.nbytes)
            memory.write_array(base, argument)
            int_args[f"a{next_int}"] = base
            next_int += 1
            placements.append((base, argument))
        else:
            float_args[f"fa{next_float}"] = float(argument)
            next_float += 1
            placements.append(None)
    machine = SnitchMachine(
        compiled.program,
        memory,
        max_instructions=max_instructions,
        record_timeline=profile,
        deadline_seconds=deadline_seconds,
    )
    cycle_profile = None
    if profile:
        from .obs.profiler import CycleProfiler

        profiler = CycleProfiler.attach(machine)
        trace = machine.run_reference(
            compiled.entry, int_args=int_args, float_args=float_args
        )
        cycle_profile = profiler.finalize(machine)
    else:
        trace = machine.run(
            compiled.entry, int_args=int_args, float_args=float_args
        )
    arrays: list[np.ndarray | None] = []
    for placement in placements:
        if placement is None:
            arrays.append(None)
            continue
        base, original = placement
        arrays.append(
            memory.read_array(base, original.shape, original.dtype)
        )
    return KernelRun(trace=trace, arrays=arrays, profile=cycle_profile)


__all__ = [
    "CompiledKernel",
    "Compiler",
    "KernelRun",
    "compile_linalg",
    "compile_lowlevel",
    "run_kernel",
]
