"""End-to-end public API: compile a kernel, run it, measure it.

Typical use (see ``examples/quickstart.py``)::

    from repro import api, kernels

    module, spec = kernels.matmul(1, 200, 5)
    compiled = api.compile_linalg(module, pipeline="ours")
    result = api.run_kernel(compiled, spec.random_arguments())
    print(result.trace.summary())
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .backend.asm_emitter import emit_module
from .backend.register_allocator import count_used_registers
from .dialects import riscv_func
from .dialects.builtin import ModuleOp
from .ir.verifier import verify
from .snitch.assembler import Program, assemble
from .snitch.machine import SnitchMachine
from .snitch.memory import TCDM
from .snitch.trace import ExecutionTrace
from .transforms.pipelines import build_pipeline


@dataclass
class CompiledKernel:
    """A kernel compiled down to Snitch assembly."""

    #: The lowered module (rv-level IR, registers allocated).
    module: ModuleOp
    #: The emitted assembly text.
    asm: str
    #: Entry symbol.
    entry: str
    #: (pass name, IR text) snapshots if requested at compile time.
    snapshots: list[tuple[str, str]] = field(default_factory=list)

    @property
    def program(self) -> Program:
        """The assembled program (parsed once per access)."""
        return assemble(self.asm)

    def register_usage(self) -> tuple[int, int]:
        """(FP, integer) registers used — the paper's Table 2 metric."""
        for op in self.module.walk():
            if isinstance(op, riscv_func.FuncOp):
                return count_used_registers(op)
        raise ValueError("no function in compiled module")


@dataclass
class KernelRun:
    """Outcome of simulating a compiled kernel."""

    trace: ExecutionTrace
    #: Final contents of each array argument, in argument order
    #: (``None`` for scalar arguments).
    arrays: list[np.ndarray | None]


def compile_linalg(
    module: ModuleOp,
    pipeline: str = "ours",
    unroll_factor: int | None = None,
    snapshots: bool = False,
) -> CompiledKernel:
    """Run a named pipeline over a linalg-level module and emit assembly."""
    manager = build_pipeline(
        pipeline, unroll_factor=unroll_factor, snapshot=snapshots
    )
    verify(module)
    manager.run(module)
    entry = None
    for op in module.walk():
        if isinstance(op, riscv_func.FuncOp):
            entry = op.sym_name
            break
    if entry is None:
        raise ValueError("pipeline produced no rv_func.func")
    asm = emit_module(module)
    return CompiledKernel(
        module=module,
        asm=asm,
        entry=entry,
        snapshots=list(manager.snapshots),
    )


def compile_lowlevel(module: ModuleOp, entry: str) -> CompiledKernel:
    """Compile a handwritten dialect-level kernel (paper Section 4.2).

    The module already contains ``rv_func``/``snitch_stream``/
    ``rv_snitch`` IR, possibly partially register-allocated; only the
    backend stages run: stream lowering, register allocation, loop
    flattening, emission.
    """
    from .transforms.allocate_registers_pass import AllocateRegistersPass
    from .transforms.dce import DeadCodeEliminationPass
    from .transforms.lower_riscv_scf import LowerRiscvScfPass
    from .transforms.lower_snitch_stream import LowerSnitchStreamPass
    from .ir.pass_manager import PassManager

    from .transforms.canonicalize import (
        CanonicalizePass,
        EliminateIdentityMovesPass,
    )

    manager = PassManager(
        [
            LowerSnitchStreamPass(),
            CanonicalizePass(),
            DeadCodeEliminationPass(),
            AllocateRegistersPass(),
            LowerRiscvScfPass(),
            EliminateIdentityMovesPass(),
        ]
    )
    manager.run(module)
    return CompiledKernel(module=module, asm=emit_module(module), entry=entry)


def run_kernel(
    compiled: CompiledKernel,
    arguments: list[np.ndarray | float],
    max_instructions: int = 50_000_000,
) -> KernelRun:
    """Simulate a compiled kernel on fresh TCDM contents.

    ``arguments`` parallel the kernel's parameters: numpy arrays are
    copied into TCDM buffers and passed as pointers in ``a0, a1, ...``;
    Python floats are passed in ``fa0, fa1, ...``.  Arrays are copied
    back after execution (``KernelRun.arrays``).
    """
    memory = TCDM()
    int_args: dict[str, int] = {}
    float_args: dict[str, float] = {}
    placements: list[tuple[int, np.ndarray] | None] = []
    next_int = 0
    next_float = 0
    for argument in arguments:
        if isinstance(argument, np.ndarray):
            base = memory.allocate(argument.nbytes)
            memory.write_array(base, argument)
            int_args[f"a{next_int}"] = base
            next_int += 1
            placements.append((base, argument))
        else:
            float_args[f"fa{next_float}"] = float(argument)
            next_float += 1
            placements.append(None)
    machine = SnitchMachine(
        compiled.program, memory, max_instructions=max_instructions
    )
    trace = machine.run(
        compiled.entry, int_args=int_args, float_args=float_args
    )
    arrays: list[np.ndarray | None] = []
    for placement in placements:
        if placement is None:
            arrays.append(None)
            continue
        base, original = placement
        arrays.append(
            memory.read_array(base, original.shape, original.dtype)
        )
    return KernelRun(trace=trace, arrays=arrays)


__all__ = [
    "CompiledKernel",
    "KernelRun",
    "compile_linalg",
    "compile_lowlevel",
    "run_kernel",
]
