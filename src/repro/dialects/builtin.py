"""The ``builtin`` dialect: the module container op."""

from __future__ import annotations

from typing import Iterator, Sequence

from ..ir.core import Block, BlockOps, Operation, Region
from ..ir.irdl import (
    Dialect,
    irdl_op_definition,
    operand_def,
    region_def,
    result_def,
)
from ..ir.traits import IsolatedFromAbove


@irdl_op_definition
class ModuleOp(Operation):
    """Top-level container holding a single block of ops (functions)."""

    name = "builtin.module"
    traits = frozenset([IsolatedFromAbove])
    __slots__ = ()

    body = region_def(doc="The module body: one block of operations.")

    def __init__(self, ops: Sequence[Operation] = ()):
        block = Block()
        block.add_ops(ops)
        super().__init__(regions=[Region([block])])

    @property
    def block(self) -> Block:
        """The module's single block."""
        return self.body.block

    @property
    def ops(self) -> BlockOps:
        """Top-level operations of the module (live sequence view)."""
        return self.block.ops

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.block.ops)


@irdl_op_definition
class UnrealizedConversionCastOp(Operation):
    """Temporary bridge between type systems during progressive lowering.

    Conversion passes use casts to connect not-yet-lowered consumers with
    already-lowered producers; a completed pipeline leaves none behind.
    """

    name = "builtin.unrealized_conversion_cast"
    __slots__ = ()

    input = operand_def(doc="The value being reinterpreted.")
    output = result_def(doc="The reinterpreted result value.")


BUILTIN = Dialect(
    "builtin",
    ops=[ModuleOp, UnrealizedConversionCastOp],
    doc="module container and conversion plumbing",
)


__all__ = ["ModuleOp", "UnrealizedConversionCastOp", "BUILTIN"]
