"""The ``builtin`` dialect: the module container op."""

from __future__ import annotations

from typing import Iterator, Sequence

from ..ir.core import Block, BlockOps, Operation, Region
from ..ir.traits import IsolatedFromAbove


class ModuleOp(Operation):
    """Top-level container holding a single block of ops (functions)."""

    name = "builtin.module"
    traits = frozenset([IsolatedFromAbove])

    def __init__(self, ops: Sequence[Operation] = ()):
        block = Block()
        block.add_ops(ops)
        super().__init__(regions=[Region([block])])

    @property
    def block(self) -> Block:
        """The module's single block."""
        return self.body.block

    @property
    def ops(self) -> BlockOps:
        """Top-level operations of the module (live sequence view)."""
        return self.block.ops

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.block.ops)


class UnrealizedConversionCastOp(Operation):
    """Temporary bridge between type systems during progressive lowering.

    Conversion passes use casts to connect not-yet-lowered consumers with
    already-lowered producers; a completed pipeline leaves none behind.
    """

    name = "builtin.unrealized_conversion_cast"

    def __init__(self, value, result_type):
        super().__init__(operands=[value], result_types=[result_type])

    @property
    def input(self):
        """The value being reinterpreted."""
        return self.operands[0]

    @property
    def output(self):
        """The reinterpreted result value."""
        return self.results[0]


__all__ = ["ModuleOp", "UnrealizedConversionCastOp"]
