"""The ``linalg`` dialect: structured linear algebra on memrefs.

``linalg.generic`` is the high-level entry point of the compiler: it
carries (i) explicit iterator types, (ii) affine maps from iteration space
to operand data, (iii) an iteration space defined by the operand shapes and
(iv) a scalar computation body (paper Section 2.2).  The multi-level
backend's key move is to *keep* this information rather than lowering to
loops and reconstructing it.
"""

from __future__ import annotations

from typing import Sequence

from ..ir.affine_map import AffineMap
from ..ir.attributes import (
    ArrayAttr,
    DenseIntAttr,
    MemRefType,
    StringAttr,
)
from ..ir.core import Block, IRError, Operation, Region, SSAValue
from ..ir.traits import HasMemoryEffect, IsTerminator

#: Legal iterator kinds for linalg.generic.
ITERATOR_KINDS = ("parallel", "reduction")


class GenericOp(Operation):
    """The versatile ``linalg.generic`` operation.

    Operands are ``inputs`` then ``outputs`` (all memrefs here); the body
    block takes one scalar per input followed by one scalar per output
    (the current value of the output element) and yields the new output
    values.
    """

    name = "linalg.generic"
    traits = frozenset([HasMemoryEffect])

    def __init__(
        self,
        inputs: Sequence[SSAValue],
        outputs: Sequence[SSAValue],
        indexing_maps: Sequence[AffineMap],
        iterator_types: Sequence[str],
        body: Region,
    ):
        inputs = list(inputs)
        outputs = list(outputs)
        super().__init__(
            operands=inputs + outputs,
            attributes={
                "indexing_maps": ArrayAttr(list(indexing_maps)),
                "iterator_types": ArrayAttr(
                    [StringAttr(k) for k in iterator_types]
                ),
                "operand_segment_sizes": DenseIntAttr(
                    [len(inputs), len(outputs)]
                ),
            },
            regions=[body],
        )

    # -- operand views --------------------------------------------------------

    @property
    def _segments(self) -> tuple[int, int]:
        attr = self.attributes["operand_segment_sizes"]
        assert isinstance(attr, DenseIntAttr)
        return attr[0], attr[1]

    @property
    def inputs(self) -> tuple[SSAValue, ...]:
        """The input operands."""
        n_in, _ = self._segments
        return self.operands[:n_in]

    @property
    def outputs(self) -> tuple[SSAValue, ...]:
        """The output operands."""
        n_in, n_out = self._segments
        return self.operands[n_in : n_in + n_out]

    # -- attribute views ----------------------------------------------------------

    @property
    def indexing_maps(self) -> list[AffineMap]:
        """One affine map per operand (inputs then outputs)."""
        attr = self.attributes["indexing_maps"]
        assert isinstance(attr, ArrayAttr)
        return [m for m in attr.elements]  # type: ignore[misc]

    @property
    def iterator_types(self) -> list[str]:
        """Iterator kind per iteration dimension."""
        attr = self.attributes["iterator_types"]
        assert isinstance(attr, ArrayAttr)
        return [s.value for s in attr.elements]  # type: ignore[union-attr]

    @property
    def body_block(self) -> Block:
        """The scalar computation body."""
        return self.body.block

    # -- derived information ---------------------------------------------------------

    def iteration_bounds(self) -> tuple[int, ...]:
        """Infer the iteration-space bounds from operand shapes.

        linalg's contract: each operand's shape constrains the dims its
        indexing map touches (paper Section 2.2 property iii).  Two
        kinds of constraints are solved:

        * an axis indexed by a single dim ``d`` bounds it by the axis
          size;
        * an axis indexed by a *sum* of dims (convolution/pooling
          windows, ``d0 + d2``) gives the sliding-window relation
          ``sum(bound_i - 1) + 1 == axis size``, solved once all but
          one participating dim is known.
        """
        num_dims = len(self.iterator_types)
        bounds: list[int | None] = [None] * num_dims
        # (participating dims, axis size) constraints with unit coeffs.
        constraints: list[tuple[list[int], int]] = []
        for value, amap in zip(self.operands, self.indexing_maps):
            vtype = value.type
            if not isinstance(vtype, MemRefType):
                continue
            deltas = amap.unit_deltas()  # per dim, per axis
            for axis in range(amap.num_results):
                coeffs = [deltas[dim][axis] for dim in range(num_dims)]
                if any(c not in (0, 1) for c in coeffs):
                    continue  # non-unit stride: not a bound constraint
                dims = [d for d, c in enumerate(coeffs) if c == 1]
                if not dims:
                    continue
                constraints.append((dims, vtype.shape[axis]))
        # Iteratively resolve: direct constraints first, then windows.
        for _ in range(num_dims + 1):
            progress = False
            for dims, size in constraints:
                unknown = [d for d in dims if bounds[d] is None]
                if len(dims) == 1:
                    d = dims[0]
                    if bounds[d] is None or size < bounds[d]:
                        bounds[d] = size
                        progress = True
                elif len(unknown) == 1:
                    known_span = sum(
                        bounds[d] - 1 for d in dims if bounds[d] is not None
                    )
                    inferred = size - known_span
                    d = unknown[0]
                    if inferred >= 1 and (
                        bounds[d] is None or inferred < bounds[d]
                    ):
                        bounds[d] = inferred
                        progress = True
            if not progress:
                break
        if any(b is None for b in bounds):
            raise IRError(
                "linalg.generic: could not infer all iteration bounds"
            )
        return tuple(bounds)  # type: ignore[arg-type]

    def verify_(self) -> None:
        if len(self.indexing_maps) != len(self.operands):
            raise IRError(
                "linalg.generic: one indexing map per operand required"
            )
        for kind in self.iterator_types:
            if kind not in ITERATOR_KINDS:
                raise IRError(
                    f"linalg.generic: unknown iterator type {kind!r}"
                )
        num_dims = len(self.iterator_types)
        for amap in self.indexing_maps:
            if amap.num_dims != num_dims:
                raise IRError(
                    "linalg.generic: indexing map dimensionality mismatch"
                )
        block = self.body.first_block
        if block is None or not isinstance(block.last_op, YieldOp):
            raise IRError("linalg.generic: body must end with linalg.yield")
        if len(block.args) != len(self.operands):
            raise IRError(
                "linalg.generic: body takes one scalar per operand"
            )
        if len(block.last_op.operands) != len(self.outputs):
            raise IRError(
                "linalg.generic: yield arity must match output count"
            )


class YieldOp(Operation):
    """Terminator of a ``linalg.generic`` body."""

    name = "linalg.yield"
    traits = frozenset([IsTerminator])

    def __init__(self, values: Sequence[SSAValue] = ()):
        super().__init__(operands=list(values))


class FillOp(Operation):
    """Fills an output buffer with a scalar (zeroing before a MatMul)."""

    name = "linalg.fill"
    traits = frozenset([HasMemoryEffect])

    def __init__(self, value: SSAValue, output: SSAValue):
        if not isinstance(output.type, MemRefType):
            raise IRError("linalg.fill: output must be a memref")
        super().__init__(operands=[value, output])

    @property
    def fill_value(self) -> SSAValue:
        """The scalar written to every element."""
        return self.operands[0]

    @property
    def output(self) -> SSAValue:
        """The buffer being filled."""
        return self.operands[1]

    def verify_(self) -> None:
        out_type = self.output.type
        assert isinstance(out_type, MemRefType)
        if self.fill_value.type != out_type.element_type:
            raise IRError("linalg.fill: scalar type mismatch")


__all__ = ["GenericOp", "YieldOp", "FillOp", "ITERATOR_KINDS"]
