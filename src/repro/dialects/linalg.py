"""The ``linalg`` dialect: structured linear algebra on memrefs.

``linalg.generic`` is the high-level entry point of the compiler: it
carries (i) explicit iterator types, (ii) affine maps from iteration space
to operand data, (iii) an iteration space defined by the operand shapes and
(iv) a scalar computation body (paper Section 2.2).  The multi-level
backend's key move is to *keep* this information rather than lowering to
loops and reconstructing it.
"""

from __future__ import annotations

from typing import Sequence

from ..ir.affine_map import AffineMap
from ..ir.attributes import (
    ArrayAttr,
    DenseIntAttr,
    MemRefType,
    StringAttr,
)
from ..ir.core import Block, IRError, Operation, Region, SSAValue
from ..ir.irdl import (
    BaseAttr,
    Dialect,
    attr_def,
    irdl_op_definition,
    operand_def,
    region_def,
    var_operand_def,
)
from ..ir.traits import HasMemoryEffect, IsTerminator

#: Legal iterator kinds for linalg.generic.
ITERATOR_KINDS = ("parallel", "reduction")


@irdl_op_definition
class GenericOp(Operation):
    """The versatile ``linalg.generic`` operation.

    Operands are ``inputs`` then ``outputs`` (all memrefs here); the body
    block takes one scalar per input followed by one scalar per output
    (the current value of the output element) and yields the new output
    values.
    """

    name = "linalg.generic"
    traits = frozenset([HasMemoryEffect])
    __slots__ = ()

    inputs = var_operand_def(doc="The input operands.")
    outputs = var_operand_def(doc="The output operands.")
    indexing_maps = attr_def(
        ArrayAttr, doc="One affine map per operand (inputs then outputs)."
    )
    iterator_types = attr_def(
        ArrayAttr,
        elem=StringAttr,
        doc="Iterator kind per iteration dimension.",
    )
    body = region_def(doc="The scalar computation body region.")

    def __init__(
        self,
        inputs: Sequence[SSAValue],
        outputs: Sequence[SSAValue],
        indexing_maps: Sequence[AffineMap],
        iterator_types: Sequence[str],
        body: Region,
    ):
        inputs = list(inputs)
        outputs = list(outputs)
        super().__init__(
            operands=inputs + outputs,
            attributes={
                "indexing_maps": ArrayAttr(list(indexing_maps)),
                "iterator_types": ArrayAttr(
                    [StringAttr(k) for k in iterator_types]
                ),
                "operand_segment_sizes": DenseIntAttr(
                    [len(inputs), len(outputs)]
                ),
            },
            regions=[body],
        )

    @property
    def body_block(self) -> Block:
        """The scalar computation body."""
        return self.body.block

    # -- derived information ---------------------------------------------------------

    def iteration_bounds(self) -> tuple[int, ...]:
        """Infer the iteration-space bounds from operand shapes.

        linalg's contract: each operand's shape constrains the dims its
        indexing map touches (paper Section 2.2 property iii).  Two
        kinds of constraints are solved:

        * an axis indexed by a single dim ``d`` bounds it by the axis
          size;
        * an axis indexed by a *sum* of dims (convolution/pooling
          windows, ``d0 + d2``) gives the sliding-window relation
          ``sum(bound_i - 1) + 1 == axis size``, solved once all but
          one participating dim is known.
        """
        num_dims = len(self.iterator_types)
        bounds: list[int | None] = [None] * num_dims
        # (participating dims, axis size) constraints with unit coeffs.
        constraints: list[tuple[list[int], int]] = []
        for value, amap in zip(self.operands, self.indexing_maps):
            vtype = value.type
            if not isinstance(vtype, MemRefType):
                continue
            deltas = amap.unit_deltas()  # per dim, per axis
            for axis in range(amap.num_results):
                coeffs = [deltas[dim][axis] for dim in range(num_dims)]
                if any(c not in (0, 1) for c in coeffs):
                    continue  # non-unit stride: not a bound constraint
                dims = [d for d, c in enumerate(coeffs) if c == 1]
                if not dims:
                    continue
                constraints.append((dims, vtype.shape[axis]))
        # Iteratively resolve: direct constraints first, then windows.
        for _ in range(num_dims + 1):
            progress = False
            for dims, size in constraints:
                unknown = [d for d in dims if bounds[d] is None]
                if len(dims) == 1:
                    d = dims[0]
                    if bounds[d] is None or size < bounds[d]:
                        bounds[d] = size
                        progress = True
                elif len(unknown) == 1:
                    known_span = sum(
                        bounds[d] - 1 for d in dims if bounds[d] is not None
                    )
                    inferred = size - known_span
                    d = unknown[0]
                    if inferred >= 1 and (
                        bounds[d] is None or inferred < bounds[d]
                    ):
                        bounds[d] = inferred
                        progress = True
            if not progress:
                break
        if any(b is None for b in bounds):
            raise IRError(
                "linalg.generic: could not infer all iteration bounds"
            )
        return tuple(bounds)  # type: ignore[arg-type]

    def verify_extra_(self) -> None:
        if len(self.indexing_maps) != len(self.operands):
            raise IRError(
                "linalg.generic: one indexing map per operand required"
            )
        for kind in self.iterator_types:
            if kind not in ITERATOR_KINDS:
                raise IRError(
                    f"linalg.generic: unknown iterator type {kind!r}"
                )
        num_dims = len(self.iterator_types)
        for amap in self.indexing_maps:
            if amap.num_dims != num_dims:
                raise IRError(
                    "linalg.generic: indexing map dimensionality mismatch"
                )
        block = self.body.first_block
        if block is None or not isinstance(block.last_op, YieldOp):
            raise IRError("linalg.generic: body must end with linalg.yield")
        if len(block.args) != len(self.operands):
            raise IRError(
                "linalg.generic: body takes one scalar per operand"
            )
        if len(block.last_op.operands) != len(self.outputs):
            raise IRError(
                "linalg.generic: yield arity must match output count"
            )


@irdl_op_definition
class YieldOp(Operation):
    """Terminator of a ``linalg.generic`` body."""

    name = "linalg.yield"
    traits = frozenset([IsTerminator])
    __slots__ = ()

    values = var_operand_def(doc="The yielded output values.")


@irdl_op_definition
class FillOp(Operation):
    """Fills an output buffer with a scalar (zeroing before a MatMul)."""

    name = "linalg.fill"
    traits = frozenset([HasMemoryEffect])
    __slots__ = ()

    fill_value = operand_def(doc="The scalar written to every element.")
    output = operand_def(
        BaseAttr(MemRefType), doc="The buffer being filled."
    )

    def verify_extra_(self) -> None:
        out_type = self.output.type
        assert isinstance(out_type, MemRefType)
        if self.fill_value.type != out_type.element_type:
            raise IRError("linalg.fill: scalar type mismatch")


LINALG = Dialect(
    "linalg",
    ops=[GenericOp, YieldOp, FillOp],
    doc="structured linear algebra (the DSL entry point)",
)


__all__ = ["GenericOp", "YieldOp", "FillOp", "ITERATOR_KINDS", "LINALG"]
