"""The ``arith`` dialect: target-independent scalar arithmetic.

These are the ops that appear inside ``linalg.generic`` bodies (paper
Figure 2) and that the backend later rewrites into ``rv`` floating-point
instructions.
"""

from __future__ import annotations

from ..ir.attributes import (
    Attribute,
    FloatAttr,
    FloatType,
    IndexType,
    IntAttr,
    IntegerType,
    TypeAttribute,
    index,
)
from ..ir.core import IRError
from ..ir.core import Operation
from ..ir.irdl import (
    Dialect,
    SameAs,
    attr_def,
    irdl_op_definition,
    operand_def,
    result_def,
)
from ..ir.traits import ConstantLike, Pure, SameOperandsAndResultType


@irdl_op_definition
class ConstantOp(Operation):
    """Materializes a compile-time integer, index or float constant."""

    name = "arith.constant"
    traits = frozenset([Pure, ConstantLike])
    __slots__ = ()

    value = attr_def(Attribute, raw=True, doc="The constant attribute.")
    result = result_def(doc="The materialized value.")

    @staticmethod
    def from_int(value: int, result_type: TypeAttribute = index):
        """An integer/index constant."""
        return ConstantOp(IntAttr(value), result_type)

    @staticmethod
    def from_float(value: float, result_type: FloatType):
        """A floating-point constant."""
        return ConstantOp(FloatAttr(value, result_type), result_type)

    def verify_extra_(self) -> None:
        value = self.value
        result_type = self.results[0].type
        if isinstance(value, FloatAttr) and not isinstance(
            result_type, FloatType
        ):
            raise IRError("float constant must have a float result type")
        if isinstance(value, IntAttr) and not isinstance(
            result_type, (IntegerType, IndexType)
        ):
            raise IRError("int constant must have an int/index result type")


@irdl_op_definition
class _BinaryOp(Operation):
    """Shared shape of all elementwise binary arithmetic ops.

    The generated verifier enforces :class:`SameOperandsAndResultType`,
    which subsumes the arity/type checks these ops used to hand-write.
    """

    traits = frozenset([Pure, SameOperandsAndResultType])
    __slots__ = ()

    lhs = operand_def(doc="Left operand.")
    rhs = operand_def(doc="Right operand.")
    result = result_def(default=SameAs("lhs"), doc="The operation result.")


class AddfOp(_BinaryOp):
    """Floating-point addition."""

    name = "arith.addf"
    __slots__ = ()


class SubfOp(_BinaryOp):
    """Floating-point subtraction."""

    name = "arith.subf"
    __slots__ = ()


class MulfOp(_BinaryOp):
    """Floating-point multiplication."""

    name = "arith.mulf"
    __slots__ = ()


class DivfOp(_BinaryOp):
    """Floating-point division."""

    name = "arith.divf"
    __slots__ = ()


class MaximumfOp(_BinaryOp):
    """Floating-point maximum (used by ReLU and max-pooling)."""

    name = "arith.maximumf"
    __slots__ = ()


class MinimumfOp(_BinaryOp):
    """Floating-point minimum."""

    name = "arith.minimumf"
    __slots__ = ()


class AddiOp(_BinaryOp):
    """Integer/index addition."""

    name = "arith.addi"
    __slots__ = ()


class SubiOp(_BinaryOp):
    """Integer/index subtraction."""

    name = "arith.subi"
    __slots__ = ()


class MuliOp(_BinaryOp):
    """Integer/index multiplication."""

    name = "arith.muli"
    __slots__ = ()


#: Binary float ops a streamed kernel body may contain, by op name.
FLOAT_BINARY_OPS = {
    op.name: op
    for op in (AddfOp, SubfOp, MulfOp, DivfOp, MaximumfOp, MinimumfOp)
}


ARITH = Dialect(
    "arith",
    ops=[
        ConstantOp,
        AddfOp,
        SubfOp,
        MulfOp,
        DivfOp,
        MaximumfOp,
        MinimumfOp,
        AddiOp,
        SubiOp,
        MuliOp,
    ],
    doc="target-independent scalar arithmetic",
)


__all__ = [
    "ConstantOp",
    "AddfOp",
    "SubfOp",
    "MulfOp",
    "DivfOp",
    "MaximumfOp",
    "MinimumfOp",
    "AddiOp",
    "SubiOp",
    "MuliOp",
    "FLOAT_BINARY_OPS",
    "ARITH",
]
