"""The ``arith`` dialect: target-independent scalar arithmetic.

These are the ops that appear inside ``linalg.generic`` bodies (paper
Figure 2) and that the backend later rewrites into ``rv`` floating-point
instructions.
"""

from __future__ import annotations

from ..ir.attributes import (
    Attribute,
    FloatAttr,
    FloatType,
    IndexType,
    IntAttr,
    IntegerType,
    TypeAttribute,
    index,
)
from ..ir.core import IRError, Operation, SSAValue
from ..ir.traits import ConstantLike, Pure, SameOperandsAndResultType


class ConstantOp(Operation):
    """Materializes a compile-time integer, index or float constant."""

    name = "arith.constant"
    traits = frozenset([Pure, ConstantLike])

    def __init__(self, value: Attribute, result_type: TypeAttribute):
        super().__init__(
            result_types=[result_type], attributes={"value": value}
        )

    @staticmethod
    def from_int(value: int, result_type: TypeAttribute = index):
        """An integer/index constant."""
        return ConstantOp(IntAttr(value), result_type)

    @staticmethod
    def from_float(value: float, result_type: FloatType):
        """A floating-point constant."""
        return ConstantOp(FloatAttr(value, result_type), result_type)

    @property
    def value(self) -> Attribute:
        """The constant attribute."""
        return self.attributes["value"]

    @property
    def result(self) -> SSAValue:
        """The materialized value."""
        return self.results[0]

    def verify_(self) -> None:
        value = self.value
        result_type = self.results[0].type
        if isinstance(value, FloatAttr) and not isinstance(
            result_type, FloatType
        ):
            raise IRError("float constant must have a float result type")
        if isinstance(value, IntAttr) and not isinstance(
            result_type, (IntegerType, IndexType)
        ):
            raise IRError("int constant must have an int/index result type")


class _BinaryOp(Operation):
    """Shared shape of all elementwise binary arithmetic ops."""

    traits = frozenset([Pure, SameOperandsAndResultType])

    def __init__(self, lhs: SSAValue, rhs: SSAValue):
        super().__init__(operands=[lhs, rhs], result_types=[lhs.type])

    @property
    def lhs(self) -> SSAValue:
        """Left operand."""
        return self.operands[0]

    @property
    def rhs(self) -> SSAValue:
        """Right operand."""
        return self.operands[1]

    @property
    def result(self) -> SSAValue:
        """The operation result."""
        return self.results[0]

    def verify_(self) -> None:
        if self.operands[0].type != self.operands[1].type:
            raise IRError(f"{self.name}: operand types differ")
        if self.results[0].type != self.operands[0].type:
            raise IRError(f"{self.name}: result type differs from operands")


class AddfOp(_BinaryOp):
    """Floating-point addition."""

    name = "arith.addf"


class SubfOp(_BinaryOp):
    """Floating-point subtraction."""

    name = "arith.subf"


class MulfOp(_BinaryOp):
    """Floating-point multiplication."""

    name = "arith.mulf"


class DivfOp(_BinaryOp):
    """Floating-point division."""

    name = "arith.divf"


class MaximumfOp(_BinaryOp):
    """Floating-point maximum (used by ReLU and max-pooling)."""

    name = "arith.maximumf"


class MinimumfOp(_BinaryOp):
    """Floating-point minimum."""

    name = "arith.minimumf"


class AddiOp(_BinaryOp):
    """Integer/index addition."""

    name = "arith.addi"


class SubiOp(_BinaryOp):
    """Integer/index subtraction."""

    name = "arith.subi"


class MuliOp(_BinaryOp):
    """Integer/index multiplication."""

    name = "arith.muli"


#: Binary float ops a streamed kernel body may contain, by op name.
FLOAT_BINARY_OPS = {
    op.name: op
    for op in (AddfOp, SubfOp, MulfOp, DivfOp, MaximumfOp, MinimumfOp)
}


__all__ = [
    "ConstantOp",
    "AddfOp",
    "SubfOp",
    "MulfOp",
    "DivfOp",
    "MaximumfOp",
    "MinimumfOp",
    "AddiOp",
    "SubiOp",
    "MuliOp",
    "FLOAT_BINARY_OPS",
]
