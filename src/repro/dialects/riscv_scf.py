"""The ``rv_scf`` dialect: structured for-loops over registers.

``rv_scf.for`` mirrors ``scf.for`` but its bounds, step, induction
variable and iteration values are all register-typed.  Keeping the loop
structured "eases optimizations and live range construction during
register allocation" (paper Section 3.1); it is lowered to ``rv_cf``
labels and branches only *after* registers are assigned.
"""

from __future__ import annotations

from typing import Sequence

from ..ir.attributes import TypeAttribute
from ..ir.core import Block, IRError, Operation, Region, SSAValue
from ..ir.irdl import (
    Dialect,
    irdl_op_definition,
    operand_def,
    region_def,
    var_operand_def,
    var_result_def,
)
from ..ir.traits import IsTerminator
from .riscv import INT_REGISTER, IntRegisterType


@irdl_op_definition
class ForOp(Operation):
    """``rv_scf.for %iv = %lb to %ub step %step iter_args(...)``.

    The body block's first argument is the induction variable (an integer
    register); further arguments carry the loop state.  Results equal the
    values yielded on the final iteration.
    """

    name = "rv_scf.for"
    __slots__ = ()

    lower_bound = operand_def(
        INT_REGISTER, doc="Loop lower bound register (inclusive)."
    )
    upper_bound = operand_def(
        INT_REGISTER, doc="Loop upper bound register (exclusive)."
    )
    step = operand_def(INT_REGISTER, doc="Loop step register.")
    iter_args = var_operand_def(
        doc="Initial values of loop-carried registers."
    )
    loop_results = var_result_def(
        doc="Final values of the loop-carried registers."
    )
    body = region_def(doc="The loop body region.")

    def __init__(
        self,
        lower_bound: SSAValue,
        upper_bound: SSAValue,
        step: SSAValue,
        iter_args: Sequence[SSAValue] = (),
        body: Region | None = None,
    ):
        iter_args = list(iter_args)
        # Body arguments and results start *unallocated* even when the
        # initial values already sit in concrete registers: the register
        # allocator decides whether the loop-carried group can share the
        # init's register (it cannot when the init stays live past the
        # loop header).
        fresh_types = [type(v.type)() for v in iter_args]
        if body is None:
            arg_types: list[TypeAttribute] = [IntRegisterType()]
            arg_types += fresh_types
            body = Region([Block(arg_types)])
        super().__init__(
            operands=[lower_bound, upper_bound, step] + iter_args,
            result_types=fresh_types,
            regions=[body],
        )

    @property
    def body_block(self) -> Block:
        """The loop body."""
        return self.body.block

    @property
    def induction_variable(self) -> SSAValue:
        """The induction variable register."""
        return self.body_block.args[0]

    @property
    def body_iter_args(self) -> list[SSAValue]:
        """Body block args carrying the iteration state."""
        return list(self.body_block.args[1:])

    def verify_extra_(self) -> None:
        block = self.body.first_block
        if block is None:
            raise IRError("rv_scf.for: empty body")
        if not block.args or not isinstance(
            block.args[0].type, IntRegisterType
        ):
            raise IRError(
                "rv_scf.for: first body argument must be the integer "
                "induction variable"
            )
        if len(block.args) != 1 + len(self.iter_args):
            raise IRError("rv_scf.for: body argument arity mismatch")
        last = block.last_op
        if not isinstance(last, YieldOp):
            raise IRError("rv_scf.for: body must end with rv_scf.yield")
        if len(last.operands) != len(self.results):
            raise IRError("rv_scf.for: yield arity mismatch")


@irdl_op_definition
class YieldOp(Operation):
    """Terminator carrying loop state to the next iteration."""

    name = "rv_scf.yield"
    traits = frozenset([IsTerminator])
    __slots__ = ()

    values = var_operand_def(
        doc="The values carried to the next iteration."
    )


RISCV_SCF = Dialect(
    "rv_scf",
    ops=[ForOp, YieldOp],
    doc="structured for-loops over registers",
)


__all__ = ["ForOp", "YieldOp", "RISCV_SCF"]
