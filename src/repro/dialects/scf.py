"""The ``scf`` dialect: structured control flow.

``scf.for`` "embodies a typical for loop, with an induction variable
incrementing within an integer range" (paper Section 2.1).  Keeping loops
structured all the way into the backend is what makes the spill-free
register allocator possible (Section 3.3).
"""

from __future__ import annotations

from typing import Sequence

from ..ir.attributes import IndexType
from ..ir.core import Block, IRError, Operation, Region, SSAValue
from ..ir.traits import IsTerminator


class ForOp(Operation):
    """A counted loop ``for %i = %lb to %ub step %step iter_args(...)``.

    The body block receives the induction variable followed by the
    iteration arguments; its terminator must be an :class:`YieldOp`
    yielding the next iteration values.  Loop results equal the final
    iteration values.
    """

    name = "scf.for"

    def __init__(
        self,
        lower_bound: SSAValue,
        upper_bound: SSAValue,
        step: SSAValue,
        iter_args: Sequence[SSAValue] = (),
        body: Region | None = None,
    ):
        iter_args = list(iter_args)
        if body is None:
            body = Region(
                [Block([IndexType()] + [v.type for v in iter_args])]
            )
        super().__init__(
            operands=[lower_bound, upper_bound, step] + iter_args,
            result_types=[v.type for v in iter_args],
            regions=[body],
        )

    @property
    def lower_bound(self) -> SSAValue:
        """Loop lower bound (inclusive)."""
        return self.operands[0]

    @property
    def upper_bound(self) -> SSAValue:
        """Loop upper bound (exclusive)."""
        return self.operands[1]

    @property
    def step(self) -> SSAValue:
        """Loop step."""
        return self.operands[2]

    @property
    def iter_args(self) -> tuple[SSAValue, ...]:
        """Initial values of the loop-carried variables."""
        return self.operands[3:]

    @property
    def body_block(self) -> Block:
        """The loop body."""
        return self.body.block

    @property
    def induction_variable(self) -> SSAValue:
        """The body's induction variable."""
        return self.body_block.args[0]

    @property
    def body_iter_args(self) -> list[SSAValue]:
        """The body block arguments carrying the iteration state."""
        return list(self.body_block.args[1:])

    def verify_(self) -> None:
        block = self.body.first_block
        if block is None:
            raise IRError("scf.for: empty body")
        if len(block.args) != 1 + len(self.iter_args):
            raise IRError(
                "scf.for: body must take induction variable plus one "
                "argument per iter_arg"
            )
        last = block.last_op
        if last is None or not isinstance(last, YieldOp):
            raise IRError("scf.for: body must end with scf.yield")
        if len(last.operands) != len(self.results):
            raise IRError(
                "scf.for: yield arity does not match loop results"
            )


class YieldOp(Operation):
    """Terminator passing loop-carried values to the next iteration."""

    name = "scf.yield"
    traits = frozenset([IsTerminator])

    def __init__(self, values: Sequence[SSAValue] = ()):
        super().__init__(operands=list(values))


__all__ = ["ForOp", "YieldOp"]
