"""The ``scf`` dialect: structured control flow.

``scf.for`` "embodies a typical for loop, with an induction variable
incrementing within an integer range" (paper Section 2.1).  Keeping loops
structured all the way into the backend is what makes the spill-free
register allocator possible (Section 3.3).
"""

from __future__ import annotations

from typing import Sequence

from ..ir.attributes import IndexType
from ..ir.core import Block, IRError, Operation, Region, SSAValue
from ..ir.irdl import (
    Dialect,
    irdl_op_definition,
    operand_def,
    region_def,
    var_operand_def,
    var_result_def,
)
from ..ir.traits import IsTerminator


@irdl_op_definition
class ForOp(Operation):
    """A counted loop ``for %i = %lb to %ub step %step iter_args(...)``.

    The body block receives the induction variable followed by the
    iteration arguments; its terminator must be an :class:`YieldOp`
    yielding the next iteration values.  Loop results equal the final
    iteration values.
    """

    name = "scf.for"
    __slots__ = ()

    lower_bound = operand_def(doc="Loop lower bound (inclusive).")
    upper_bound = operand_def(doc="Loop upper bound (exclusive).")
    step = operand_def(doc="Loop step.")
    iter_args = var_operand_def(
        doc="Initial values of the loop-carried variables."
    )
    loop_results = var_result_def(
        doc="Final values of the loop-carried variables."
    )
    body = region_def(doc="The loop body region.")

    def __init__(
        self,
        lower_bound: SSAValue,
        upper_bound: SSAValue,
        step: SSAValue,
        iter_args: Sequence[SSAValue] = (),
        body: Region | None = None,
    ):
        iter_args = list(iter_args)
        if body is None:
            body = Region(
                [Block([IndexType()] + [v.type for v in iter_args])]
            )
        super().__init__(
            operands=[lower_bound, upper_bound, step] + iter_args,
            result_types=[v.type for v in iter_args],
            regions=[body],
        )

    @property
    def body_block(self) -> Block:
        """The loop body."""
        return self.body.block

    @property
    def induction_variable(self) -> SSAValue:
        """The body's induction variable."""
        return self.body_block.args[0]

    @property
    def body_iter_args(self) -> list[SSAValue]:
        """The body block arguments carrying the iteration state."""
        return list(self.body_block.args[1:])

    def verify_extra_(self) -> None:
        block = self.body.first_block
        if block is None:
            raise IRError("scf.for: empty body")
        if len(block.args) != 1 + len(self.iter_args):
            raise IRError(
                "scf.for: body must take induction variable plus one "
                "argument per iter_arg"
            )
        last = block.last_op
        if last is None or not isinstance(last, YieldOp):
            raise IRError("scf.for: body must end with scf.yield")
        if len(last.operands) != len(self.results):
            raise IRError(
                "scf.for: yield arity does not match loop results"
            )


@irdl_op_definition
class YieldOp(Operation):
    """Terminator passing loop-carried values to the next iteration."""

    name = "scf.yield"
    traits = frozenset([IsTerminator])
    __slots__ = ()

    values = var_operand_def(doc="The values carried to the next iteration.")


SCF = Dialect(
    "scf",
    ops=[ForOp, YieldOp],
    doc="structured control flow (counted loops)",
)


__all__ = ["ForOp", "YieldOp", "SCF"]
