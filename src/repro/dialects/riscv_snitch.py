"""The ``rv_snitch`` dialect: Snitch ISA extensions as SSA ops.

Models the three Snitch-specific capabilities (paper Sections 2.4, 3.2):

* **FREP** hardware loops — ``rv_snitch.frep_outer`` has a region body and
  an iteration-count operand "along with a mechanism to accumulate
  results" (loop-carried iter_args), with the constraint that only FP and
  stream operations appear in the body;
* **stream interaction** — ``rv_snitch.read``/``rv_snitch.write`` make the
  memory effects of stream semantic registers explicit in the IR;
* **configuration and packed SIMD** — ``scfgwi``, ``csrsi``/``csrci`` on
  ``ssrcfg`` and the pre-standard Snitch packed-SIMD instructions
  operating on the 8-lane 64-bit FP registers.
"""

from __future__ import annotations

from typing import Sequence

from ..ir.attributes import IntAttr, StringAttr
from ..ir.core import Block, IRError, Operation, Region, SSAValue
from ..ir.irdl import (
    BaseAttr,
    Dialect,
    ElementOf,
    ParamAttr,
    attr_def,
    irdl_op_definition,
    operand_def,
    region_def,
    result_def,
    var_operand_def,
    var_result_def,
)
from ..ir.traits import HasMemoryEffect, IsTerminator, Pure
from .riscv import (
    FLOAT_REGISTER,
    INT_REGISTER,
    UNALLOCATED_FLOAT,
    FloatRegisterType,
    FRdRsRsInstruction,
    IntRegisterType,
    RISCVInstruction,
    reg_name,
)
from .stream import ReadableStreamType, WritableStreamType


@irdl_op_definition
class FrepOuter(Operation):
    """``frep.o``: repeat the FP instruction body ``max_rep + 1`` times.

    The count operand holds ``iterations - 1``, matching the hardware
    semantics ("repeat a0 times the following N instructions", paper
    Figure 4).  Iteration results are loop-carried through ``iter_args``,
    whose registers the allocator pins to match across iterations.
    """

    name = "rv_snitch.frep_outer"
    __slots__ = ()

    max_rep = operand_def(
        INT_REGISTER, doc="Register holding the repeat count minus one."
    )
    iter_args = var_operand_def(
        doc="Initial values of the loop-carried FP registers."
    )
    loop_results = var_result_def(
        FLOAT_REGISTER,
        doc="Final values of the loop-carried FP registers.",
    )
    body = region_def(doc="The repeated instruction sequence.")

    def __init__(
        self,
        max_rep: SSAValue,
        iter_args: Sequence[SSAValue] = (),
        body: Region | None = None,
    ):
        iter_args = list(iter_args)
        # Fresh unallocated types: the allocator unifies the loop-carried
        # group (including the inits — FREP has no way to move values in).
        fresh_types = [type(v.type)() for v in iter_args]
        if body is None:
            body = Region([Block(fresh_types)])
        super().__init__(
            operands=[max_rep] + iter_args,
            result_types=fresh_types,
            regions=[body],
        )

    @property
    def body_block(self) -> Block:
        """The repeated instruction sequence."""
        return self.body.block

    @property
    def body_iter_args(self) -> list[SSAValue]:
        """Body block args carrying the accumulator state."""
        return list(self.body_block.args)

    def verify_extra_(self) -> None:
        block = self.body.first_block
        if block is None:
            raise IRError("frep_outer: empty body")
        if len(block.args) != len(self.iter_args):
            raise IRError("frep_outer: body argument arity mismatch")
        for arg in block.args:
            if not isinstance(arg.type, FloatRegisterType):
                raise IRError(
                    "frep_outer: loop-carried values must be FP registers"
                )
        last = block.last_op
        if not isinstance(last, FrepYieldOp):
            raise IRError("frep_outer: body must end with frep_yield")
        if len(last.operands) != len(self.results):
            raise IRError("frep_outer: yield arity mismatch")
        op = block.first_op
        while op is not None:
            if not isinstance(op, (FrepYieldOp, ReadOp, WriteOp)):
                if not isinstance(op, RISCVInstruction):
                    raise IRError(
                        f"frep_outer: body op {op.name} is not an "
                        "instruction"
                    )
                for values in (op._operands, op.results):
                    for value in values:
                        if isinstance(value.type, IntRegisterType):
                            raise IRError(
                                "frep_outer: only FP and stream "
                                "instructions are allowed in the body "
                                f"(found {op.name})"
                            )
            op = op.next_op

    def body_instruction_count(self) -> int:
        """Number of assembly instructions inside the FREP body."""
        count = 0
        for op in self.body_block.ops:
            if isinstance(op, (FrepYieldOp, ReadOp, WriteOp)):
                continue
            if isinstance(op, RISCVInstruction):
                line = op.assembly_line()
                if line is not None:
                    count += 1
            else:
                raise IRError(
                    "frep_outer: body not fully lowered to instructions"
                )
        return count


@irdl_op_definition
class FrepYieldOp(Operation):
    """Terminator of a FREP body carrying accumulators to next iteration."""

    name = "rv_snitch.frep_yield"
    traits = frozenset([IsTerminator])
    __slots__ = ()

    values = var_operand_def(
        doc="The accumulator values carried to the next iteration."
    )


@irdl_op_definition
class ReadOp(Operation):
    """``rv_snitch.read from %stream``: pop one element into its SSR.

    The result is always typed with the stream's register (ft0/ft1/ft2);
    there is no assembly line — consuming instructions simply name the
    streaming register.
    """

    name = "rv_snitch.read"
    traits = frozenset([HasMemoryEffect])
    __slots__ = ()

    stream = operand_def(
        ParamAttr(ReadableStreamType, element_type=FLOAT_REGISTER),
        doc="The stream being read.",
    )
    result = result_def(
        FLOAT_REGISTER,
        default=ElementOf("stream"),
        doc="The value in the streaming register.",
    )


@irdl_op_definition
class WriteOp(Operation):
    """``rv_snitch.write %v to %stream``: push one element via its SSR."""

    name = "rv_snitch.write"
    traits = frozenset([HasMemoryEffect])
    __slots__ = ()

    value = operand_def(doc="The value pushed into the stream.")
    stream = operand_def(
        BaseAttr(WritableStreamType), doc="The stream written to."
    )


# ---------------------------------------------------------------------------
# Stream configuration instructions
# ---------------------------------------------------------------------------


@irdl_op_definition
class ScfgwiOp(RISCVInstruction):
    """``scfgwi rs1, imm``: write an SSR configuration word.

    The immediate encodes which data mover and which configuration word is
    written (see :mod:`repro.snitch.isa` for the encoding used here).
    """

    name = "rv_snitch.scfgwi"
    mnemonic = "scfgwi"
    traits = frozenset([HasMemoryEffect])
    __slots__ = ()

    value = operand_def(
        INT_REGISTER, doc="Register holding the configuration value."
    )
    address = attr_def(
        IntAttr, doc="Configuration word address (data mover + word index)."
    )

    def assembly_args(self) -> list[str]:
        return [reg_name(self.value), str(self.address)]


@irdl_op_definition
class CsrsiOp(RISCVInstruction):
    """``csrsi csr, imm``: set bits in a CSR (enables streaming)."""

    name = "rv_snitch.csrsi"
    mnemonic = "csrsi"
    traits = frozenset([HasMemoryEffect])
    __slots__ = ()

    csr = attr_def(StringAttr, doc="The CSR name.")
    immediate = attr_def(IntAttr, doc="The bit mask set.")

    def assembly_args(self) -> list[str]:
        return [self.csr, str(self.immediate)]


class CsrciOp(CsrsiOp):
    """``csrci csr, imm``: clear bits in a CSR (disables streaming)."""

    name = "rv_snitch.csrci"
    mnemonic = "csrci"
    __slots__ = ()


# ---------------------------------------------------------------------------
# Packed SIMD (pre-standard Snitch extension, paper Section 2.4)
# ---------------------------------------------------------------------------


class VFAddSOp(FRdRsRsInstruction):
    """``vfadd.s rd, rs1, rs2``: two f32 lane-wise additions."""

    name = "rv_snitch.vfadd.s"
    mnemonic = "vfadd.s"
    __slots__ = ()


class VFMulSOp(FRdRsRsInstruction):
    """``vfmul.s rd, rs1, rs2``: two f32 lane-wise multiplications."""

    name = "rv_snitch.vfmul.s"
    mnemonic = "vfmul.s"
    __slots__ = ()


class VFMaxSOp(FRdRsRsInstruction):
    """``vfmax.s rd, rs1, rs2``: two f32 lane-wise maxima."""

    name = "rv_snitch.vfmax.s"
    mnemonic = "vfmax.s"
    __slots__ = ()


@irdl_op_definition
class VFMacSOp(RISCVInstruction):
    """``vfmac.s rd, rs1, rs2``: lane-wise multiply-accumulate into rd.

    ``rd`` is both read and written, so the op takes the accumulator as an
    explicit operand and returns its new value.
    """

    name = "rv_snitch.vfmac.s"
    mnemonic = "vfmac.s"
    traits = frozenset([Pure])
    tied = (0, 0)
    __slots__ = ()

    accumulator = operand_def(
        FLOAT_REGISTER,
        doc="Accumulator input (allocated to the same register as rd).",
    )
    rs1 = operand_def(FLOAT_REGISTER, doc="First multiplicand vector.")
    rs2 = operand_def(FLOAT_REGISTER, doc="Second multiplicand vector.")
    rd = result_def(
        FLOAT_REGISTER,
        default=UNALLOCATED_FLOAT,
        doc="New accumulator value.",
    )

    def assembly_args(self) -> list[str]:
        return [
            reg_name(self.rd),
            reg_name(self.rs1),
            reg_name(self.rs2),
        ]


@irdl_op_definition
class VFSumSOp(RISCVInstruction):
    """``vfsum.s rd, rs1``: sum the two f32 lanes of rs1 into rd's lane 0.

    ``rd`` accumulates, so the old value is an explicit operand.
    """

    name = "rv_snitch.vfsum.s"
    mnemonic = "vfsum.s"
    traits = frozenset([Pure])
    tied = (0, 0)
    __slots__ = ()

    accumulator = operand_def(
        FLOAT_REGISTER, doc="Accumulator input (same register as rd)."
    )
    rs1 = operand_def(
        FLOAT_REGISTER, doc="The packed vector being reduced."
    )
    rd = result_def(
        FLOAT_REGISTER,
        default=UNALLOCATED_FLOAT,
        doc="New accumulator value.",
    )

    def assembly_args(self) -> list[str]:
        return [reg_name(self.rd), reg_name(self.rs1)]


@irdl_op_definition
class VFCpkaSSOp(RISCVInstruction):
    """``vfcpka.s.s rd, rs1, rs2``: pack two f32 scalars into one register."""

    name = "rv_snitch.vfcpka.s.s"
    mnemonic = "vfcpka.s.s"
    traits = frozenset([Pure])
    __slots__ = ()

    rs1 = operand_def(FLOAT_REGISTER, doc="Scalar for lane 0.")
    rs2 = operand_def(FLOAT_REGISTER, doc="Scalar for lane 1.")
    rd = result_def(
        FLOAT_REGISTER,
        default=UNALLOCATED_FLOAT,
        doc="The packed result.",
    )


RISCV_SNITCH = Dialect(
    "rv_snitch",
    ops=[
        FrepOuter,
        FrepYieldOp,
        ReadOp,
        WriteOp,
        ScfgwiOp,
        CsrsiOp,
        CsrciOp,
        VFAddSOp,
        VFMulSOp,
        VFMaxSOp,
        VFMacSOp,
        VFSumSOp,
        VFCpkaSSOp,
    ],
    doc="Snitch ISA extensions: FREP, stream interaction, packed SIMD "
    "(paper Sec. 3.2)",
)


__all__ = [
    "FrepOuter",
    "FrepYieldOp",
    "ReadOp",
    "WriteOp",
    "ScfgwiOp",
    "CsrsiOp",
    "CsrciOp",
    "VFAddSOp",
    "VFMulSOp",
    "VFMaxSOp",
    "VFMacSOp",
    "VFSumSOp",
    "VFCpkaSSOp",
    "RISCV_SNITCH",
]
