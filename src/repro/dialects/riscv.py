"""The ``rv`` dialect: the RISC-V base ISA as an SSA IR.

Assembly instructions become operations "where source and destination
registers correspond, respectively, to operands and results" (paper
Section 3.1, Figure 6).  Registers live in the *types*: a value of type
``!rv.reg<t0>`` is allocated to ``t0``; ``!rv.reg`` is not yet allocated.
Register allocation therefore simply refines types in place.

Every instruction knows how to print itself as one line of assembly via
:meth:`RISCVInstruction.assembly_line`; ops like ``rv.get_register`` that
exist only to bridge SSA and registers print nothing.

Instructions are *declarative*: each shape class (``RdRsRsInstruction``
and friends) declares its operands, result and attributes once via the
IRDL-style field descriptors, and the bulk of the ISA is then a table of
``(class, shape, mnemonic, doc)`` rows — adding an instruction is one
table line.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.attributes import IntAttr, StringAttr, TypeAttribute
from ..ir.core import IRError, Operation, SSAValue
from ..ir.irdl import (
    BaseAttr,
    Dialect,
    attr_def,
    irdl_op_definition,
    operand_def,
    result_def,
)
from ..ir.traits import HasMemoryEffect, Pure


# ---------------------------------------------------------------------------
# Register types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IntRegisterType(TypeAttribute):
    """An integer register; empty name means "not yet allocated"."""

    register: str = ""

    @property
    def is_allocated(self) -> bool:
        """Whether a concrete register has been assigned."""
        return bool(self.register)

    def __str__(self) -> str:
        if self.register:
            return f"!rv.reg<{self.register}>"
        return "!rv.reg"


@dataclass(frozen=True)
class FloatRegisterType(TypeAttribute):
    """A floating-point register; empty name means "not yet allocated"."""

    register: str = ""

    @property
    def is_allocated(self) -> bool:
        """Whether a concrete register has been assigned."""
        return bool(self.register)

    def __str__(self) -> str:
        if self.register:
            return f"!rv.freg<{self.register}>"
        return "!rv.freg"


RegisterType = IntRegisterType | FloatRegisterType

#: Shared "not yet allocated" type singletons: register types are
#: immutable value objects, and a fresh unallocated instance per
#: constructed op showed up in compile-time profiles.
UNALLOCATED_INT = IntRegisterType()
UNALLOCATED_FLOAT = FloatRegisterType()

#: Operand/result constraints shared by every instruction spec below.
INT_REGISTER = BaseAttr(IntRegisterType)
FLOAT_REGISTER = BaseAttr(FloatRegisterType)


def reg_name(value: SSAValue) -> str:
    """The concrete register holding ``value`` (must be allocated)."""
    vtype = value.type
    register = getattr(vtype, "register", None)
    if register is None:
        raise IRError(f"value is not register-typed: {vtype}")
    if not register:
        raise IRError("value has no register allocated yet")
    return register


# ---------------------------------------------------------------------------
# Instruction shape classes (one declarative spec per assembly shape)
# ---------------------------------------------------------------------------


class RISCVInstruction(Operation):
    """Base class of ops that correspond to one assembly instruction."""

    #: Assembly mnemonic; empty for non-printing ops.
    mnemonic = ""

    #: ``(operand index, result index)`` that must share one register
    #: (read-modify-write instructions like ``vfmac.s``), or ``None``.
    tied: tuple[int, int] | None = None

    __slots__ = ()

    def assembly_line(self) -> str | None:
        """Render this op as one line of assembly (None: prints nothing)."""
        parts = self.assembly_args()
        if parts:
            return f"{self.mnemonic} {', '.join(parts)}"
        return self.mnemonic

    def assembly_args(self) -> list[str]:
        """Operand/result fields of the instruction, in assembly order."""
        args = [reg_name(r) for r in self.results]
        args += [reg_name(v) for v in self.operands]
        return args


@irdl_op_definition
class RdRsRsInstruction(RISCVInstruction):
    """``op rd, rs1, rs2`` with integer result and operands."""

    traits = frozenset([Pure])
    __slots__ = ()

    rs1 = operand_def(INT_REGISTER, doc="First source register.")
    rs2 = operand_def(INT_REGISTER, doc="Second source register.")
    rd = result_def(
        INT_REGISTER, default=UNALLOCATED_INT, doc="Destination register."
    )


@irdl_op_definition
class FRdRsRsInstruction(RISCVInstruction):
    """``op rd, rs1, rs2`` over floating-point registers."""

    traits = frozenset([Pure])
    __slots__ = ()

    rs1 = operand_def(FLOAT_REGISTER, doc="First source register.")
    rs2 = operand_def(FLOAT_REGISTER, doc="Second source register.")
    rd = result_def(
        FLOAT_REGISTER,
        default=UNALLOCATED_FLOAT,
        doc="Destination register.",
    )


@irdl_op_definition
class RdRsImmInstruction(RISCVInstruction):
    """``op rd, rs1, imm``."""

    traits = frozenset([Pure])
    __slots__ = ()

    rs1 = operand_def(INT_REGISTER, doc="Source register.")
    immediate = attr_def(IntAttr, doc="The immediate operand.")
    rd = result_def(
        INT_REGISTER, default=UNALLOCATED_INT, doc="Destination register."
    )

    def assembly_args(self) -> list[str]:
        return [
            reg_name(self.rd),
            reg_name(self.rs1),
            str(self.immediate),
        ]


@irdl_op_definition
class _FLoadOp(RISCVInstruction):
    """Shared shape of FP loads ``op rd, imm(rs1)``."""

    traits = frozenset([HasMemoryEffect])
    __slots__ = ()

    base = operand_def(INT_REGISTER, doc="Base address register.")
    immediate = attr_def(IntAttr, default=0, doc="Byte offset.")
    rd = result_def(
        FLOAT_REGISTER,
        default=UNALLOCATED_FLOAT,
        doc="Destination FP register.",
    )

    def assembly_args(self) -> list[str]:
        return [
            reg_name(self.rd),
            f"{self.immediate}({reg_name(self.base)})",
        ]


@irdl_op_definition
class _FStoreOp(RISCVInstruction):
    """Shared shape of FP stores ``op rs2, imm(rs1)``."""

    traits = frozenset([HasMemoryEffect])
    __slots__ = ()

    value = operand_def(
        FLOAT_REGISTER, doc="FP register stored to memory."
    )
    base = operand_def(INT_REGISTER, doc="Base address register.")
    immediate = attr_def(IntAttr, default=0, doc="Byte offset.")

    def assembly_args(self) -> list[str]:
        return [
            reg_name(self.value),
            f"{self.immediate}({reg_name(self.base)})",
        ]


@irdl_op_definition
class _FMAInstruction(RISCVInstruction):
    """Shared shape of fused multiply-add ``op rd, rs1, rs2, rs3``."""

    traits = frozenset([Pure])
    __slots__ = ()

    rs1 = operand_def(FLOAT_REGISTER, doc="Multiplicand.")
    rs2 = operand_def(FLOAT_REGISTER, doc="Multiplier.")
    rs3 = operand_def(FLOAT_REGISTER, doc="Addend.")
    rd = result_def(
        FLOAT_REGISTER,
        default=UNALLOCATED_FLOAT,
        doc="Destination register.",
    )


# ---------------------------------------------------------------------------
# Register materialisation & moves
# ---------------------------------------------------------------------------


@irdl_op_definition
class GetRegisterOp(RISCVInstruction):
    """Creates an SSA value naming a specific register; prints nothing.

    "These exist to create SSA values in the IR, bridging SSA semantics
    and our representation of registers in types" (paper Figure 6, item 2).
    """

    name = "rv.get_register"
    traits = frozenset([Pure])
    __slots__ = ()

    result = result_def(doc="The register-typed value.")

    def assembly_line(self) -> str | None:
        return None


@irdl_op_definition
class LiOp(RISCVInstruction):
    """``li rd, imm``: load an immediate."""

    name = "rv.li"
    mnemonic = "li"
    traits = frozenset([Pure])
    __slots__ = ()

    immediate = attr_def(IntAttr, doc="The immediate loaded.")
    rd = result_def(
        INT_REGISTER, default=UNALLOCATED_INT, doc="Destination register."
    )

    def assembly_args(self) -> list[str]:
        return [reg_name(self.rd), str(self.immediate)]


@irdl_op_definition
class MVOp(RISCVInstruction):
    """``mv rd, rs``: integer register copy."""

    name = "rv.mv"
    mnemonic = "mv"
    traits = frozenset([Pure])
    __slots__ = ()

    rs = operand_def(INT_REGISTER, doc="Source register.")
    rd = result_def(
        INT_REGISTER, default=UNALLOCATED_INT, doc="Destination register."
    )


@irdl_op_definition
class FMVOp(RISCVInstruction):
    """``fmv.d rd, rs``: floating-point register copy."""

    name = "rv.fmv.d"
    mnemonic = "fmv.d"
    traits = frozenset([Pure])
    __slots__ = ()

    rs = operand_def(FLOAT_REGISTER, doc="Source register.")
    rd = result_def(
        FLOAT_REGISTER,
        default=UNALLOCATED_FLOAT,
        doc="Destination register.",
    )


@irdl_op_definition
class FCvtDWOp(RISCVInstruction):
    """``fcvt.d.w rd, rs``: convert integer to double."""

    name = "rv.fcvt.d.w"
    mnemonic = "fcvt.d.w"
    traits = frozenset([Pure])
    __slots__ = ()

    rs = operand_def(INT_REGISTER, doc="Source integer register.")
    rd = result_def(
        FLOAT_REGISTER,
        default=UNALLOCATED_FLOAT,
        doc="Destination FP register.",
    )


# ---------------------------------------------------------------------------
# Integer memory access
# ---------------------------------------------------------------------------


@irdl_op_definition
class LwOp(RISCVInstruction):
    """``lw rd, imm(rs1)``: integer load."""

    name = "rv.lw"
    mnemonic = "lw"
    traits = frozenset([HasMemoryEffect])
    __slots__ = ()

    base = operand_def(INT_REGISTER, doc="Base address register.")
    immediate = attr_def(IntAttr, default=0, doc="Byte offset.")
    rd = result_def(
        INT_REGISTER, default=UNALLOCATED_INT, doc="Destination register."
    )

    def assembly_args(self) -> list[str]:
        return [
            reg_name(self.rd),
            f"{self.immediate}({reg_name(self.base)})",
        ]


@irdl_op_definition
class SwOp(RISCVInstruction):
    """``sw rs2, imm(rs1)``: integer store."""

    name = "rv.sw"
    mnemonic = "sw"
    traits = frozenset([HasMemoryEffect])
    __slots__ = ()

    value = operand_def(INT_REGISTER, doc="Register stored to memory.")
    base = operand_def(INT_REGISTER, doc="Base address register.")
    immediate = attr_def(IntAttr, default=0, doc="Byte offset.")

    def assembly_args(self) -> list[str]:
        return [
            reg_name(self.value),
            f"{self.immediate}({reg_name(self.base)})",
        ]


@irdl_op_definition
class CommentOp(RISCVInstruction):
    """A comment line in the emitted assembly (debugging aid)."""

    name = "rv.comment"
    __slots__ = ()

    text = attr_def(StringAttr, doc="The comment text.")

    def assembly_line(self) -> str | None:
        return f"# {self.text}"


# ---------------------------------------------------------------------------
# The instruction table
# ---------------------------------------------------------------------------


def _instruction(class_name: str, shape: type, mnemonic: str, doc: str):
    """One table row: a leaf instruction deriving everything from its
    shape class.  The op name is always ``rv.<mnemonic>``."""
    return type(
        class_name,
        (shape,),
        {
            "name": f"rv.{mnemonic}",
            "mnemonic": mnemonic,
            "__doc__": doc,
            "__slots__": (),
            "__module__": __name__,
        },
    )


# Each assignment is one assembly instruction; the whole declarative
# spec (operands, result, verification, constructor) comes from the
# shape class.  Adding an instruction is one line here plus its entry
# in the RISCV dialect below.

# integer arithmetic
AddOp = _instruction(
    "AddOp", RdRsRsInstruction, "add", "``add rd, rs1, rs2``."
)
SubOp = _instruction(
    "SubOp", RdRsRsInstruction, "sub", "``sub rd, rs1, rs2``."
)
MulOp = _instruction(
    "MulOp", RdRsRsInstruction, "mul",
    "``mul rd, rs1, rs2`` (M extension; shared mul/div unit on Snitch).",
)
AddiOp = _instruction(
    "AddiOp", RdRsImmInstruction, "addi", "``addi rd, rs1, imm``."
)
SlliOp = _instruction(
    "SlliOp", RdRsImmInstruction, "slli",
    "``slli rd, rs1, imm``: shift left logical immediate.",
)
# floating-point memory access
FLdOp = _instruction(
    "FLdOp", _FLoadOp, "fld", "``fld rd, imm(rs1)``: load a double."
)
FLwOp = _instruction(
    "FLwOp", _FLoadOp, "flw", "``flw rd, imm(rs1)``: load a float."
)
FSdOp = _instruction(
    "FSdOp", _FStoreOp, "fsd", "``fsd rs2, imm(rs1)``: store a double."
)
FSwOp = _instruction(
    "FSwOp", _FStoreOp, "fsw", "``fsw rs2, imm(rs1)``: store a float."
)
# floating-point arithmetic
FAddDOp = _instruction(
    "FAddDOp", FRdRsRsInstruction, "fadd.d", "``fadd.d rd, rs1, rs2``."
)
FSubDOp = _instruction(
    "FSubDOp", FRdRsRsInstruction, "fsub.d", "``fsub.d rd, rs1, rs2``."
)
FMulDOp = _instruction(
    "FMulDOp", FRdRsRsInstruction, "fmul.d", "``fmul.d rd, rs1, rs2``."
)
FDivDOp = _instruction(
    "FDivDOp", FRdRsRsInstruction, "fdiv.d", "``fdiv.d rd, rs1, rs2``."
)
FMaxDOp = _instruction(
    "FMaxDOp", FRdRsRsInstruction, "fmax.d", "``fmax.d rd, rs1, rs2``."
)
FMinDOp = _instruction(
    "FMinDOp", FRdRsRsInstruction, "fmin.d", "``fmin.d rd, rs1, rs2``."
)
FAddSOp = _instruction(
    "FAddSOp", FRdRsRsInstruction, "fadd.s", "``fadd.s rd, rs1, rs2``."
)
FSubSOp = _instruction(
    "FSubSOp", FRdRsRsInstruction, "fsub.s", "``fsub.s rd, rs1, rs2``."
)
FMulSOp = _instruction(
    "FMulSOp", FRdRsRsInstruction, "fmul.s", "``fmul.s rd, rs1, rs2``."
)
FMaxSOp = _instruction(
    "FMaxSOp", FRdRsRsInstruction, "fmax.s", "``fmax.s rd, rs1, rs2``."
)
FMinSOp = _instruction(
    "FMinSOp", FRdRsRsInstruction, "fmin.s", "``fmin.s rd, rs1, rs2``."
)
FMAddDOp = _instruction(
    "FMAddDOp", _FMAInstruction, "fmadd.d",
    "``fmadd.d rd, rs1, rs2, rs3`` = rs1*rs2 + rs3 (2 FLOPs).",
)
FMAddSOp = _instruction(
    "FMAddSOp", _FMAInstruction, "fmadd.s",
    "``fmadd.s rd, rs1, rs2, rs3`` = rs1*rs2 + rs3 (2 FLOPs).",
)


RISCV = Dialect(
    "rv",
    ops=[
        GetRegisterOp,
        LiOp,
        MVOp,
        FMVOp,
        FCvtDWOp,
        LwOp,
        SwOp,
        CommentOp,
        AddOp,
        SubOp,
        MulOp,
        AddiOp,
        SlliOp,
        FLdOp,
        FLwOp,
        FSdOp,
        FSwOp,
        FAddDOp,
        FSubDOp,
        FMulDOp,
        FDivDOp,
        FMaxDOp,
        FMinDOp,
        FAddSOp,
        FSubSOp,
        FMulSOp,
        FMaxSOp,
        FMinSOp,
        FMAddDOp,
        FMAddSOp,
    ],
    attrs=[IntRegisterType, FloatRegisterType],
    doc="the RISC-V base ISA as SSA operations (paper Sec. 3.1)",
)


__all__ = [
    "IntRegisterType",
    "FloatRegisterType",
    "RegisterType",
    "INT_REGISTER",
    "FLOAT_REGISTER",
    "UNALLOCATED_INT",
    "UNALLOCATED_FLOAT",
    "reg_name",
    "RISCVInstruction",
    "RdRsRsInstruction",
    "FRdRsRsInstruction",
    "RdRsImmInstruction",
    "GetRegisterOp",
    "LiOp",
    "MVOp",
    "FMVOp",
    "FCvtDWOp",
    "AddOp",
    "SubOp",
    "MulOp",
    "AddiOp",
    "SlliOp",
    "LwOp",
    "SwOp",
    "FLdOp",
    "FLwOp",
    "FSdOp",
    "FSwOp",
    "FAddDOp",
    "FSubDOp",
    "FMulDOp",
    "FDivDOp",
    "FMaxDOp",
    "FMinDOp",
    "FAddSOp",
    "FSubSOp",
    "FMulSOp",
    "FMaxSOp",
    "FMinSOp",
    "FMAddDOp",
    "FMAddSOp",
    "CommentOp",
    "RISCV",
]
