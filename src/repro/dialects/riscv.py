"""The ``rv`` dialect: the RISC-V base ISA as an SSA IR.

Assembly instructions become operations "where source and destination
registers correspond, respectively, to operands and results" (paper
Section 3.1, Figure 6).  Registers live in the *types*: a value of type
``!rv.reg<t0>`` is allocated to ``t0``; ``!rv.reg`` is not yet allocated.
Register allocation therefore simply refines types in place.

Every instruction knows how to print itself as one line of assembly via
:meth:`RISCVInstruction.assembly_line`; ops like ``rv.get_register`` that
exist only to bridge SSA and registers print nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..ir.attributes import IntAttr, StringAttr, TypeAttribute
from ..ir.core import IRError, Operation, SSAValue
from ..ir.traits import HasMemoryEffect, Pure


# ---------------------------------------------------------------------------
# Register types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IntRegisterType(TypeAttribute):
    """An integer register; empty name means "not yet allocated"."""

    register: str = ""

    @property
    def is_allocated(self) -> bool:
        """Whether a concrete register has been assigned."""
        return bool(self.register)

    def __str__(self) -> str:
        if self.register:
            return f"!rv.reg<{self.register}>"
        return "!rv.reg"


@dataclass(frozen=True)
class FloatRegisterType(TypeAttribute):
    """A floating-point register; empty name means "not yet allocated"."""

    register: str = ""

    @property
    def is_allocated(self) -> bool:
        """Whether a concrete register has been assigned."""
        return bool(self.register)

    def __str__(self) -> str:
        if self.register:
            return f"!rv.freg<{self.register}>"
        return "!rv.freg"


RegisterType = IntRegisterType | FloatRegisterType

#: Shared "not yet allocated" type singletons: register types are
#: immutable value objects, and a fresh unallocated instance per
#: constructed op showed up in compile-time profiles.
UNALLOCATED_INT = IntRegisterType()
UNALLOCATED_FLOAT = FloatRegisterType()


def reg_name(value: SSAValue) -> str:
    """The concrete register holding ``value`` (must be allocated)."""
    vtype = value.type
    register = getattr(vtype, "register", None)
    if register is None:
        raise IRError(f"value is not register-typed: {vtype}")
    if not register:
        raise IRError("value has no register allocated yet")
    return register


# ---------------------------------------------------------------------------
# Instruction base classes
# ---------------------------------------------------------------------------


class RISCVInstruction(Operation):
    """Base class of ops that correspond to one assembly instruction."""

    #: Assembly mnemonic; empty for non-printing ops.
    mnemonic = ""

    #: ``(operand index, result index)`` that must share one register
    #: (read-modify-write instructions like ``vfmac.s``), or ``None``.
    tied: tuple[int, int] | None = None

    def assembly_line(self) -> str | None:
        """Render this op as one line of assembly (None: prints nothing)."""
        parts = self.assembly_args()
        if parts:
            return f"{self.mnemonic} {', '.join(parts)}"
        return self.mnemonic

    def assembly_args(self) -> list[str]:
        """Operand/result fields of the instruction, in assembly order."""
        args = [reg_name(r) for r in self.results]
        args += [reg_name(v) for v in self.operands]
        return args


class RdRsRsInstruction(RISCVInstruction):
    """``op rd, rs1, rs2`` with integer result and operands."""

    traits = frozenset([Pure])

    def __init__(
        self,
        rs1: SSAValue,
        rs2: SSAValue,
        result_type: IntRegisterType | None = None,
    ):
        super().__init__(
            operands=[rs1, rs2],
            result_types=[result_type or UNALLOCATED_INT],
        )

    @property
    def rs1(self) -> SSAValue:
        """First source register."""
        return self.operands[0]

    @property
    def rs2(self) -> SSAValue:
        """Second source register."""
        return self.operands[1]

    @property
    def rd(self) -> SSAValue:
        """Destination register."""
        return self.results[0]


class FRdRsRsInstruction(RISCVInstruction):
    """``op rd, rs1, rs2`` over floating-point registers."""

    traits = frozenset([Pure])

    def __init__(
        self,
        rs1: SSAValue,
        rs2: SSAValue,
        result_type: FloatRegisterType | None = None,
    ):
        super().__init__(
            operands=[rs1, rs2],
            result_types=[result_type or UNALLOCATED_FLOAT],
        )

    @property
    def rs1(self) -> SSAValue:
        """First source register."""
        return self.operands[0]

    @property
    def rs2(self) -> SSAValue:
        """Second source register."""
        return self.operands[1]

    @property
    def rd(self) -> SSAValue:
        """Destination register."""
        return self.results[0]


class RdRsImmInstruction(RISCVInstruction):
    """``op rd, rs1, imm``."""

    traits = frozenset([Pure])

    def __init__(
        self,
        rs1: SSAValue,
        immediate: int,
        result_type: IntRegisterType | None = None,
    ):
        super().__init__(
            operands=[rs1],
            result_types=[result_type or UNALLOCATED_INT],
            attributes={"immediate": IntAttr(immediate)},
        )

    @property
    def rs1(self) -> SSAValue:
        """Source register."""
        return self.operands[0]

    @property
    def rd(self) -> SSAValue:
        """Destination register."""
        return self.results[0]

    @property
    def immediate(self) -> int:
        """The immediate operand."""
        attr = self.attributes["immediate"]
        assert isinstance(attr, IntAttr)
        return attr.value

    def assembly_args(self) -> list[str]:
        return [
            reg_name(self.rd),
            reg_name(self.rs1),
            str(self.immediate),
        ]


# ---------------------------------------------------------------------------
# Register materialisation & moves
# ---------------------------------------------------------------------------


class GetRegisterOp(RISCVInstruction):
    """Creates an SSA value naming a specific register; prints nothing.

    "These exist to create SSA values in the IR, bridging SSA semantics
    and our representation of registers in types" (paper Figure 6, item 2).
    """

    name = "rv.get_register"
    traits = frozenset([Pure])

    def __init__(self, register_type: RegisterType):
        super().__init__(result_types=[register_type])

    @property
    def result(self) -> SSAValue:
        """The register-typed value."""
        return self.results[0]

    def assembly_line(self) -> str | None:
        return None


class LiOp(RISCVInstruction):
    """``li rd, imm``: load an immediate."""

    name = "rv.li"
    traits = frozenset([Pure])

    def __init__(
        self,
        immediate: int,
        result_type: IntRegisterType | None = None,
    ):
        super().__init__(
            result_types=[result_type or UNALLOCATED_INT],
            attributes={"immediate": IntAttr(immediate)},
        )

    mnemonic = "li"

    @property
    def rd(self) -> SSAValue:
        """Destination register."""
        return self.results[0]

    @property
    def immediate(self) -> int:
        """The immediate loaded."""
        attr = self.attributes["immediate"]
        assert isinstance(attr, IntAttr)
        return attr.value

    def assembly_args(self) -> list[str]:
        return [reg_name(self.rd), str(self.immediate)]


class MVOp(RISCVInstruction):
    """``mv rd, rs``: integer register copy."""

    name = "rv.mv"
    mnemonic = "mv"
    traits = frozenset([Pure])

    def __init__(
        self, rs: SSAValue, result_type: IntRegisterType | None = None
    ):
        super().__init__(
            operands=[rs],
            result_types=[result_type or UNALLOCATED_INT],
        )

    @property
    def rs(self) -> SSAValue:
        """Source register."""
        return self.operands[0]

    @property
    def rd(self) -> SSAValue:
        """Destination register."""
        return self.results[0]


class FMVOp(RISCVInstruction):
    """``fmv.d rd, rs``: floating-point register copy."""

    name = "rv.fmv.d"
    mnemonic = "fmv.d"
    traits = frozenset([Pure])

    def __init__(
        self, rs: SSAValue, result_type: FloatRegisterType | None = None
    ):
        super().__init__(
            operands=[rs],
            result_types=[result_type or UNALLOCATED_FLOAT],
        )

    @property
    def rs(self) -> SSAValue:
        """Source register."""
        return self.operands[0]

    @property
    def rd(self) -> SSAValue:
        """Destination register."""
        return self.results[0]


class FCvtDWOp(RISCVInstruction):
    """``fcvt.d.w rd, rs``: convert integer to double."""

    name = "rv.fcvt.d.w"
    mnemonic = "fcvt.d.w"
    traits = frozenset([Pure])

    def __init__(
        self, rs: SSAValue, result_type: FloatRegisterType | None = None
    ):
        super().__init__(
            operands=[rs],
            result_types=[result_type or UNALLOCATED_FLOAT],
        )


# ---------------------------------------------------------------------------
# Integer arithmetic
# ---------------------------------------------------------------------------


class AddOp(RdRsRsInstruction):
    """``add rd, rs1, rs2``."""

    name = "rv.add"
    mnemonic = "add"


class SubOp(RdRsRsInstruction):
    """``sub rd, rs1, rs2``."""

    name = "rv.sub"
    mnemonic = "sub"


class MulOp(RdRsRsInstruction):
    """``mul rd, rs1, rs2`` (M extension; shared mul/div unit on Snitch)."""

    name = "rv.mul"
    mnemonic = "mul"


class AddiOp(RdRsImmInstruction):
    """``addi rd, rs1, imm``."""

    name = "rv.addi"
    mnemonic = "addi"


class SlliOp(RdRsImmInstruction):
    """``slli rd, rs1, imm``: shift left logical immediate."""

    name = "rv.slli"
    mnemonic = "slli"


# ---------------------------------------------------------------------------
# Memory access
# ---------------------------------------------------------------------------


class LwOp(RISCVInstruction):
    """``lw rd, imm(rs1)``: integer load."""

    name = "rv.lw"
    mnemonic = "lw"
    traits = frozenset([HasMemoryEffect])

    def __init__(
        self,
        base: SSAValue,
        immediate: int = 0,
        result_type: IntRegisterType | None = None,
    ):
        super().__init__(
            operands=[base],
            result_types=[result_type or UNALLOCATED_INT],
            attributes={"immediate": IntAttr(immediate)},
        )

    @property
    def base(self) -> SSAValue:
        """Base address register."""
        return self.operands[0]

    @property
    def rd(self) -> SSAValue:
        """Destination register."""
        return self.results[0]

    @property
    def immediate(self) -> int:
        """Byte offset."""
        attr = self.attributes["immediate"]
        assert isinstance(attr, IntAttr)
        return attr.value

    def assembly_args(self) -> list[str]:
        return [
            reg_name(self.rd),
            f"{self.immediate}({reg_name(self.base)})",
        ]


class SwOp(RISCVInstruction):
    """``sw rs2, imm(rs1)``: integer store."""

    name = "rv.sw"
    mnemonic = "sw"
    traits = frozenset([HasMemoryEffect])

    def __init__(self, value: SSAValue, base: SSAValue, immediate: int = 0):
        super().__init__(
            operands=[value, base],
            attributes={"immediate": IntAttr(immediate)},
        )

    @property
    def value(self) -> SSAValue:
        """Register stored to memory."""
        return self.operands[0]

    @property
    def base(self) -> SSAValue:
        """Base address register."""
        return self.operands[1]

    @property
    def immediate(self) -> int:
        """Byte offset."""
        attr = self.attributes["immediate"]
        assert isinstance(attr, IntAttr)
        return attr.value

    def assembly_args(self) -> list[str]:
        return [
            reg_name(self.value),
            f"{self.immediate}({reg_name(self.base)})",
        ]


class _FLoadOp(RISCVInstruction):
    """Shared shape of FP loads ``op rd, imm(rs1)``."""

    traits = frozenset([HasMemoryEffect])

    def __init__(
        self,
        base: SSAValue,
        immediate: int = 0,
        result_type: FloatRegisterType | None = None,
    ):
        super().__init__(
            operands=[base],
            result_types=[result_type or UNALLOCATED_FLOAT],
            attributes={"immediate": IntAttr(immediate)},
        )

    @property
    def base(self) -> SSAValue:
        """Base address register."""
        return self.operands[0]

    @property
    def rd(self) -> SSAValue:
        """Destination FP register."""
        return self.results[0]

    @property
    def immediate(self) -> int:
        """Byte offset."""
        attr = self.attributes["immediate"]
        assert isinstance(attr, IntAttr)
        return attr.value

    def assembly_args(self) -> list[str]:
        return [
            reg_name(self.rd),
            f"{self.immediate}({reg_name(self.base)})",
        ]


class _FStoreOp(RISCVInstruction):
    """Shared shape of FP stores ``op rs2, imm(rs1)``."""

    traits = frozenset([HasMemoryEffect])

    def __init__(self, value: SSAValue, base: SSAValue, immediate: int = 0):
        super().__init__(
            operands=[value, base],
            attributes={"immediate": IntAttr(immediate)},
        )

    @property
    def value(self) -> SSAValue:
        """FP register stored to memory."""
        return self.operands[0]

    @property
    def base(self) -> SSAValue:
        """Base address register."""
        return self.operands[1]

    @property
    def immediate(self) -> int:
        """Byte offset."""
        attr = self.attributes["immediate"]
        assert isinstance(attr, IntAttr)
        return attr.value

    def assembly_args(self) -> list[str]:
        return [
            reg_name(self.value),
            f"{self.immediate}({reg_name(self.base)})",
        ]


class FLdOp(_FLoadOp):
    """``fld rd, imm(rs1)``: load a double."""

    name = "rv.fld"
    mnemonic = "fld"


class FLwOp(_FLoadOp):
    """``flw rd, imm(rs1)``: load a float."""

    name = "rv.flw"
    mnemonic = "flw"


class FSdOp(_FStoreOp):
    """``fsd rs2, imm(rs1)``: store a double."""

    name = "rv.fsd"
    mnemonic = "fsd"


class FSwOp(_FStoreOp):
    """``fsw rs2, imm(rs1)``: store a float."""

    name = "rv.fsw"
    mnemonic = "fsw"


# ---------------------------------------------------------------------------
# Floating-point arithmetic
# ---------------------------------------------------------------------------


class FAddDOp(FRdRsRsInstruction):
    """``fadd.d rd, rs1, rs2``."""

    name = "rv.fadd.d"
    mnemonic = "fadd.d"


class FSubDOp(FRdRsRsInstruction):
    """``fsub.d rd, rs1, rs2``."""

    name = "rv.fsub.d"
    mnemonic = "fsub.d"


class FMulDOp(FRdRsRsInstruction):
    """``fmul.d rd, rs1, rs2``."""

    name = "rv.fmul.d"
    mnemonic = "fmul.d"


class FDivDOp(FRdRsRsInstruction):
    """``fdiv.d rd, rs1, rs2``."""

    name = "rv.fdiv.d"
    mnemonic = "fdiv.d"


class FMaxDOp(FRdRsRsInstruction):
    """``fmax.d rd, rs1, rs2``."""

    name = "rv.fmax.d"
    mnemonic = "fmax.d"


class FMinDOp(FRdRsRsInstruction):
    """``fmin.d rd, rs1, rs2``."""

    name = "rv.fmin.d"
    mnemonic = "fmin.d"


class FAddSOp(FRdRsRsInstruction):
    """``fadd.s rd, rs1, rs2``."""

    name = "rv.fadd.s"
    mnemonic = "fadd.s"


class FSubSOp(FRdRsRsInstruction):
    """``fsub.s rd, rs1, rs2``."""

    name = "rv.fsub.s"
    mnemonic = "fsub.s"


class FMulSOp(FRdRsRsInstruction):
    """``fmul.s rd, rs1, rs2``."""

    name = "rv.fmul.s"
    mnemonic = "fmul.s"


class FMaxSOp(FRdRsRsInstruction):
    """``fmax.s rd, rs1, rs2``."""

    name = "rv.fmax.s"
    mnemonic = "fmax.s"


class FMinSOp(FRdRsRsInstruction):
    """``fmin.s rd, rs1, rs2``."""

    name = "rv.fmin.s"
    mnemonic = "fmin.s"


class _FMAInstruction(RISCVInstruction):
    """Shared shape of fused multiply-add ``op rd, rs1, rs2, rs3``."""

    traits = frozenset([Pure])

    def __init__(
        self,
        rs1: SSAValue,
        rs2: SSAValue,
        rs3: SSAValue,
        result_type: FloatRegisterType | None = None,
    ):
        super().__init__(
            operands=[rs1, rs2, rs3],
            result_types=[result_type or UNALLOCATED_FLOAT],
        )

    @property
    def rs1(self) -> SSAValue:
        """Multiplicand."""
        return self.operands[0]

    @property
    def rs2(self) -> SSAValue:
        """Multiplier."""
        return self.operands[1]

    @property
    def rs3(self) -> SSAValue:
        """Addend."""
        return self.operands[2]

    @property
    def rd(self) -> SSAValue:
        """Destination register."""
        return self.results[0]


class FMAddDOp(_FMAInstruction):
    """``fmadd.d rd, rs1, rs2, rs3`` = rs1*rs2 + rs3 (2 FLOPs)."""

    name = "rv.fmadd.d"
    mnemonic = "fmadd.d"


class FMAddSOp(_FMAInstruction):
    """``fmadd.s rd, rs1, rs2, rs3`` = rs1*rs2 + rs3 (2 FLOPs)."""

    name = "rv.fmadd.s"
    mnemonic = "fmadd.s"


class CommentOp(RISCVInstruction):
    """A comment line in the emitted assembly (debugging aid)."""

    name = "rv.comment"

    def __init__(self, text: str):
        super().__init__(attributes={"text": StringAttr(text)})

    @property
    def text(self) -> str:
        """The comment text."""
        attr = self.attributes["text"]
        assert isinstance(attr, StringAttr)
        return attr.value

    def assembly_line(self) -> str | None:
        return f"# {self.text}"


__all__ = [
    "IntRegisterType",
    "FloatRegisterType",
    "RegisterType",
    "reg_name",
    "RISCVInstruction",
    "RdRsRsInstruction",
    "FRdRsRsInstruction",
    "RdRsImmInstruction",
    "GetRegisterOp",
    "LiOp",
    "MVOp",
    "FMVOp",
    "FCvtDWOp",
    "AddOp",
    "SubOp",
    "MulOp",
    "AddiOp",
    "SlliOp",
    "LwOp",
    "SwOp",
    "FLdOp",
    "FLwOp",
    "FSdOp",
    "FSwOp",
    "FAddDOp",
    "FSubDOp",
    "FMulDOp",
    "FDivDOp",
    "FMaxDOp",
    "FMinDOp",
    "FAddSOp",
    "FSubSOp",
    "FMulSOp",
    "FMaxSOp",
    "FMinSOp",
    "FMAddDOp",
    "FMAddSOp",
    "CommentOp",
]
