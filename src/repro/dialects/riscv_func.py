"""The ``rv_func`` dialect: ABI-aware functions.

``rv_func.func`` "encodes the application binary interface (ABI)
constraint of requiring function arguments and results to be passed in A
registers" (paper Section 3.1): entry block arguments are pre-allocated to
``a0``, ``a1``, ... / ``fa0``, ... and the register allocator treats them
as reserved for the whole function (Section 4.3).
"""

from __future__ import annotations

from typing import Sequence

from ..backend.registers import FLOAT_ARG_REGISTERS, INT_ARG_REGISTERS
from ..ir.attributes import StringAttr
from ..ir.core import Block, IRError, Operation, Region, SSAValue
from ..ir.irdl import (
    Dialect,
    attr_def,
    irdl_op_definition,
    region_def,
)
from ..ir.traits import IsolatedFromAbove, IsTerminator
from .riscv import FloatRegisterType, IntRegisterType, RISCVInstruction


def abi_arg_types(
    kinds: Sequence[str],
) -> list[IntRegisterType | FloatRegisterType]:
    """Register types for function arguments.

    ``kinds`` is a sequence of ``"int"`` / ``"float"``; integer and FP
    arguments are numbered independently, per the RISC-V calling
    convention.
    """
    types: list[IntRegisterType | FloatRegisterType] = []
    next_int = 0
    next_float = 0
    for kind in kinds:
        if kind == "int":
            types.append(IntRegisterType(INT_ARG_REGISTERS[next_int]))
            next_int += 1
        elif kind == "float":
            types.append(
                FloatRegisterType(FLOAT_ARG_REGISTERS[next_float])
            )
            next_float += 1
        else:
            raise IRError(f"unknown ABI argument kind {kind!r}")
    return types


@irdl_op_definition
class FuncOp(Operation):
    """A function whose arguments live in ABI argument registers."""

    name = "rv_func.func"
    traits = frozenset([IsolatedFromAbove])
    __slots__ = ()

    sym_name = attr_def(StringAttr, doc="The function's symbol name.")
    body = region_def(doc="The function body.")

    def __init__(
        self,
        sym_name: str,
        arg_types: Sequence[IntRegisterType | FloatRegisterType],
        region: Region | None = None,
    ):
        if region is None:
            region = Region([Block(list(arg_types))])
        super().__init__(
            attributes={"sym_name": StringAttr(sym_name)},
            regions=[region],
        )

    @property
    def entry_block(self) -> Block:
        """The function body's entry block."""
        block = self.body.first_block
        if block is None:
            raise IRError("rv_func.func: missing body")
        return block

    @property
    def args(self) -> list[SSAValue]:
        """Function arguments (pre-allocated to ABI registers)."""
        return list(self.entry_block.args)

    def verify_extra_(self) -> None:
        for arg in self.entry_block.args:
            if not isinstance(
                arg.type, (IntRegisterType, FloatRegisterType)
            ):
                raise IRError(
                    "rv_func.func: arguments must be register-typed"
                )
            if not arg.type.is_allocated:
                raise IRError(
                    "rv_func.func: arguments must be pre-allocated to ABI "
                    "registers"
                )


@irdl_op_definition
class ReturnOp(RISCVInstruction):
    """``ret``: return from the function."""

    name = "rv_func.return"
    mnemonic = "ret"
    traits = frozenset([IsTerminator])
    __slots__ = ()


RISCV_FUNC = Dialect(
    "rv_func",
    ops=[FuncOp, ReturnOp],
    doc="ABI-aware functions (arguments in a-registers)",
)


__all__ = ["FuncOp", "ReturnOp", "abi_arg_types", "RISCV_FUNC"]
