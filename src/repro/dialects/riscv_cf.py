"""The ``rv_cf`` dialect: unstructured control flow.

These ops appear only at the very bottom of the pipeline, after
``rv_scf.for`` loops are lowered to labels and conditional branches
(register allocation happens *before* this, on the structured form —
that ordering is the point of paper Section 3.3).
"""

from __future__ import annotations

from ..ir.attributes import StringAttr
from ..ir.core import Operation, SSAValue
from ..ir.traits import IsTerminator
from .riscv import RISCVInstruction, reg_name


class LabelOp(RISCVInstruction):
    """An assembly label definition (``name:``)."""

    name = "rv_cf.label"

    def __init__(self, label: str):
        super().__init__(attributes={"label": StringAttr(label)})

    @property
    def label(self) -> str:
        """The label text."""
        attr = self.attributes["label"]
        assert isinstance(attr, StringAttr)
        return attr.value

    def assembly_line(self) -> str | None:
        return f"{self.label}:"


class _CondBranchOp(RISCVInstruction):
    """Shared shape of two-register conditional branches."""

    def __init__(self, rs1: SSAValue, rs2: SSAValue, target: str):
        super().__init__(
            operands=[rs1, rs2],
            attributes={"target": StringAttr(target)},
        )

    @property
    def rs1(self) -> SSAValue:
        """First compared register."""
        return self.operands[0]

    @property
    def rs2(self) -> SSAValue:
        """Second compared register."""
        return self.operands[1]

    @property
    def target(self) -> str:
        """The branch target label."""
        attr = self.attributes["target"]
        assert isinstance(attr, StringAttr)
        return attr.value

    def assembly_args(self) -> list[str]:
        return [reg_name(self.rs1), reg_name(self.rs2), self.target]


class BltOp(_CondBranchOp):
    """``blt rs1, rs2, target``: branch if less-than (signed)."""

    name = "rv_cf.blt"
    mnemonic = "blt"


class BgeOp(_CondBranchOp):
    """``bge rs1, rs2, target``: branch if greater-or-equal (signed)."""

    name = "rv_cf.bge"
    mnemonic = "bge"


class BneOp(_CondBranchOp):
    """``bne rs1, rs2, target``: branch if not equal."""

    name = "rv_cf.bne"
    mnemonic = "bne"


class BeqOp(_CondBranchOp):
    """``beq rs1, rs2, target``: branch if equal."""

    name = "rv_cf.beq"
    mnemonic = "beq"


class BnezOp(RISCVInstruction):
    """``bnez rs1, target``: branch if non-zero."""

    name = "rv_cf.bnez"
    mnemonic = "bnez"

    def __init__(self, rs1: SSAValue, target: str):
        super().__init__(
            operands=[rs1],
            attributes={"target": StringAttr(target)},
        )

    @property
    def rs1(self) -> SSAValue:
        """The tested register."""
        return self.operands[0]

    @property
    def target(self) -> str:
        """The branch target label."""
        attr = self.attributes["target"]
        assert isinstance(attr, StringAttr)
        return attr.value

    def assembly_args(self) -> list[str]:
        return [reg_name(self.rs1), self.target]


class JOp(RISCVInstruction):
    """``j target``: unconditional jump."""

    name = "rv_cf.j"
    mnemonic = "j"

    def __init__(self, target: str):
        super().__init__(attributes={"target": StringAttr(target)})

    @property
    def target(self) -> str:
        """The jump target label."""
        attr = self.attributes["target"]
        assert isinstance(attr, StringAttr)
        return attr.value

    def assembly_args(self) -> list[str]:
        return [self.target]


__all__ = [
    "LabelOp",
    "BltOp",
    "BgeOp",
    "BneOp",
    "BeqOp",
    "BnezOp",
    "JOp",
]
