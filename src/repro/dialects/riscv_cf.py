"""The ``rv_cf`` dialect: unstructured control flow.

These ops appear only at the very bottom of the pipeline, after
``rv_scf.for`` loops are lowered to labels and conditional branches
(register allocation happens *before* this, on the structured form —
that ordering is the point of paper Section 3.3).

Branch targets are assembly *labels* (declared via ``successor_def``),
not block references: this IR lowers structured loops only after
register allocation, so no block-level CFG ever exists.
"""

from __future__ import annotations

from ..ir.attributes import StringAttr
from ..ir.irdl import (
    Dialect,
    attr_def,
    irdl_op_definition,
    operand_def,
    successor_def,
)
from .riscv import INT_REGISTER, RISCVInstruction, reg_name


@irdl_op_definition
class LabelOp(RISCVInstruction):
    """An assembly label definition (``name:``)."""

    name = "rv_cf.label"
    __slots__ = ()

    label = attr_def(StringAttr, doc="The label text.")

    def assembly_line(self) -> str | None:
        return f"{self.label}:"


@irdl_op_definition
class _CondBranchOp(RISCVInstruction):
    """Shared shape of two-register conditional branches."""

    __slots__ = ()

    rs1 = operand_def(INT_REGISTER, doc="First compared register.")
    rs2 = operand_def(INT_REGISTER, doc="Second compared register.")
    target = successor_def(doc="The branch target label.")

    def assembly_args(self) -> list[str]:
        return [reg_name(self.rs1), reg_name(self.rs2), self.target]


def _branch(class_name: str, mnemonic: str, doc: str):
    """One conditional branch sharing the :class:`_CondBranchOp` spec."""
    return type(
        class_name,
        (_CondBranchOp,),
        {
            "name": f"rv_cf.{mnemonic}",
            "mnemonic": mnemonic,
            "__doc__": doc,
            "__slots__": (),
            "__module__": __name__,
        },
    )


BltOp = _branch(
    "BltOp", "blt", "``blt rs1, rs2, target``: branch if less-than "
    "(signed).",
)
BgeOp = _branch(
    "BgeOp", "bge", "``bge rs1, rs2, target``: branch if "
    "greater-or-equal (signed).",
)
BneOp = _branch(
    "BneOp", "bne", "``bne rs1, rs2, target``: branch if not equal."
)
BeqOp = _branch(
    "BeqOp", "beq", "``beq rs1, rs2, target``: branch if equal."
)


@irdl_op_definition
class BnezOp(RISCVInstruction):
    """``bnez rs1, target``: branch if non-zero."""

    name = "rv_cf.bnez"
    mnemonic = "bnez"
    __slots__ = ()

    rs1 = operand_def(INT_REGISTER, doc="The tested register.")
    target = successor_def(doc="The branch target label.")

    def assembly_args(self) -> list[str]:
        return [reg_name(self.rs1), self.target]


@irdl_op_definition
class JOp(RISCVInstruction):
    """``j target``: unconditional jump."""

    name = "rv_cf.j"
    mnemonic = "j"
    __slots__ = ()

    target = successor_def(doc="The jump target label.")

    def assembly_args(self) -> list[str]:
        return [self.target]


RISCV_CF = Dialect(
    "rv_cf",
    ops=[LabelOp, BltOp, BgeOp, BneOp, BeqOp, BnezOp, JOp],
    doc="unstructured control flow: labels and branches",
)


__all__ = [
    "LabelOp",
    "BltOp",
    "BgeOp",
    "BneOp",
    "BeqOp",
    "BnezOp",
    "JOp",
    "RISCV_CF",
]
