"""Dialect definitions.

One module per dialect, split in two families exactly as in paper Figure 5:

* existing MLIR abstractions we re-implement: ``builtin``, ``arith``,
  ``func``, ``scf``, ``memref``, ``linalg``, ``stream``;
* the paper's contributions: ``memref_stream`` (scheduling bridge),
  ``riscv`` / ``riscv_cf`` / ``riscv_func`` / ``riscv_scf`` (RISC-V ISA as
  multi-level SSA IR) and ``riscv_snitch`` / ``snitch_stream`` (Snitch ISA
  extensions: FREP and stream semantic registers).
"""
