"""Dialect definitions.

One module per dialect, split in two families exactly as in paper Figure 5:

* existing MLIR abstractions we re-implement: ``builtin``, ``arith``,
  ``func``, ``scf``, ``memref``, ``linalg``, ``stream``;
* the paper's contributions: ``memref_stream`` (scheduling bridge),
  ``riscv`` / ``riscv_cf`` / ``riscv_func`` / ``riscv_scf`` (RISC-V ISA as
  multi-level SSA IR) and ``riscv_snitch`` / ``snitch_stream`` (Snitch ISA
  extensions: FREP and stream semantic registers).

Operations are written against the declarative IRDL-style layer in
:mod:`repro.ir.irdl`: field descriptors declare operands, results,
attributes and regions, and each module exports a first-class
:class:`~repro.ir.irdl.Dialect` object (``ARITH``, ``RISCV``, ...)
that drives registration, the parser's name lookup and the generated
dialect reference (see :mod:`repro.ir.op_registry`).
"""
