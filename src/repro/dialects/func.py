"""The ``func`` dialect: functions with by-reference memref arguments."""

from __future__ import annotations

from typing import Sequence

from ..ir.attributes import (
    FunctionType,
    StringAttr,
    TypeAttribute,
)
from ..ir.core import Block, IRError, Operation, Region, SSAValue
from ..ir.traits import IsolatedFromAbove, IsTerminator


class FuncOp(Operation):
    """A function definition.

    Micro-kernels are functions taking memref arguments by reference
    (paper Figure 2) and returning nothing.
    """

    name = "func.func"
    traits = frozenset([IsolatedFromAbove])

    def __init__(
        self,
        sym_name: str,
        input_types: Sequence[TypeAttribute],
        result_types: Sequence[TypeAttribute] = (),
        region: Region | None = None,
    ):
        if region is None:
            region = Region([Block(input_types)])
        super().__init__(
            attributes={
                "sym_name": StringAttr(sym_name),
                "function_type": FunctionType(input_types, result_types),
            },
            regions=[region],
        )

    @property
    def sym_name(self) -> str:
        """The function's symbol name."""
        attr = self.attributes["sym_name"]
        assert isinstance(attr, StringAttr)
        return attr.value

    @property
    def function_type(self) -> FunctionType:
        """The function's signature."""
        attr = self.attributes["function_type"]
        assert isinstance(attr, FunctionType)
        return attr

    @property
    def entry_block(self) -> Block:
        """The function's entry block."""
        block = self.body.first_block
        if block is None:
            raise IRError("function has no body")
        return block

    @property
    def args(self) -> list[SSAValue]:
        """The entry block arguments (the function's parameters)."""
        return list(self.entry_block.args)

    def verify_(self) -> None:
        block = self.body.first_block
        if block is None:
            return
        expected = self.function_type.inputs
        got = tuple(a.type for a in block.args)
        if got != expected:
            raise IRError(
                f"func.func @{self.sym_name}: entry block args {got} do not "
                f"match signature {expected}"
            )


class ReturnOp(Operation):
    """Terminator returning from a function."""

    name = "func.return"
    traits = frozenset([IsTerminator])

    def __init__(self, values: Sequence[SSAValue] = ()):
        super().__init__(operands=list(values))


__all__ = ["FuncOp", "ReturnOp"]
