"""The ``func`` dialect: functions with by-reference memref arguments."""

from __future__ import annotations

from typing import Sequence

from ..ir.attributes import (
    FunctionType,
    StringAttr,
    TypeAttribute,
)
from ..ir.core import Block, IRError, Operation, Region, SSAValue
from ..ir.irdl import (
    Dialect,
    attr_def,
    irdl_op_definition,
    region_def,
    var_operand_def,
)
from ..ir.traits import IsolatedFromAbove, IsTerminator


@irdl_op_definition
class FuncOp(Operation):
    """A function definition.

    Micro-kernels are functions taking memref arguments by reference
    (paper Figure 2) and returning nothing.
    """

    name = "func.func"
    traits = frozenset([IsolatedFromAbove])
    __slots__ = ()

    sym_name = attr_def(StringAttr, doc="The function's symbol name.")
    function_type = attr_def(
        FunctionType, doc="The function's signature."
    )
    body = region_def(doc="The function body.")

    def __init__(
        self,
        sym_name: str,
        input_types: Sequence[TypeAttribute],
        result_types: Sequence[TypeAttribute] = (),
        region: Region | None = None,
    ):
        if region is None:
            region = Region([Block(input_types)])
        super().__init__(
            attributes={
                "sym_name": StringAttr(sym_name),
                "function_type": FunctionType(input_types, result_types),
            },
            regions=[region],
        )

    @property
    def entry_block(self) -> Block:
        """The function's entry block."""
        block = self.body.first_block
        if block is None:
            raise IRError("function has no body")
        return block

    @property
    def args(self) -> list[SSAValue]:
        """The entry block arguments (the function's parameters)."""
        return list(self.entry_block.args)

    def verify_extra_(self) -> None:
        block = self.body.first_block
        if block is None:
            return
        expected = self.function_type.inputs
        got = tuple(a.type for a in block.args)
        if got != expected:
            raise IRError(
                f"func.func @{self.sym_name}: entry block args {got} do not "
                f"match signature {expected}"
            )


@irdl_op_definition
class ReturnOp(Operation):
    """Terminator returning from a function."""

    name = "func.return"
    traits = frozenset([IsTerminator])
    __slots__ = ()

    values = var_operand_def(doc="The returned values.")


FUNC = Dialect(
    "func",
    ops=[FuncOp, ReturnOp],
    doc="functions with by-reference memref arguments",
)


__all__ = ["FuncOp", "ReturnOp", "FUNC"]
