"""The ``stream`` dialect: typed handles to hardware data streams.

A ``!stream.readable<T>`` value stands for a configured stream semantic
register that produces one ``T`` per read (paper Figure 6).  The types are
shared between the target-independent ``memref_stream`` level (element
types) and the target-specific ``snitch_stream`` level (register types).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.attributes import TypeAttribute
from ..ir.irdl import Dialect


@dataclass(frozen=True)
class ReadableStreamType(TypeAttribute):
    """A stream that produces elements of ``element_type``."""

    element_type: TypeAttribute

    def __str__(self) -> str:
        return f"!stream.readable<{self.element_type}>"


@dataclass(frozen=True)
class WritableStreamType(TypeAttribute):
    """A stream that consumes elements of ``element_type``."""

    element_type: TypeAttribute

    def __str__(self) -> str:
        return f"!stream.writable<{self.element_type}>"


STREAM = Dialect(
    "stream",
    attrs=[ReadableStreamType, WritableStreamType],
    doc="typed handles to hardware data streams",
)


__all__ = ["ReadableStreamType", "WritableStreamType", "STREAM"]
