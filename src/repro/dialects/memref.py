"""The ``memref`` dialect: loads/stores on shaped buffers."""

from __future__ import annotations

from ..ir.attributes import MemRefType
from ..ir.core import IRError, Operation
from ..ir.irdl import (
    BaseAttr,
    Dialect,
    ElementOf,
    irdl_op_definition,
    operand_def,
    result_def,
    var_operand_def,
)
from ..ir.traits import HasMemoryEffect

#: Operand constraint shared by every op touching a buffer.
_MEMREF = BaseAttr(MemRefType)


@irdl_op_definition
class LoadOp(Operation):
    """Reads one element: ``%v = memref.load %buf[%i, %j]``."""

    name = "memref.load"
    traits = frozenset([HasMemoryEffect])
    __slots__ = ()

    memref = operand_def(_MEMREF, doc="The buffer being read.")
    indices = var_operand_def(doc="The per-dimension indices.")
    result = result_def(
        default=ElementOf("memref"), doc="The loaded element."
    )

    def verify_extra_(self) -> None:
        memref_type = self.memref.type
        if len(self.indices) != memref_type.rank:
            raise IRError(
                f"memref.load: {len(self.indices)} indices for rank-"
                f"{memref_type.rank} memref"
            )


@irdl_op_definition
class StoreOp(Operation):
    """Writes one element: ``memref.store %v, %buf[%i, %j]``."""

    name = "memref.store"
    traits = frozenset([HasMemoryEffect])
    __slots__ = ()

    value = operand_def(doc="The element being written.")
    memref = operand_def(_MEMREF, doc="The buffer being written.")
    indices = var_operand_def(doc="The per-dimension indices.")

    def verify_extra_(self) -> None:
        memref_type = self.memref.type
        if len(self.indices) != memref_type.rank:
            raise IRError(
                f"memref.store: {len(self.indices)} indices for rank-"
                f"{memref_type.rank} memref"
            )
        if self.value.type != memref_type.element_type:
            raise IRError("memref.store: value type mismatch")


@irdl_op_definition
class AllocOp(Operation):
    """Allocates a buffer (used by tests and examples, not kernels)."""

    name = "memref.alloc"
    traits = frozenset([HasMemoryEffect])
    __slots__ = ()

    result = result_def(_MEMREF, doc="The allocated buffer.")


@irdl_op_definition
class DeallocOp(Operation):
    """Frees a buffer allocated by :class:`AllocOp`."""

    name = "memref.dealloc"
    traits = frozenset([HasMemoryEffect])
    __slots__ = ()

    memref = operand_def(_MEMREF, doc="The buffer being freed.")


MEMREF = Dialect(
    "memref",
    ops=[LoadOp, StoreOp, AllocOp, DeallocOp],
    doc="loads/stores on shaped buffers",
)


__all__ = ["LoadOp", "StoreOp", "AllocOp", "DeallocOp", "MEMREF"]
