"""The ``memref`` dialect: loads/stores on shaped buffers."""

from __future__ import annotations

from typing import Sequence

from ..ir.attributes import MemRefType
from ..ir.core import IRError, Operation, SSAValue
from ..ir.traits import HasMemoryEffect


def _memref_type(value: SSAValue) -> MemRefType:
    if not isinstance(value.type, MemRefType):
        raise IRError(f"expected a memref value, got {value.type}")
    return value.type


class LoadOp(Operation):
    """Reads one element: ``%v = memref.load %buf[%i, %j]``."""

    name = "memref.load"
    traits = frozenset([HasMemoryEffect])

    def __init__(self, memref: SSAValue, indices: Sequence[SSAValue]):
        memref_type = _memref_type(memref)
        super().__init__(
            operands=[memref] + list(indices),
            result_types=[memref_type.element_type],
        )

    @property
    def memref(self) -> SSAValue:
        """The buffer being read."""
        return self.operands[0]

    @property
    def indices(self) -> tuple[SSAValue, ...]:
        """The per-dimension indices."""
        return self.operands[1:]

    @property
    def result(self) -> SSAValue:
        """The loaded element."""
        return self.results[0]

    def verify_(self) -> None:
        memref_type = _memref_type(self.memref)
        if len(self.indices) != memref_type.rank:
            raise IRError(
                f"memref.load: {len(self.indices)} indices for rank-"
                f"{memref_type.rank} memref"
            )


class StoreOp(Operation):
    """Writes one element: ``memref.store %v, %buf[%i, %j]``."""

    name = "memref.store"
    traits = frozenset([HasMemoryEffect])

    def __init__(
        self,
        value: SSAValue,
        memref: SSAValue,
        indices: Sequence[SSAValue],
    ):
        _memref_type(memref)
        super().__init__(operands=[value, memref] + list(indices))

    @property
    def value(self) -> SSAValue:
        """The element being written."""
        return self.operands[0]

    @property
    def memref(self) -> SSAValue:
        """The buffer being written."""
        return self.operands[1]

    @property
    def indices(self) -> tuple[SSAValue, ...]:
        """The per-dimension indices."""
        return self.operands[2:]

    def verify_(self) -> None:
        memref_type = _memref_type(self.memref)
        if len(self.indices) != memref_type.rank:
            raise IRError(
                f"memref.store: {len(self.indices)} indices for rank-"
                f"{memref_type.rank} memref"
            )
        if self.value.type != memref_type.element_type:
            raise IRError("memref.store: value type mismatch")


class AllocOp(Operation):
    """Allocates a buffer (used by tests and examples, not kernels)."""

    name = "memref.alloc"
    traits = frozenset([HasMemoryEffect])

    def __init__(self, memref_type: MemRefType):
        super().__init__(result_types=[memref_type])

    @property
    def result(self) -> SSAValue:
        """The allocated buffer."""
        return self.results[0]


class DeallocOp(Operation):
    """Frees a buffer allocated by :class:`AllocOp`."""

    name = "memref.dealloc"
    traits = frozenset([HasMemoryEffect])

    def __init__(self, memref: SSAValue):
        _memref_type(memref)
        super().__init__(operands=[memref])

    @property
    def memref(self) -> SSAValue:
        """The buffer being freed."""
        return self.operands[0]


__all__ = ["LoadOp", "StoreOp", "AllocOp", "DeallocOp"]
