"""The ``memref_stream`` dialect: the scheduling bridge (paper Figure 7).

This dialect sits between ``linalg`` and the Snitch-specific
``snitch_stream`` dialect.  Its two key deviations from ``linalg`` are:

* ``memref_stream.generic`` carries *explicit* iteration ``bounds`` instead
  of inferring them from shapes — required once operands become unshaped
  streams — plus the extended iterator kind ``"interleaved"`` produced by
  unroll-and-jam;
* ``memref_stream.streaming_region`` expresses streaming over *abstract
  values* (memrefs in, typed streams inside) before any registers exist.

Scheduling decisions (fill fusion, scalar replacement, unroll-and-jam) are
recorded by rewriting these ops in place, before access is separated from
execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..ir.affine_map import AffineMap
from ..ir.attributes import (
    ArrayAttr,
    Attribute,
    DenseIntAttr,
    MemRefType,
    StringAttr,
    TypeAttribute,
)
from ..ir.core import Block, IRError, Operation, Region, SSAValue
from ..ir.irdl import (
    BaseAttr,
    Dialect,
    ElementOf,
    attr_def,
    irdl_op_definition,
    operand_def,
    region_def,
    result_def,
    var_operand_def,
)
from ..ir.traits import HasMemoryEffect, IsTerminator
from .stream import ReadableStreamType, WritableStreamType

#: Iterator kinds; "interleaved" marks dims created by unroll-and-jam.
ITERATOR_KINDS = ("parallel", "reduction", "interleaved")


@dataclass(frozen=True)
class StridePatternAttr(Attribute):
    """Upper bounds plus an affine index map for one streamed operand.

    This is the high-level counterpart of a Snitch SSR configuration: the
    stream visits ``index_map(i0, ..., iN-1)`` for every point of the
    iteration space ``[0, ub0) x ... x [0, ubN-1)`` in row-major order.
    """

    ub: DenseIntAttr
    index_map: AffineMap

    def __str__(self) -> str:
        return (
            f"#memref_stream.stride_pattern<ub = {self.ub}, "
            f"index_map = {self.index_map}>"
        )

    def byte_strides_and_offset(
        self, memref_type: MemRefType
    ) -> tuple[tuple[int, ...], int]:
        """Derive per-iteration-dim byte strides and base byte offset."""
        strides = self.index_map.strides(memref_type.byte_strides())
        offset = self.index_map.offset(memref_type.byte_strides())
        return strides, offset

    def access_sequence(self, memref_type: MemRefType) -> list[int]:
        """All visited byte offsets in order (used by tests/the verifier)."""
        offsets = []

        def rec(prefix: list[int]):
            if len(prefix) == len(self.ub.values):
                idx = self.index_map.evaluate(prefix)
                flat = sum(
                    i * s for i, s in zip(idx, memref_type.byte_strides())
                )
                offsets.append(flat)
                return
            for i in range(self.ub[len(prefix)]):
                rec(prefix + [i])

        rec([])
        return offsets


#: Marker for outputs still read from memory (no fused fill).
FROM_MEMORY = StringAttr("from_memory")


@irdl_op_definition
class GenericOp(Operation):
    """``memref_stream.generic``: linalg.generic with explicit bounds.

    Inputs may be memrefs *or* readable streams; outputs are memrefs.  The
    attribute ``inits`` holds, per output, either :data:`FROM_MEMORY` (the
    body receives the current memory value) or a :class:`FloatAttr`
    constant (a fused ``linalg.fill``: the accumulator starts from the
    constant and memory is never read).

    When iterator kinds include ``interleaved`` dims, the body is expected
    to process ``prod(interleaved bounds)`` elements per operand at once
    (paper Figure 7).
    """

    name = "memref_stream.generic"
    traits = frozenset([HasMemoryEffect])
    __slots__ = ()

    inputs = var_operand_def(
        doc="Input operands (memrefs or readable streams)."
    )
    outputs = var_operand_def(doc="Output operands (memrefs).")
    indexing_maps = attr_def(
        ArrayAttr, doc="One affine map per operand (inputs then outputs)."
    )
    iterator_types = attr_def(
        ArrayAttr,
        elem=StringAttr,
        doc="Iterator kind per iteration dimension.",
    )
    bounds = attr_def(
        DenseIntAttr, doc="Explicit iteration-space bounds."
    )
    inits = attr_def(
        ArrayAttr,
        doc="Per-output init: `from_memory` or a fused fill constant.",
    )
    body = region_def(
        doc="The scalar (or interleaved-vector) computation body."
    )

    def __init__(
        self,
        inputs: Sequence[SSAValue],
        outputs: Sequence[SSAValue],
        indexing_maps: Sequence[AffineMap],
        iterator_types: Sequence[str],
        bounds: Sequence[int],
        body: Region,
        inits: Sequence[Attribute] | None = None,
    ):
        inputs = list(inputs)
        outputs = list(outputs)
        if inits is None:
            inits = [FROM_MEMORY] * len(outputs)
        super().__init__(
            operands=inputs + outputs,
            attributes={
                "indexing_maps": ArrayAttr(list(indexing_maps)),
                "iterator_types": ArrayAttr(
                    [StringAttr(k) for k in iterator_types]
                ),
                "bounds": DenseIntAttr(list(bounds)),
                "inits": ArrayAttr(list(inits)),
                "operand_segment_sizes": DenseIntAttr(
                    [len(inputs), len(outputs)]
                ),
            },
            regions=[body],
        )

    @property
    def body_block(self) -> Block:
        """The scalar (or interleaved-vector) computation body."""
        return self.body.block

    # -- derived info -------------------------------------------------------------

    @property
    def interleave_factor(self) -> int:
        """Product of the bounds of all ``interleaved`` dims (1 if none)."""
        factor = 1
        for kind, bound in zip(self.iterator_types, self.bounds):
            if kind == "interleaved":
                factor *= bound
        return factor

    @property
    def reduction_dims(self) -> list[int]:
        """Indices of the reduction dims."""
        return [
            i
            for i, kind in enumerate(self.iterator_types)
            if kind == "reduction"
        ]

    @property
    def parallel_dims(self) -> list[int]:
        """Indices of the parallel (including interleaved) dims."""
        return [
            i
            for i, kind in enumerate(self.iterator_types)
            if kind != "reduction"
        ]

    def output_map_dims(self) -> list[int]:
        """Iteration dims an output map ranges over.

        After scalar replacement the reduction dims are excluded from the
        output index space (paper Figure 7: "no reduction dimension
        indices as it is performed in register").
        """
        num_dims = len(self.bounds)
        out_maps = self.indexing_maps[len(self.inputs) :]
        if out_maps and out_maps[0].num_dims == num_dims:
            return list(range(num_dims))
        return self.parallel_dims

    @property
    def is_scalar_replaced(self) -> bool:
        """Whether reductions accumulate in registers (not memory)."""
        if not self.reduction_dims:
            return False
        out_maps = self.indexing_maps[len(self.inputs) :]
        return bool(out_maps) and out_maps[0].num_dims != len(self.bounds)

    def verify_extra_(self) -> None:
        if len(self.indexing_maps) != len(self.operands):
            raise IRError(
                "memref_stream.generic: one indexing map per operand"
            )
        for kind in self.iterator_types:
            if kind not in ITERATOR_KINDS:
                raise IRError(
                    f"memref_stream.generic: bad iterator kind {kind!r}"
                )
        if len(self.iterator_types) != len(self.bounds):
            raise IRError(
                "memref_stream.generic: bounds/iterator_types length "
                "mismatch"
            )
        if len(self.inits) != len(self.outputs):
            raise IRError("memref_stream.generic: one init per output")
        num_dims = len(self.bounds)
        for amap in self.indexing_maps[: len(self.inputs)]:
            if amap.num_dims != num_dims:
                raise IRError(
                    "memref_stream.generic: input map dim mismatch"
                )
        block = self.body.first_block
        if block is None or not isinstance(block.last_op, YieldOp):
            raise IRError(
                "memref_stream.generic: body must end with "
                "memref_stream.yield"
            )
        factor = self.interleave_factor
        expected_args = len(self.operands) * factor
        if len(block.args) != expected_args:
            raise IRError(
                f"memref_stream.generic: body takes {expected_args} args "
                f"({len(self.operands)} operands x factor {factor}), got "
                f"{len(block.args)}"
            )
        if len(block.last_op.operands) != len(self.outputs) * factor:
            raise IRError(
                "memref_stream.generic: yield arity must be outputs x "
                "interleave factor"
            )


@irdl_op_definition
class YieldOp(Operation):
    """Terminator of a ``memref_stream.generic`` body."""

    name = "memref_stream.yield"
    traits = frozenset([IsTerminator])
    __slots__ = ()

    values = var_operand_def(doc="The yielded output values.")


@irdl_op_definition
class StreamingRegionOp(Operation):
    """Scope in which operands are accessed through streams.

    Operands are input memrefs then output memrefs; ``patterns`` holds one
    :class:`StridePatternAttr` per operand (inputs first).  The body block
    receives one ``!stream.readable`` per input and one
    ``!stream.writable`` per output.
    """

    name = "memref_stream.streaming_region"
    traits = frozenset([HasMemoryEffect])
    __slots__ = ()

    inputs = var_operand_def(
        BaseAttr(MemRefType), doc="Streamed input memrefs."
    )
    outputs = var_operand_def(
        BaseAttr(MemRefType), doc="Streamed output memrefs."
    )
    patterns = attr_def(
        ArrayAttr,
        doc="Stride pattern per streamed operand (inputs then outputs).",
    )
    body = region_def(doc="The streaming body.")

    @staticmethod
    def body_for(
        input_element_types: Sequence[TypeAttribute],
        output_element_types: Sequence[TypeAttribute],
    ) -> tuple[Region, Block]:
        """A fresh body region with the correct stream-typed block args."""
        arg_types: list[TypeAttribute] = [
            ReadableStreamType(t) for t in input_element_types
        ]
        arg_types += [WritableStreamType(t) for t in output_element_types]
        block = Block(arg_types)
        return Region([block]), block

    @property
    def body_block(self) -> Block:
        """The streaming body."""
        return self.body.block

    def verify_extra_(self) -> None:
        if len(self.patterns) != len(self.operands):
            raise IRError(
                "memref_stream.streaming_region: one pattern per operand"
            )
        n_in = len(self.inputs)
        n_out = len(self.outputs)
        block = self.body.first_block
        if block is None:
            raise IRError("memref_stream.streaming_region: empty body")
        if len(block.args) != n_in + n_out:
            raise IRError(
                "memref_stream.streaming_region: one stream block arg per "
                "operand"
            )
        for arg in block.args[:n_in]:
            if not isinstance(arg.type, ReadableStreamType):
                raise IRError(
                    "memref_stream.streaming_region: input args must be "
                    "readable streams"
                )
        for arg in block.args[n_in:]:
            if not isinstance(arg.type, WritableStreamType):
                raise IRError(
                    "memref_stream.streaming_region: output args must be "
                    "writable streams"
                )


@irdl_op_definition
class ReadOp(Operation):
    """Pops one element from a readable stream."""

    name = "memref_stream.read"
    traits = frozenset([HasMemoryEffect])
    __slots__ = ()

    stream = operand_def(
        BaseAttr(ReadableStreamType), doc="The stream being read."
    )
    result = result_def(
        default=ElementOf("stream"), doc="The popped element."
    )


@irdl_op_definition
class WriteOp(Operation):
    """Pushes one element into a writable stream."""

    name = "memref_stream.write"
    traits = frozenset([HasMemoryEffect])
    __slots__ = ()

    value = operand_def(doc="The element pushed.")
    stream = operand_def(
        BaseAttr(WritableStreamType), doc="The stream written to."
    )


MEMREF_STREAM = Dialect(
    "memref_stream",
    ops=[GenericOp, YieldOp, StreamingRegionOp, ReadOp, WriteOp],
    attrs=[StridePatternAttr],
    doc="the scheduling bridge: explicit bounds + streams over memrefs "
    "(paper Fig. 7)",
)


__all__ = [
    "ITERATOR_KINDS",
    "FROM_MEMORY",
    "StridePatternAttr",
    "GenericOp",
    "YieldOp",
    "StreamingRegionOp",
    "ReadOp",
    "WriteOp",
    "MEMREF_STREAM",
]
