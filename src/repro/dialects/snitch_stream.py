"""The ``snitch_stream`` dialect: register-level streaming regions.

``snitch_stream.streaming_region`` "encapsulates the streaming
configuration and the region where streaming is enabled" (paper
Section 3.2, Figure 6 item c).  Operands are *pointer registers*; stride
patterns are compile-time constants expressed directly in bounds and byte
strides, which is what enables the two peephole optimizations the paper
calls out (contiguous-access collapsing and zero-stride repetition,
Figure 6 item d) before the op is lowered to ``scfgwi`` configuration
writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..backend.registers import SNITCH_STREAM_REGISTERS
from ..ir.attributes import ArrayAttr, Attribute, DenseIntAttr
from ..ir.core import Block, IRError, Operation, Region, SSAValue
from ..ir.irdl import (
    Dialect,
    attr_def,
    irdl_op_definition,
    region_def,
    var_operand_def,
)
from ..ir.traits import HasMemoryEffect
from .riscv import INT_REGISTER, FloatRegisterType
from .stream import ReadableStreamType, WritableStreamType


@dataclass(frozen=True)
class StridePattern(Attribute):
    """Constant bounds and byte strides for one stream data mover.

    Dimension 0 is the outermost; the stream walks the pattern in
    row-major order emitting ``prod(ub)`` elements.
    """

    ub: DenseIntAttr
    strides: DenseIntAttr

    def __init__(self, ub: Sequence[int], strides: Sequence[int]):
        object.__setattr__(self, "ub", DenseIntAttr(ub))
        object.__setattr__(self, "strides", DenseIntAttr(strides))

    def __str__(self) -> str:
        return (
            f"#snitch_stream.stride_pattern<ub = {self.ub}, "
            f"strides = {self.strides}>"
        )

    @property
    def rank(self) -> int:
        """Number of loop dimensions in the pattern."""
        return len(self.ub.values)

    @property
    def count(self) -> int:
        """Total number of elements the stream produces/consumes."""
        total = 1
        for bound in self.ub.values:
            total *= bound
        return total

    def offsets(self) -> list[int]:
        """All byte offsets the stream visits, in order."""
        result: list[int] = []

        def rec(dim: int, base: int):
            if dim == self.rank:
                result.append(base)
                return
            for i in range(self.ub[dim]):
                rec(dim + 1, base + i * self.strides[dim])

        rec(0, 0)
        return result

    def simplified(self) -> "StridePattern":
        """Canonical form used before emitting configuration writes.

        Applies the paper's two pattern optimizations:

        * drop size-1 dimensions;
        * collapse a contiguous pair: if ``strides[d] == ub[d+1] *
          strides[d+1]`` the two dims describe one contiguous run and are
          merged, "reducing the number of generated assembly operations
          for accelerator configuration".

        A trailing zero stride (the repetition optimization) is kept
        as-is; the lowering recognises it and emits the dedicated repeat
        configuration instead of an address dimension.
        """
        dims = [
            (u, s)
            for u, s in zip(self.ub.values, self.strides.values)
            if u != 1
        ]
        if not dims:
            dims = [(1, 0)]
        changed = True
        while changed:
            changed = False
            for d in range(len(dims) - 1):
                u0, s0 = dims[d]
                u1, s1 = dims[d + 1]
                if s0 == u1 * s1 and s1 != 0:
                    dims[d : d + 2] = [(u0 * u1, s1)]
                    changed = True
                    break
        return StridePattern([u for u, _ in dims], [s for _, s in dims])


@irdl_op_definition
class StreamingRegionOp(Operation):
    """Scope where SSR streaming is enabled, over pointer registers.

    Operands: input pointers then output pointers.  The body receives one
    readable stream per input (bound to ``ft0``, ``ft1``, ...) and one
    writable stream per output (bound to the next stream registers).
    While the region is active the used stream registers are reserved —
    the register allocator enforces this (paper Figure 6 item E).
    """

    name = "snitch_stream.streaming_region"
    traits = frozenset([HasMemoryEffect])
    __slots__ = ()

    inputs = var_operand_def(
        INT_REGISTER, doc="Input pointer registers."
    )
    outputs = var_operand_def(
        INT_REGISTER, doc="Output pointer registers."
    )
    patterns = attr_def(
        ArrayAttr,
        doc="Stride pattern per streamed operand (inputs then outputs).",
    )
    body = region_def(doc="The streaming body.")

    def __init__(
        self,
        inputs: Sequence[SSAValue],
        outputs: Sequence[SSAValue],
        patterns: Sequence[StridePattern],
        body: Region | None = None,
    ):
        inputs = list(inputs)
        outputs = list(outputs)
        total = len(inputs) + len(outputs)
        if total > len(SNITCH_STREAM_REGISTERS):
            raise IRError(
                f"streaming_region: {total} streams requested but Snitch "
                f"has {len(SNITCH_STREAM_REGISTERS)} stream registers"
            )
        if body is None:
            arg_types: list = []
            for i in range(len(inputs)):
                arg_types.append(
                    ReadableStreamType(
                        FloatRegisterType(SNITCH_STREAM_REGISTERS[i])
                    )
                )
            for j in range(len(outputs)):
                arg_types.append(
                    WritableStreamType(
                        FloatRegisterType(
                            SNITCH_STREAM_REGISTERS[len(inputs) + j]
                        )
                    )
                )
            body = Region([Block(arg_types)])
        super().__init__(
            operands=inputs + outputs,
            attributes={
                "patterns": ArrayAttr(list(patterns)),
                "operand_segment_sizes": DenseIntAttr(
                    [len(inputs), len(outputs)]
                ),
            },
            regions=[body],
        )

    @property
    def body_block(self) -> Block:
        """The streaming body."""
        return self.body.block

    def stream_registers(self) -> list[str]:
        """The ftN registers reserved while this region is active."""
        return list(
            SNITCH_STREAM_REGISTERS[
                : len(self.inputs) + len(self.outputs)
            ]
        )

    def verify_extra_(self) -> None:
        n_in = len(self.inputs)
        n_out = len(self.outputs)
        if len(self.patterns) != n_in + n_out:
            raise IRError("streaming_region: one pattern per operand")
        block = self.body.first_block
        if block is None:
            raise IRError("streaming_region: empty body")
        if len(block.args) != n_in + n_out:
            raise IRError(
                "streaming_region: one stream block argument per operand"
            )
        for i, arg in enumerate(block.args):
            expected = (
                ReadableStreamType if i < n_in else WritableStreamType
            )
            if not isinstance(arg.type, expected):
                raise IRError(
                    f"streaming_region: block arg {i} has wrong stream "
                    "direction"
                )


SNITCH_STREAM = Dialect(
    "snitch_stream",
    ops=[StreamingRegionOp],
    attrs=[StridePattern],
    doc="register-level streaming regions with constant stride patterns",
)


__all__ = ["StridePattern", "StreamingRegionOp", "SNITCH_STREAM"]
