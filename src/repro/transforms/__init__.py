"""Lowering and optimization passes.

The progressive lowering of paper Section 3.4, "structured as small,
self-contained passes":

high level          ``convert_linalg_to_memref_stream``
scheduling          ``fuse_fill`` -> ``scalar_replacement`` ->
                    ``unroll_and_jam``
access/execute      ``lower_to_snitch`` (streamed path) or
separation          ``lower_generic_to_loops`` + ``convert_to_riscv``
                    (general-purpose-backend-like path)
backend             ``fuse_fmadd`` -> ``allocate_registers`` ->
                    ``lower_snitch_stream`` -> ``lower_riscv_scf`` ->
                    assembly emission

``registry`` gives every pass a canonical kebab-case name and typed
options, so flows are expressible as textual pipeline specs
(``fuse-fill,unroll-and-jam{factor=4},...`` — see
:mod:`repro.ir.pipeline_spec`); ``pipelines`` declares the named flows
used in the evaluation ("ours", the Table 3 ablation prefixes, and the
"clang" / "mlir" baselines) as entries in its spec table.
"""
