"""Static stream-balance verification.

Snitch data movers deliver exactly ``prod(ub)`` elements per activation;
a body that pops too few or too many elements silently skews every
subsequent access.  Because the backend keeps control flow *structured*
(paper Section 3.3) and loop bounds are compile-time ``li`` constants,
the exact number of reads/writes a ``snitch_stream.streaming_region``
body performs is statically computable — so the compiler can prove
stream balance instead of hoping for it.

The pass walks each streaming region, multiplying every
``rv_snitch.read``/``rv_snitch.write`` (and, after write folding, every
instruction result pinned to a write stream register) by the trip counts
of its enclosing structured loops, and compares the totals with the
stride-pattern element counts.
"""

from __future__ import annotations

from ..dialects import riscv, riscv_scf, riscv_snitch, snitch_stream
from ..ir.core import Block, IRError, Operation, SSAValue
from ..ir.pass_manager import ModulePass


class StreamBalanceError(IRError):
    """A streaming region consumes/produces the wrong element count."""


def _constant_of(value: SSAValue) -> int | None:
    """The statically known integer a register value holds, if any."""
    owner = value.owner
    if isinstance(owner, riscv.LiOp):
        return owner.immediate
    if isinstance(owner, riscv.GetRegisterOp):
        vtype = owner.result.type
        if (
            isinstance(vtype, riscv.IntRegisterType)
            and vtype.register == "zero"
        ):
            return 0
    return None


def _trip_count(loop: Operation) -> int | None:
    """Statically known iteration count of a structured loop."""
    if isinstance(loop, riscv_snitch.FrepOuter):
        max_rep = _constant_of(loop.max_rep)
        return None if max_rep is None else max_rep + 1
    assert isinstance(loop, riscv_scf.ForOp)
    lower = _constant_of(loop.lower_bound)
    upper = _constant_of(loop.upper_bound)
    step = _constant_of(loop.step)
    if None in (lower, upper, step) or step <= 0:
        return None
    if upper <= lower:
        return 0
    return (upper - lower + step - 1) // step


def _count_events(block: Block, stream_id, multiplier: int, totals):
    """Accumulate stream pops/pushes under ``block``."""
    for op in block.ops:
        if isinstance(op, riscv_snitch.ReadOp):
            key = id(op.stream)
            totals[key] = totals.get(key, 0) + multiplier
        elif isinstance(op, riscv_snitch.WriteOp):
            key = id(op.stream)
            totals[key] = totals.get(key, 0) + multiplier
        elif isinstance(op, (riscv_scf.ForOp, riscv_snitch.FrepOuter)):
            trips = _trip_count(op)
            if trips is None:
                raise StreamBalanceError(
                    "cannot statically bound a loop inside a streaming "
                    "region"
                )
            _count_events(
                op.body.block, stream_id, multiplier * trips, totals
            )
        elif op.regions:
            raise StreamBalanceError(
                f"unexpected nested region op {op.name} while counting "
                "stream events"
            )


def verify_streaming_region(
    region_op: snitch_stream.StreamingRegionOp,
) -> None:
    """Check one region: per-stream event count == pattern count."""
    totals: dict[int, int] = {}
    _count_events(region_op.body_block, None, 1, totals)
    for arg, pattern in zip(region_op.body_block.args, region_op.patterns):
        expected = pattern.count
        actual = totals.get(id(arg), 0)
        if actual != expected:
            direction = (
                "reads" if id(arg) in totals or expected else "writes"
            )
            raise StreamBalanceError(
                f"stream {arg!r} moves {actual} elements but its "
                f"pattern describes {expected} ({direction} mismatch)"
            )


class VerifyStreamsPass(ModulePass):
    """Prove stream balance for every streaming region in the module."""

    name = "verify-streams"

    def run(self, module: Operation) -> None:
        for op in module.walk():
            if isinstance(op, snitch_stream.StreamingRegionOp):
                verify_streaming_region(op)


__all__ = [
    "VerifyStreamsPass",
    "StreamBalanceError",
    "verify_streaming_region",
]
