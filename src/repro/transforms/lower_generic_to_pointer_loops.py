"""Pointer-carrying loop lowering: the *optimised* general-purpose flows.

The paper's "Clang" and "MLIR" comparison flows go through the LLVM
RISC-V backend at ``-O3``: addresses are strength-reduced to pointer
increments, inner loops are unrolled, but the code still issues explicit
loads/stores and loop control on the single in-order issue port and
suffers FPU RAW hazards (paper Section 4.4: "suboptimal patterns in the
generated assembly ... such as explicit loads/stores and RAW hazards").

This pass emits exactly that code shape directly at the RISC-V level:

* one ``rv_scf.for`` per iteration dim, threading one pointer per
  operand through the whole nest — each loop's back-edge applies a
  *compensated* increment (``stride_d - inner_advance``) so a single
  register per operand suffices, like LLVM's loop-strength reduction;
* the innermost loop unrolled by four, sequentially and *without*
  interleaving — the unrolled accumulator chain keeps its
  read-after-write dependency, which is why these flows plateau;
* scalar-replaced generics keep the accumulator in a register (LLVM's
  scalar promotion); otherwise the output is read-modified-written
  through memory on every innermost iteration.
"""

from __future__ import annotations

from ..dialects import (
    arith,
    func as func_dialect,
    memref_stream,
    riscv,
    riscv_func,
    riscv_scf,
)
from ..dialects.riscv import IntRegisterType
from ..ir.attributes import FloatAttr, FloatType, IntAttr, MemRefType
from ..ir.builder import Builder
from ..ir.core import Block, Operation, SSAValue
from ..ir.pass_manager import ModulePass
from .lower_to_snitch import ARITH_TO_RV, LoweringError

#: Innermost-loop unroll factor (mirrors LLVM's default on such loops).
UNROLL = 4


class LowerGenericToPointerLoopsPass(ModulePass):
    """Lower functions to strength-reduced RISC-V loop nests."""

    name = "lower-generic-to-pointer-loops"

    def run(self, module: Operation) -> None:
        block = module.body.block
        for op in block.ops:
            if isinstance(op, func_dialect.FuncOp):
                new_func = _PointerLoopFunction(op).lower()
                block.insert_op_before(new_func, op)
                op.erase()


def _insert_entry_constant(block, op, last_constant) -> None:
    """Place a constant at the function-level pool: at the very start of
    the entry block for the first one, directly after the previous one
    otherwise — so constants keep materialisation order and dominate
    every use."""
    if last_constant is not None:
        block.insert_op_after(op, last_constant)
    elif block.first_op is not None:
        block.insert_op_before(op, block.first_op)
    else:
        block.add_op(op)


class _PointerLoopFunction:
    """Converts one function, one generic at a time."""

    def __init__(self, old_func: func_dialect.FuncOp):
        self.old = old_func
        self.value_map: dict[int, SSAValue] = {}
        self.current_block: Block | None = None
        self._entry_block: Block | None = None
        self._constants: dict[int, SSAValue] = {}
        #: Last constant materialised at function entry; new constants
        #: splice in right after it (O(1), keeps materialisation order).
        self._last_constant: Operation | None = None

    def lower(self) -> riscv_func.FuncOp:
        kinds = []
        for arg in self.old.args:
            if isinstance(arg.type, MemRefType):
                kinds.append("int")
            elif isinstance(arg.type, FloatType):
                kinds.append("float")
            else:
                raise LoweringError(
                    f"unsupported argument type {arg.type}"
                )
        new_func = riscv_func.FuncOp(
            self.old.sym_name, riscv_func.abi_arg_types(kinds)
        )
        self._entry_block = new_func.entry_block
        self.current_block = new_func.entry_block
        for old_arg, new_arg in zip(self.old.args, new_func.args):
            self.value_map[id(old_arg)] = new_arg
        for op in self.old.entry_block.ops:
            if isinstance(op, arith.ConstantOp):
                self._lower_constant(op)
            elif isinstance(op, memref_stream.GenericOp):
                _PointerLoopGeneric(self, op).lower()
            elif isinstance(op, func_dialect.ReturnOp):
                self.emit(riscv_func.ReturnOp())
            else:
                raise LoweringError(f"unsupported top-level op {op.name}")
        return new_func

    def emit(self, op):
        """Append to the current block."""
        self.current_block.add_op(op)
        return op

    def li(self, value: int) -> SSAValue:
        """A function-level integer constant (zero register for 0).

        Shared across the whole function — like LLVM's rematerialised
        constants this keeps loop nests within the register budget.
        """
        cached = self._constants.get(value)
        if cached is not None:
            return cached
        if value == 0:
            op = riscv.GetRegisterOp(IntRegisterType("zero"))
            result = op.result
        else:
            op = riscv.LiOp(value)
            result = op.rd
        _insert_entry_constant(self._entry_block, op, self._last_constant)
        self._last_constant = op
        self._constants[value] = result
        return result

    def float_constant(self, value: float) -> SSAValue:
        """Materialize an integral FP constant via fcvt.d.w."""
        if value != int(value):
            raise LoweringError(
                f"non-integral constant {value} unsupported"
            )
        return self.emit(riscv.FCvtDWOp(self.li(int(value)))).results[0]

    def _lower_constant(self, op: arith.ConstantOp) -> None:
        value = op.value
        if isinstance(value, FloatAttr):
            self.value_map[id(op.result)] = self.float_constant(
                value.value
            )
        elif isinstance(value, IntAttr):
            self.value_map[id(op.result)] = self.li(value.value)
        else:
            raise LoweringError(f"unsupported constant {value}")


class _PointerLoopGeneric:
    """Emits a strength-reduced loop nest for one generic."""

    def __init__(self, fn: _PointerLoopFunction, op: memref_stream.GenericOp):
        if op.interleave_factor != 1:
            raise LoweringError(
                "pointer-loop lowering expects non-interleaved generics"
            )
        self.fn = fn
        self.op = op
        self.bounds = list(op.bounds)
        self.num_dims = len(self.bounds)
        self.par_dims = op.parallel_dims
        self.red_dims = op.reduction_dims
        self.scalar_replaced = op.is_scalar_replaced
        self._compute_strides()
        self._plan()

    def _compute_strides(self) -> None:
        maps = self.op.indexing_maps
        op = self.op
        self.operand_strides: list[list[int]] = []
        out_dims = (
            self.par_dims
            if self.scalar_replaced
            else list(range(self.num_dims))
        )
        for index, (value, amap) in enumerate(zip(op.operands, maps)):
            memref_type = value.type
            if not isinstance(memref_type, MemRefType):
                raise LoweringError("operands must be memrefs")
            strides = amap.strides(memref_type.byte_strides())
            if index < len(op.inputs):
                per_dim = list(strides)
            else:
                # Output maps range over out_dims; expand to all dims
                # with zero stride on the excluded (reduction) dims.
                per_dim = [0] * self.num_dims
                for position, dim in enumerate(out_dims):
                    per_dim[dim] = strides[position]
            self.operand_strides.append(per_dim)

    def _plan(self) -> None:
        """Static schedule: per-dim loop/unroll plan and pointer advances.

        Like LLVM, small constant-trip loops (3x3 reduction windows) are
        fully unrolled into static address offsets, and the innermost
        remaining loop is partially unrolled by four.  This keeps the
        loop nest shallow enough for spill-free allocation while leaving
        the sequential (non-interleaved) dependency chains in place.
        """
        #: per dim: ("unroll", bound) or ("loop", trips, factor).
        self.plan: list[tuple] = [None] * self.num_dims
        innermost_loop_seen = False
        for dim in range(self.num_dims - 1, -1, -1):
            bound = self.bounds[dim]
            if not innermost_loop_seen and bound <= UNROLL:
                self.plan[dim] = ("unroll", bound)
                continue
            if not innermost_loop_seen:
                factor = 1
                for candidate in (UNROLL, 2):
                    if bound % candidate == 0:
                        factor = candidate
                        break
                self.plan[dim] = ("loop", bound // factor, factor)
                innermost_loop_seen = True
            else:
                self.plan[dim] = ("loop", bound, 1)
        #: advance[d][i]: pointer i's total movement over dims d..end.
        n_ops = len(self.op.operands)
        self.advance: list[list[int]] = [
            [0] * n_ops for _ in range(self.num_dims + 1)
        ]
        for dim in range(self.num_dims - 1, -1, -1):
            kind = self.plan[dim]
            for i in range(n_ops):
                if kind[0] == "unroll":
                    self.advance[dim][i] = self.advance[dim + 1][i]
                else:
                    _, trips, factor = kind
                    if trips == 1:
                        self.advance[dim][i] = self.advance[dim + 1][i]
                    else:
                        self.advance[dim][i] = (
                            trips * factor * self.operand_strides[i][dim]
                        )

    # -- emission ------------------------------------------------------------

    def lower(self) -> None:
        pointers = [
            self.fn.value_map[id(v)] for v in self.op.operands
        ]
        self._emit_dim(0, pointers, accumulators=None, offsets={})

    def _offset_of(self, index: int, offsets: dict[int, int]) -> int:
        """Static byte offset of operand ``index`` for unrolled dims."""
        return sum(
            f * self.operand_strides[index][d]
            for d, f in offsets.items()
        )

    def _emit_dim(
        self,
        dim: int,
        pointers: list[SSAValue],
        accumulators: list[SSAValue] | None,
        offsets: dict[int, int],
    ) -> tuple[list[SSAValue] | None, list[SSAValue]]:
        """Emit the nest from ``dim``; returns (accumulators, pointers)
        as SSA values after the nest ran."""
        fn = self.fn
        op = self.op
        n_in = len(op.inputs)

        # Entering the reduction region of a scalar-replaced generic:
        # materialise the accumulator, run the reduction, store once.
        if (
            self.scalar_replaced
            and accumulators is None
            and self.red_dims
            and dim == min(self.red_dims)
        ):
            out_offset = self._offset_of(n_in, offsets)
            init = op.inits[0]
            if isinstance(init, FloatAttr):
                acc = fn.float_constant(init.value)
            else:
                acc = fn.emit(
                    riscv.FLdOp(pointers[n_in], out_offset)
                ).rd
            final_accs, final_ptrs = self._emit_dim(
                dim, pointers, [acc], offsets
            )
            fn.emit(
                riscv.FSdOp(final_accs[0], pointers[n_in], out_offset)
            )
            return None, final_ptrs

        if dim == self.num_dims:
            new_accs = self._emit_body(pointers, accumulators, offsets)
            return new_accs, pointers

        kind = self.plan[dim]
        if kind[0] == "unroll":
            accs = accumulators
            ptrs = pointers
            for f in range(kind[1]):
                accs, ptrs = self._emit_dim(
                    dim + 1, ptrs, accs, {**offsets, dim: f}
                )
                if accumulators is None:
                    accs = None
            return accs, ptrs

        _, trips, factor = kind
        if trips == 1:
            accs = accumulators
            ptrs = pointers
            for f in range(factor):
                accs, ptrs = self._emit_dim(
                    dim + 1, ptrs, accs, {**offsets, dim: f}
                )
                if accumulators is None:
                    accs = None
            return accs, ptrs

        # Only pointers that actually move at this dim are loop-carried;
        # the rest are re-read from the enclosing scope (inner loops
        # re-initialise from them every iteration), saving registers.
        carried_idx = [
            i
            for i in range(len(pointers))
            if self.operand_strides[i][dim] != 0
        ]
        carried = [pointers[i] for i in carried_idx]
        if accumulators:
            carried += accumulators
        loop = riscv_scf.ForOp(
            fn.li(0), fn.li(trips), fn.li(1), carried
        )
        fn.emit(loop)
        outer = fn.current_block
        fn.current_block = loop.body_block
        body_args = loop.body_iter_args
        inner_ptrs = list(pointers)
        for position, i in enumerate(carried_idx):
            inner_ptrs[i] = body_args[position]
        inner_accs = (
            list(body_args[len(carried_idx) :])
            if accumulators
            else None
        )
        after_ptrs = inner_ptrs
        for f in range(factor):
            new_accs, after_ptrs = self._emit_dim(
                dim + 1,
                after_ptrs,
                inner_accs,
                {**offsets, dim: f} if factor > 1 else offsets,
            )
            if inner_accs is not None:
                inner_accs = new_accs
        # Compensated back-edge increment: one register per pointer.
        yields = []
        for position, i in enumerate(carried_idx):
            ptr = after_ptrs[i]
            delta = factor * self.operand_strides[i][dim] - factor * (
                self.advance[dim + 1][i]
            )
            if delta == 0:
                yields.append(ptr)
            else:
                yields.append(fn.emit(riscv.AddiOp(ptr, delta)).rd)
        if inner_accs:
            yields += inner_accs
        fn.emit(riscv_scf.YieldOp(yields))
        fn.current_block = outer
        result_ptrs = list(pointers)
        for position, i in enumerate(carried_idx):
            result_ptrs[i] = loop.results[position]
        result_accs = (
            list(loop.results[len(carried_idx) :])
            if accumulators
            else None
        )
        return result_accs, result_ptrs

    def _emit_body(
        self,
        pointers: list[SSAValue],
        accumulators: list[SSAValue] | None,
        offsets: dict[int, int],
    ) -> list[SSAValue] | None:
        """One unrolled instance of the scalar computation."""
        fn = self.fn
        op = self.op
        n_in = len(op.inputs)
        block = op.body_block
        mapping: dict[int, SSAValue] = {}
        for i in range(n_in):
            loaded = fn.emit(
                riscv.FLdOp(pointers[i], self._offset_of(i, offsets))
            ).rd
            mapping[id(block.args[i])] = loaded
        out_arg = block.args[n_in]
        out_offset = self._offset_of(n_in, offsets)
        if accumulators is not None:
            mapping[id(out_arg)] = accumulators[0]
        elif out_arg.has_uses:
            init = op.inits[0]
            if isinstance(init, FloatAttr):
                mapping[id(out_arg)] = fn.float_constant(init.value)
            else:
                mapping[id(out_arg)] = fn.emit(
                    riscv.FLdOp(pointers[n_in], out_offset)
                ).rd
        results: list[SSAValue] = []
        for body_op in block.ops:
            if isinstance(body_op, memref_stream.YieldOp):
                results = [
                    self._resolve(mapping, v) for v in body_op.operands
                ]
                continue
            rv_class = ARITH_TO_RV.get(type(body_op))
            if rv_class is None:
                raise LoweringError(
                    f"unsupported body op {body_op.name}"
                )
            new_op = fn.emit(
                rv_class(
                    *[
                        self._resolve(mapping, v)
                        for v in body_op.operands
                    ]
                )
            )
            mapping[id(body_op.results[0])] = new_op.results[0]
        if accumulators is not None:
            return [results[0]]
        fn.emit(riscv.FSdOp(results[0], pointers[n_in], out_offset))
        return None

    def _resolve(
        self, mapping: dict[int, SSAValue], value: SSAValue
    ) -> SSAValue:
        if id(value) in mapping:
            return mapping[id(value)]
        if id(value) in self.fn.value_map:
            return self.fn.value_map[id(value)]
        if isinstance(
            value.type, (riscv.FloatRegisterType, IntRegisterType)
        ):
            return value
        raise LoweringError("unmapped value in generic body")


__all__ = ["LowerGenericToPointerLoopsPass", "UNROLL"]
