"""Convert ``func``/``scf``/``arith``/``memref`` to the RISC-V dialects.

The generic, target-agnostic backend path: this is our stand-in for
"lowering through LLVM" (paper Figure 8).  Like a general-purpose
backend it knows nothing about SSRs or FREP: every ``memref.load``
recomputes its address with integer arithmetic and becomes an explicit
``fld``; loops become ``rv_scf.for`` (and later branches).  The paper's
point — and the measurable effect — is that code of this shape keeps the
integer issue port busy with bookkeeping, capping FPU utilization.
"""

from __future__ import annotations

from ..dialects import (
    arith,
    func as func_dialect,
    memref,
    riscv,
    riscv_func,
    riscv_scf,
    scf,
)
from ..dialects.riscv import FloatRegisterType, IntRegisterType
from ..ir.attributes import (
    FloatAttr,
    FloatType,
    IndexType,
    IntAttr,
    IntegerType,
    MemRefType,
)
from ..ir.builder import Builder
from ..ir.core import Block, IRError, Operation, SSAValue
from ..ir.pass_manager import ModulePass
from .lower_generic_to_pointer_loops import _insert_entry_constant


class ConversionError(IRError):
    """Raised on IR the RISC-V conversion does not understand."""


#: arith float op -> rv instruction (f64).
_FLOAT_OPS = {
    arith.AddfOp: riscv.FAddDOp,
    arith.SubfOp: riscv.FSubDOp,
    arith.MulfOp: riscv.FMulDOp,
    arith.DivfOp: riscv.FDivDOp,
    arith.MaximumfOp: riscv.FMaxDOp,
    arith.MinimumfOp: riscv.FMinDOp,
}

#: arith integer op -> rv instruction.
_INT_OPS = {
    arith.AddiOp: riscv.AddOp,
    arith.SubiOp: riscv.SubOp,
    arith.MuliOp: riscv.MulOp,
}


class ConvertToRISCVPass(ModulePass):
    """Rewrite every function into ``rv_func`` + ``rv_scf`` + ``rv``."""

    name = "convert-to-riscv"

    def run(self, module: Operation) -> None:
        block = module.body.block
        for op in block.ops:
            if isinstance(op, func_dialect.FuncOp):
                new_func = _FuncConversion(op).convert()
                block.insert_op_before(new_func, op)
                op.erase()


class _FuncConversion:
    def __init__(self, old_func: func_dialect.FuncOp):
        self.old = old_func
        self.value_map: dict[int, SSAValue] = {}
        #: Block new ops are appended to (switches inside loop bodies).
        self.current_block: Block | None = None
        #: Function-level integer constant pool: like a strength-reduced
        #: backend, each distinct constant is materialised once at entry
        #: (this keeps baseline register pressure spill-free).
        self._constants: dict[int, SSAValue] = {}
        self._entry_block: Block | None = None
        #: Last entry constant; successors splice in after it (O(1)).
        self._last_constant: Operation | None = None

    def convert(self) -> riscv_func.FuncOp:
        kinds = []
        for arg in self.old.args:
            if isinstance(arg.type, MemRefType):
                kinds.append("int")
            elif isinstance(arg.type, FloatType):
                kinds.append("float")
            else:
                raise ConversionError(
                    f"unsupported argument type {arg.type}"
                )
        new_func = riscv_func.FuncOp(
            self.old.sym_name, riscv_func.abi_arg_types(kinds)
        )
        self._entry_block = new_func.entry_block
        self.current_block = new_func.entry_block
        # Arguments are used directly in their ABI registers: the
        # general-purpose flows do not reserve-and-copy.
        for old_arg, new_arg in zip(self.old.args, new_func.args):
            self.value_map[id(old_arg)] = new_arg
        self._convert_block(self.old.entry_block)
        return new_func

    # -- helpers -------------------------------------------------------------------

    def emit(self, op):
        """Append ``op`` to the current block."""
        self.current_block.add_op(op)
        return op

    def mapped(self, value: SSAValue) -> SSAValue:
        new = self.value_map.get(id(value))
        if new is None:
            raise ConversionError("use of unconverted value")
        return new

    def zero_reg(self) -> SSAValue:
        return self.li(0)

    def li(self, value: int) -> SSAValue:
        """A function-level constant, materialised once at entry."""
        cached = self._constants.get(value)
        if cached is not None:
            return cached
        if value == 0:
            op = riscv.GetRegisterOp(IntRegisterType("zero"))
            result = op.result
        else:
            op = riscv.LiOp(value)
            result = op.rd
        # Constants go to the *front* of the entry block so they
        # dominate every use; appends to the entry block's end are
        # unaffected.
        _insert_entry_constant(
            self._entry_block, op, self._last_constant
        )
        self._last_constant = op
        self._constants[value] = result
        return result

    # -- op conversion ----------------------------------------------------------------

    def _convert_block(self, block: Block) -> None:
        for op in block.ops:
            self._convert_op(op)

    def _convert_op(self, op: Operation) -> None:
        if isinstance(op, arith.ConstantOp):
            self._convert_constant(op)
        elif type(op) in _INT_OPS:
            new = self.emit(
                _INT_OPS[type(op)](
                    self.mapped(op.operands[0]),
                    self.mapped(op.operands[1]),
                )
            )
            self.value_map[id(op.results[0])] = new.rd
        elif type(op) in _FLOAT_OPS:
            new = self.emit(
                _FLOAT_OPS[type(op)](
                    self.mapped(op.operands[0]),
                    self.mapped(op.operands[1]),
                )
            )
            self.value_map[id(op.results[0])] = new.rd
        elif isinstance(op, memref.LoadOp):
            address = self._address_of(op.memref, op.indices)
            new = self.emit(riscv.FLdOp(address, 0))
            self.value_map[id(op.result)] = new.rd
        elif isinstance(op, memref.StoreOp):
            address = self._address_of(op.memref, op.indices)
            self.emit(
                riscv.FSdOp(self.mapped(op.value), address, 0)
            )
        elif isinstance(op, scf.ForOp):
            self._convert_for(op)
        elif isinstance(op, (scf.YieldOp, func_dialect.ReturnOp)):
            pass  # handled by the parent construct / below
        else:
            raise ConversionError(f"cannot convert op {op.name}")
        if isinstance(op, func_dialect.ReturnOp):
            self.emit(riscv_func.ReturnOp())

    def _convert_constant(self, op: arith.ConstantOp) -> None:
        value = op.value
        if isinstance(value, IntAttr):
            self.value_map[id(op.result)] = self.li(value.value)
            return
        if isinstance(value, FloatAttr):
            if value.value != int(value.value):
                raise ConversionError(
                    "only integral float constants are materialisable"
                )
            as_int = int(value.value)
            source = (
                self.zero_reg() if as_int == 0 else self.li(as_int)
            )
            new = self.emit(riscv.FCvtDWOp(source))
            self.value_map[id(op.result)] = new.results[0]
            return
        raise ConversionError(f"unsupported constant {value}")

    def _address_of(
        self, memref_value: SSAValue, indices
    ) -> SSAValue:
        """Naive address computation: base + (linear index) * width.

        Recomputed at every access, exactly like unoptimised
        general-purpose codegen — the explicit integer traffic this
        generates is the baseline behaviour the paper measures.
        """
        memref_type = memref_value.type
        assert isinstance(memref_type, MemRefType)
        base = self.mapped(memref_value)
        strides = memref_type.strides()
        linear: SSAValue | None = None
        for index_value, stride in zip(indices, strides):
            part = self.mapped(index_value)
            if stride != 1:
                part = self.emit(
                    riscv.MulOp(part, self.li(stride))
                ).rd
            linear = (
                part
                if linear is None
                else self.emit(riscv.AddOp(linear, part)).rd
            )
        if linear is None:
            return base
        shift = {8: 3, 4: 2}[memref_type.element_byte_width]
        scaled = self.emit(riscv.SlliOp(linear, shift)).rd
        return self.emit(riscv.AddOp(base, scaled)).rd

    def _convert_for(self, op: scf.ForOp) -> None:
        lb = self.mapped(op.lower_bound)
        ub = self.mapped(op.upper_bound)
        step = self.mapped(op.step)
        iter_inits = [self.mapped(v) for v in op.iter_args]
        loop = riscv_scf.ForOp(lb, ub, step, iter_inits)
        self.emit(loop)
        self.value_map[id(op.induction_variable)] = (
            loop.induction_variable
        )
        for old_arg, new_arg in zip(
            op.body_iter_args, loop.body_iter_args
        ):
            self.value_map[id(old_arg)] = new_arg
        saved = self.current_block
        self.current_block = loop.body_block
        self._convert_block(op.body_block)
        yield_op = op.body_block.last_op
        assert isinstance(yield_op, scf.YieldOp)
        self.emit(
            riscv_scf.YieldOp(
                [self.mapped(v) for v in yield_op.operands]
            )
        )
        self.current_block = saved
        for old_res, new_res in zip(op.results, loop.results):
            self.value_map[id(old_res)] = new_res


__all__ = ["ConvertToRISCVPass", "ConversionError"]
