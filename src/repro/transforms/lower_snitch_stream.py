"""Lower ``snitch_stream.streaming_region`` to configuration instructions.

Each streamed operand's stride pattern is first simplified (size-1 dims
dropped, contiguous dims collapsed — paper Figure 6 item d); a trailing
zero-stride dimension becomes the data mover's *repetition* counter, the
"dedicated optimization, reducing the pressure on the memory
interconnect".  The region is then replaced by:

    li/scfgwi ...   per-dimension bounds and strides, repetition, and
                    the base pointer (which arms the mover)
    csrsi ssrcfg, 1
    <region body, with rv_snitch.read turned into register references>
    csrci ssrcfg, 1

Stream reads become ``rv.get_register`` ops naming the stream register:
at the assembly level, *consuming* ``ft0``/``ft1``/``ft2`` is what pops
the stream.
"""

from __future__ import annotations

from ..dialects import riscv, riscv_snitch, snitch_stream
from ..ir.core import IRError, Operation
from ..ir.pass_manager import ModulePass
from ..ir.rewriter import PatternRewriter, TypedPattern, apply_patterns
from ..snitch.isa import (
    SSR_MAX_DIMS,
    WORD_BOUND_BASE,
    WORD_READ_POINTER_BASE,
    WORD_REPEAT,
    WORD_STRIDE_BASE,
    WORD_WRITE_POINTER_BASE,
    scfg_address,
)


def hardware_pattern(
    pattern: snitch_stream.StridePattern,
) -> tuple[list[tuple[int, int]], int]:
    """(outermost-first (ub, stride) dims, repeat count) for the SSRs."""
    simplified = pattern.simplified()
    dims = list(zip(simplified.ub.values, simplified.strides.values))
    repeat = 1
    if len(dims) > 1 and dims[-1][1] == 0:
        repeat = dims[-1][0]
        dims = dims[:-1]
    if len(dims) > SSR_MAX_DIMS:
        raise IRError(
            f"stride pattern needs {len(dims)} dims; SSRs have "
            f"{SSR_MAX_DIMS} (hoist more loops)"
        )
    return dims, repeat


class _LowerStreamingRegion(TypedPattern):
    op_type = snitch_stream.StreamingRegionOp

    def rewrite(
        self,
        op: snitch_stream.StreamingRegionOp,
        rewriter: PatternRewriter,
    ) -> None:
        config_ops: list[Operation] = []

        def li(value: int):
            li_op = riscv.LiOp(value)
            config_ops.append(li_op)
            return li_op.rd

        n_in = len(op.inputs)
        for mover, (pointer, pattern) in enumerate(
            zip(op.operands, op.patterns)
        ):
            dims, repeat = hardware_pattern(pattern)
            rank = len(dims)
            # SSR dimension 0 is the innermost = the last pattern dim.
            for ssr_dim, (ub, stride) in enumerate(reversed(dims)):
                config_ops.append(
                    riscv_snitch.ScfgwiOp(
                        li(ub - 1),
                        scfg_address(mover, WORD_BOUND_BASE + ssr_dim),
                    )
                )
                config_ops.append(
                    riscv_snitch.ScfgwiOp(
                        li(stride),
                        scfg_address(mover, WORD_STRIDE_BASE + ssr_dim),
                    )
                )
            # Always (re)program the repetition counter: movers keep
            # state across regions.
            config_ops.append(
                riscv_snitch.ScfgwiOp(
                    li(repeat - 1), scfg_address(mover, WORD_REPEAT)
                )
            )
            base = (
                WORD_READ_POINTER_BASE
                if mover < n_in
                else WORD_WRITE_POINTER_BASE
            )
            config_ops.append(
                riscv_snitch.ScfgwiOp(
                    pointer, scfg_address(mover, base + rank - 1)
                )
            )
        config_ops.append(riscv_snitch.CsrsiOp("ssrcfg", 1))
        rewriter.insert_before(config_ops, op)

        # Convert stream reads into register references and fold stream
        # writes into their producers, everywhere in the nested body.
        for nested in list(op.walk()):
            if isinstance(nested, riscv_snitch.ReadOp):
                if len(nested.result.uses) != 1:
                    raise IRError(
                        "each stream read must be consumed exactly once: "
                        "every operand occurrence of a stream register "
                        "pops one element"
                    )
                get_reg = riscv.GetRegisterOp(nested.result.type)
                rewriter.replace_op(nested, get_reg)
            elif isinstance(nested, riscv_snitch.WriteOp):
                _lower_stream_write(nested, rewriter)

        # Inline the body: block args (the stream handles) have no
        # remaining uses after read conversion.
        body = op.body_block
        for arg in body.args:
            if arg.has_uses:
                raise IRError(
                    "stream handle still used after read lowering"
                )
        for body_op in body.ops:
            body_op.detach()
            op.parent.insert_op_before(body_op, op)
        rewriter.insert_before(
            [riscv_snitch.CsrciOp("ssrcfg", 1)], op
        )
        rewriter.erase_op(op)


def _lower_stream_write(
    write: riscv_snitch.WriteOp, rewriter: PatternRewriter
) -> None:
    """Fold a stream push into its producer, or emit a register move.

    Writing the stream register *is* the push: when the pushed value is
    produced by an adjacent instruction whose only consumer is the push,
    the producer's destination is simply re-typed to the stream register
    (``fadd.d ft2, ft0, ft1`` computes *and* stores).  Otherwise an
    ``fmv.d`` into the stream register realises the push.
    """
    stream_type = write.stream.type
    register_type = stream_type.element_type
    value = write.value
    producer = value.owner
    from ..ir.core import Operation as _Operation

    foldable = (
        isinstance(producer, _Operation)
        and isinstance(producer, riscv.RISCVInstruction)
        and producer.parent is write.parent
        and len(value.uses) == 1
        and isinstance(value.type, riscv.FloatRegisterType)
        and not value.type.is_allocated
    )
    if foldable:
        value.type = register_type
        rewriter.erase_op(write)
        return
    move = riscv.FMVOp(value, result_type=register_type)
    rewriter.replace_op(write, move, new_results=[])


class LowerSnitchStreamPass(ModulePass):
    """Replace streaming regions with scfgwi/csr configuration code."""

    name = "lower-snitch-stream"

    def run(self, module: Operation) -> None:
        apply_patterns(module, [_LowerStreamingRegion()])


__all__ = ["LowerSnitchStreamPass", "hardware_pattern"]
