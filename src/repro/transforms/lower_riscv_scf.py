"""Lower ``rv_scf.for`` to labels and branches — after register allocation.

This is the final structural lowering: by the time it runs every value
holds a concrete register, loop-carried values already share registers
(allocator item D), so the loop reduces to

    mv   iv, lb
    bge  iv, ub, end      # zero-trip guard
  body:
    ...                   # body, iter values already in place
    add  iv, iv, step
    blt  iv, ub, body
  end:

Running it *after* allocation is the point of the paper's Section 3.3:
liveness was computed on the structured form, so no basic-block analysis
is ever needed.
"""

from __future__ import annotations

from ..dialects import riscv, riscv_cf, riscv_func, riscv_scf
from ..ir.core import IRError, Operation
from ..ir.pass_manager import ModulePass


def _collect_loops_post_order(
    op: Operation, out: list["riscv_scf.ForOp"]
) -> None:
    """Append every ``rv_scf.for`` under ``op``, children before parents."""
    for region in op.regions:
        for block in region.blocks:
            for nested in block.ops:
                _collect_loops_post_order(nested, out)
                if isinstance(nested, riscv_scf.ForOp):
                    out.append(nested)


class LowerRiscvScfPass(ModulePass):
    """Flatten all structured for-loops into unstructured control flow."""

    name = "lower-riscv-scf"

    def __init__(self):
        self._counter = 0

    def _fresh_label(self, stem: str) -> str:
        self._counter += 1
        return f".{stem}{self._counter}"

    def run(self, module: Operation) -> None:
        # Innermost loops first so nested bodies are already flat: one
        # left-to-right post-order collection visits every loop before
        # its ancestors (and preserves the sibling order the repeated
        # innermost-first rescan used to produce, keeping label
        # numbering — and thus assembly — identical).
        loops: list[riscv_scf.ForOp] = []
        _collect_loops_post_order(module, loops)
        for loop in loops:
            self._lower_loop(loop)

    def _lower_loop(self, loop: riscv_scf.ForOp) -> None:
        block = loop.parent
        if block is None:
            raise IRError("loop not attached")
        iv_type = loop.induction_variable.type
        if not iv_type.is_allocated:
            raise IRError(
                "lower-riscv-scf requires registers to be allocated first"
            )
        body_label = self._fresh_label("for_body")
        end_label = self._fresh_label("for_end")

        header: list = []
        # Loop-carried values: result, body arg and yield operand share
        # one register (allocator item D).  When the init operand kept
        # its own register (it is live past the loop header) a move
        # brings the initial value into the loop register.
        for body_arg, init in zip(loop.body_iter_args, loop.iter_args):
            if body_arg.type == init.type:
                body_arg.replace_all_uses_with(init)
            else:
                move_class = (
                    riscv.FMVOp
                    if isinstance(body_arg.type, riscv.FloatRegisterType)
                    else riscv.MVOp
                )
                move = move_class(init, result_type=body_arg.type)
                header.append(move)
                body_arg.replace_all_uses_with(move.rd)
        header += [
            iv_init := riscv.MVOp(loop.lower_bound, result_type=iv_type),
            riscv_cf.BgeOp(
                iv_init.rd, loop.upper_bound, end_label
            ),
            riscv_cf.LabelOp(body_label),
        ]
        for op in header:
            block.insert_op_before(op, loop)
        loop.induction_variable.replace_all_uses_with(iv_init.rd)
        # After the loop the final iteration values sit in the loop
        # registers: forward results to register-typed placeholders.
        for result, init in zip(loop.results, loop.iter_args):
            if not result.has_uses:
                continue
            if result.type == init.type:
                result.replace_all_uses_with(init)
            else:
                placeholder = riscv.GetRegisterOp(result.type)
                block.insert_op_after(placeholder, loop)
                result.replace_all_uses_with(placeholder.result)

        body_block = loop.body_block
        yield_op = body_block.last_op
        assert isinstance(yield_op, riscv_scf.YieldOp)
        yield_op.erase()
        for op in body_block.ops:
            op.detach()
            block.insert_op_before(op, loop)

        increment = riscv.AddOp(
            iv_init.rd, loop.step, result_type=iv_type
        )
        footer = [
            increment,
            riscv_cf.BltOp(increment.rd, loop.upper_bound, body_label),
            riscv_cf.LabelOp(end_label),
        ]
        for op in footer:
            block.insert_op_before(op, loop)
        loop.erase()


__all__ = ["LowerRiscvScfPass"]
