"""Peephole: fuse ``fmul`` + ``fadd`` into ``fmadd`` (FMA).

The FMA performs two FLOPs in one FPU cycle, doubling peak throughput
(paper Section 4.1 counts fmadd as two FLOPs).  LLVM performs the same
contraction, so every compilation flow in the evaluation — ours and the
baselines — runs this pass.
"""

from __future__ import annotations

from ..dialects import riscv
from ..ir.core import Operation
from ..ir.pass_manager import ModulePass
from ..ir.rewriter import PatternRewriter, RewritePattern, apply_patterns

#: fadd op -> (matching fmul op, fused fmadd op).
_FUSABLE = {
    riscv.FAddDOp: (riscv.FMulDOp, riscv.FMAddDOp),
    riscv.FAddSOp: (riscv.FMulSOp, riscv.FMAddSOp),
}


class _FuseFMAddPattern(RewritePattern):
    def match_and_rewrite(
        self, op: Operation, rewriter: PatternRewriter
    ) -> None:
        fusable = _FUSABLE.get(type(op))
        if fusable is None:
            return
        mul_class, fma_class = fusable
        assert isinstance(op, (riscv.FAddDOp, riscv.FAddSOp))
        for mul_operand, addend in (
            (op.rs1, op.rs2),
            (op.rs2, op.rs1),
        ):
            producer = mul_operand.owner
            if not isinstance(producer, mul_class):
                continue
            if len(mul_operand.uses) != 1:
                continue  # the product is needed elsewhere
            if producer.parent is not op.parent:
                continue  # keep the fusion local to one block
            fma = fma_class(
                producer.rs1,
                producer.rs2,
                addend,
                result_type=op.results[0].type,
            )
            rewriter.replace_op(op, fma)
            rewriter.erase_op(producer)
            return


class FuseFMAddPass(ModulePass):
    """Contract multiply-add chains into FMA instructions."""

    name = "fuse-fmadd"

    def run(self, module: Operation) -> None:
        apply_patterns(module, [_FuseFMAddPattern()])


__all__ = ["FuseFMAddPass"]
