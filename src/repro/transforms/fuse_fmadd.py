"""Peephole: fuse ``fmul`` + ``fadd`` into ``fmadd`` (FMA).

The FMA performs two FLOPs in one FPU cycle, doubling peak throughput
(paper Section 4.1 counts fmadd as two FLOPs).  LLVM performs the same
contraction, so every compilation flow in the evaluation — ours and the
baselines — runs this pass.
"""

from __future__ import annotations

from ..dialects import riscv
from ..ir.core import Operation
from ..ir.pass_manager import ModulePass
from ..ir.rewriter import PatternRewriter, TypedPattern, apply_patterns


class _FuseFMAddPattern(TypedPattern):
    """Typed per-width fusion: the driver dispatches by fadd class, so
    non-fadd ops never invoke the pattern."""

    #: The fmul producer class and the fused fmadd replacement.
    mul_class: type[Operation]
    fma_class: type[Operation]

    def rewrite(self, op, rewriter: PatternRewriter) -> None:
        mul_class, fma_class = self.mul_class, self.fma_class
        for mul_operand, addend in (
            (op.rs1, op.rs2),
            (op.rs2, op.rs1),
        ):
            producer = mul_operand.owner
            if not isinstance(producer, mul_class):
                continue
            if len(mul_operand.uses) != 1:
                continue  # the product is needed elsewhere
            if producer.parent is not op.parent:
                continue  # keep the fusion local to one block
            fma = fma_class(
                producer.rs1,
                producer.rs2,
                addend,
                result_type=op.results[0].type,
            )
            rewriter.replace_op(op, fma)
            rewriter.erase_op(producer)
            return


class _FuseFMAddD(_FuseFMAddPattern):
    op_type = riscv.FAddDOp
    mul_class = riscv.FMulDOp
    fma_class = riscv.FMAddDOp


class _FuseFMAddS(_FuseFMAddPattern):
    op_type = riscv.FAddSOp
    mul_class = riscv.FMulSOp
    fma_class = riscv.FMAddSOp


class FuseFMAddPass(ModulePass):
    """Contract multiply-add chains into FMA instructions."""

    name = "fuse-fmadd"

    def run(self, module: Operation) -> None:
        apply_patterns(module, [_FuseFMAddD(), _FuseFMAddS()])


__all__ = ["FuseFMAddPass"]
