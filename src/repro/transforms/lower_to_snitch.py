"""Lower ``memref_stream.generic`` to Snitch-level RISC-V IR.

This pass performs the paper's access/execute separation (Section 3.4):
the iteration space, fixed by the earlier scheduling passes, is split
into

* stream configuration — ``snitch_stream.streaming_region`` ops whose
  stride patterns are derived from the affine indexing maps;
* compute — ``rv_scf.for`` loops and ``rv_snitch.frep_outer`` hardware
  loops whose bodies operate on streams instead of memory.

The lowering handles all the ablation stages of Table 3 on the same
code path:

* **streams only** (outputs not scalar-replaced): the reduction loop
  performs an explicit load/FMA/store read-modify-write on the output;
* **scalar replacement** (output maps exclude reduction dims): the
  accumulators live in registers across the reduction; the output is
  loaded/stored once per parallel point;
* **fused fill** (constant ``inits``): accumulators start from the
  constant and the output becomes a pure write stream — no explicit
  loads or stores remain;
* **unroll-and-jam** (``interleaved`` dims): the body processes F
  elements per iteration with F independent accumulators.

When a stride pattern needs more dimensions than the SSR address
generators provide (4), outer parallel loops are *hoisted* out of the
streaming region and re-arm the streams with shifted base pointers per
iteration — this is how the 5-dimensional Conv/Pool iteration spaces fit
the hardware.
"""

from __future__ import annotations

from ..backend.registers import SNITCH_STREAM_REGISTERS
from ..dialects import (
    arith,
    func as func_dialect,
    memref_stream,
    riscv,
    riscv_func,
    riscv_scf,
    riscv_snitch,
    snitch_stream,
)
from ..dialects.riscv import FloatRegisterType, IntRegisterType
from ..ir.attributes import (
    FloatAttr,
    FloatType,
    IntAttr,
    MemRefType,
)
from ..ir.builder import Builder
from ..ir.core import Block, IRError, Operation, SSAValue
from ..ir.pass_manager import ModulePass


def _prod(values) -> int:
    total = 1
    for v in values:
        total *= v
    return total


#: Body arith op -> rv instruction (64-bit path; the DSL pipeline is f64).
ARITH_TO_RV = {
    arith.AddfOp: riscv.FAddDOp,
    arith.SubfOp: riscv.FSubDOp,
    arith.MulfOp: riscv.FMulDOp,
    arith.DivfOp: riscv.FDivDOp,
    arith.MaximumfOp: riscv.FMaxDOp,
    arith.MinimumfOp: riscv.FMinDOp,
}


class LoweringError(IRError):
    """Raised when a generic cannot be mapped onto the Snitch extensions."""


class LowerToSnitchPass(ModulePass):
    """Convert every function to ``rv_func`` + Snitch-level IR."""

    name = "lower-to-snitch"

    def __init__(self, use_frep: bool = True):
        #: Emit ``frep_outer`` hardware loops (Table 3 "+ FRep").
        self.use_frep = use_frep

    def run(self, module: Operation) -> None:
        block = module.body.block
        for op in block.ops:
            if isinstance(op, func_dialect.FuncOp):
                new_func = _FunctionLowering(op, self.use_frep).lower()
                block.insert_op_before(new_func, op)
                op.erase()


class _FunctionLowering:
    """Lowers one ``func.func`` into one ``rv_func.func``."""

    def __init__(self, old_func: func_dialect.FuncOp, use_frep: bool):
        self.old_func = old_func
        self.use_frep = use_frep
        self.value_map: dict[int, SSAValue] = {}
        self.builder: Builder | None = None

    # -- small helpers ----------------------------------------------------------

    def emit(self, op):
        """Insert an op at the current point; returns the op."""
        return self.builder.insert(op)

    def zero_reg(self) -> SSAValue:
        """A fresh SSA value naming the ``zero`` register.

        Emitted at the current insertion point every time: caching
        across blocks would create dominance violations, and the op has
        no assembly form anyway.
        """
        return self.emit(
            riscv.GetRegisterOp(IntRegisterType("zero"))
        ).result

    def li(self, value: int) -> SSAValue:
        """Materialize an integer constant."""
        if value == 0:
            return self.zero_reg()
        return self.emit(riscv.LiOp(value)).rd

    def float_constant(self, value: float) -> SSAValue:
        """Materialize an FP constant via integer conversion.

        Snitch kernels only need small integral constants (0.0 for
        zero-initialisation and ReLU thresholds), which ``fcvt.d.w``
        produces from an integer register.
        """
        if value != int(value):
            raise LoweringError(
                f"non-integral float constant {value} not supported by "
                "the fcvt-based constant materialisation"
            )
        return self.emit(riscv.FCvtDWOp(self.li(int(value)))).results[0]

    # -- function conversion --------------------------------------------------------

    def lower(self) -> riscv_func.FuncOp:
        old = self.old_func
        kinds = []
        for arg in old.args:
            if isinstance(arg.type, MemRefType):
                kinds.append("int")
            elif isinstance(arg.type, FloatType):
                kinds.append("float")
            else:
                raise LoweringError(
                    f"unsupported function argument type {arg.type}"
                )
        new_func = riscv_func.FuncOp(
            old.sym_name, riscv_func.abi_arg_types(kinds)
        )
        self.builder = Builder.at_end(new_func.entry_block)
        # Copy ABI registers into fresh values (paper Figure 6: rv.mv),
        # keeping the argument registers reserved.
        for old_arg, new_arg in zip(old.args, new_func.args):
            if isinstance(new_arg.type, IntRegisterType):
                copy = self.emit(riscv.MVOp(new_arg))
                self.value_map[id(old_arg)] = copy.rd
            else:
                copy = self.emit(riscv.FMVOp(new_arg))
                self.value_map[id(old_arg)] = copy.rd
        for op in old.entry_block.ops:
            self._lower_top_level_op(op)
        return new_func

    def _lower_top_level_op(self, op: Operation) -> None:
        if isinstance(op, arith.ConstantOp):
            value = op.value
            if isinstance(value, FloatAttr):
                self.value_map[id(op.result)] = self.float_constant(
                    value.value
                )
            elif isinstance(value, IntAttr):
                self.value_map[id(op.result)] = self.li(value.value)
            else:
                raise LoweringError(f"unsupported constant {value}")
        elif isinstance(op, memref_stream.GenericOp):
            _GenericLowering(self, op).lower()
        elif isinstance(op, func_dialect.ReturnOp):
            self.emit(riscv_func.ReturnOp())
        else:
            raise LoweringError(
                f"op {op.name} not supported at the top level of a kernel"
            )


class _GenericLowering:
    """Emits the streaming structure for one ``memref_stream.generic``."""

    def __init__(
        self, parent: _FunctionLowering, op: memref_stream.GenericOp
    ):
        self.fn = parent
        self.op = op
        self.use_frep = parent.use_frep
        self.bounds = list(op.bounds)
        self.kinds = op.iterator_types
        self.num_dims = len(self.bounds)
        self.par_dims = [
            i for i, k in enumerate(self.kinds) if k == "parallel"
        ]
        self.red_dims = op.reduction_dims
        self.inter_dims = [
            i for i, k in enumerate(self.kinds) if k == "interleaved"
        ]
        self.factor = op.interleave_factor
        self.scalar_replaced = op.is_scalar_replaced
        self._validate_structure()

        self.inputs = list(op.inputs)
        self.outputs = list(op.outputs)
        self.inits = op.inits
        self.fused = all(
            isinstance(init, FloatAttr) for init in self.inits
        )
        # A pure-parallel body that *reads* its output (z = x*y + z)
        # performs a read-modify-write: with only three stream registers
        # the output is accessed explicitly instead.
        block = op.body_block
        n_in = len(self.inputs)
        self.parallel_rmw = not self.red_dims and any(
            block.args[(n_in + o) * self.factor + f].has_uses
            for o in range(len(self.outputs))
            for f in range(self.factor)
        )
        # Outputs go through a write stream when they are written exactly
        # once per point with no memory read: pure parallel kernels, or
        # scalar-replaced reductions whose fill was fused.
        self.output_streamed = (
            not self.red_dims and not self.parallel_rmw
        ) or (self.scalar_replaced and self.fused)
        self._compute_strides()
        self.hoisted = self._hoist_count()

    # -- analysis ----------------------------------------------------------------

    def _validate_structure(self) -> None:
        if self.red_dims and self.par_dims:
            if max(self.par_dims) > min(self.red_dims):
                raise LoweringError(
                    "iteration dims must be ordered parallel then "
                    "reduction (run convert-linalg-to-memref-stream)"
                )
        if self.inter_dims and self.inter_dims != list(
            range(self.num_dims - len(self.inter_dims), self.num_dims)
        ):
            raise LoweringError("interleaved dims must be innermost")
        if len(self.inter_dims) > 1:
            raise LoweringError("at most one interleaved dim is supported")

    def _memref_type(self, value: SSAValue) -> MemRefType:
        vtype = value.type
        if not isinstance(vtype, MemRefType):
            raise LoweringError("generic operands must be memrefs")
        if not (
            isinstance(vtype.element_type, FloatType)
            and vtype.element_type.width == 64
        ):
            raise LoweringError(
                "the DSL pipeline targets f64 kernels; express f32 "
                "kernels at the rv_snitch level (paper Section 4.2)"
            )
        return vtype

    def _compute_strides(self) -> None:
        """Byte strides per iteration dim for every operand."""
        maps = self.op.indexing_maps
        self.input_strides: list[tuple[int, ...]] = []
        for value, amap in zip(self.inputs, maps[: len(self.inputs)]):
            memref_type = self._memref_type(value)
            self.input_strides.append(
                amap.strides(memref_type.byte_strides())
            )
        # Output maps are over [parallel..., interleaved...] when scalar
        # replaced, else over the full space.
        self.out_dims = (
            self.par_dims + self.inter_dims
            if self.scalar_replaced
            else list(range(self.num_dims))
        )
        self.output_strides: list[tuple[int, ...]] = []
        for value, amap in zip(
            self.outputs, maps[len(self.inputs) :]
        ):
            memref_type = self._memref_type(value)
            if amap.num_dims != len(self.out_dims):
                raise LoweringError("output map dimensionality mismatch")
            self.output_strides.append(
                amap.strides(memref_type.byte_strides())
            )

    def _input_pattern(
        self, index: int, from_dim: int
    ) -> snitch_stream.StridePattern:
        dims = list(range(from_dim, self.num_dims))
        return snitch_stream.StridePattern(
            [self.bounds[d] for d in dims],
            [self.input_strides[index][d] for d in dims],
        )

    def _output_pattern(
        self, index: int, from_dim: int
    ) -> snitch_stream.StridePattern:
        dims = [
            (pos, d)
            for pos, d in enumerate(self.out_dims)
            if d >= from_dim
        ]
        return snitch_stream.StridePattern(
            [self.bounds[d] for _, d in dims],
            [self.output_strides[index][pos] for pos, _ in dims],
        )

    @staticmethod
    def _hardware_rank(pattern: snitch_stream.StridePattern) -> int:
        """Pattern rank as seen by the SSR config (repeat dim is free)."""
        simplified = pattern.simplified()
        rank = simplified.rank
        if rank > 1 and simplified.strides[rank - 1] == 0:
            rank -= 1  # trailing zero stride becomes the repeat counter
        return rank

    def _hoist_count(self) -> int:
        """Leading parallel dims that must become software loops."""
        from ..snitch.isa import SSR_MAX_DIMS

        hoisted = 0
        while True:
            ranks = [
                self._hardware_rank(self._input_pattern(i, hoisted))
                for i in range(len(self.inputs))
            ]
            if self.output_streamed:
                ranks += [
                    self._hardware_rank(self._output_pattern(o, hoisted))
                    for o in range(len(self.outputs))
                ]
            if all(rank <= SSR_MAX_DIMS for rank in ranks):
                return hoisted
            if hoisted >= len(self.par_dims):
                raise LoweringError(
                    "stream patterns do not fit the SSR address "
                    "generators even with all parallel dims hoisted"
                )
            hoisted += 1

    # -- emission ----------------------------------------------------------------

    def lower(self) -> None:
        if self.output_streamed:
            stream_count = len(self.inputs) + len(self.outputs)
        else:
            stream_count = len(self.inputs)
        if stream_count > len(SNITCH_STREAM_REGISTERS):
            raise LoweringError(
                f"kernel needs {stream_count} streams; Snitch has "
                f"{len(SNITCH_STREAM_REGISTERS)}"
            )
        if not self.output_streamed and len(self.outputs) != 1:
            raise LoweringError(
                "explicit-output lowering supports a single output"
            )
        input_ptrs = [self.fn.value_map[id(v)] for v in self.inputs]
        output_ptrs = [self.fn.value_map[id(v)] for v in self.outputs]
        self._emit_hoisted_loops(0, input_ptrs, output_ptrs)

    def _emit_hoisted_loops(
        self,
        depth: int,
        input_ptrs: list[SSAValue],
        output_ptrs: list[SSAValue],
    ) -> None:
        """Software loops over hoisted dims, carrying shifted pointers."""
        if depth == self.hoisted:
            self._emit_streaming_region(input_ptrs, output_ptrs)
            return
        dim = self.par_dims[depth]
        bound = self.bounds[dim]
        if bound == 1:
            self._emit_hoisted_loops(depth + 1, input_ptrs, output_ptrs)
            return
        fn = self.fn
        lb = fn.li(0)
        ub = fn.li(bound)
        step = fn.li(1)
        carried = input_ptrs + output_ptrs
        loop = riscv_scf.ForOp(lb, ub, step, carried)
        fn.emit(loop)
        outer_builder = fn.builder
        fn.builder = Builder.at_end(loop.body_block)
        body_ptrs = loop.body_iter_args
        new_inputs = body_ptrs[: len(input_ptrs)]
        new_outputs = body_ptrs[len(input_ptrs) :]
        self._emit_hoisted_loops(depth + 1, new_inputs, new_outputs)
        next_ptrs = []
        for i, ptr in enumerate(new_inputs):
            stride = self.input_strides[i][dim]
            next_ptrs.append(self._advance(ptr, stride))
        for o, ptr in enumerate(new_outputs):
            pos = self.out_dims.index(dim)
            stride = self.output_strides[o][pos]
            next_ptrs.append(self._advance(ptr, stride))
        fn.emit(riscv_scf.YieldOp(next_ptrs))
        fn.builder = outer_builder

    def _advance(self, ptr: SSAValue, stride: int) -> SSAValue:
        if stride == 0:
            return ptr
        return self.fn.emit(riscv.AddiOp(ptr, stride)).rd

    def _emit_streaming_region(
        self,
        input_ptrs: list[SSAValue],
        output_ptrs: list[SSAValue],
    ) -> None:
        fn = self.fn
        patterns = [
            self._input_pattern(i, self.hoisted)
            for i in range(len(self.inputs))
        ]
        streamed_outputs: list[SSAValue] = []
        if self.output_streamed:
            patterns += [
                self._output_pattern(o, self.hoisted)
                for o in range(len(self.outputs))
            ]
            streamed_outputs = output_ptrs
        region_op = snitch_stream.StreamingRegionOp(
            input_ptrs, streamed_outputs, patterns
        )
        fn.emit(region_op)
        outer_builder = fn.builder
        fn.builder = Builder.at_end(region_op.body_block)
        input_streams = list(
            region_op.body_block.args[: len(self.inputs)]
        )
        n_in = len(self.inputs)
        self.write_streams = list(region_op.body_block.args[n_in:])
        if self.red_dims:
            self._emit_reduction_structure(input_streams, output_ptrs)
        elif self.parallel_rmw:
            self._emit_parallel_rmw_structure(
                input_streams, output_ptrs[0]
            )
        else:
            self._emit_parallel_structure(input_streams)
        fn.builder = outer_builder

    # -- pure parallel kernels (Sum, Fill, ReLU) -----------------------------------

    def _emit_parallel_structure(self, input_streams) -> None:
        fn = self.fn
        total = _prod(
            self.bounds[d] for d in range(self.hoisted, self.num_dims)
        )
        count = total // self.factor

        def emit_body():
            reads = self._emit_reads(input_streams)
            self._emit_compute(reads, accumulators=None)

        if count == 1:
            emit_body()
            return
        if self.use_frep:
            max_rep = fn.li(count - 1)
            frep = riscv_snitch.FrepOuter(max_rep)
            fn.emit(frep)
            outer_builder = fn.builder
            fn.builder = Builder.at_end(frep.body_block)
            emit_body()
            fn.emit(riscv_snitch.FrepYieldOp())
            fn.builder = outer_builder
        else:
            self._emit_counted_loop(count, emit_body)

    def _emit_parallel_rmw_structure(
        self, input_streams, out_ptr: SSAValue
    ) -> None:
        """Pure-parallel read-modify-write: inputs streamed, the output
        loaded and stored explicitly behind a walking pointer."""
        fn = self.fn
        pattern = self._output_pattern(0, self.hoisted).simplified()
        if pattern.rank != 1:
            raise LoweringError(
                "read-modify-write outputs must be visited with a "
                "single constant stride (got a rank-"
                f"{pattern.rank} pattern); restructure the kernel or "
                "hoist more dims"
            )
        stride = pattern.strides[0]
        count = pattern.ub[0] // self.factor

        def emit_body(ptr: SSAValue) -> SSAValue:
            old = fn.emit(riscv.FLdOp(ptr, 0)).rd
            reads = self._emit_reads(input_streams)
            new_values = self._emit_compute(
                reads, accumulators=[old], store_results=False
            )
            fn.emit(riscv.FSdOp(new_values[0], ptr, 0))
            return self._advance(ptr, stride)

        if count == 1:
            emit_body(out_ptr)
            return
        lb = fn.li(0)
        ub = fn.li(count)
        step = fn.li(1)
        loop = riscv_scf.ForOp(lb, ub, step, [out_ptr])
        fn.emit(loop)
        outer_builder = fn.builder
        fn.builder = Builder.at_end(loop.body_block)
        advanced = emit_body(loop.body_iter_args[0])
        fn.emit(riscv_scf.YieldOp([advanced]))
        fn.builder = outer_builder

    # -- reduction kernels (MatMul, Conv, Pool) --------------------------------------

    def _emit_reduction_structure(
        self, input_streams, output_ptrs: list[SSAValue]
    ) -> None:
        groups = _prod(
            self.bounds[d]
            for d in self.par_dims
            if d >= self.hoisted
        )
        if self.output_streamed:
            if groups == 1:
                self._emit_group(input_streams, None)
            else:
                self._emit_counted_loop(
                    groups,
                    lambda: self._emit_group(input_streams, None),
                )
        else:
            self._emit_explicit_output_loops(
                input_streams, output_ptrs[0], self.hoisted
            )

    def _emit_explicit_output_loops(
        self, input_streams, out_ptr: SSAValue, depth: int
    ) -> None:
        """Nested loops over the remaining parallel dims, carrying the
        output pointer (non-streamed outputs)."""
        remaining = [d for d in self.par_dims if d >= depth]
        if not remaining:
            self._emit_group(input_streams, out_ptr)
            return
        dim = remaining[0]
        bound = self.bounds[dim]
        if bound == 1:
            self._emit_explicit_output_loops(
                input_streams, out_ptr, dim + 1
            )
            return
        fn = self.fn
        lb = fn.li(0)
        ub = fn.li(bound)
        step = fn.li(1)
        loop = riscv_scf.ForOp(lb, ub, step, [out_ptr])
        fn.emit(loop)
        outer_builder = fn.builder
        fn.builder = Builder.at_end(loop.body_block)
        inner_ptr = loop.body_iter_args[0]
        self._emit_explicit_output_loops(input_streams, inner_ptr, dim + 1)
        pos = self.out_dims.index(dim)
        advanced = self._advance(inner_ptr, self.output_strides[0][pos])
        fn.emit(riscv_scf.YieldOp([advanced]))
        fn.builder = outer_builder

    def _emit_group(
        self, input_streams, out_ptr: SSAValue | None
    ) -> None:
        """One group: init accumulators, reduce, write results."""
        fn = self.fn
        reduction_count = _prod(self.bounds[d] for d in self.red_dims)
        inter_stride = self._interleave_output_stride()

        if self.scalar_replaced:
            accumulators = self._emit_accumulator_init(out_ptr, inter_stride)
            results = self._emit_reduction_loop(
                input_streams, accumulators, reduction_count
            )
            self._emit_group_results(results, out_ptr, inter_stride)
        else:
            # Read-modify-write on the output every iteration (Table 3
            # "+ Streams" stage).  The body has integer operands (the
            # output pointer), so FREP is not applicable.
            def emit_body():
                loaded = fn.emit(riscv.FLdOp(out_ptr, 0)).rd
                reads = self._emit_reads(input_streams)
                new_values = self._emit_compute(
                    reads, accumulators=[loaded], store_results=False
                )
                fn.emit(riscv.FSdOp(new_values[0], out_ptr, 0))

            self._emit_counted_loop(reduction_count, emit_body)

    def _interleave_output_stride(self) -> int:
        if not self.inter_dims:
            return 0
        pos = self.out_dims.index(self.inter_dims[0])
        return self.output_strides[0][pos]

    def _emit_accumulator_init(
        self, out_ptr: SSAValue | None, inter_stride: int
    ) -> list[SSAValue]:
        fn = self.fn
        accumulators = []
        for f in range(self.factor):
            if self.fused:
                init = self.inits[0]
                assert isinstance(init, FloatAttr)
                accumulators.append(fn.float_constant(init.value))
            else:
                assert out_ptr is not None
                accumulators.append(
                    fn.emit(riscv.FLdOp(out_ptr, f * inter_stride)).rd
                )
        return accumulators

    def _emit_reduction_loop(
        self, input_streams, accumulators, reduction_count: int
    ) -> list[SSAValue]:
        fn = self.fn
        body_is_fp_only = True  # stream reads + FP arith by construction

        if self.use_frep and body_is_fp_only and reduction_count > 1:
            max_rep = fn.li(reduction_count - 1)
            frep = riscv_snitch.FrepOuter(max_rep, accumulators)
            fn.emit(frep)
            outer_builder = fn.builder
            fn.builder = Builder.at_end(frep.body_block)
            reads = self._emit_reads(input_streams)
            new_values = self._emit_compute(
                reads,
                accumulators=frep.body_iter_args,
                store_results=False,
            )
            fn.emit(riscv_snitch.FrepYieldOp(new_values))
            fn.builder = outer_builder
            return list(frep.results)
        # Software reduction loop.
        lb = fn.li(0)
        ub = fn.li(reduction_count)
        step = fn.li(1)
        loop = riscv_scf.ForOp(lb, ub, step, accumulators)
        fn.emit(loop)
        outer_builder = fn.builder
        fn.builder = Builder.at_end(loop.body_block)
        reads = self._emit_reads(input_streams)
        new_values = self._emit_compute(
            reads, accumulators=loop.body_iter_args, store_results=False
        )
        fn.emit(riscv_scf.YieldOp(new_values))
        fn.builder = outer_builder
        return list(loop.results)

    def _emit_group_results(
        self,
        results: list[SSAValue],
        out_ptr: SSAValue | None,
        inter_stride: int,
    ) -> None:
        fn = self.fn
        if self.output_streamed:
            for value in results:
                fn.emit(
                    riscv_snitch.WriteOp(value, self.write_streams[0])
                )
            return
        assert out_ptr is not None
        for f, value in enumerate(results):
            fn.emit(riscv.FSdOp(value, out_ptr, f * inter_stride))

    # -- shared helpers -----------------------------------------------------------------

    def _emit_counted_loop(self, count: int, emit_body) -> None:
        fn = self.fn
        if count == 1:
            emit_body()
            return
        lb = fn.li(0)
        ub = fn.li(count)
        step = fn.li(1)
        loop = riscv_scf.ForOp(lb, ub, step)
        fn.emit(loop)
        outer_builder = fn.builder
        fn.builder = Builder.at_end(loop.body_block)
        emit_body()
        fn.emit(riscv_scf.YieldOp())
        fn.builder = outer_builder

    def _emit_reads(self, input_streams) -> list[list[SSAValue]]:
        """F stream reads per input, in interleave order."""
        reads: list[list[SSAValue]] = []
        for stream in input_streams:
            per_input = []
            for _ in range(self.factor):
                per_input.append(
                    self.fn.emit(riscv_snitch.ReadOp(stream)).result
                )
            reads.append(per_input)
        return reads

    def _emit_compute(
        self,
        reads: list[list[SSAValue]],
        accumulators: list[SSAValue] | None,
        store_results: bool = True,
    ) -> list[SSAValue]:
        """Clone the generic body F-interleaved, mapping args to reads
        and accumulators; returns the yielded values.

        With ``store_results`` (pure parallel kernels) the yielded
        values are written to the output streams, re-typing the
        producing instruction's result register when possible so the
        final arithmetic op itself performs the stream push.
        """
        fn = self.fn
        op = self.op
        block = op.body_block
        n_in = len(self.inputs)
        factor = self.factor
        mapping: dict[int, SSAValue] = {}
        for i in range(n_in):
            for f in range(factor):
                mapping[id(block.args[i * factor + f])] = reads[i][f]
        for o in range(len(self.outputs)):
            for f in range(factor):
                arg = block.args[(n_in + o) * factor + f]
                if accumulators is not None:
                    mapping[id(arg)] = accumulators[o * factor + f]
                elif arg.has_uses:
                    raise LoweringError(
                        "body reads its output but no accumulator is "
                        "available (pure-parallel RMW is unsupported)"
                    )
        yield_op = block.last_op
        assert isinstance(yield_op, memref_stream.YieldOp)
        emitted: list[Operation] = []
        for body_op in block.ops:
            if isinstance(body_op, memref_stream.YieldOp):
                continue
            emitted.append(self._clone_body_op(body_op, mapping))
        results = [
            self._resolve_body_operand(mapping, value)
            for value in yield_op.operands
        ]
        if not store_results:
            return results
        # Pure parallel: push every yielded value to its output stream.
        # lower-snitch-stream later folds the push into the producing
        # instruction when possible (it then writes ft1/ft2 directly).
        for o_f, value in enumerate(results):
            stream = self.write_streams[o_f // factor]
            fn.emit(riscv_snitch.WriteOp(value, stream))
        return results

    def _clone_body_op(
        self, body_op: Operation, mapping: dict[int, SSAValue]
    ) -> Operation:
        fn = self.fn
        rv_class = ARITH_TO_RV.get(type(body_op))
        if rv_class is None:
            raise LoweringError(
                f"unsupported op {body_op.name} in a streamed body"
            )
        operands = [
            self._resolve_body_operand(mapping, v)
            for v in body_op.operands
        ]
        new_op = fn.emit(rv_class(*operands))
        mapping[id(body_op.results[0])] = new_op.results[0]
        return new_op

    def _resolve_body_operand(
        self, mapping: dict[int, SSAValue], value: SSAValue
    ) -> SSAValue:
        if id(value) in mapping:
            return mapping[id(value)]
        # A value defined outside the generic (constants, scalar args):
        # it was already lowered at the function level.
        if id(value) in self.fn.value_map:
            return self.fn.value_map[id(value)]
        if isinstance(value.type, (FloatRegisterType, IntRegisterType)):
            return value
        raise LoweringError("unmapped value used inside a generic body")


__all__ = ["LowerToSnitchPass", "LoweringError", "ARITH_TO_RV"]
