"""Unroll-and-jam: interleave independent reductions (Table 3's last stage).

"Read-after-write conflicts are averted by applying unroll-and-jam, which
interleaves multiple iterations in the innermost loops, trading off
increased code size and register pressure for performance. ...the FPU has
three stages for all operations, so stalls are minimized when the unroll
factor is at least four" (paper Section 3.4).

The pass splits one parallel dimension ``d`` of bound ``B`` into an outer
dimension of bound ``B/F`` (kept in place) and a new innermost
``interleaved`` dimension of bound ``F``, then replicates the body ``F``
times with block arguments grouped per operand (paper Figure 7).
"""

from __future__ import annotations

from ..dialects import memref_stream
from ..ir.affine_map import (
    AffineDimExpr,
    AffineMap,
    expr_uses_dim,
    substitute_dims,
)
from ..ir.attributes import ArrayAttr, DenseIntAttr, StringAttr
from ..ir.core import Block, IRError, Operation, Region, SSAValue
from ..ir.pass_manager import ModulePass
from ..ir.rewriter import PatternRewriter, TypedPattern, apply_patterns

#: Minimum factor that hides the FPU pipeline (3 stages + writeback).
MIN_FACTOR = 4
#: Do not interleave more than this (register pressure).
MAX_FACTOR = 8


#: Explicit no-unroll fallback of :func:`select_unroll_factor`.
NO_UNROLL = 1


def legal_unroll_factors(bound: int) -> list[int]:
    """Every factor the pass can legally apply to a dimension bound.

    The pass has no remainder loop, so a factor must divide the bound
    exactly; register pressure caps it at :data:`MAX_FACTOR`.  This is
    the legality model the schedule-space autotuner enumerates.
    """
    return [
        factor
        for factor in range(2, MAX_FACTOR + 1)
        if bound % factor == 0
    ]


def select_unroll_factor(bound: int) -> int:
    """The paper's automatic factor selection for a dimension bound.

    Prefer the smallest divisor of ``bound`` that is at least
    :data:`MIN_FACTOR` (four hides the FPU pipeline); fully unroll tiny
    dims; fall back to a smaller divisor (partial stall).

    A bound with no divisor in ``[2, MAX_FACTOR]`` — any prime larger
    than :data:`MAX_FACTOR`, e.g. 11 or 13 — cannot be interleaved
    without a remainder loop, which the pass does not generate.  The
    selection then returns :data:`NO_UNROLL` (1) and the op is left
    untouched; the tuner's legality model
    (:func:`legal_unroll_factors`) relies on exactly this contract.
    """
    if bound <= MIN_FACTOR:
        return bound
    for factor in range(MIN_FACTOR, MAX_FACTOR + 1):
        if bound % factor == 0:
            return factor
    for factor in (3, 2):
        if bound % factor == 0:
            return factor
    # Explicit fallback: divisor-free bound (prime > MAX_FACTOR).
    return NO_UNROLL


def unroll_dim_candidates(op: memref_stream.GenericOp) -> list[int]:
    """Parallel dims on which every output varies, outermost first.

    Only these dims yield independent interleaved accumulators; the
    automatic selection takes the innermost, the ``dim`` pass option
    (and the autotuner) may pick any of them.
    """
    out_maps = op.indexing_maps[len(op.inputs) :]
    candidates = []
    for dim in op.parallel_dims:
        # Output maps are over the compressed parallel space after
        # scalar replacement; translate the dim index.
        out_dim = op.parallel_dims.index(dim)
        varies = all(
            any(d != 0 for d in amap.unit_deltas()[out_dim])
            for amap in out_maps
        )
        if varies:
            candidates.append(dim)
    return candidates


def select_unroll_dim(op: memref_stream.GenericOp) -> int | None:
    """The parallel dim to interleave: the innermost parallel dim on
    which every output varies (so the interleaved accumulators are
    independent)."""
    candidates = unroll_dim_candidates(op)
    return candidates[-1] if candidates else None


class _UnrollAndJamPattern(TypedPattern):
    op_type = memref_stream.GenericOp

    def rewrite(
        self, op: memref_stream.GenericOp, rewriter: PatternRewriter
    ) -> None:
        if not op.reduction_dims or not op.is_scalar_replaced:
            return  # only reductions suffer accumulator RAW stalls
        if op.interleave_factor != 1:
            return  # already interleaved
        dim = select_unroll_dim(op)
        if dim is None:
            return
        factor = select_unroll_factor(op.bounds[dim])
        if factor <= 1:
            return
        _apply_unroll_and_jam(op, dim, factor)
        rewriter.changed = True


def _apply_unroll_and_jam(
    op: memref_stream.GenericOp, dim: int, factor: int
) -> None:
    bounds = list(op.bounds)
    if bounds[dim] % factor:
        raise IRError("unroll factor must divide the dimension bound")
    num_dims = len(bounds)
    new_dim = num_dims  # the interleaved dim, appended last

    # Input maps range over the full iteration space.
    def split_full(amap: AffineMap) -> AffineMap:
        replacement = AffineDimExpr(dim) * factor + AffineDimExpr(new_dim)
        exprs = [
            substitute_dims(e, {dim: replacement}) for e in amap.exprs
        ]
        return AffineMap(num_dims + 1, exprs)

    # Output maps range over the compressed (parallel-only) space.
    out_dim = op.parallel_dims.index(dim)
    num_par = len(op.parallel_dims)

    def split_output(amap: AffineMap) -> AffineMap:
        replacement = AffineDimExpr(out_dim) * factor + AffineDimExpr(
            num_par
        )
        exprs = [
            substitute_dims(e, {out_dim: replacement}) for e in amap.exprs
        ]
        return AffineMap(num_par + 1, exprs)

    maps = op.indexing_maps
    new_maps = [split_full(m) for m in maps[: len(op.inputs)]]
    new_maps += [split_output(m) for m in maps[len(op.inputs) :]]

    bounds[dim] //= factor
    bounds.append(factor)
    kinds = op.iterator_types + ["interleaved"]

    op.attributes["indexing_maps"] = ArrayAttr(new_maps)
    op.attributes["bounds"] = DenseIntAttr(bounds)
    op.attributes["iterator_types"] = ArrayAttr(
        [StringAttr(k) for k in kinds]
    )
    _interleave_body(op, factor)


def _interleave_body(op: memref_stream.GenericOp, factor: int) -> None:
    """Replicate the body ``factor`` times, grouping args per operand."""
    old_block = op.body_block
    num_operands = len(old_block.args)
    new_block = Block(
        [
            old_block.args[operand].type
            for operand in range(num_operands)
            for _ in range(factor)
        ]
    )
    yielded: list[SSAValue] = [None] * (len(op.outputs) * factor)  # type: ignore[list-item]
    yield_op = old_block.last_op
    assert isinstance(yield_op, memref_stream.YieldOp)
    n_in = len(op.inputs)
    for copy in range(factor):
        mapping: dict[int, SSAValue] = {}
        for operand in range(num_operands):
            mapping[id(old_block.args[operand])] = new_block.args[
                operand * factor + copy
            ]
        for body_op in old_block.ops:
            if isinstance(body_op, memref_stream.YieldOp):
                for out_index, value in enumerate(body_op.operands):
                    yielded[out_index * factor + copy] = mapping.get(
                        id(value), value
                    )
                continue
            clone = _clone_op(body_op, mapping)
            new_block.add_op(clone)
            for old_res, new_res in zip(body_op.results, clone.results):
                mapping[id(old_res)] = new_res
    new_block.add_op(memref_stream.YieldOp(yielded))
    region = op.regions[0]
    for body_op in old_block.ops:
        body_op.drop_all_references()
        body_op.detach()
    region.blocks.clear()
    old_block.parent = None
    region.add_block(new_block)


def _clone_op(
    body_op: Operation, mapping: dict[int, SSAValue]
) -> Operation:
    """Structurally clone a region-free op, remapping operands."""
    if body_op.regions:
        raise IRError("unroll-and-jam: nested regions unsupported in body")
    clone = object.__new__(type(body_op))
    Operation.__init__(
        clone,
        operands=[mapping.get(id(v), v) for v in body_op.operands],
        result_types=[r.type for r in body_op.results],
        attributes=dict(body_op.attributes),
    )
    return clone


class UnrollAndJamPass(ModulePass):
    """Interleave reductions to hide the FPU pipeline latency.

    Both schedule choices are typed pass options, spec-expressible as
    ``unroll-and-jam{factor=4 dim=1}``; either defaults to the paper's
    automatic heuristic (:func:`select_unroll_factor` /
    :func:`select_unroll_dim`) when omitted.  An op whose bounds make
    the requested (dim, factor) illegal — the dim not output-varying,
    or the factor not dividing the bound — is left untouched, so a
    mis-sized explicit schedule degrades to the un-unrolled kernel
    instead of mis-compiling.
    """

    name = "unroll-and-jam"

    def __init__(self, factor: int | None = None, dim: int | None = None):
        #: Optional fixed factor (None = automatic selection).
        self.factor = factor
        #: Optional fixed dim to interleave (None = innermost varying).
        self.dim = dim

    def run(self, module: Operation) -> None:
        if self.factor is None and self.dim is None:
            apply_patterns(module, [_UnrollAndJamPattern()])
            return
        for op in list(module.walk()):
            if not isinstance(op, memref_stream.GenericOp):
                continue
            if not op.reduction_dims or not op.is_scalar_replaced:
                continue
            if op.interleave_factor != 1:
                continue
            candidates = unroll_dim_candidates(op)
            if self.dim is None:
                dim = candidates[-1] if candidates else None
            elif self.dim in candidates:
                dim = self.dim
            else:
                continue  # requested dim is not legal for this op
            if dim is None:
                continue
            factor = (
                self.factor
                if self.factor is not None
                else select_unroll_factor(op.bounds[dim])
            )
            if factor <= 1 or op.bounds[dim] % factor:
                # NO_UNROLL (or an explicit degenerate factor): leave
                # the op untouched rather than rewriting it into a
                # factor-1 interleave that blocks later interchange.
                continue
            _apply_unroll_and_jam(op, dim, factor)


__all__ = [
    "UnrollAndJamPass",
    "legal_unroll_factors",
    "select_unroll_factor",
    "select_unroll_dim",
    "unroll_dim_candidates",
    "MIN_FACTOR",
    "MAX_FACTOR",
    "NO_UNROLL",
]
