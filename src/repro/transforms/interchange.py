"""Loop interchange: permute the iteration space of a generic.

The iteration order of a ``memref_stream.generic`` is implicit in the
order of its dimensions: streams visit their elements in row-major
order over ``bounds``, so permuting the dimensions permutes every
operand's access sequence — the classic interchange scheduling choice
the paper's multi-level design makes "cheap to express" (Section 3.4).
The pass rewrites ``bounds``, ``iterator_types`` and every indexing map
in place; the body is untouched because it is point-wise in the
iteration space.

The permutation is expressed as a pass option so a chosen schedule
round-trips through the textual pipeline-spec language::

    interchange{permutation=1-0-2}

``permutation[new] = old``: new dimension ``new`` iterates what was
dimension ``old`` (the same convention as the canonical ordering of
``convert-linalg-to-memref-stream``).

Legality: the Snitch lowering requires dimensions ordered parallel-
then-reduction, so only permutations preserving that partition are
accepted (:func:`legal_interchange_permutations` enumerates them — the
schedule-space autotuner's legality model).  The pass must run *before*
``scalar-replacement`` (output maps still range over the full space)
and before ``unroll-and-jam`` (no ``interleaved`` dims yet).
"""

from __future__ import annotations

from itertools import permutations as _itertools_permutations

from ..dialects import memref_stream
from ..ir.affine_map import permute_map
from ..ir.attributes import ArrayAttr, DenseIntAttr, StringAttr
from ..ir.core import IRError, Operation
from ..ir.pass_manager import ModulePass


def parse_permutation(text: str) -> tuple[int, ...]:
    """Parse the spec-level ``"1-0-2"`` form into a dim index tuple."""
    try:
        perm = tuple(int(part) for part in text.split("-"))
    except ValueError:
        raise IRError(
            f"interchange: malformed permutation {text!r} (expected "
            "dash-separated dim indices like '1-0-2')"
        ) from None
    if sorted(perm) != list(range(len(perm))):
        raise IRError(
            f"interchange: {text!r} is not a permutation of "
            f"0..{len(perm) - 1}"
        )
    return perm


def format_permutation(permutation) -> str:
    """The spec-level form of a permutation: ``"1-0-2"``."""
    return "-".join(str(int(d)) for d in permutation)


def legal_interchange_permutations(
    iterator_types,
) -> list[tuple[int, ...]]:
    """Every permutation keeping parallel dims before reduction dims.

    This is the legality model shared by the pass and the autotuner:
    the Snitch lowering insists on [parallel..., reduction...] order,
    so the legal interchanges are exactly (permutation of the parallel
    dims) x (permutation of the reduction dims).  Identity included.
    """
    parallels = [
        i for i, kind in enumerate(iterator_types) if kind == "parallel"
    ]
    reductions = [
        i for i, kind in enumerate(iterator_types) if kind == "reduction"
    ]
    if len(parallels) + len(reductions) != len(iterator_types):
        return []  # interleaved dims present: interchange ran too late
    return [
        par + red
        for par in _itertools_permutations(parallels)
        for red in _itertools_permutations(reductions)
    ]


def apply_interchange(
    op: memref_stream.GenericOp, permutation: tuple[int, ...]
) -> None:
    """Permute ``op``'s iteration space in place (must be legal)."""
    bounds = list(op.bounds)
    kinds = op.iterator_types
    if len(permutation) != len(bounds):
        raise IRError(
            f"interchange: permutation {format_permutation(permutation)} "
            f"has {len(permutation)} dims but the generic iterates "
            f"{len(bounds)}"
        )
    if op.is_scalar_replaced:
        raise IRError(
            "interchange must run before scalar-replacement (output "
            "maps no longer range over the full iteration space)"
        )
    if "interleaved" in kinds:
        raise IRError(
            "interchange must run before unroll-and-jam (interleaved "
            "dims are pinned innermost)"
        )
    new_kinds = [kinds[old] for old in permutation]
    if permutation not in legal_interchange_permutations(kinds):
        raise IRError(
            f"interchange: {format_permutation(permutation)} reorders "
            f"{kinds} to {new_kinds}, breaking the parallel-then-"
            "reduction order the Snitch lowering requires"
        )
    op.attributes["bounds"] = DenseIntAttr(
        [bounds[old] for old in permutation]
    )
    op.attributes["iterator_types"] = ArrayAttr(
        [StringAttr(k) for k in new_kinds]
    )
    op.attributes["indexing_maps"] = ArrayAttr(
        [permute_map(m, permutation) for m in op.indexing_maps]
    )


class InterchangePass(ModulePass):
    """Permute generic iteration spaces (``permutation=1-0-2``).

    Applies to every ``memref_stream.generic`` whose rank matches the
    permutation's length; other generics (e.g. a rank-2 fill next to a
    rank-3 matmul) are left alone.  An empty permutation (the default)
    is the identity — the pass is then a no-op, so the option-free
    spec form stays round-trippable.
    """

    name = "interchange"

    def __init__(self, permutation: str = ""):
        #: Spec-level permutation ("1-0-2"); "" = identity/no-op.
        self.permutation = permutation

    def run(self, module: Operation) -> None:
        if not self.permutation:
            return
        perm = parse_permutation(self.permutation)
        for op in module.walk():
            if not isinstance(op, memref_stream.GenericOp):
                continue
            if len(op.bounds) != len(perm):
                continue
            apply_interchange(op, perm)


__all__ = [
    "InterchangePass",
    "apply_interchange",
    "format_permutation",
    "legal_interchange_permutations",
    "parse_permutation",
]
