"""Scalar replacement of reduction accumulators (Table 3 "+ Scalar Repl.").

"To avoid accumulating intermediate results in memory, we exclude the
reduction indices from the iteration space specifications of the
results, guiding our lowering to loops to use local values for
accumulation" (paper Section 3.4).  Concretely: an output map over the
full iteration space ``(d_par..., d_red...) -> (...)`` is rewritten to a
map over the parallel dims only; the lowering then keeps the accumulator
in a register across the whole reduction.
"""

from __future__ import annotations

from ..dialects import memref_stream
from ..ir.affine_map import AffineDimExpr, AffineMap, substitute_dims
from ..ir.attributes import ArrayAttr
from ..ir.core import Operation
from ..ir.pass_manager import ModulePass
from ..ir.rewriter import PatternRewriter, TypedPattern, apply_patterns


def can_scalar_replace(op: memref_stream.GenericOp) -> bool:
    """Whether the generic's outputs are invariant in the reduction dims."""
    red = set(op.reduction_dims)
    if not red:
        return False
    if op.is_scalar_replaced:
        return False
    num_dims = len(op.bounds)
    for amap in op.indexing_maps[len(op.inputs) :]:
        if amap.num_dims != num_dims:
            return False
        deltas = amap.unit_deltas()
        for dim in red:
            if any(d != 0 for d in deltas[dim]):
                return False  # output actually varies with the reduction
    return True


class _ScalarReplacePattern(TypedPattern):
    op_type = memref_stream.GenericOp

    def rewrite(
        self, op: memref_stream.GenericOp, rewriter: PatternRewriter
    ) -> None:
        if not can_scalar_replace(op):
            return
        parallel = op.parallel_dims
        # Old parallel dim -> its index in the compressed dim space.
        mapping = {
            old: AffineDimExpr(new) for new, old in enumerate(parallel)
        }
        maps = op.indexing_maps
        new_out_maps = []
        for amap in maps[len(op.inputs) :]:
            exprs = [substitute_dims(e, mapping) for e in amap.exprs]
            new_out_maps.append(AffineMap(len(parallel), exprs))
        op.attributes["indexing_maps"] = ArrayAttr(
            maps[: len(op.inputs)] + new_out_maps
        )
        rewriter.changed = True


class ScalarReplacementPass(ModulePass):
    """Exclude reduction dims from all output index spaces."""

    name = "scalar-replacement"

    def run(self, module: Operation) -> None:
        apply_patterns(module, [_ScalarReplacePattern()])


__all__ = ["ScalarReplacementPass", "can_scalar_replace"]
