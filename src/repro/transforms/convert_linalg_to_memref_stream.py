"""Convert ``linalg.generic``/``linalg.fill`` to ``memref_stream.generic``.

The entry pass of the backend: it makes iteration bounds explicit (they
are inferred from operand shapes at the linalg level, paper Section 3.4)
and normalizes the dimension order to [parallel..., reduction...] so the
scheduling passes can assume reductions are innermost.
"""

from __future__ import annotations

from ..dialects import linalg, memref_stream
from ..ir.affine_map import AffineMap, permute_map
from ..ir.core import Block, Operation, Region
from ..ir.pass_manager import ModulePass
from ..ir.rewriter import PatternRewriter, TypedPattern, apply_patterns


def _permutation_to_canonical(iterator_types: list[str]) -> list[int]:
    """Old dim index per new position: parallels first, reductions last."""
    parallels = [
        i for i, kind in enumerate(iterator_types) if kind == "parallel"
    ]
    reductions = [
        i for i, kind in enumerate(iterator_types) if kind == "reduction"
    ]
    return parallels + reductions


class _ConvertGeneric(TypedPattern):
    """linalg.generic -> memref_stream.generic with explicit bounds."""

    op_type = linalg.GenericOp

    def rewrite(self, op: linalg.GenericOp, rewriter: PatternRewriter):
        bounds = op.iteration_bounds()
        iterator_types = op.iterator_types
        perm = _permutation_to_canonical(iterator_types)
        new_bounds = [bounds[i] for i in perm]
        new_kinds = [iterator_types[i] for i in perm]
        new_maps = [permute_map(m, perm) for m in op.indexing_maps]
        body = op.regions[0]
        op.regions.remove(body)
        body.parent = None
        old_yield = body.block.last_op
        assert isinstance(old_yield, linalg.YieldOp)
        values = list(old_yield.operands)
        old_yield.erase()
        body.block.add_op(memref_stream.YieldOp(values))
        new_op = memref_stream.GenericOp(
            inputs=list(op.inputs),
            outputs=list(op.outputs),
            indexing_maps=new_maps,
            iterator_types=new_kinds,
            bounds=new_bounds,
            body=body,
        )
        rewriter.replace_matched_op(new_op, [])


class _ConvertFill(TypedPattern):
    """linalg.fill -> a rank-parallel memref_stream.generic.

    The body ignores the (unused) current value and yields the fill
    scalar, which stays an outside-defined SSA value.
    """

    op_type = linalg.FillOp

    def rewrite(self, op: linalg.FillOp, rewriter: PatternRewriter):
        out_type = op.output.type
        rank = out_type.rank
        block = Block([out_type.element_type])
        block.add_op(memref_stream.YieldOp([op.fill_value]))
        new_op = memref_stream.GenericOp(
            inputs=[],
            outputs=[op.output],
            indexing_maps=[AffineMap.identity(rank)],
            iterator_types=["parallel"] * rank,
            bounds=list(out_type.shape),
            body=Region([block]),
        )
        rewriter.replace_matched_op(new_op, [])


class ConvertLinalgToMemrefStreamPass(ModulePass):
    """Module pass running both conversion patterns to fixpoint."""

    name = "convert-linalg-to-memref-stream"

    def run(self, module: Operation) -> None:
        apply_patterns(module, [_ConvertGeneric(), _ConvertFill()])


__all__ = ["ConvertLinalgToMemrefStreamPass"]
