"""Peephole canonicalizations on the RISC-V dialects.

Two groups, matching where they are legal in the pipeline:

* :class:`CanonicalizePass` — before register allocation:
  per-block deduplication of identical ``li`` constants (the stream
  configuration sequences materialise the same bound/stride values
  repeatedly) and folding of ``addi rd, rs, 0`` into its operand.
* :class:`EliminateIdentityMovesPass` — after register allocation and
  loop flattening: ``mv x, x`` / ``fmv.d f, f`` moves whose source and
  destination ended up in the same register are dead *unless* the
  register has stream semantics (reading/writing ft0-ft2 inside a
  streaming region pops/pushes and must be preserved).
"""

from __future__ import annotations

from ..backend.registers import SNITCH_STREAM_REGISTERS
from ..dialects import riscv
from ..ir.core import Block, Operation
from ..ir.pass_manager import ModulePass


class CanonicalizePass(ModulePass):
    """Pre-allocation cleanups: constant dedup, addi-zero folding."""

    name = "canonicalize"

    def run(self, module: Operation) -> None:
        # Single lazy walk; blocks are canonicalized when their owning
        # op is yielded, before the walk descends into them, so erased
        # ops are never visited and no snapshot copies are needed.
        for op in module.walk():
            for region in op.regions:
                for block in region.blocks:
                    self._canonicalize_block(block)

    def _canonicalize_block(self, block: Block) -> None:
        constants: dict[int, riscv.LiOp] = {}
        for op in block.ops:
            if isinstance(op, riscv.LiOp):
                rd_type = op.rd.type
                if rd_type.is_allocated:
                    continue  # pinned constants are not shareable
                existing = constants.get(op.immediate)
                if existing is None:
                    constants[op.immediate] = op
                    continue
                op.rd.replace_all_uses_with(existing.rd)
                op.erase()
            elif isinstance(op, riscv.AddiOp) and op.immediate == 0:
                if op.rd.type.is_allocated:
                    continue
                op.rd.replace_all_uses_with(op.rs1)
                op.erase()


class EliminateIdentityMovesPass(ModulePass):
    """Post-allocation cleanup: drop moves within the same register."""

    name = "eliminate-identity-moves"

    def run(self, module: Operation) -> None:
        # The walk only ever erases the op just yielded (which holds no
        # regions), so the copy-free iteration is safe.
        for op in module.walk():
            if not isinstance(op, (riscv.MVOp, riscv.FMVOp)):
                continue
            source_type = op.rs.type
            dest_type = op.rd.type
            if not (
                source_type.is_allocated
                and source_type == dest_type
            ):
                continue
            if (
                isinstance(op, riscv.FMVOp)
                and dest_type.register in SNITCH_STREAM_REGISTERS
            ):
                continue  # may be a stream pop/push: keep it
            op.rd.replace_all_uses_with(op.rs)
            op.erase()


__all__ = ["CanonicalizePass", "EliminateIdentityMovesPass"]
