"""Pass wrapper around the multi-level register allocator."""

from __future__ import annotations

from ..backend.register_allocator import RegisterAllocator
from ..dialects import riscv_func
from ..ir.core import Operation
from ..ir.pass_manager import ModulePass


class AllocateRegistersPass(ModulePass):
    """Run the spill-free allocator on every ``rv_func.func``."""

    name = "allocate-registers"

    def run(self, module: Operation) -> None:
        for op in list(module.walk()):
            if isinstance(op, riscv_func.FuncOp):
                RegisterAllocator().allocate(op)


__all__ = ["AllocateRegistersPass"]
