"""Named compilation pipelines.

``ours`` is the full multi-level flow of paper Section 3.4; the
``table3-*`` prefixes reproduce the incremental ablation of Table 3; and
``clang``/``mlir`` are the general-purpose-backend comparison flows of
Figure 8 (both lower through explicit loops and loads/stores and differ
only in how much mid-level optimisation happens before the backend).
"""

from __future__ import annotations

from ..ir.pass_manager import ModulePass, PassManager
from .allocate_registers_pass import AllocateRegistersPass
from .canonicalize import CanonicalizePass, EliminateIdentityMovesPass
from .convert_linalg_to_memref_stream import (
    ConvertLinalgToMemrefStreamPass,
)
from .convert_to_riscv import ConvertToRISCVPass
from .dce import DeadCodeEliminationPass
from .fuse_fill import FuseFillPass
from .fuse_fmadd import FuseFMAddPass
from .lower_generic_to_loops import LowerGenericToLoopsPass
from .lower_generic_to_pointer_loops import LowerGenericToPointerLoopsPass
from .lower_riscv_scf import LowerRiscvScfPass
from .lower_snitch_stream import LowerSnitchStreamPass
from .lower_to_snitch import LowerToSnitchPass
from .scalar_replacement import ScalarReplacementPass
from .unroll_and_jam import UnrollAndJamPass
from .verify_streams import VerifyStreamsPass


def _snitch_backend() -> list[ModulePass]:
    """Shared tail: fuse FMAs, lower streams, allocate, flatten loops."""
    return [
        VerifyStreamsPass(),
        FuseFMAddPass(),
        LowerSnitchStreamPass(),
        CanonicalizePass(),
        DeadCodeEliminationPass(),
        AllocateRegistersPass(),
        LowerRiscvScfPass(),
        EliminateIdentityMovesPass(),
    ]


def _loops_backend() -> list[ModulePass]:
    """Shared tail of the general-purpose (no-Snitch-extension) flows."""
    return [
        ConvertToRISCVPass(),
        FuseFMAddPass(),
        DeadCodeEliminationPass(),
        AllocateRegistersPass(),
        LowerRiscvScfPass(),
        EliminateIdentityMovesPass(),
    ]


def build_pipeline(
    name: str,
    unroll_factor: int | None = None,
    snapshot: bool = False,
) -> PassManager:
    """Construct one of the named pipelines.

    ============== =========================================================
    name           contents
    ============== =========================================================
    ours           full flow: fuse-fill, scalar replacement, unroll-and-jam,
                   streams + FREP (paper Section 3.4)
    table3-baseline direct loop lowering, standard RISC-V only
    table3-streams  + SSR input streams
    table3-scalar   + scalar replacement of the accumulator
    table3-frep     + FREP hardware loops
    table3-fuse     + fill fusion (output becomes a pure write stream)
    table3-unroll   + unroll-and-jam (== ours)
    clang          naive loop flow (stands in for the C/Clang baseline)
    mlir           loop flow with mid-level scalar replacement (stands in
                   for the upstream-MLIR baseline)
    ============== =========================================================
    """
    front = [ConvertLinalgToMemrefStreamPass()]
    if name in ("ours", "table3-unroll"):
        passes = front + [
            FuseFillPass(),
            ScalarReplacementPass(),
            UnrollAndJamPass(unroll_factor),
            LowerToSnitchPass(use_frep=True),
            *_snitch_backend(),
        ]
    elif name == "table3-baseline":
        passes = front + [
            LowerGenericToLoopsPass(),
            *_loops_backend(),
        ]
    elif name == "clang":
        passes = front + [
            LowerGenericToPointerLoopsPass(),
            FuseFMAddPass(),
            DeadCodeEliminationPass(),
            AllocateRegistersPass(),
            LowerRiscvScfPass(),
            EliminateIdentityMovesPass(),
        ]
    elif name == "table3-streams":
        passes = front + [
            LowerToSnitchPass(use_frep=False),
            *_snitch_backend(),
        ]
    elif name == "table3-scalar":
        passes = front + [
            ScalarReplacementPass(),
            LowerToSnitchPass(use_frep=False),
            *_snitch_backend(),
        ]
    elif name == "table3-frep":
        passes = front + [
            ScalarReplacementPass(),
            LowerToSnitchPass(use_frep=True),
            *_snitch_backend(),
        ]
    elif name == "table3-fuse":
        passes = front + [
            FuseFillPass(),
            ScalarReplacementPass(),
            LowerToSnitchPass(use_frep=True),
            *_snitch_backend(),
        ]
    elif name == "mlir":
        passes = front + [
            ScalarReplacementPass(),
            LowerGenericToPointerLoopsPass(),
            FuseFMAddPass(),
            DeadCodeEliminationPass(),
            AllocateRegistersPass(),
            LowerRiscvScfPass(),
            EliminateIdentityMovesPass(),
        ]
    else:
        raise ValueError(f"unknown pipeline {name!r}")
    return PassManager(passes, snapshot=snapshot)


#: Pipeline names accepted by :func:`build_pipeline`.
PIPELINE_NAMES = (
    "ours",
    "table3-baseline",
    "table3-streams",
    "table3-scalar",
    "table3-frep",
    "table3-fuse",
    "table3-unroll",
    "clang",
    "mlir",
)

#: The Table 3 ablation stages, in the paper's cumulative order.
TABLE3_STAGES = (
    ("Baseline", "table3-baseline"),
    ("+ Streams", "table3-streams"),
    ("+ Scalar Replacement", "table3-scalar"),
    ("+ FRep", "table3-frep"),
    ("+ Fuse Fill", "table3-fuse"),
    ("+ Unroll-and-Jam", "table3-unroll"),
)


__all__ = ["build_pipeline", "PIPELINE_NAMES", "TABLE3_STAGES"]
