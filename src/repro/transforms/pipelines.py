"""Named compilation pipelines, declared as textual pipeline specs.

``ours`` is the full multi-level flow of paper Section 3.4; the
``table3-*`` prefixes reproduce the incremental ablation of Table 3;
``clang``/``mlir`` are the general-purpose-backend comparison flows of
Figure 8 (both lower through explicit loops and loads/stores and differ
only in how much mid-level optimisation happens before the backend);
and ``lowlevel`` is the backend-only tail used for handwritten
dialect-level kernels (Section 4.2).

Each pipeline is a spec string in :data:`NAMED_PIPELINES`
(:mod:`repro.ir.pipeline_spec` syntax) and is built through the pass
registry — :func:`build_pipeline` accepts a pipeline name *or* any raw
spec string, so arbitrary flows compose without touching this table::

    build_pipeline("convert-linalg-to-memref-stream,fuse-fill,"
                   "scalar-replacement,unroll-and-jam{factor=4},"
                   "lower-to-snitch,verify-streams,fuse-fmadd,"
                   "lower-snitch-stream,canonicalize,dce,"
                   "allocate-registers,lower-riscv-scf,"
                   "eliminate-identity-moves")
"""

from __future__ import annotations

from ..ir.pass_manager import PassInstrumentation, PassManager
from ..ir.pipeline_spec import PipelineSpecError, parse_pipeline_spec
from .registry import PASS_REGISTRY
from .unroll_and_jam import UnrollAndJamPass

#: Shared tail of the streaming flows: verify streams, fuse FMAs,
#: lower streams, allocate registers, flatten loops.
_SNITCH_BACKEND = (
    "verify-streams,fuse-fmadd,lower-snitch-stream,canonicalize,dce,"
    "allocate-registers,lower-riscv-scf,eliminate-identity-moves"
)

#: Shared tail of the general-purpose (no-Snitch-extension) flows.
_LOOPS_BACKEND = (
    "convert-to-riscv,fuse-fmadd,dce,allocate-registers,"
    "lower-riscv-scf,eliminate-identity-moves"
)

#: Backend tail after pointer-loop lowering (already rv-level).
_POINTER_BACKEND = (
    "fuse-fmadd,dce,allocate-registers,lower-riscv-scf,"
    "eliminate-identity-moves"
)

_FRONT = "convert-linalg-to-memref-stream"

_OURS = (
    f"{_FRONT},fuse-fill,scalar-replacement,unroll-and-jam,"
    f"lower-to-snitch,{_SNITCH_BACKEND}"
)

#: Pipeline name -> textual pipeline spec.
#:
#: ============== ========================================================
#: name           contents
#: ============== ========================================================
#: ours           full flow: fuse-fill, scalar replacement, unroll-and-jam,
#:                streams + FREP (paper Section 3.4)
#: table3-baseline direct loop lowering, standard RISC-V only
#: table3-streams  + SSR input streams
#: table3-scalar   + scalar replacement of the accumulator
#: table3-frep     + FREP hardware loops
#: table3-fuse     + fill fusion (output becomes a pure write stream)
#: table3-unroll   + unroll-and-jam (== ours)
#: clang          naive loop flow (stands in for the C/Clang baseline)
#: mlir           loop flow with mid-level scalar replacement (stands in
#:                for the upstream-MLIR baseline)
#: lowlevel       backend-only tail for handwritten dialect-level kernels
#: ============== ========================================================
NAMED_PIPELINES: dict[str, str] = {
    "ours": _OURS,
    "table3-baseline": f"{_FRONT},lower-generic-to-loops,{_LOOPS_BACKEND}",
    "table3-streams": (
        f"{_FRONT},lower-to-snitch{{use-frep=false}},{_SNITCH_BACKEND}"
    ),
    "table3-scalar": (
        f"{_FRONT},scalar-replacement,lower-to-snitch{{use-frep=false}},"
        f"{_SNITCH_BACKEND}"
    ),
    "table3-frep": (
        f"{_FRONT},scalar-replacement,lower-to-snitch,{_SNITCH_BACKEND}"
    ),
    "table3-fuse": (
        f"{_FRONT},fuse-fill,scalar-replacement,lower-to-snitch,"
        f"{_SNITCH_BACKEND}"
    ),
    "table3-unroll": _OURS,
    "clang": (
        f"{_FRONT},lower-generic-to-pointer-loops,{_POINTER_BACKEND}"
    ),
    "mlir": (
        f"{_FRONT},scalar-replacement,lower-generic-to-pointer-loops,"
        f"{_POINTER_BACKEND}"
    ),
    "lowlevel": (
        "lower-snitch-stream,canonicalize,dce,allocate-registers,"
        "lower-riscv-scf,eliminate-identity-moves"
    ),
}


def scheduled_pipeline_spec(
    permutation: str | None = None,
    unroll_factor: int | None = None,
    unroll_dim: int | None = None,
    use_frep: bool = True,
) -> str:
    """The ``ours`` flow with explicit schedule choices as pass options.

    This is how a tuned schedule round-trips as a plain pipeline-spec
    string: interchange permutation (``"1-0-2"`` form, None = keep the
    canonical order), unroll-and-jam factor/dim (None = the paper's
    automatic heuristics).  ``scheduled_pipeline_spec()`` with no
    arguments is exactly :data:`NAMED_PIPELINES`\\ ["ours"]'s flow.
    """
    stages = [_FRONT, "fuse-fill"]
    if permutation:
        stages.append(f"interchange{{permutation={permutation}}}")
    stages.append("scalar-replacement")
    options = []
    if unroll_factor is not None:
        options.append(f"factor={unroll_factor}")
    if unroll_dim is not None:
        options.append(f"dim={unroll_dim}")
    stages.append(
        f"unroll-and-jam{{{' '.join(options)}}}" if options
        else "unroll-and-jam"
    )
    stages.append(
        "lower-to-snitch" if use_frep else "lower-to-snitch{use-frep=false}"
    )
    stages.append(_SNITCH_BACKEND)
    return ",".join(stages)


def expand_pipeline(pipeline: str) -> str:
    """Resolve a pipeline name to its spec (specs pass through)."""
    if pipeline in NAMED_PIPELINES:
        return NAMED_PIPELINES[pipeline]
    if (
        "," not in pipeline
        and "{" not in pipeline
        and pipeline not in PASS_REGISTRY
    ):
        # Neither a named pipeline nor anything spec-shaped: reject
        # with the full menu rather than a parse error.
        import difflib

        message = f"unknown pipeline {pipeline!r}"
        close = difflib.get_close_matches(
            pipeline,
            list(NAMED_PIPELINES) + list(PASS_REGISTRY.names()),
            n=3,
        )
        if close:
            message += f" — did you mean {' or '.join(close)}?"
        raise PipelineSpecError(
            f"{message} (named pipelines: "
            f"{', '.join(sorted(NAMED_PIPELINES))}; or pass a spec "
            f"string of registered passes: "
            f"{', '.join(PASS_REGISTRY.names())})"
        )
    return pipeline


def build_pipeline(
    pipeline: str,
    unroll_factor: int | None = None,
    snapshot: bool = False,
    verify_each: bool = True,
    instrument: PassInstrumentation | None = None,
) -> PassManager:
    """Construct a pass manager from a pipeline name or spec string.

    ``unroll_factor`` overrides the factor of every ``unroll-and-jam``
    pass in the resulting pipeline (None keeps each pass's own
    configuration — automatic selection unless the spec says
    ``unroll-and-jam{factor=N}``).
    """
    specs = parse_pipeline_spec(expand_pipeline(pipeline))
    passes = PASS_REGISTRY.build_pipeline_specs(specs)
    if unroll_factor is not None:
        for pass_ in passes:
            if isinstance(pass_, UnrollAndJamPass):
                pass_.factor = unroll_factor
    return PassManager(
        passes,
        verify_each=verify_each,
        snapshot=snapshot,
        instrument=instrument,
    )


#: Pipeline names accepted by :func:`build_pipeline` (the linalg-level
#: evaluation flows; ``lowlevel`` is additionally in NAMED_PIPELINES).
PIPELINE_NAMES = (
    "ours",
    "table3-baseline",
    "table3-streams",
    "table3-scalar",
    "table3-frep",
    "table3-fuse",
    "table3-unroll",
    "clang",
    "mlir",
)

#: The Table 3 ablation stages, in the paper's cumulative order.
TABLE3_STAGES = (
    ("Baseline", "table3-baseline"),
    ("+ Streams", "table3-streams"),
    ("+ Scalar Replacement", "table3-scalar"),
    ("+ FRep", "table3-frep"),
    ("+ Fuse Fill", "table3-fuse"),
    ("+ Unroll-and-Jam", "table3-unroll"),
)


__all__ = [
    "NAMED_PIPELINES",
    "PIPELINE_NAMES",
    "TABLE3_STAGES",
    "build_pipeline",
    "expand_pipeline",
    "scheduled_pipeline_spec",
]
