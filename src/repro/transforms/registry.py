"""The pass registry: canonical names + typed options for every pass.

Every concrete :class:`~repro.ir.pass_manager.ModulePass` defined in
the ``repro`` package that declares a canonical kebab-case ``name`` is
auto-registered here the moment its class is defined (a subclass hook
on ``ModulePass``); importing this module pulls in every pass module
under :mod:`repro.transforms`, so ``PASS_REGISTRY`` is always complete
after ``import repro``.  Passes defined outside the package (user
extensions, tests) register explicitly with the :func:`register_pass`
decorator, keeping the global registry deterministic.

The registry is what turns a parsed textual pipeline spec
(:mod:`repro.ir.pipeline_spec`) into configured pass instances:
each registered pass exposes its constructor parameters as typed,
dataclass-style :class:`PassOption`\\ s, and :meth:`PassRegistry.build`
coerces and validates spec options against them with precise error
messages (unknown pass, unknown option, wrong option type).
"""

from __future__ import annotations

import difflib
import inspect
import re
from dataclasses import dataclass

from ..ir import pass_manager
from ..ir.pass_manager import ModulePass
from ..ir.pipeline_spec import OptionValue, PassSpec, PipelineSpecError

#: Canonical pass names: lowercase kebab-case.
_KEBAB_RE = re.compile(r"[a-z][a-z0-9]*(-[a-z0-9]+)*\Z")

#: Sentinel for options with no default (must be given in the spec).
REQUIRED = inspect.Parameter.empty


@dataclass(frozen=True)
class PassOption:
    """One typed constructor option of a registered pass."""

    #: Spec-level kebab-case key (``use-frep``).
    name: str
    #: Python constructor parameter name (``use_frep``).
    py_name: str
    #: Value type the option coerces to.
    type: type
    #: Default value, or :data:`REQUIRED`.
    default: object

    @property
    def required(self) -> bool:
        return self.default is REQUIRED

    def describe(self) -> str:
        """``factor: int = None`` — for docs and error messages."""
        text = f"{self.name}: {self.type.__name__}"
        if not self.required:
            text += f" = {self.default!r}"
        return text


@dataclass(frozen=True)
class RegisteredPass:
    """Registry entry: a pass class plus its introspected options."""

    name: str
    cls: type[ModulePass]
    options: tuple[PassOption, ...]

    @property
    def summary(self) -> str:
        """First line of the pass class docstring."""
        for line in (self.cls.__doc__ or "").splitlines():
            line = line.strip()
            if line:
                return line
        return "(undocumented)"

    def option(self, name: str) -> PassOption | None:
        for option in self.options:
            if option.name == name:
                return option
        return None


def _option_type(parameter: inspect.Parameter) -> type:
    """Infer an option's scalar type from annotation, then default."""
    annotation = parameter.annotation
    if isinstance(annotation, str):
        # Postponed annotations: match on the source text. ``bool``
        # before ``int`` so ``bool | int`` unions stay boolean.
        for type_ in (bool, int, float, str):
            if type_.__name__ in annotation:
                return type_
    elif annotation in (bool, int, float, str):
        return annotation
    default = parameter.default
    if default is not REQUIRED and default is not None:
        for type_ in (bool, int, float, str):
            if isinstance(default, type_):
                return type_
    return str


def _introspect_options(cls: type[ModulePass]) -> tuple[PassOption, ...]:
    options = []
    signature = inspect.signature(cls.__init__)
    for parameter in list(signature.parameters.values())[1:]:
        if parameter.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            continue
        options.append(
            PassOption(
                name=parameter.name.replace("_", "-"),
                py_name=parameter.name,
                type=_option_type(parameter),
                default=parameter.default,
            )
        )
    return tuple(options)


def _coerce(
    pass_name: str, option: PassOption, value: OptionValue
) -> object:
    """Check/convert a parsed spec value to the option's declared type."""

    def fail(expected: str) -> PipelineSpecError:
        return PipelineSpecError(
            f"option '{option.name}' of pass '{pass_name}' expects "
            f"{expected}, got {value!r}"
        )

    if option.type is bool:
        if isinstance(value, bool):
            return value
        raise fail("a bool (true/false)")
    if option.type is int:
        if isinstance(value, bool):
            raise fail("an int")
        if isinstance(value, int):
            return value
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError:
                raise fail("an int") from None
        raise fail("an int")
    if option.type is float:
        if isinstance(value, bool):
            raise fail("a float")
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                raise fail("a float") from None
        raise fail("a float")
    # str target: render scalars back to text.
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


class PassRegistry:
    """Name -> :class:`RegisteredPass` mapping with spec-level build."""

    def __init__(self):
        self._entries: dict[str, RegisteredPass] = {}

    def register(self, cls: type[ModulePass]) -> type[ModulePass]:
        """Register a pass class under its canonical ``name``.

        Validates kebab-case naming and asserts name uniqueness —
        two different classes may not claim the same name.  Usable as
        a decorator, and invoked automatically for every ``ModulePass``
        subclass that declares its own ``name``.
        """
        name = cls.__dict__.get("name")
        if not isinstance(name, str) or name == ModulePass.name:
            raise ValueError(
                f"pass class {cls.__name__} declares no canonical "
                f"'name' attribute"
            )
        if not _KEBAB_RE.match(name):
            raise ValueError(
                f"pass name {name!r} of {cls.__name__} is not "
                f"kebab-case"
            )
        existing = self._entries.get(name)
        if existing is not None and existing.cls is not cls:
            raise ValueError(
                f"duplicate pass name {name!r}: already registered by "
                f"{existing.cls.__name__}, re-declared by {cls.__name__}"
            )
        self._entries[name] = RegisteredPass(
            name=name, cls=cls, options=_introspect_options(cls)
        )
        return cls

    def names(self) -> tuple[str, ...]:
        """All registered pass names, sorted."""
        return tuple(sorted(self._entries))

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self):
        return iter(sorted(self._entries.values(), key=lambda e: e.name))

    def get(self, name: str) -> RegisteredPass:
        """Look up a pass by name; unknown names raise with suggestions."""
        try:
            return self._entries[name]
        except KeyError:
            message = f"unknown pass {name!r}"
            close = difflib.get_close_matches(name, self._entries, n=3)
            if close:
                message += f" — did you mean {' or '.join(close)}?"
            message += f" (registered passes: {', '.join(self.names())})"
            raise PipelineSpecError(message) from None

    def build(self, spec: PassSpec) -> ModulePass:
        """Instantiate and configure the pass a spec describes."""
        entry = self.get(spec.name)
        kwargs: dict[str, object] = {}
        for key, value in spec.options.items():
            option = entry.option(key)
            if option is None:
                valid = ", ".join(o.name for o in entry.options)
                raise PipelineSpecError(
                    f"unknown option {key!r} for pass '{entry.name}'"
                    + (
                        f" (valid options: {valid})"
                        if valid
                        else " (it takes no options)"
                    )
                )
            kwargs[option.py_name] = _coerce(entry.name, option, value)
        for option in entry.options:
            if option.required and option.py_name not in kwargs:
                raise PipelineSpecError(
                    f"pass '{entry.name}' requires option "
                    f"'{option.name}' ({option.describe()})"
                )
        return entry.cls(**kwargs)

    def build_pipeline_specs(
        self, specs: list[PassSpec]
    ) -> list[ModulePass]:
        """Build every pass of a parsed pipeline spec."""
        return [self.build(spec) for spec in specs]


#: The process-wide registry all passes auto-register into.
PASS_REGISTRY = PassRegistry()


def register_pass(cls: type[ModulePass]) -> type[ModulePass]:
    """Explicit registration decorator (auto-registration usually
    makes this unnecessary)."""
    return PASS_REGISTRY.register(cls)


def _auto_register(cls: type) -> None:
    """Subclass hook: register every pass that declares its own name.

    Scoped to classes defined inside the ``repro`` package — the
    global registry must stay deterministic regardless of what test
    or user modules define.  External passes opt in explicitly with
    :func:`register_pass`.
    """
    if cls.__module__.partition(".")[0] != "repro":
        return
    name = cls.__dict__.get("name")
    if not isinstance(name, str) or name == ModulePass.name:
        return  # abstract/helper subclass; nothing to register
    PASS_REGISTRY.register(cls)


def _sweep_existing(cls: type) -> None:
    _auto_register(cls)
    for subclass in cls.__subclasses__():
        _sweep_existing(subclass)


if _auto_register not in pass_manager.SUBCLASS_HOOKS:
    pass_manager.SUBCLASS_HOOKS.append(_auto_register)
    for _existing in ModulePass.__subclasses__():
        _sweep_existing(_existing)

# Importing the pass modules defines (hence registers) every pass.
from . import allocate_registers_pass  # noqa: E402,F401
from . import canonicalize  # noqa: E402,F401
from . import convert_linalg_to_memref_stream  # noqa: E402,F401
from . import convert_to_riscv  # noqa: E402,F401
from . import dce  # noqa: E402,F401
from . import fuse_fill  # noqa: E402,F401
from . import fuse_fmadd  # noqa: E402,F401
from . import interchange  # noqa: E402,F401
from . import lower_generic_to_loops  # noqa: E402,F401
from . import lower_generic_to_pointer_loops  # noqa: E402,F401
from . import lower_riscv_scf  # noqa: E402,F401
from . import lower_snitch_stream  # noqa: E402,F401
from . import lower_to_snitch  # noqa: E402,F401
from . import scalar_replacement  # noqa: E402,F401
from . import unroll_and_jam  # noqa: E402,F401
from . import verify_streams  # noqa: E402,F401

__all__ = [
    "PASS_REGISTRY",
    "PassOption",
    "PassRegistry",
    "RegisteredPass",
    "REQUIRED",
    "register_pass",
]
