"""Fuse an output-zeroing fill into the consuming generic (Table 3).

MatMul-style kernels arrive as two linalg operations: a ``linalg.fill``
zeroing the output and the reduction itself (paper Section 4.1).  After
conversion both are ``memref_stream.generic`` ops.  This pass recognises
a constant fill whose buffer is next consumed as the output of a
reduction generic and records the constant in the consumer's ``inits``
attribute: the accumulator then starts from the constant, "eliminating
the remaining loads and stores" on the output (Section 4.4).
"""

from __future__ import annotations

from ..dialects import arith, memref_stream
from ..ir.attributes import ArrayAttr, FloatAttr
from ..ir.core import Operation
from ..ir.pass_manager import ModulePass
from ..ir.rewriter import PatternRewriter, TypedPattern, apply_patterns


def fill_constant(op: memref_stream.GenericOp) -> FloatAttr | None:
    """The constant a fill-like generic writes, or ``None``.

    Fill-like: no inputs, one output, a body that only yields a value
    produced by ``arith.constant``.
    """
    if op.inputs or len(op.outputs) != 1:
        return None
    block = op.body_block
    ops = block.ops
    if len(ops) != 1 or not isinstance(ops[0], memref_stream.YieldOp):
        return None
    yielded = ops[0].operands[0]
    owner = yielded.owner
    if not isinstance(owner, arith.ConstantOp):
        return None
    value = owner.value
    if not isinstance(value, FloatAttr):
        return None
    return value


class _FuseFillPattern(TypedPattern):
    """Matches the *consumer* generic and looks back for a fill."""

    op_type = memref_stream.GenericOp

    def rewrite(
        self, op: memref_stream.GenericOp, rewriter: PatternRewriter
    ) -> None:
        if not op.reduction_dims:
            return
        if op.parent is None:
            return
        previous = op.prev_op
        if not isinstance(previous, memref_stream.GenericOp):
            return
        constant = fill_constant(previous)
        if constant is None:
            return
        filled_buffer = previous.outputs[0]
        inits = op.inits
        changed = False
        for i, output in enumerate(op.outputs):
            if output is filled_buffer and inits[i] == (
                memref_stream.FROM_MEMORY
            ):
                inits[i] = constant
                changed = True
        if not changed:
            return
        op.attributes["inits"] = ArrayAttr(inits)
        rewriter.erase_op(previous)
        rewriter.changed = True


class FuseFillPass(ModulePass):
    """Run the fill-fusion pattern to fixpoint over a module."""

    name = "fuse-fill"

    def run(self, module: Operation) -> None:
        apply_patterns(module, [_FuseFillPattern()])


__all__ = ["FuseFillPass", "fill_constant"]
