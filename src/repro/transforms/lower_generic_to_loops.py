"""Lower ``memref_stream.generic`` to plain ``scf`` loop nests.

This is the *general-purpose backend* path (paper Figure 8, the "Clang"
and "MLIR" flows): no streams, no FREP — explicit loads/stores, index
arithmetic and loop control, exactly the code shape whose utilization
plateau the evaluation attributes to the LLVM backend's view of the
machine.  It is also the Table 3 "Baseline" lowering.

Scalar-replaced generics keep their accumulator in ``scf.for``
iteration arguments (registers after conversion); otherwise the output
is read-modified-written on every innermost iteration.
"""

from __future__ import annotations

from ..dialects import arith, func as func_dialect, memref, memref_stream
from ..ir.affine_map import (
    AffineBinaryExpr,
    AffineConstantExpr,
    AffineDimExpr,
    AffineExpr,
    AffineMap,
)
from ..ir.attributes import FloatAttr, FloatType, MemRefType, index
from ..ir.builder import Builder
from ..ir.core import Block, IRError, Operation, SSAValue
from ..ir.pass_manager import ModulePass
from ..dialects import scf


class LoopLoweringError(IRError):
    """Raised when a generic cannot be lowered to loops."""


class LowerGenericToLoopsPass(ModulePass):
    """Lower every ``memref_stream.generic`` to scf/memref/arith."""

    name = "lower-generic-to-loops"

    def run(self, module: Operation) -> None:
        for op in list(module.walk()):
            if isinstance(op, memref_stream.GenericOp):
                _GenericToLoops(op).lower()


class _GenericToLoops:
    def __init__(self, op: memref_stream.GenericOp):
        if op.interleave_factor != 1:
            raise LoopLoweringError(
                "loop lowering expects non-interleaved generics "
                "(the baseline flows do not unroll-and-jam)"
            )
        self.op = op
        self.builder = Builder.before(op)
        self.bounds = op.bounds
        self.kinds = op.iterator_types
        self.par_dims = op.parallel_dims
        self.red_dims = op.reduction_dims
        self.scalar_replaced = op.is_scalar_replaced
        self.maps = op.indexing_maps
        self.ivs: dict[int, SSAValue] = {}
        self._index_cache: dict[int, SSAValue] = {}

    # -- scalar/index helpers ---------------------------------------------------

    def const_index(self, value: int) -> SSAValue:
        cached = self._index_cache.get(value)
        if cached is not None:
            return cached
        op = self.builder.insert(arith.ConstantOp.from_int(value))
        self._index_cache[value] = op.result
        return op.result

    def eval_expr(self, expr: AffineExpr) -> SSAValue:
        """Emit arith ops computing an affine expression over the ivs."""
        if isinstance(expr, AffineConstantExpr):
            return self.const_index(expr.value)
        if isinstance(expr, AffineDimExpr):
            return self.ivs[expr.position]
        if isinstance(expr, AffineBinaryExpr):
            lhs = self.eval_expr(expr.lhs)
            rhs = self.eval_expr(expr.rhs)
            op_class = (
                arith.AddiOp if expr.kind == "+" else arith.MuliOp
            )
            return self.builder.insert(op_class(lhs, rhs)).result
        raise LoopLoweringError(f"unsupported affine expr {expr}")

    def indices_for(self, amap: AffineMap, dims: list[int]) -> list[SSAValue]:
        """Index values of a map whose dims are the given iteration dims."""
        saved = self.ivs
        self.ivs = {i: saved[d] for i, d in enumerate(dims)}
        try:
            return [self.eval_expr(e) for e in amap.exprs]
        finally:
            self.ivs = saved

    # -- main structure ------------------------------------------------------------

    def lower(self) -> None:
        if self.scalar_replaced:
            self._emit_parallel_loops(0, accumulate=True)
        else:
            self._emit_all_loops(0)
        self.op.erase()

    def _for_loop(self, bound: int, iter_args=()) -> scf.ForOp:
        loop = scf.ForOp(
            self.const_index(0),
            self.const_index(bound),
            self.const_index(1),
            iter_args,
        )
        self.builder.insert(loop)
        return loop

    # Path 1: no scalar replacement — single perfect nest with RMW body.
    def _emit_all_loops(self, depth: int) -> None:
        if depth == len(self.bounds):
            self._emit_rmw_body()
            return
        loop = self._for_loop(self.bounds[depth])
        saved = self.builder
        self.builder = Builder.at_end(loop.body_block)
        self._index_cache = {}
        self.ivs[depth] = loop.induction_variable
        self._emit_all_loops(depth + 1)
        self.builder.insert(scf.YieldOp())
        self.builder = saved

    def _emit_rmw_body(self) -> None:
        op = self.op
        all_dims = list(range(len(self.bounds)))
        loaded_inputs = []
        for value, amap in zip(op.inputs, self.maps[: len(op.inputs)]):
            idx = self.indices_for(amap, all_dims)
            loaded_inputs.append(
                self.builder.insert(memref.LoadOp(value, idx)).result
            )
        out_maps = self.maps[len(op.inputs) :]
        out_dims = op.output_map_dims()
        old_values = []
        out_indices = []
        block = op.body_block
        for o, (value, amap) in enumerate(zip(op.outputs, out_maps)):
            idx = self.indices_for(amap, out_dims)
            out_indices.append(idx)
            arg = block.args[len(op.inputs) + o]
            init = op.inits[o]
            if arg.has_uses and isinstance(init, FloatAttr):
                const = self.builder.insert(
                    arith.ConstantOp.from_float(
                        init.value, arg.type
                    )
                )
                old_values.append(const.result)
            elif arg.has_uses:
                old_values.append(
                    self.builder.insert(
                        memref.LoadOp(value, idx)
                    ).result
                )
            else:
                old_values.append(None)
        results = self._clone_body(loaded_inputs, old_values)
        for o, value in enumerate(op.outputs):
            self.builder.insert(
                memref.StoreOp(results[o], value, out_indices[o])
            )

    # Path 2: scalar replacement — parallel loops, then an accumulating
    # reduction nest, then one store per output point.
    def _emit_parallel_loops(self, position: int, accumulate: bool) -> None:
        if position == len(self.par_dims):
            self._emit_accumulating_reduction()
            return
        dim = self.par_dims[position]
        loop = self._for_loop(self.bounds[dim])
        saved = self.builder
        self.builder = Builder.at_end(loop.body_block)
        self._index_cache = {}
        self.ivs[dim] = loop.induction_variable
        self._emit_parallel_loops(position + 1, accumulate)
        self.builder.insert(scf.YieldOp())
        self.builder = saved

    def _emit_accumulating_reduction(self) -> None:
        op = self.op
        if len(op.outputs) != 1:
            raise LoopLoweringError(
                "scalar-replaced loop lowering supports one output"
            )
        out_map = self.maps[len(op.inputs)]
        out_dims = op.output_map_dims()
        out_idx = self.indices_for(out_map, out_dims)
        init = op.inits[0]
        element_type = op.outputs[0].type.element_type
        if isinstance(init, FloatAttr):
            acc0 = self.builder.insert(
                arith.ConstantOp.from_float(init.value, element_type)
            ).result
        else:
            acc0 = self.builder.insert(
                memref.LoadOp(op.outputs[0], out_idx)
            ).result
        final = self._emit_reduction_nest(0, [acc0])
        self.builder.insert(
            memref.StoreOp(final[0], op.outputs[0], out_idx)
        )

    def _emit_reduction_nest(
        self, position: int, accumulators: list[SSAValue]
    ) -> list[SSAValue]:
        if position == len(self.red_dims):
            op = self.op
            all_dims = list(range(len(self.bounds)))
            loaded = []
            for value, amap in zip(
                op.inputs, self.maps[: len(op.inputs)]
            ):
                idx = self.indices_for(amap, all_dims)
                loaded.append(
                    self.builder.insert(
                        memref.LoadOp(value, idx)
                    ).result
                )
            return self._clone_body(loaded, accumulators)
        dim = self.red_dims[position]
        loop = self._for_loop(self.bounds[dim], accumulators)
        saved = self.builder
        self.builder = Builder.at_end(loop.body_block)
        self._index_cache = {}
        self.ivs[dim] = loop.induction_variable
        inner = self._emit_reduction_nest(
            position + 1, loop.body_iter_args
        )
        self.builder.insert(scf.YieldOp(inner))
        self.builder = saved
        return list(loop.results)

    # -- body cloning -----------------------------------------------------------------

    def _clone_body(
        self,
        loaded_inputs: list[SSAValue],
        old_values: list[SSAValue | None],
    ) -> list[SSAValue]:
        op = self.op
        block = op.body_block
        mapping: dict[int, SSAValue] = {}
        for i, value in enumerate(loaded_inputs):
            mapping[id(block.args[i])] = value
        for o, value in enumerate(old_values):
            if value is not None:
                mapping[id(block.args[len(op.inputs) + o])] = value
        results: list[SSAValue] = []
        for body_op in block.ops:
            if isinstance(body_op, memref_stream.YieldOp):
                results = [
                    mapping.get(id(v), v) for v in body_op.operands
                ]
                continue
            if body_op.regions:
                raise LoopLoweringError("nested regions in generic body")
            clone = object.__new__(type(body_op))
            Operation.__init__(
                clone,
                operands=[
                    mapping.get(id(v), v) for v in body_op.operands
                ],
                result_types=[r.type for r in body_op.results],
                attributes=dict(body_op.attributes),
            )
            self.builder.insert(clone)
            for old, new in zip(body_op.results, clone.results):
                mapping[id(old)] = new
        return results


__all__ = ["LowerGenericToLoopsPass", "LoopLoweringError"]
