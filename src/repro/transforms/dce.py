"""Dead code elimination for pure operations."""

from __future__ import annotations

from ..dialects.riscv import FloatRegisterType, GetRegisterOp, IntRegisterType
from ..ir.core import Operation
from ..ir.pass_manager import ModulePass
from ..ir.traits import Pure


def _writes_physical_register(op: Operation) -> bool:
    """Results pinned to a concrete register encode a deliberate
    physical effect — a stream push (ft0-ft2 while streaming) or an ABI
    value (a result left in fa0) — and must survive DCE.

    ``rv.get_register`` only *names* a register and is always erasable.
    """
    if isinstance(op, GetRegisterOp):
        return False
    for result in op.results:
        rtype = result.type
        if (
            isinstance(rtype, (FloatRegisterType, IntRegisterType))
            and rtype.is_allocated
        ):
            return True
    return False


class DeadCodeEliminationPass(ModulePass):
    """Erase pure ops (and constant materialisations) with no uses."""

    name = "dce"

    def run(self, module: Operation) -> None:
        changed = True
        while changed:
            changed = False
            for op in list(module.walk()):
                if op.parent is None or op is module:
                    continue
                if not op.has_trait(Pure):
                    continue
                if op.regions:
                    continue
                if any(r.has_uses for r in op.results):
                    continue
                if _writes_physical_register(op):
                    continue
                op.erase()
                changed = True


__all__ = ["DeadCodeEliminationPass"]
