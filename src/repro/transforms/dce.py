"""Dead code elimination for pure operations.

A single backward pass: one walk collects every already-dead pure op
into a worklist; erasing an op then pushes any of its operand-producers
that just lost their last use.  Total work is O(ops + erased), not
O(rounds x ops) — no module re-walks, regardless of how deep dead
def-use chains go.
"""

from __future__ import annotations

from ..dialects.riscv import FloatRegisterType, GetRegisterOp, IntRegisterType
from ..ir.core import Operation, OpResult
from ..ir.pass_manager import ModulePass
from ..ir.traits import Pure


def _writes_physical_register(op: Operation) -> bool:
    """Results pinned to a concrete register encode a deliberate
    physical effect — a stream push (ft0-ft2 while streaming) or an ABI
    value (a result left in fa0) — and must survive DCE.

    ``rv.get_register`` only *names* a register and is always erasable.
    """
    if isinstance(op, GetRegisterOp):
        return False
    for result in op.results:
        rtype = result.type
        if (
            isinstance(rtype, (FloatRegisterType, IntRegisterType))
            and rtype.is_allocated
        ):
            return True
    return False


def _is_erasable(op: Operation) -> bool:
    """Pure, region-free, result-unused, no pinned physical register."""
    if op.regions or Pure not in type(op).traits:
        return False
    for result in op.results:
        if result.uses:
            return False
    return not _writes_physical_register(op)


class DeadCodeEliminationPass(ModulePass):
    """Erase pure ops (and constant materialisations) with no uses."""

    name = "dce"

    def run(self, module: Operation) -> None:
        # Backward seed order so chains erase producer-last: a walk is
        # pre-order, so popping from the end visits uses before defs.
        worklist = [
            op
            for op in module.walk()
            if op is not module and _is_erasable(op)
        ]
        while worklist:
            op = worklist.pop()
            if op.parent is None or not _is_erasable(op):
                continue  # already erased, or revived since enqueued
            operands = list(op.operands)
            op.erase()
            for value in operands:
                if value.has_uses or not isinstance(value, OpResult):
                    continue
                producer = value.op
                if producer.parent is not None and _is_erasable(producer):
                    worklist.append(producer)


__all__ = ["DeadCodeEliminationPass"]
