"""Content-addressed artifact store.

Generalizes the tuner's cycle cache (:mod:`repro.tune.cache`) from
"cycle counts only" to *any* compilation artifact: compiled assembly
plus metadata, per-pass timings, tuned schedules, cycle measurements.
The design carries over the durability lessons of that cache and adds
content addressing:

* **keys are content hashes** — an artifact is addressed by the sha256
  of exactly the inputs that determine it (for a compiled kernel: the
  canonical module text, the canonical pipeline spec, and
  ``ENGINE_VERSION``), so two processes that compile the same thing
  independently produce the same key and share the entry;
* **one file per artifact** — ``<root>/objects/<kind>/<kk>/<key>.json``
  (``kk`` = first two hex digits).  Concurrent writers of *different*
  artifacts never contend, and concurrent writers of the *same*
  artifact write identical bytes;
* **integrity hashes verified on read** — every entry embeds the
  sha256 of its canonical payload JSON; a mismatch (torn write, bit
  rot, hand edit) quarantines the file to ``<name>.corrupt`` and
  reports a miss, never a wrong artifact;
* **flock + atomic rename writes** — payloads are written to a
  pid-tagged temp file, fsynced, and renamed into place under a
  store-wide advisory lock, so a SIGKILL mid-write leaves at most a
  stale temp file (cleaned up by the next writer), never a truncated
  entry;
* **LRU size cap** — ``max_bytes`` bounds the store; eviction removes
  least-recently-*used* entries (reads refresh an entry's mtime) and
  is accounted in :meth:`stats`.

Failure semantics follow ``docs/ROBUSTNESS.md``: corruption is
quarantined with a warning, never silently eaten, and a missing or
unreadable store directory degrades to misses instead of raising.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import warnings
from pathlib import Path

from ..snitch.engine import ENGINE_VERSION

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None


class StoreError(ValueError):
    """A malformed key, kind, or artifact payload."""


#: Artifact kinds the repo currently stores.  The store itself is
#: kind-agnostic (any ``[a-z-]`` name works); these are the
#: conventional ones, documented in ``docs/SERVICE.md``.
KNOWN_KINDS = ("kernel", "cycles", "schedule")

_HEX = set("0123456789abcdef")


def content_key(*parts: object) -> str:
    """sha256 hex digest of a tuple of key parts.

    Parts are length-prefixed before hashing so no two distinct tuples
    can collide by concatenation (``("ab", "c")`` vs ``("a", "bc")``).
    """
    digest = hashlib.sha256()
    for part in parts:
        text = part if isinstance(part, str) else json.dumps(
            part, sort_keys=True, separators=(",", ":")
        )
        data = text.encode("utf-8")
        digest.update(f"{len(data)}:".encode("ascii"))
        digest.update(data)
    return digest.hexdigest()


def compile_key(
    module_text: str,
    pipeline_spec: str,
    engine_version: int = ENGINE_VERSION,
) -> str:
    """The content address of one compilation.

    The canonical module text and canonical pipeline spec pin the
    *compiler* inputs; the engine version rides along so artifacts
    that embed simulator-derived data (cycle counts) invalidate
    themselves when the timing model changes — the same policy as the
    tuner's cycle cache.
    """
    return content_key(module_text, pipeline_spec, int(engine_version))


def _payload_digest(payload: dict) -> str:
    """Integrity hash of an artifact payload (canonical JSON)."""
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


class ArtifactStore:
    """Content-addressed (kind, key) -> JSON payload store (see
    module docstring).

    ``max_bytes`` arms the LRU size cap: every :meth:`put` that pushes
    the store past the cap evicts least-recently-used entries until it
    fits again.  ``None`` (the default) means unbounded; :meth:`gc`
    applies a cap on demand either way.
    """

    SCHEMA = 1

    def __init__(
        self, root: str | Path, max_bytes: int | None = None
    ):
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        self.evicted_bytes = 0
        self.quarantined = 0
        self._lock = threading.Lock()

    # -- paths ----------------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    def _entry_path(self, kind: str, key: str) -> Path:
        if not kind or not all(c.isalnum() or c == "-" for c in kind):
            raise StoreError(f"bad artifact kind {kind!r}")
        if len(key) != 64 or not set(key) <= _HEX:
            raise StoreError(
                f"bad artifact key {key!r} (want sha256 hex digest)"
            )
        return self.objects_dir / kind / key[:2] / f"{key}.json"

    def _lock_path(self) -> Path:
        return self.root / "store.lock"

    def _flock(self):
        """Advisory exclusive store lock (no-op without fcntl)."""

        class _Lock:
            def __init__(self, path: Path):
                self.path = path
                self.handle = None

            def __enter__(self):
                if fcntl is None:
                    return self
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self.handle = open(self.path, "w")
                fcntl.flock(self.handle, fcntl.LOCK_EX)
                return self

            def __exit__(self, *exc):
                if self.handle is not None:
                    fcntl.flock(self.handle, fcntl.LOCK_UN)
                    self.handle.close()

        return _Lock(self._lock_path())

    # -- core API -------------------------------------------------------------

    def put(
        self,
        kind: str,
        key: str,
        payload: dict,
        meta: dict | None = None,
    ) -> Path:
        """Persist one artifact; returns its entry path.

        Identical (kind, key) pairs carry identical payloads by
        construction (the key is a content address), so overwrites are
        idempotent.  The write is crash-safe: temp file + fsync +
        atomic rename under the store lock.
        """
        if not isinstance(payload, dict):
            raise StoreError(
                f"artifact payload must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        path = self._entry_path(kind, key)
        entry = {
            "schema": self.SCHEMA,
            "kind": kind,
            "key": key,
            "integrity": _payload_digest(payload),
            "meta": meta or {},
            "payload": payload,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(entry, indent=2, sort_keys=True) + "\n"
        tmp = path.with_suffix(f".json.{os.getpid()}.tmp")
        with self._flock():
            with open(tmp, "w") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            tmp.replace(path)
        with self._lock:
            self.puts += 1
        self._sweep_stale_tmp(path.parent)
        if self.max_bytes is not None:
            self.gc(self.max_bytes)
        return path

    def get(self, kind: str, key: str) -> dict | None:
        """The artifact payload, or None on miss.

        The embedded integrity hash is re-verified; a mismatching or
        unreadable entry is quarantined to ``<name>.corrupt`` (a
        warning names it) and reported as a miss.  A hit refreshes the
        entry's mtime — the LRU clock :meth:`gc` evicts by.
        """
        path = self._entry_path(kind, key)
        try:
            text = path.read_text()
        except OSError:
            with self._lock:
                self.misses += 1
            return None
        payload = self._verify(path, kind, key, text)
        with self._lock:
            if payload is None:
                self.misses += 1
            else:
                self.hits += 1
        if payload is not None:
            try:
                os.utime(path)  # LRU touch
            except OSError:  # pragma: no cover - entry raced away
                pass
        return payload

    def contains(self, kind: str, key: str) -> bool:
        """Whether an entry exists (no integrity check, no LRU touch)."""
        return self._entry_path(kind, key).exists()

    def _verify(
        self, path: Path, kind: str, key: str, text: str
    ) -> dict | None:
        """Parse + integrity-check one entry; quarantine on failure."""
        try:
            entry = json.loads(text)
        except ValueError:
            self._quarantine(path, "undecodable JSON")
            return None
        if not isinstance(entry, dict):
            self._quarantine(path, "not a JSON object")
            return None
        payload = entry.get("payload")
        if (
            entry.get("schema") != self.SCHEMA
            or entry.get("kind") != kind
            or entry.get("key") != key
            or not isinstance(payload, dict)
        ):
            self._quarantine(path, "malformed entry structure")
            return None
        if entry.get("integrity") != _payload_digest(payload):
            self._quarantine(path, "integrity hash mismatch")
            return None
        return payload

    def _quarantine(self, path: Path, reason: str) -> None:
        corrupt = path.with_suffix(path.suffix + ".corrupt")
        try:
            path.replace(corrupt)
            where = str(corrupt)
        except OSError:
            where = "(quarantine rename failed; file left in place)"
        with self._lock:
            self.quarantined += 1
        warnings.warn(
            f"artifact {path.name} is corrupt ({reason}); "
            f"quarantined to {where}",
            RuntimeWarning,
            stacklevel=4,
        )

    # -- maintenance ----------------------------------------------------------

    def _entries(self) -> list[tuple[Path, int, float]]:
        """(path, size, mtime) of every live entry file."""
        out = []
        if not self.objects_dir.is_dir():
            return out
        for path in sorted(self.objects_dir.rglob("*.json")):
            try:
                stat = path.stat()
            except OSError:
                continue
            out.append((path, stat.st_size, stat.st_mtime))
        return out

    def _sweep_stale_tmp(self, directory: Path) -> None:
        """Remove pid-tagged temp files whose writer died (SIGKILL
        mid-write); live writers' temps are left alone."""
        try:
            candidates = list(directory.glob("*.tmp"))
        except OSError:
            return
        for tmp in candidates:
            parts = tmp.name.rsplit(".", 2)
            if len(parts) != 3 or parts[2] != "tmp":
                continue
            try:
                pid = int(parts[1])
            except ValueError:
                continue
            if pid == os.getpid() or _pid_alive(pid):
                continue
            try:
                tmp.unlink()
            except OSError:  # pragma: no cover - raced away
                pass

    def gc(self, max_bytes: int | None = None) -> dict:
        """Evict least-recently-used entries down to ``max_bytes``.

        Also sweeps stale temp files store-wide.  Returns a report:
        entries/bytes before and after, entries evicted.  ``None``
        (and no store-level cap) only sweeps temp files.
        """
        cap = self.max_bytes if max_bytes is None else max_bytes
        with self._flock():
            if self.objects_dir.is_dir():
                for directory in {
                    p.parent for p in self.objects_dir.rglob("*.tmp")
                }:
                    self._sweep_stale_tmp(directory)
            entries = self._entries()
            total = sum(size for _, size, _ in entries)
            before = {"entries": len(entries), "bytes": total}
            evicted = 0
            if cap is not None:
                # Oldest mtime first = least recently used (reads
                # refresh mtime).
                entries.sort(key=lambda item: item[2])
                for path, size, _ in entries:
                    if total <= cap:
                        break
                    try:
                        path.unlink()
                    except OSError:
                        continue
                    total -= size
                    evicted += 1
                    with self._lock:
                        self.evictions += 1
                        self.evicted_bytes += size
        return {
            "before": before,
            "after": {
                "entries": before["entries"] - evicted,
                "bytes": total,
            },
            "evicted": evicted,
        }

    def verify_all(self) -> dict:
        """Integrity-check every entry in place (no quarantine).

        Returns ``{"ok": N, "corrupt": N}`` — the concurrency drills
        use it to prove racing writers leave zero corrupt entries.
        """
        ok = corrupt = 0
        for path, _, _ in self._entries():
            try:
                entry = json.loads(path.read_text())
                payload = entry["payload"]
                good = (
                    entry["integrity"] == _payload_digest(payload)
                    and entry["schema"] == self.SCHEMA
                )
            except (OSError, ValueError, KeyError, TypeError):
                good = False
            if good:
                ok += 1
            else:
                corrupt += 1
        return {"ok": ok, "corrupt": corrupt}

    def stats(self) -> dict:
        """Traffic counters of this handle + current disk footprint."""
        entries = self._entries()
        with self._lock:
            return {
                "root": str(self.root),
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "evictions": self.evictions,
                "evicted_bytes": self.evicted_bytes,
                "quarantined": self.quarantined,
                "entries": len(entries),
                "bytes": sum(size for _, size, _ in entries),
                "max_bytes": self.max_bytes,
            }


class RequestJournal:
    """Crash-safe record of accepted-but-unfinished requests.

    The server journals every request it admits for *computation*
    (store hits never touch the journal) and removes the entry once
    the result is persisted or faulted.  A server that dies mid-batch
    — SIGKILL, OOM, power loss — therefore leaves behind exactly the
    entries it never finished; on restart, :meth:`sweep` returns
    those interrupted records (entries whose recorded writer pid is
    dead) and clears them, so the new server can report what was lost
    and clients can resubmit (completed keys come back as cheap store
    hits).

    Durability follows the store's idioms: one JSON file, rewritten
    via pid-tagged temp + fsync + atomic rename under an advisory
    ``flock`` (``<path>.lock``), so a crash mid-journal-write leaves
    the previous consistent state, never a truncated file.
    """

    SCHEMA = 1

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._mutex = threading.Lock()

    def _flock(self):
        class _Lock:
            def __init__(self, path: Path):
                self.path = path
                self.handle = None

            def __enter__(self):
                if fcntl is None:
                    return self
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self.handle = open(self.path, "w")
                fcntl.flock(self.handle, fcntl.LOCK_EX)
                return self

            def __exit__(self, *exc):
                if self.handle is not None:
                    fcntl.flock(self.handle, fcntl.LOCK_UN)
                    self.handle.close()

        return _Lock(self.path.with_suffix(self.path.suffix + ".lock"))

    def _read(self) -> dict:
        """Entry-id -> record; unreadable/corrupt journals degrade to
        empty (the store's contract: never raise on bad durable
        state)."""
        try:
            data = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return {}
        if (
            not isinstance(data, dict)
            or data.get("schema") != self.SCHEMA
            or not isinstance(data.get("entries"), dict)
        ):
            return {}
        return data["entries"]

    def _write(self, entries: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(
            {"schema": self.SCHEMA, "entries": entries},
            indent=2,
            sort_keys=True,
        ) + "\n"
        tmp = self.path.with_suffix(
            f"{self.path.suffix}.{os.getpid()}.tmp"
        )
        with open(tmp, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(self.path)

    def begin(self, kind: str, key: str, label: str = "") -> str:
        """Record one accepted-but-unfinished request; returns its
        entry id."""
        entry_id = f"{kind}/{key}"
        with self._mutex, self._flock():
            entries = self._read()
            entries[entry_id] = {
                "kind": kind,
                "key": key,
                "label": label,
                "pid": os.getpid(),
                "started": time.time(),
            }
            self._write(entries)
        return entry_id

    def finish(self, entry_id: str) -> None:
        """Drop a completed (persisted or faulted) request's entry."""
        with self._mutex, self._flock():
            entries = self._read()
            if entries.pop(entry_id, None) is not None:
                self._write(entries)

    def sweep(self) -> list[dict]:
        """Interrupted work left by dead writers, cleared on return.

        An entry whose recorded pid is still alive belongs to a live
        server sharing the journal and is left alone.
        """
        with self._mutex, self._flock():
            entries = self._read()
            interrupted = [
                record
                for record in entries.values()
                if not _pid_alive(record.get("pid", -1))
            ]
            if interrupted:
                survivors = {
                    entry_id: record
                    for entry_id, record in entries.items()
                    if _pid_alive(record.get("pid", -1))
                }
                self._write(survivors)
        return sorted(
            interrupted, key=lambda r: (r.get("kind", ""), r.get("key", ""))
        )

    def pending(self) -> list[dict]:
        """Current unfinished entries (no sweep, no mutation)."""
        with self._mutex:
            return sorted(
                self._read().values(),
                key=lambda r: (r.get("kind", ""), r.get("key", "")),
            )


__all__ = [
    "ArtifactStore",
    "KNOWN_KINDS",
    "RequestJournal",
    "StoreError",
    "compile_key",
    "content_key",
]
