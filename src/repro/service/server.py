"""The long-lived compile-and-tune batch server.

:class:`CompileServer` is the in-process serving core (the Unix-socket
front end lives in :mod:`repro.service.client`).  Every request is one
deterministic job — compile a kernel through a pipeline spec, or
measure a schedule config's cycles — and resolution is store-first:

1. the request is mapped to its content address (sha256 of canonical
   module text, canonical pipeline spec / config key, engine version);
2. the :class:`~repro.service.store.ArtifactStore` is consulted — a
   hit rehydrates the artifact without touching a worker;
3. misses are **single-flight deduplicated**: identical keys within a
   batch collapse to one job, and a key another thread is already
   computing is awaited instead of recomputed;
4. remaining jobs fan out across a
   :class:`~repro.tune.workers.HardenedPool` (watchdog timeouts,
   bounded retry, crash respawn, degradation to serial — PR 6's
   service-grade worker tier);
5. results are persisted to the store; failures come back as
   structured :class:`~repro.tune.faults.Fault` values on the result,
   never as exceptions — a batch always returns one result per
   request.

The server is thread-safe: concurrent :meth:`submit` calls from many
threads share in-flight work and serialize on the worker pool.
:meth:`stats` reports traffic, dedup counts, fault histograms, pool
events, and the sizes of the process-wide caches a long-lived server
must keep bounded (the engine decode cache, the network layer memo).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace as _replace

from ..compiler import CompiledKernel, Compiler
from ..kernels import networks
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import (
    absorb,
    correlation,
    correlation_id,
    recording,
    span,
    tracing_enabled,
)
from ..snitch import engine
from ..tune.faults import (
    CancelledFault,
    Fault,
    OverloadFault,
    TimeoutFault,
    classify_error,
)
from ..tune.schedule import ScheduleConfig, resolve_kernel
from ..tune.search import evaluate_config
from ..tune.workers import HardenedPool, PoolConfig
from .store import (
    ArtifactStore,
    RequestJournal,
    StoreError,
    compile_key,
    content_key,
)

#: Request kinds the server understands.
REQUEST_KINDS = ("compile", "measure")


@dataclass(frozen=True)
class ServiceRequest:
    """One deterministic job for the compile server.

    ``kind="compile"`` compiles ``kernel`` at ``sizes`` through
    ``pipeline`` (a named pipeline or raw spec) and yields a
    :class:`~repro.compiler.CompiledKernel` artifact.

    ``kind="measure"`` scores schedule ``config`` by simulated cycles
    (the tuner's cycle oracle — multi-core configs row-partition
    across a cluster), validated against the numpy oracle when
    ``validate`` is set, and yields a ``{"cycles": N}`` artifact.
    """

    kind: str
    kernel: str
    sizes: tuple[int, ...]
    pipeline: str = "ours"
    config: ScheduleConfig = field(default_factory=ScheduleConfig)
    seed: int = 0
    validate: bool = True

    def __post_init__(self):
        if self.kind not in REQUEST_KINDS:
            raise StoreError(
                f"unknown request kind {self.kind!r} "
                f"(one of {', '.join(REQUEST_KINDS)})"
            )
        object.__setattr__(
            self, "sizes", tuple(int(s) for s in self.sizes)
        )

    def label(self) -> str:
        shape = "x".join(map(str, self.sizes))
        if self.kind == "compile":
            return f"compile {self.kernel} {shape} [{self.pipeline}]"
        return f"measure {self.kernel} {shape} [{self.config.key()}]"

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "kernel": self.kernel,
            "sizes": list(self.sizes),
            "pipeline": self.pipeline,
            "config": self.config.to_json(),
            "seed": self.seed,
            "validate": self.validate,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ServiceRequest":
        try:
            return cls(
                kind=data["kind"],
                kernel=data["kernel"],
                sizes=tuple(data["sizes"]),
                pipeline=data.get("pipeline", "ours"),
                config=ScheduleConfig.from_json(
                    data.get("config") or {}
                ),
                seed=int(data.get("seed", 0)),
                validate=bool(data.get("validate", True)),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise StoreError(
                f"malformed service request: {error}"
            ) from None


@dataclass
class ServiceResult:
    """One request's outcome: an artifact payload or a structured
    fault, plus provenance (where it came from, how long it took)."""

    request: ServiceRequest
    #: Artifact kind/key in the store ("" when keying itself failed).
    artifact_kind: str
    key: str
    #: The artifact payload (kernel JSON / ``{"cycles": N}``); None on
    #: failure.
    payload: dict | None
    #: Structured failure (None on success).
    fault: Fault | None
    #: "store" (cache hit) | "computed" (fresh job) | "inflight"
    #: (another thread/batch slot computed it first) | "failed"
    #: (computation faulted) | "rejected" (refused at admission:
    #: overload or draining).
    source: str
    #: Submit-to-result wall-clock seconds.
    latency: float
    #: The correlation ID this request was served under ("" when the
    #: caller did not send one) — minted by :class:`ServiceClient`,
    #: carried on the wire message, echoed here and in the server's
    #: recent-request stats so one request can be joined across
    #: client, server, worker and simulator spans.
    correlation_id: str = ""

    @property
    def ok(self) -> bool:
        return self.payload is not None

    def kernel(self) -> CompiledKernel:
        """Rehydrate a compile result's kernel (no recompilation)."""
        if self.request.kind != "compile" or self.payload is None:
            raise StoreError(
                f"no compiled kernel on this result ({self.source}, "
                f"{self.request.label()})"
            )
        return CompiledKernel.from_json(self.payload)

    def to_json(self) -> dict:
        return {
            "request": self.request.to_json(),
            "artifact_kind": self.artifact_kind,
            "key": self.key,
            "payload": self.payload,
            "fault": self.fault.to_json() if self.fault else None,
            "source": self.source,
            "latency": self.latency,
            "correlation_id": self.correlation_id,
        }


def request_key(request: ServiceRequest) -> tuple[str, str]:
    """(artifact kind, content address) of one request.

    Compile requests share the keyspace of the ``api.compile_linalg``
    store fast path: sha256 of (canonical module text, canonical
    pipeline spec, engine version), so a server-filled store also
    serves direct API users and vice versa.
    """
    from ..ir.printer import print_op

    builder, sizes = resolve_kernel(request.kernel, request.sizes)
    module, _ = builder(*sizes)
    text = print_op(module)
    if request.kind == "compile":
        spec = Compiler(request.pipeline).pipeline_spec
        return "kernel", compile_key(text, spec)
    return "cycles", content_key(
        text,
        f"measure|{request.config.key()}|seed={request.seed}"
        f"|validate={request.validate}",
        engine.ENGINE_VERSION,
    )


def _service_task(task) -> tuple[dict | None, dict | None]:
    """One job in a pool worker: (payload, fault_json), never raises.

    When the payload asks for tracing (``trace`` + ``corr_id``), the
    worker records its spans locally — pool workers are forked
    processes, so the caller's recorder is out of reach — and smuggles
    them back inside the artifact dict under ``"__spans__"``, which
    :class:`CompileServer` pops (and re-emits) before persisting the
    artifact to the store.
    """
    payload, _injection = task
    deadline = payload.get("deadline")
    stage: list[str] = ["prepare"]

    def job() -> dict:
        request = ServiceRequest.from_json(payload["request"])
        if request.kind == "compile":
            stage[:] = ["compile"]
            builder, sizes = resolve_kernel(
                request.kernel, request.sizes
            )
            module, _ = builder(*sizes)
            compiled = Compiler(request.pipeline).compile(module)
            return compiled.to_json()
        cycles = evaluate_config(
            request.kernel,
            request.sizes,
            request.config,
            seed=request.seed,
            validate=request.validate,
            deadline_seconds=deadline,
            stage_out=stage,
        )
        return {"cycles": cycles}

    try:
        if not payload.get("trace"):
            return job(), None
        with recording() as recorder:
            with correlation(payload.get("corr_id")):
                with span("worker.job", label=payload["request"].get("kernel")):
                    artifact = job()
        artifact["__spans__"] = recorder.events_json()
        return artifact, None
    except KeyboardInterrupt:
        raise
    except Exception as error:  # classify, don't propagate
        fault = classify_error(
            error, stage=stage[0] if stage else None
        )
        return None, fault.to_json()


class _InFlight:
    """One key's in-flight computation, shared across waiters."""

    __slots__ = ("event", "result")

    def __init__(self):
        self.event = threading.Event()
        self.result: ServiceResult | None = None


class CompileServer:
    """Store-first, single-flight, pool-backed job server (see
    module docstring).  One server owns one
    :class:`~repro.tune.workers.HardenedPool`; call :meth:`close`
    (or use as a context manager) when done."""

    def __init__(
        self,
        store: ArtifactStore,
        workers: int = 1,
        deadline: float | None = None,
        retries: int = 2,
        max_inflight: int | None = None,
        request_deadline: float | None = None,
        journal: RequestJournal | None = None,
    ):
        self.store = store
        self.deadline = deadline
        #: Admission high-water mark: requests in flight (admitted,
        #: not yet resolved) beyond this are refused with a retryable
        #: OverloadFault instead of queuing unboundedly.
        self.max_inflight = max_inflight
        #: Default per-request wall-clock budget, admission to result
        #: (a per-call ``deadline=`` overrides it).
        self.request_deadline = request_deadline
        self.journal = journal
        #: Accepted-but-unfinished work a *previous* server left in
        #: the journal (it died mid-batch); swept and reported here so
        #: clients know to resubmit — completed keys come back as
        #: cheap store hits.
        self.interrupted: list[dict] = (
            journal.sweep() if journal is not None else []
        )
        self.pool = HardenedPool(
            _service_task,
            PoolConfig(
                workers=max(1, workers),
                deadline=deadline,
                retries=retries,
            ),
        )
        # Fork workers before any connection exists — a worker forked
        # mid-connection inherits the connection fds and can pin a
        # closed same-process peer open forever (no EOF).
        self.pool.prestart()
        self.started_at = time.monotonic()
        self._mutex = threading.Lock()
        #: Worker-pool access is serialized: HardenedPool.map is not
        #: reentrant.  Single-flight dedup keeps contention low —
        #: identical concurrent requests never both reach the pool.
        self._pool_mutex = threading.Lock()
        self._inflight: dict[tuple[str, str], _InFlight] = {}
        self._draining = False
        self._inflight_requests = 0
        #: Signalled whenever the in-flight request count drops —
        #: :meth:`drain` waits on it.
        self._idle = threading.Condition(self._mutex)
        #: Per-server metrics (private registry: one server per test
        #: must not see another's traffic).  The historical counter
        #: names are pre-registered so :meth:`stats` always reports
        #: the full set, zeros included.
        self.metrics = MetricsRegistry()
        for name in self._COUNTER_NAMES:
            self.metrics.counter(name)
        self._fault_kinds: dict[str, int] = {}
        #: Most recent requests (key, correlation id, source,
        #: latency) — the stats-side echo of the correlation IDs.
        self._recent: deque[dict] = deque(maxlen=32)

    _COUNTER_NAMES = (
        "requests",
        "store_hits",
        "computed",
        "deduped_in_batch",
        "joined_inflight",
        "faults",
        "rejected_overload",
        "rejected_draining",
        "deadline_expired",
    )

    # -- bookkeeping ----------------------------------------------------------

    def _count(self, name: str, by: int = 1) -> None:
        self.metrics.counter(name).inc(by)

    def _record_fault(self, fault: Fault) -> None:
        self.metrics.counter("faults").inc()
        with self._mutex:
            self._fault_kinds[fault.kind] = (
                self._fault_kinds.get(fault.kind, 0) + 1
            )

    def _finish(self, result: ServiceResult) -> ServiceResult:
        """Stamp the context's correlation ID on a resolved result and
        record it in the latency histogram + recent-request ring."""
        cid = correlation_id() or ""
        result.correlation_id = cid
        self.metrics.histogram(
            "request_latency_seconds", source=result.source
        ).observe(result.latency)
        with self._mutex:
            self._recent.append(
                {
                    "kind": result.request.kind,
                    "label": result.request.label(),
                    "key": result.key,
                    "correlation_id": cid,
                    "source": result.source,
                    "latency": result.latency,
                }
            )
        return result

    def _fail(
        self,
        request: ServiceRequest,
        error: Exception,
        stage: str,
        t0: float,
        artifact_kind: str = "",
        key: str = "",
    ) -> ServiceResult:
        fault = classify_error(
            error, stage=stage, candidate=request.label()
        )
        self._record_fault(fault)
        return ServiceResult(
            request=request,
            artifact_kind=artifact_kind,
            key=key,
            payload=None,
            fault=fault,
            source="failed",
            latency=time.monotonic() - t0,
        )

    # -- admission, drain, deadlines ------------------------------------------

    def _admit(self, count: int) -> str | None:
        """Admit ``count`` requests, or the refusal reason."""
        with self._mutex:
            if self._draining:
                return "draining"
            if (
                self.max_inflight is not None
                and self._inflight_requests + count > self.max_inflight
            ):
                return "overload"
            self._inflight_requests += count
            return None

    def _release(self, count: int) -> None:
        with self._idle:
            self._inflight_requests -= count
            self._idle.notify_all()

    def _refuse(
        self, request: ServiceRequest, reason: str, t0: float
    ) -> ServiceResult:
        """A structured admission refusal (never an exception)."""
        if reason == "draining":
            self._count("rejected_draining")
            fault: Fault = CancelledFault(
                message=(
                    "server is draining; retry against a restarted "
                    "server"
                ),
                candidate=request.label(),
                stage="admission",
            )
        else:
            self._count("rejected_overload")
            fault = OverloadFault(
                message=(
                    f"server at max in-flight capacity "
                    f"({self.max_inflight}); retry with backoff"
                ),
                candidate=request.label(),
                stage="admission",
            )
        self._record_fault(fault)
        return ServiceResult(
            request=request,
            artifact_kind="",
            key="",
            payload=None,
            fault=fault,
            source="rejected",
            latency=time.monotonic() - t0,
        )

    def reject(
        self, request: ServiceRequest, reason: str = "overload"
    ) -> ServiceResult:
        """A structured admission refusal *without* admitting —
        the ``reject-admission`` chaos injection uses this to make an
        injected overload indistinguishable from a real one."""
        self._count("requests")
        return self._finish(self._refuse(request, reason, time.monotonic()))

    def _enforce_deadline(
        self, result: ServiceResult, budget: float | None
    ) -> ServiceResult:
        """Fault a result that finished past its wall-clock budget.

        The artifact (if any) stays in the store — a client retry is
        a cheap store hit — but the caller is told the truth: the
        deadline was missed.  Results that already carry a fault keep
        their original, more specific fault.
        """
        if (
            budget is None
            or result.fault is not None
            or result.latency <= budget
        ):
            return result
        fault = TimeoutFault(
            message=(
                f"request exceeded its {budget:g}s wall-clock "
                f"deadline (took {result.latency:.3f}s)"
            ),
            candidate=result.request.label(),
            stage="request",
        )
        self._record_fault(fault)
        self._count("deadline_expired")
        return _replace(
            result, payload=None, fault=fault, source="failed"
        )

    def _job_deadline(self, deadline_at: float | None) -> float | None:
        """The evaluation deadline to ride into a worker: the pool's
        per-job deadline, tightened by the request's remaining
        wall-clock budget."""
        limits = [
            limit for limit in (self.deadline,) if limit is not None
        ]
        if deadline_at is not None:
            limits.append(max(0.0, deadline_at - time.monotonic()))
        return min(limits) if limits else None

    @property
    def draining(self) -> bool:
        with self._mutex:
            return self._draining

    def begin_drain(self) -> None:
        """Stop admitting new requests (idempotent)."""
        with self._mutex:
            self._draining = True

    def drain(self, timeout: float | None = None) -> bool:
        """Begin draining and wait for in-flight requests to resolve.

        Returns True when the server went idle within ``timeout``
        seconds (None = wait forever), False if in-flight work
        remained when the clock ran out — the caller then faults it
        by closing connections/pool.
        """
        self.begin_drain()
        deadline_at = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._idle:
            while self._inflight_requests > 0:
                remaining = (
                    deadline_at - time.monotonic()
                    if deadline_at is not None
                    else None
                )
                if remaining is not None and remaining <= 0:
                    return False
                if not self._idle.wait(remaining):
                    return False
        return True

    # -- request resolution ---------------------------------------------------

    def submit(
        self,
        request: ServiceRequest,
        deadline: float | None = None,
    ) -> ServiceResult:
        """Resolve one request (admission -> store -> in-flight join
        -> compute).

        Thread-safe and single-flight: if another thread is already
        computing the same content address, this call waits for that
        result instead of recomputing.  ``deadline`` overrides the
        server's default per-request wall-clock budget; a request
        that resolves past its budget is faulted (``timeout``) even
        when the underlying work succeeded (the artifact stays in the
        store, so the retry is cheap).  When the server is at its
        in-flight high-water mark or draining, the request is refused
        with a retryable structured fault, never queued unboundedly.
        """
        t0 = time.monotonic()
        self._count("requests")
        budget = (
            self.request_deadline if deadline is None else deadline
        )
        reason = self._admit(1)
        if reason is not None:
            return self._finish(self._refuse(request, reason, t0))
        try:
            with span("server.submit", label=request.label()):
                result = self._resolve(request, t0, budget)
        finally:
            self._release(1)
        return self._finish(self._enforce_deadline(result, budget))

    def _resolve(
        self,
        request: ServiceRequest,
        t0: float,
        budget: float | None,
    ) -> ServiceResult:
        deadline_at = t0 + budget if budget is not None else None
        try:
            kind, key = request_key(request)
        except Exception as error:
            return self._fail(request, error, "prepare", t0)
        payload = self.store.get(kind, key)
        if payload is not None:
            self._count("store_hits")
            return ServiceResult(
                request=request,
                artifact_kind=kind,
                key=key,
                payload=payload,
                fault=None,
                source="store",
                latency=time.monotonic() - t0,
            )
        record, owner = self._claim((kind, key))
        if not owner:
            wait_budget = (
                max(0.0, deadline_at - time.monotonic())
                if deadline_at is not None
                else None
            )
            if not record.event.wait(wait_budget):
                fault = TimeoutFault(
                    message=(
                        "request deadline expired while waiting on "
                        "another caller's in-flight computation"
                    ),
                    candidate=request.label(),
                    stage="request",
                )
                self._record_fault(fault)
                self._count("deadline_expired")
                return ServiceResult(
                    request=request,
                    artifact_kind=kind,
                    key=key,
                    payload=None,
                    fault=fault,
                    source="failed",
                    latency=time.monotonic() - t0,
                )
            self._count("joined_inflight")
            shared = record.result
            if shared is None:  # owner died without publishing
                return self._fail(
                    request,
                    RuntimeError(
                        "in-flight computation vanished without a "
                        "result"
                    ),
                    "prepare",
                    t0,
                    kind,
                    key,
                )
            result = _replace(
                shared,
                request=request,
                source=(
                    "inflight" if shared.ok else shared.source
                ),
                latency=time.monotonic() - t0,
            )
            if shared.fault is not None:
                self._record_fault(shared.fault)
            return result
        result: ServiceResult | None = None
        try:
            result = self._compute(request, kind, key, t0, deadline_at)
        finally:
            record.result = result
            with self._mutex:
                self._inflight.pop((kind, key), None)
            record.event.set()
        return result

    def _claim(
        self, key: tuple[str, str]
    ) -> tuple[_InFlight, bool]:
        with self._mutex:
            record = self._inflight.get(key)
            if record is not None:
                return record, False
            record = _InFlight()
            self._inflight[key] = record
            return record, True

    @staticmethod
    def _pop_spans(payload):
        """Strip (and re-emit) worker spans smuggled in an artifact —
        they must never be persisted to the content-addressed store."""
        if isinstance(payload, dict):
            absorb(payload.pop("__spans__", None))
        return payload

    def _compute(
        self,
        request: ServiceRequest,
        kind: str,
        key: str,
        t0: float,
        deadline_at: float | None = None,
    ) -> ServiceResult:
        """Run one job on the pool and persist its artifact.

        The job is journalled while in flight (when the server has a
        journal): a server killed here leaves a record a restarted
        server sweeps and reports.
        """
        task_payload = {
            "request": request.to_json(),
            "deadline": self._job_deadline(deadline_at),
            "trace": tracing_enabled(),
            "corr_id": correlation_id(),
        }
        entry_id = (
            self.journal.begin(kind, key, request.label())
            if self.journal is not None
            else None
        )
        try:
            with self._pool_mutex:
                [(payload, fault_json)] = self.pool.map(
                    [(0, request.label(), task_payload)]
                )
            payload = self._pop_spans(payload)
            if fault_json is None:
                self.store.put(kind, key, payload)
        finally:
            if entry_id is not None:
                self.journal.finish(entry_id)
        if fault_json is not None:
            fault = Fault.from_json(fault_json)
            self._record_fault(fault)
            return ServiceResult(
                request=request,
                artifact_kind=kind,
                key=key,
                payload=None,
                fault=fault,
                source="failed",
                latency=time.monotonic() - t0,
            )
        self._count("computed")
        return ServiceResult(
            request=request,
            artifact_kind=kind,
            key=key,
            payload=payload,
            fault=None,
            source="computed",
            latency=time.monotonic() - t0,
        )

    def batch(
        self,
        requests: list[ServiceRequest],
        deadline: float | None = None,
    ) -> list[ServiceResult]:
        """Resolve a batch: store-first, deduplicated, fanned out.

        Identical requests in the batch collapse to one job
        (single-flight within the batch); keys another thread is
        already computing are awaited, not recomputed.  All remaining
        jobs go to the worker pool in one ``map`` so they run
        concurrently when the pool is parallel.  Returns one result
        per request, in order — faults are reported on the result,
        never raised.

        Admission control and the per-request wall-clock ``deadline``
        apply exactly as in :meth:`submit`: a batch past the in-flight
        high-water mark (the whole batch counts) is refused with
        retryable faults, and each result is checked against the
        budget on completion.
        """
        t0 = time.monotonic()
        self._count("requests", len(requests))
        if not requests:
            return []
        budget = (
            self.request_deadline if deadline is None else deadline
        )
        reason = self._admit(len(requests))
        if reason is not None:
            return [
                self._finish(self._refuse(request, reason, t0))
                for request in requests
            ]
        try:
            with span("server.batch", size=len(requests)):
                results = self._resolve_batch(requests, t0, budget)
        finally:
            self._release(len(requests))
        return [
            self._finish(self._enforce_deadline(result, budget))
            for result in results
        ]

    def _resolve_batch(
        self,
        requests: list[ServiceRequest],
        t0: float,
        budget: float | None,
    ) -> list[ServiceResult]:
        deadline_at = t0 + budget if budget is not None else None
        results: list[ServiceResult | None] = [None] * len(requests)
        #: (kind, key) -> positions in the batch that want it.
        wanted: dict[tuple[str, str], list[int]] = {}
        keyed: dict[tuple[str, str], ServiceRequest] = {}
        for pos, request in enumerate(requests):
            try:
                kind, key = request_key(request)
            except Exception as error:
                results[pos] = self._fail(
                    request, error, "prepare", t0
                )
                continue
            wanted.setdefault((kind, key), []).append(pos)
            keyed.setdefault((kind, key), request)
        duplicate_count = sum(
            len(slots) - 1 for slots in wanted.values()
        )
        self._count("deduped_in_batch", duplicate_count)

        # Store pass.
        misses: list[tuple[str, str]] = []
        for (kind, key), slots in wanted.items():
            payload = self.store.get(kind, key)
            if payload is None:
                misses.append((kind, key))
                continue
            self._count("store_hits", len(slots))
            elapsed = time.monotonic() - t0
            for pos in slots:
                results[pos] = ServiceResult(
                    request=requests[pos],
                    artifact_kind=kind,
                    key=key,
                    payload=payload,
                    fault=None,
                    source="store",
                    latency=elapsed,
                )

        # Claim misses; keys in flight elsewhere are awaited below.
        owned: list[tuple[str, str]] = []
        awaited: list[tuple[tuple[str, str], _InFlight]] = []
        for kk in misses:
            record, owner = self._claim(kk)
            if owner:
                owned.append(kk)
            else:
                awaited.append((kk, record))

        # Fan owned jobs out across the pool in one map.  Each owned
        # job is journalled while in flight: a server killed here
        # leaves per-key records the restarted server sweeps.
        records = {kk: self._inflight[kk] for kk in owned}
        journal_ids: list[str] = []
        try:
            tasks = []
            job_deadline = self._job_deadline(deadline_at)
            trace = tracing_enabled()
            corr_id = correlation_id()
            for seq, (kind, key) in enumerate(owned):
                request = keyed[(kind, key)]
                if self.journal is not None:
                    journal_ids.append(
                        self.journal.begin(kind, key, request.label())
                    )
                tasks.append(
                    (
                        seq,
                        request.label(),
                        {
                            "request": request.to_json(),
                            "deadline": job_deadline,
                            "trace": trace,
                            "corr_id": corr_id,
                        },
                    )
                )
            if tasks:
                with self._pool_mutex:
                    outcomes = self.pool.map(tasks)
            else:
                outcomes = []
            for (kind, key), (payload, fault_json) in zip(
                owned, outcomes
            ):
                elapsed = time.monotonic() - t0
                if fault_json is not None:
                    fault = Fault.from_json(fault_json)
                    self._record_fault(fault)
                    result = ServiceResult(
                        request=keyed[(kind, key)],
                        artifact_kind=kind,
                        key=key,
                        payload=None,
                        fault=fault,
                        source="failed",
                        latency=elapsed,
                    )
                else:
                    payload = self._pop_spans(payload)
                    self.store.put(kind, key, payload)
                    self._count("computed")
                    result = ServiceResult(
                        request=keyed[(kind, key)],
                        artifact_kind=kind,
                        key=key,
                        payload=payload,
                        fault=None,
                        source="computed",
                        latency=elapsed,
                    )
                records[(kind, key)].result = result
        finally:
            for entry_id in journal_ids:
                self.journal.finish(entry_id)
            with self._mutex:
                for kk in owned:
                    self._inflight.pop(kk, None)
            for kk in owned:
                records[kk].event.set()

        # Fill remaining slots: owned results (shared by duplicate
        # slots in this batch) and keys awaited from other threads.
        joined = dict(awaited)
        for (kind, key), slots in wanted.items():
            if results[slots[0]] is not None:
                continue
            record = records.get((kind, key))
            from_other_thread = record is None
            if from_other_thread:
                record = joined[(kind, key)]
                wait_budget = (
                    max(0.0, deadline_at - time.monotonic())
                    if deadline_at is not None
                    else None
                )
                if not record.event.wait(wait_budget):
                    for pos in slots:
                        fault = TimeoutFault(
                            message=(
                                "request deadline expired while "
                                "waiting on another caller's "
                                "in-flight computation"
                            ),
                            candidate=requests[pos].label(),
                            stage="request",
                        )
                        self._record_fault(fault)
                        self._count("deadline_expired")
                        results[pos] = ServiceResult(
                            request=requests[pos],
                            artifact_kind=kind,
                            key=key,
                            payload=None,
                            fault=fault,
                            source="failed",
                            latency=time.monotonic() - t0,
                        )
                    continue
                self._count("joined_inflight", len(slots))
            shared = record.result
            for pos in slots:
                if shared is None:
                    results[pos] = self._fail(
                        requests[pos],
                        RuntimeError(
                            "in-flight computation vanished without "
                            "a result"
                        ),
                        "prepare",
                        t0,
                        kind,
                        key,
                    )
                    continue
                if shared.request is requests[pos]:
                    continue  # the owned slot already holds it
                results[pos] = _replace(
                    shared,
                    request=requests[pos],
                    source=(
                        "inflight"
                        if shared.ok and from_other_thread
                        else shared.source
                    ),
                    latency=time.monotonic() - t0,
                )
                if shared.fault is not None and from_other_thread:
                    self._record_fault(shared.fault)
        for pos, result in enumerate(results):
            if result is None:  # owned slot: take the shared result
                shared = records[
                    next(
                        kk
                        for kk, slots in wanted.items()
                        if pos in slots
                    )
                ].result
                results[pos] = shared
        return results  # type: ignore[return-value]

    # -- introspection --------------------------------------------------------

    def stats(self) -> dict:
        """Traffic, dedup, faults, pool health, cache sizes, store."""
        with self._mutex:
            fault_kinds = dict(self._fault_kinds)
            recent = list(self._recent)
            inflight = len(self._inflight)
            draining = self._draining
            inflight_requests = self._inflight_requests
        counters = {
            name: self.metrics.counter(name).value
            for name in self._COUNTER_NAMES
        }
        return {
            "uptime_seconds": time.monotonic() - self.started_at,
            "counters": counters,
            "fault_kinds": fault_kinds,
            "recent": recent,
            "metrics": self.metrics.to_json(),
            "inflight": inflight,
            "lifecycle": {
                "draining": draining,
                "inflight_requests": inflight_requests,
                "max_inflight": self.max_inflight,
                "request_deadline": self.request_deadline,
                "interrupted_on_restart": list(self.interrupted),
            },
            "pool": {
                "workers": self.pool.config.workers,
                "degraded": self.pool.degraded,
                "events": list(self.pool.events),
            },
            "caches": {
                "decode_programs": engine.decode_cache_size(),
                "decode_limit": engine.decode_cache_limit(),
                "layer_memo": networks.layer_cache_size(),
                "layer_memo_limit": networks.layer_cache_limit(),
            },
            "store": self.store.stats(),
        }

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self.pool.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


__all__ = [
    "REQUEST_KINDS",
    "CompileServer",
    "ServiceRequest",
    "ServiceResult",
    "request_key",
]
