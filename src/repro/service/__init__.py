"""Compile-and-tune as a service.

The multi-level compilation flow is deterministic: one (canonical
module text, pipeline spec, engine version) triple always yields the
same assembly, pass statistics, and simulated cycle count.  This
package turns that determinism into a serving layer:

* :mod:`repro.service.store` — :class:`ArtifactStore`, a
  content-addressed on-disk store for *any* compilation artifact
  (compiled kernels, cycle measurements, tuned schedules), keyed by
  sha256 of the inputs that determine it, with per-artifact integrity
  hashes, quarantine of corrupt entries, flock + atomic-rename writes,
  and an LRU size cap;
* :mod:`repro.service.server` — :class:`CompileServer`, a long-lived
  batch server: store-first request handling, single-flight
  deduplication of identical in-flight requests, a
  :class:`~repro.tune.workers.HardenedPool` worker tier for compile
  and simulate jobs, and per-request structured fault reporting via
  the :mod:`repro.tune.faults` taxonomy;
* :mod:`repro.service.client` — the wire protocol: a Unix-socket
  ``serve_forever`` loop and :class:`ServiceClient` for talking to a
  server in another process.

``api.compile_linalg``/``api.compile_lowlevel`` accept ``store=`` for
an opt-in content-addressed fast path, ``tune_kernel`` reads and
writes :class:`~repro.tune.schedule.TunedSchedule` artifacts through
the same store, and ``python -m repro.tools.kernel_service`` is the
CLI (``serve`` / ``submit`` / ``batch`` / ``stats`` / ``gc``).

See ``docs/SERVICE.md``.
"""

from .client import ServiceClient, serve_forever
from .server import CompileServer, ServiceRequest, ServiceResult
from .store import ArtifactStore, StoreError

__all__ = [
    "ArtifactStore",
    "CompileServer",
    "ServiceClient",
    "ServiceRequest",
    "ServiceResult",
    "StoreError",
    "serve_forever",
]
