"""Compile-and-tune as a service.

The multi-level compilation flow is deterministic: one (canonical
module text, pipeline spec, engine version) triple always yields the
same assembly, pass statistics, and simulated cycle count.  This
package turns that determinism into a serving layer:

* :mod:`repro.service.store` — :class:`ArtifactStore`, a
  content-addressed on-disk store for *any* compilation artifact
  (compiled kernels, cycle measurements, tuned schedules), keyed by
  sha256 of the inputs that determine it, with per-artifact integrity
  hashes, quarantine of corrupt entries, flock + atomic-rename writes,
  and an LRU size cap;
* :mod:`repro.service.server` — :class:`CompileServer`, a long-lived
  batch server: store-first request handling, single-flight
  deduplication of identical in-flight requests, a
  :class:`~repro.tune.workers.HardenedPool` worker tier for compile
  and simulate jobs, and per-request structured fault reporting via
  the :mod:`repro.tune.faults` taxonomy;
* :mod:`repro.service.client` — the wire protocol: a Unix-socket
  ``serve_forever`` loop (threaded connections, request deadlines,
  admission backpressure, graceful SIGTERM/SIGINT drain with
  documented exit codes, a crash-safe request journal, and a chaos
  injection layer via ``REPRO_SERVICE_FAULTS``) and
  :class:`ServiceClient` — connect/call timeouts, bounded retry with
  exponential backoff + jitter, transparent reconnect across server
  restarts, and a circuit breaker (:class:`CircuitOpenError`) that
  half-opens on a probe ping.  Transport failures surface as
  :class:`ServiceUnavailable` carrying a structured taxonomy fault.

``api.compile_linalg``/``api.compile_lowlevel`` accept ``store=`` for
an opt-in content-addressed fast path, ``tune_kernel`` reads and
writes :class:`~repro.tune.schedule.TunedSchedule` artifacts through
the same store, and ``python -m repro.tools.kernel_service`` is the
CLI (``serve`` / ``submit`` / ``batch`` / ``stats`` / ``gc``).

See ``docs/SERVICE.md``.
"""

from .client import (
    EXIT_CRASH,
    EXIT_OK,
    EXIT_SIGINT,
    EXIT_SIGTERM,
    CircuitOpenError,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
    serve_forever,
)
from .server import CompileServer, ServiceRequest, ServiceResult
from .store import ArtifactStore, RequestJournal, StoreError

__all__ = [
    "EXIT_CRASH",
    "EXIT_OK",
    "EXIT_SIGINT",
    "EXIT_SIGTERM",
    "ArtifactStore",
    "CircuitOpenError",
    "CompileServer",
    "RequestJournal",
    "ServiceClient",
    "ServiceError",
    "ServiceRequest",
    "ServiceResult",
    "ServiceUnavailable",
    "StoreError",
    "serve_forever",
]
