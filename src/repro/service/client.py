"""The compile service wire protocol: Unix-socket server loop + client.

The transport is :mod:`multiprocessing.connection` over ``AF_UNIX`` —
stdlib, authenticated by filesystem permissions on the socket path,
and message-framed, so the protocol is plain dicts:

    request:  {"op": "submit", "request": <ServiceRequest JSON>}
              {"op": "batch", "requests": [<ServiceRequest JSON>, ...]}
              {"op": "stats"} | {"op": "gc", "max_bytes": N|null}
              {"op": "ping"} | {"op": "shutdown"}
    reply:    {"ok": true, ...}   on success
              {"ok": false, "error": "..."} on a protocol-level error

Job-level failures are never protocol errors: a submit/batch reply is
``ok`` with each result carrying its own structured ``fault`` (the
:mod:`repro.tune.faults` taxonomy), so one bad kernel cannot take a
batch down.

Connections are served one at a time and requests within a connection
sequentially — batching is the concurrency mechanism (one ``batch``
fans out across the server's worker pool).  :class:`ServiceClient`
opens a fresh connection per call, so many short-lived clients can
share a server.
"""

from __future__ import annotations

import os
from multiprocessing.connection import Client, Listener
from pathlib import Path

from .server import CompileServer, ServiceRequest
from .store import ArtifactStore


class ServiceError(RuntimeError):
    """A protocol-level failure reported by the server."""


#: Connections that must not leak into forked children.  The server
#: prestarts its worker pool before accepting (see ``CompileServer``),
#: but a worker *respawned* after a crash forks mid-connection and
#: inherits every open connection fd; when client and server share a
#: process (server thread — the bench/CI pattern), the inherited
#: client-side fd keeps the server's ``recv`` from ever seeing EOF.
#: Forked children therefore close every tracked connection first
#: thing.  The listener is deliberately NOT tracked: ``Listener.close``
#: unlinks the socket file, which would yank it out from under the
#: parent.
_GUARDED_CONNECTIONS: set = set()
_fork_guard_installed = False


def _close_guarded_connections() -> None:
    for connection in list(_GUARDED_CONNECTIONS):
        try:
            connection.close()
        except OSError:
            pass
    _GUARDED_CONNECTIONS.clear()


def _install_fork_guard() -> None:
    global _fork_guard_installed
    if not _fork_guard_installed:
        os.register_at_fork(after_in_child=_close_guarded_connections)
        _fork_guard_installed = True


def _handle(server: CompileServer, message) -> tuple[dict, bool]:
    """(reply, keep_serving) for one protocol message."""
    if not isinstance(message, dict) or "op" not in message:
        return {"ok": False, "error": "malformed message"}, True
    op = message["op"]
    if op == "ping":
        return {"ok": True, "pong": True}, True
    if op == "submit":
        result = server.submit(
            ServiceRequest.from_json(message["request"])
        )
        return {"ok": True, "result": result.to_json()}, True
    if op == "batch":
        results = server.batch(
            [
                ServiceRequest.from_json(request)
                for request in message.get("requests", [])
            ]
        )
        return {
            "ok": True,
            "results": [result.to_json() for result in results],
        }, True
    if op == "stats":
        return {"ok": True, "stats": server.stats()}, True
    if op == "gc":
        report = server.store.gc(message.get("max_bytes"))
        return {"ok": True, "gc": report}, True
    if op == "shutdown":
        return {"ok": True, "shutdown": True}, False
    return {"ok": False, "error": f"unknown op {op!r}"}, True


def serve_forever(
    store_dir: str | Path,
    socket_path: str | Path,
    workers: int = 1,
    deadline: float | None = None,
    retries: int = 2,
    max_bytes: int | None = None,
    ready=None,
) -> None:
    """Run a compile server on a Unix socket until ``shutdown``.

    ``ready``, if given, is called with the listener address once the
    socket is accepting connections (used by tests and the CLI to
    avoid connect races).  Removes the socket file on exit.
    """
    socket_path = Path(socket_path)
    store = ArtifactStore(store_dir, max_bytes=max_bytes)
    server = CompileServer(
        store, workers=workers, deadline=deadline, retries=retries
    )
    listener = Listener(str(socket_path), family="AF_UNIX")
    _install_fork_guard()
    serving = True
    try:
        if ready is not None:
            ready(str(socket_path))
        while serving:
            try:
                connection = listener.accept()
            except OSError:
                break
            _GUARDED_CONNECTIONS.add(connection)
            try:
                with connection:
                    while True:
                        try:
                            message = connection.recv()
                        except (EOFError, OSError):
                            break
                        try:
                            reply, serving = _handle(server, message)
                        except Exception as error:
                            reply = {"ok": False, "error": str(error)}
                        try:
                            connection.send(reply)
                        except (BrokenPipeError, OSError):
                            break
                        if not serving:
                            break
            finally:
                _GUARDED_CONNECTIONS.discard(connection)
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        listener.close()
        try:
            os.unlink(socket_path)
        except FileNotFoundError:
            pass


class ServiceClient:
    """Talk to a :func:`serve_forever` server from another process.

    One connection per call — stateless from the client's view::

        client = ServiceClient("/tmp/repro.sock")
        result = client.submit(
            ServiceRequest("compile", "matmul", (4, 8, 8))
        )
        assert result["source"] in ("store", "computed")
    """

    def __init__(self, socket_path: str | Path):
        self.address = str(socket_path)

    def _call(self, message: dict) -> dict:
        _install_fork_guard()
        with Client(self.address, family="AF_UNIX") as connection:
            _GUARDED_CONNECTIONS.add(connection)
            try:
                connection.send(message)
                reply = connection.recv()
            finally:
                _GUARDED_CONNECTIONS.discard(connection)
        if not isinstance(reply, dict):
            raise ServiceError(f"malformed reply: {reply!r}")
        if not reply.get("ok"):
            raise ServiceError(
                reply.get("error", "unknown server error")
            )
        return reply

    def ping(self) -> bool:
        return bool(self._call({"op": "ping"}).get("pong"))

    def submit(self, request: ServiceRequest) -> dict:
        """Resolve one request; returns the ServiceResult as JSON."""
        reply = self._call(
            {"op": "submit", "request": request.to_json()}
        )
        return reply["result"]

    def batch(self, requests: list[ServiceRequest]) -> list[dict]:
        """Resolve a batch; one result JSON per request, in order."""
        reply = self._call(
            {
                "op": "batch",
                "requests": [r.to_json() for r in requests],
            }
        )
        return reply["results"]

    def stats(self) -> dict:
        return self._call({"op": "stats"})["stats"]

    def gc(self, max_bytes: int | None = None) -> dict:
        return self._call({"op": "gc", "max_bytes": max_bytes})["gc"]

    def shutdown(self) -> None:
        self._call({"op": "shutdown"})


__all__ = ["ServiceClient", "ServiceError", "serve_forever"]
