"""The compile service wire protocol: Unix-socket server loop + client.

The transport is :mod:`multiprocessing.connection` over ``AF_UNIX`` —
stdlib, authenticated by filesystem permissions on the socket path,
and message-framed, so the protocol is plain dicts:

    request:  {"op": "submit", "request": <ServiceRequest JSON>,
               "deadline": <seconds|absent>,
               "corr_id": <hex|absent>, "trace": <bool|absent>}
              {"op": "batch", "requests": [<ServiceRequest JSON>, ...],
               "deadline": <seconds|absent>,
               "corr_id": <hex|absent>, "trace": <bool|absent>}
              {"op": "stats"} | {"op": "gc", "max_bytes": N|null}
              {"op": "ping"} | {"op": "shutdown"}
    reply:    {"ok": true, ...}   on success
              {"ok": false, "error": "..."} on a protocol-level error

Observability rides the same dicts: the client mints a correlation id
per call (``corr_id``), the server resolves the request under it —
every span and log line on the way down to the simulator carries that
id, and each result echoes it back (``correlation_id``).  When the
client has tracing active (:mod:`repro.obs.tracing`), ``trace: true``
asks the server to record its spans (including pool-worker spans) and
return them on the reply (``spans``), which the client absorbs into
its own recorder — one Perfetto-loadable timeline across client,
server, worker and simulator.  Setting ``REPRO_SERVICE_LOG=1`` in the
server's environment logs one line per served request (label, source,
latency, correlation id) to stderr.

Job-level failures are never protocol errors: a submit/batch reply is
``ok`` with each result carrying its own structured ``fault`` (the
:mod:`repro.tune.faults` taxonomy), so one bad kernel cannot take a
batch down.

**Server lifecycle** (:func:`serve_forever`): each accepted connection
is served on its own thread, so many clients can race one server —
the :class:`~repro.service.server.CompileServer`'s admission control
(``max_inflight``) is the backpressure valve.  SIGTERM/SIGINT (and the
``shutdown`` op) trigger a *graceful drain*: the listener closes, new
requests are refused with a retryable ``cancelled`` fault, in-flight
work gets ``drain_timeout`` seconds to finish (stragglers are faulted
at the wire by closing their connections), the store sweeps its
temporaries, and the loop returns a documented exit code
(:data:`EXIT_OK` / :data:`EXIT_SIGINT` / :data:`EXIT_SIGTERM` /
:data:`EXIT_CRASH`).

**Client** (:class:`ServiceClient`): one connection per call with a
connect timeout and a per-call reply timeout; transport failures and
retryable server faults (overload, drain, deadline) earn a bounded
retry with exponential backoff + jitter, reconnecting transparently
across server restarts; a circuit breaker fails fast
(:class:`CircuitOpenError`) after consecutive transport failures and
half-opens on a probe ``ping``.  Every failure the client surfaces is
either a structured fault *on a result* or a :class:`ServiceError`
carrying a taxonomy fault — never a raw ``EOFError`` or a hang.

**Chaos**: ``serve_forever(injector=...)`` (or the
``REPRO_SERVICE_FAULTS`` env var, same grammar as the tuner's) applies
service-scoped injections keyed by request sequence number:
``drop-connection``, ``delay-response``, ``crash-server``,
``reject-admission``.  See ``docs/SERVICE.md``.
"""

from __future__ import annotations

import os
import random
import signal
import socket
import sys
import threading
import time
from contextlib import ExitStack
from multiprocessing.connection import Connection, Listener
from pathlib import Path

from ..obs.tracing import (
    absorb,
    correlation,
    correlation_id,
    new_correlation_id,
    recording,
    span,
    tracing_enabled,
)
from ..tune.faults import (
    SERVICE_FAULTS_ENV,
    Fault,
    FaultInjector,
    TimeoutFault,
    TransportFault,
)
from .server import CompileServer, ServiceRequest
from .store import ArtifactStore, RequestJournal

#: Exit codes :func:`serve_forever` returns (and the CLI propagates).
EXIT_OK = 0  #: clean ``shutdown`` op, drained
EXIT_CRASH = 70  #: injected ``crash-server`` (chaos harness; EX_SOFTWARE)
EXIT_SIGINT = 130  #: SIGINT received, drained
EXIT_SIGTERM = 143  #: SIGTERM received, drained

_EXIT_BY_REASON = {
    "shutdown": EXIT_OK,
    "crash": EXIT_CRASH,
    "sigint": EXIT_SIGINT,
    "sigterm": EXIT_SIGTERM,
}

#: Default seconds a draining server gives in-flight work.
DRAIN_TIMEOUT_DEFAULT = 10.0


class ServiceError(RuntimeError):
    """A protocol-level failure reported by the server."""


class ServiceUnavailable(ServiceError):
    """The server could not be reached (or never answered) after the
    client's bounded retries.  Carries the structured taxonomy
    :attr:`fault` (``transport`` or ``timeout``) so callers — and the
    chaos property — always see a classified failure, never a raw
    ``EOFError``."""

    def __init__(self, message: str, fault: Fault):
        super().__init__(message)
        self.fault = fault


class CircuitOpenError(ServiceUnavailable):
    """The client's circuit breaker is open: consecutive transport
    failures crossed the threshold, so calls fail fast without
    touching the socket until a half-open probe ``ping`` succeeds."""


#: Connections that must not leak into forked children.  The server
#: prestarts its worker pool before accepting (see ``CompileServer``),
#: but a worker *respawned* after a crash forks mid-connection and
#: inherits every open connection fd; when client and server share a
#: process (server thread — the bench/CI pattern), the inherited
#: client-side fd keeps the server's ``recv`` from ever seeing EOF.
#: Forked children therefore close every tracked connection first
#: thing.  The listener is deliberately NOT tracked: ``Listener.close``
#: unlinks the socket file, which would yank it out from under the
#: parent.
_GUARDED_CONNECTIONS: set = set()
_fork_guard_installed = False


def _close_guarded_connections() -> None:
    for connection in list(_GUARDED_CONNECTIONS):
        try:
            connection.close()
        except OSError:
            pass
    _GUARDED_CONNECTIONS.clear()


def _install_fork_guard() -> None:
    global _fork_guard_installed
    if not _fork_guard_installed:
        os.register_at_fork(after_in_child=_close_guarded_connections)
        _fork_guard_installed = True


# -- the server loop ------------------------------------------------------------


class _ServeState:
    """Shared lifecycle state of one :func:`serve_forever` run."""

    def __init__(self, listener: Listener):
        self.listener = listener
        self.mutex = threading.Lock()
        self.connections: set = set()
        self.threads: list[threading.Thread] = []
        #: First stop wins: "shutdown" | "sigterm" | "sigint" | "crash".
        self.stop_reason: str | None = None
        self._seq = 0

    def next_seq(self) -> int:
        """Admission sequence number of the next job-bearing message
        (the chaos injection key)."""
        with self.mutex:
            seq = self._seq
            self._seq += 1
            return seq

    def initiate_stop(self, reason: str) -> None:
        """Record the stop reason (first wins) and close the listener
        so the accept loop wakes up.  Safe from any thread and from a
        signal handler."""
        with self.mutex:
            if self.stop_reason is not None:
                return
            self.stop_reason = reason
        # shutdown() before close(): closing a listening socket from
        # another thread does NOT wake a blocked accept() on Linux,
        # shutting it down does.
        try:
            self.listener._listener._socket.shutdown(  # noqa: SLF001
                socket.SHUT_RDWR
            )
        except (OSError, AttributeError):
            pass
        try:
            self.listener.close()
        except OSError:
            pass

    def close_connections(self) -> None:
        with self.mutex:
            connections = list(self.connections)
        for connection in connections:
            _GUARDED_CONNECTIONS.discard(connection)
            try:
                connection.close()
            except OSError:
                pass


def _clear_stale_socket(socket_path: Path) -> None:
    """Unlink a socket file a crashed server left behind.

    A kill -9'd server never removes its socket, and binding over an
    existing file fails — so a restart would be impossible without
    this.  The file is probed first: if something answers, a live
    server owns it and we refuse to serve (two servers on one socket
    silently splits traffic).
    """
    if not socket_path.exists():
        return
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        probe.settimeout(0.25)
        try:
            probe.connect(str(socket_path))
        except OSError:
            # Nothing listening: stale leftover from an unclean exit.
            try:
                socket_path.unlink()
            except (FileNotFoundError, OSError):
                pass
            return
        raise ServiceError(
            f"{socket_path} already has a live server"
        )
    finally:
        probe.close()


#: Env var that, when set (to anything non-empty), makes the serve
#: loop log one stderr line per served request — label, artifact
#: source, latency and the request's correlation id, so served
#: traffic can be grepped by corr id straight out of the logs.
SERVICE_LOG_ENV = "REPRO_SERVICE_LOG"


def _log_served(op: str, results) -> None:
    if not os.environ.get(SERVICE_LOG_ENV):
        return
    for result in results:
        fault = result.fault.kind if result.fault is not None else "-"
        print(
            f"[kernel-service] op={op} label={result.request.label()} "
            f"source={result.source} fault={fault} "
            f"latency={result.latency:.3f}s "
            f"corr_id={result.correlation_id or '-'}",
            file=sys.stderr,
        )


def _dispatch(
    server: CompileServer,
    message,
    state: _ServeState,
    injector: FaultInjector | None,
) -> tuple[dict | None, str | None]:
    """(reply, action) for one protocol message.

    ``action`` is None (send the reply and keep serving), ``"drop"``
    (close the connection without replying), ``"crash"`` (tear the
    whole server down abruptly), or ``"stop"`` (send the reply, then
    drain and exit).
    """
    if not isinstance(message, dict) or "op" not in message:
        return {"ok": False, "error": "malformed message"}, None
    op = message["op"]
    try:
        if op == "ping":
            return {"ok": True, "pong": True}, None
        if op in ("submit", "batch"):
            seq = state.next_seq()
            injection = (
                injector.for_request(seq) if injector else None
            )
            if injection is not None:
                if injection.action == "crash-server":
                    return None, "crash"
                if injection.action == "drop-connection":
                    return None, "drop"
            deadline = message.get("deadline")
            if deadline is not None:
                deadline = float(deadline)
            corr_id = message.get("corr_id") or None
            recorder = None
            with ExitStack() as stack:
                stack.enter_context(correlation(corr_id))
                if message.get("trace"):
                    recorder = stack.enter_context(recording())
                if op == "submit":
                    request = ServiceRequest.from_json(
                        message["request"]
                    )
                    if (
                        injection is not None
                        and injection.action == "reject-admission"
                    ):
                        result = server.reject(request)
                    else:
                        result = server.submit(
                            request, deadline=deadline
                        )
                    reply = {"ok": True, "result": result.to_json()}
                    _log_served(op, [result])
                else:
                    requests = [
                        ServiceRequest.from_json(entry)
                        for entry in message.get("requests", [])
                    ]
                    if (
                        injection is not None
                        and injection.action == "reject-admission"
                    ):
                        results = [
                            server.reject(request)
                            for request in requests
                        ]
                    else:
                        results = server.batch(
                            requests, deadline=deadline
                        )
                    reply = {
                        "ok": True,
                        "results": [
                            result.to_json() for result in results
                        ],
                    }
                    _log_served(op, results)
            if recorder is not None:
                reply["spans"] = recorder.events_json()
            if (
                injection is not None
                and injection.action == "delay-response"
            ):
                time.sleep(injection.value)
            return reply, None
        if op == "stats":
            return {"ok": True, "stats": server.stats()}, None
        if op == "gc":
            report = server.store.gc(message.get("max_bytes"))
            return {"ok": True, "gc": report}, None
        if op == "shutdown":
            return {"ok": True, "shutdown": True}, "stop"
        return {"ok": False, "error": f"unknown op {op!r}"}, None
    except Exception as error:
        return {"ok": False, "error": str(error)}, None


def _serve_connection(
    server: CompileServer,
    connection,
    state: _ServeState,
    injector: FaultInjector | None,
) -> None:
    """One connection's request loop (runs on its own thread)."""
    try:
        while True:
            try:
                message = connection.recv()
            except (EOFError, OSError):
                break
            reply, action = _dispatch(server, message, state, injector)
            if action == "crash":
                state.initiate_stop("crash")
                break
            if action == "drop":
                break
            try:
                connection.send(reply)
            except (BrokenPipeError, OSError):
                break
            if action == "stop":
                state.initiate_stop("shutdown")
                break
    finally:
        _GUARDED_CONNECTIONS.discard(connection)
        with state.mutex:
            state.connections.discard(connection)
        try:
            connection.close()
        except OSError:
            pass


def serve_forever(
    store_dir: str | Path,
    socket_path: str | Path,
    workers: int = 1,
    deadline: float | None = None,
    retries: int = 2,
    max_bytes: int | None = None,
    ready=None,
    max_inflight: int | None = None,
    request_deadline: float | None = None,
    drain_timeout: float = DRAIN_TIMEOUT_DEFAULT,
    injector: FaultInjector | None = None,
) -> int:
    """Run a compile server on a Unix socket until shutdown or signal.

    Each accepted connection is served on its own thread; the
    server's admission control (``max_inflight``) bounds concurrent
    work.  ``ready``, if given, is called with the listener address
    once the socket is accepting connections (used by tests and the
    CLI to avoid connect races).  Removes the socket file on exit and
    returns a documented exit code: :data:`EXIT_OK` after a clean
    ``shutdown`` op, :data:`EXIT_SIGTERM` / :data:`EXIT_SIGINT` after
    a signal-triggered drain, :data:`EXIT_CRASH` after an injected
    ``crash-server``.

    Signal handlers are only installed when running on the main
    thread (tests host the loop on a worker thread and stop it via
    the ``shutdown`` op instead).  ``injector`` (or the
    ``REPRO_SERVICE_FAULTS`` env var) arms the service chaos harness.
    """
    socket_path = Path(socket_path)
    if injector is None:
        injector = FaultInjector.from_env(SERVICE_FAULTS_ENV)
    store = ArtifactStore(store_dir, max_bytes=max_bytes)
    journal = RequestJournal(store.root / "journal.json")
    server = CompileServer(
        store,
        workers=workers,
        deadline=deadline,
        retries=retries,
        max_inflight=max_inflight,
        request_deadline=request_deadline,
        journal=journal,
    )
    if server.interrupted:
        labels = ", ".join(
            record.get("label") or record.get("key", "?")
            for record in server.interrupted
        )
        print(
            f"recovered from an unclean shutdown: "
            f"{len(server.interrupted)} interrupted request(s) "
            f"[{labels}] — clients should resubmit (completed keys "
            f"are warm store hits)",
            file=sys.stderr,
        )
    _clear_stale_socket(socket_path)
    listener = Listener(str(socket_path), family="AF_UNIX")
    _install_fork_guard()
    state = _ServeState(listener)

    previous_handlers: dict[int, object] = {}
    on_main_thread = (
        threading.current_thread() is threading.main_thread()
    )
    if on_main_thread:
        for signum, reason in (
            (signal.SIGTERM, "sigterm"),
            (signal.SIGINT, "sigint"),
        ):
            previous_handlers[signum] = signal.signal(
                signum,
                lambda _signum, _frame, reason=reason: (
                    state.initiate_stop(reason)
                ),
            )
    try:
        if ready is not None:
            ready(str(socket_path))
        while True:
            try:
                connection = listener.accept()
            except OSError:
                break
            if state.stop_reason is not None:
                try:
                    connection.close()
                except OSError:
                    pass
                break
            _GUARDED_CONNECTIONS.add(connection)
            with state.mutex:
                state.connections.add(connection)
            thread = threading.Thread(
                target=_serve_connection,
                args=(server, connection, state, injector),
                daemon=True,
            )
            state.threads.append(thread)
            thread.start()
    except KeyboardInterrupt:
        state.initiate_stop("sigint")
    finally:
        reason = state.stop_reason or "shutdown"
        if reason == "crash":
            # Abrupt teardown — the whole point of the injection: no
            # drain, no replies, connections dropped mid-flight.
            state.close_connections()
            server.close()
        else:
            # Graceful drain: refuse new work, let in-flight requests
            # finish (or time out), flush replies, then fault any
            # stragglers at the wire by closing their connections.
            drained = server.drain(drain_timeout)
            grace = time.monotonic() + min(1.0, drain_timeout)
            for thread in state.threads:
                thread.join(max(0.0, grace - time.monotonic()))
            state.close_connections()
            stop_at = time.monotonic() + 5.0
            for thread in state.threads:
                thread.join(max(0.0, stop_at - time.monotonic()))
            server.close()
            store.gc()  # flush: sweep stale temporaries on the way out
            if not drained:
                print(
                    f"drain timed out after {drain_timeout:g}s; "
                    f"in-flight work was faulted at the wire",
                    file=sys.stderr,
                )
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
        try:
            listener.close()
        except OSError:
            pass
        try:
            os.unlink(socket_path)
        except (FileNotFoundError, OSError):
            pass
    return _EXIT_BY_REASON[reason]


# -- the client -----------------------------------------------------------------


class ServiceClient:
    """Talk to a :func:`serve_forever` server from another process.

    One connection per call — stateless from the client's view::

        client = ServiceClient("/tmp/repro.sock")
        result = client.submit(
            ServiceRequest("compile", "matmul", (4, 8, 8))
        )
        assert result["source"] in ("store", "computed")

    Resilience knobs (all per-client):

    * ``connect_timeout`` / ``call_timeout`` — seconds to establish a
      connection / to wait for a reply (None = wait forever).  A
      wedged server surfaces a structured ``timeout`` fault instead
      of blocking the caller.
    * ``retries`` / ``backoff`` / ``max_backoff`` / ``jitter`` —
      bounded retry for *retryable* failures only (transport errors,
      timeouts, server-side ``overload``/``cancelled``/``timeout``
      faults); deterministic faults (compile, verify, sim) are
      returned immediately.  Attempt N waits
      ``min(max_backoff, backoff * 2**(N-1)) * (1 + jitter * U[0,1))``
      seconds — the jitter de-synchronizes herds of retrying clients.
    * ``breaker_threshold`` / ``breaker_cooldown`` — after
      ``breaker_threshold`` *consecutive* transport-level failures
      the circuit opens: calls raise :class:`CircuitOpenError`
      immediately (no socket traffic) until ``breaker_cooldown``
      seconds pass, then one probe ``ping`` half-opens it.

    Transport failures that outlive the retry budget raise
    :class:`ServiceUnavailable` carrying the taxonomy fault; job
    failures always come back *on the result*, never as exceptions.
    """

    def __init__(
        self,
        socket_path: str | Path,
        connect_timeout: float | None = 5.0,
        call_timeout: float | None = 60.0,
        retries: int = 3,
        backoff: float = 0.05,
        max_backoff: float = 2.0,
        jitter: float = 0.25,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 1.0,
    ):
        self.address = str(socket_path)
        self.connect_timeout = connect_timeout
        self.call_timeout = call_timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.jitter = jitter
        self.breaker_threshold = max(1, int(breaker_threshold))
        self.breaker_cooldown = breaker_cooldown
        self._lock = threading.Lock()
        self._consecutive_failures = 0
        self._open_until: float | None = None

    # -- transport ------------------------------------------------------------

    def _connect(self) -> Connection:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.settimeout(self.connect_timeout)
            sock.connect(self.address)
            sock.setblocking(True)
        except BaseException:
            sock.close()
            raise
        return Connection(sock.detach())

    def _call_once(self, message: dict) -> tuple[object, Fault | None]:
        """One connect-send-recv round: (reply, None) or (None, fault).

        Never raises on transport trouble — every failure mode maps
        onto the taxonomy (``transport`` or ``timeout``).
        """
        _install_fork_guard()
        try:
            connection = self._connect()
        except (socket.timeout, TimeoutError):
            return None, TimeoutFault(
                message=(
                    f"connect to {self.address} timed out after "
                    f"{self.connect_timeout:g}s"
                ),
                stage="connect",
            )
        except (ConnectionError, FileNotFoundError, OSError) as error:
            return None, TransportFault(
                message=(
                    f"connect to {self.address} failed: "
                    f"{type(error).__name__}: {error}"
                ),
                stage="connect",
            )
        _GUARDED_CONNECTIONS.add(connection)
        try:
            connection.send(message)
            if self.call_timeout is not None and not connection.poll(
                self.call_timeout
            ):
                return None, TimeoutFault(
                    message=(
                        f"no reply within {self.call_timeout:g}s "
                        f"(server wedged or overloaded)"
                    ),
                    stage="call",
                )
            return connection.recv(), None
        except (EOFError, BrokenPipeError, ConnectionError) as error:
            return None, TransportFault(
                message=(
                    f"connection lost mid-call: "
                    f"{type(error).__name__}: {error}"
                ),
                stage="call",
            )
        except OSError as error:
            return None, TransportFault(
                message=f"transport error mid-call: {error}",
                stage="call",
            )
        finally:
            _GUARDED_CONNECTIONS.discard(connection)
            try:
                connection.close()
            except OSError:
                pass

    # -- circuit breaker ------------------------------------------------------

    def _breaker_gate(self) -> None:
        """Fail fast while the circuit is open; half-open probe after
        the cooldown."""
        with self._lock:
            if self._open_until is None:
                return
            remaining = self._open_until - time.monotonic()
            if remaining > 0:
                raise CircuitOpenError(
                    f"circuit open ({self._consecutive_failures} "
                    f"consecutive transport failures); failing fast "
                    f"for another {remaining:.2f}s",
                    fault=TransportFault(
                        message="circuit breaker open; failing fast",
                        stage="circuit",
                    ),
                )
        # Half-open: one probe ping decides.
        reply, fault = self._call_once({"op": "ping"})
        healthy = (
            fault is None
            and isinstance(reply, dict)
            and bool(reply.get("pong"))
        )
        with self._lock:
            if healthy:
                self._consecutive_failures = 0
                self._open_until = None
                return
            self._open_until = (
                time.monotonic() + self.breaker_cooldown
            )
        raise CircuitOpenError(
            "half-open probe ping failed; circuit re-opened",
            fault=fault
            or TransportFault(
                message="probe ping got a malformed reply",
                stage="circuit",
            ),
        )

    def _record_outcome(self, ok: bool) -> None:
        with self._lock:
            if ok:
                self._consecutive_failures = 0
                self._open_until = None
                return
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.breaker_threshold:
                self._open_until = (
                    time.monotonic() + self.breaker_cooldown
                )

    def _sleep_backoff(self, attempt: int) -> None:
        delay = min(
            self.max_backoff, self.backoff * (2 ** (attempt - 1))
        )
        time.sleep(delay * (1.0 + self.jitter * random.random()))

    # -- calls ----------------------------------------------------------------

    def _call(self, message: dict, retries: int | None = None) -> dict:
        """One protocol call with transport retry + circuit breaker.

        Raises :class:`CircuitOpenError` while the breaker is open,
        :class:`ServiceUnavailable` (with the taxonomy fault) once the
        retry budget is exhausted, and plain :class:`ServiceError` for
        protocol-level failures reported by the server.
        """
        budget = self.retries if retries is None else retries
        self._breaker_gate()
        attempt = 0
        while True:
            attempt += 1
            reply, fault = self._call_once(message)
            if fault is None:
                self._record_outcome(True)
                if not isinstance(reply, dict):
                    raise ServiceError(f"malformed reply: {reply!r}")
                if not reply.get("ok"):
                    raise ServiceError(
                        reply.get("error", "unknown server error")
                    )
                return reply
            self._record_outcome(False)
            if fault.retryable and attempt <= budget:
                self._sleep_backoff(attempt)
                continue
            raise ServiceUnavailable(
                fault.describe(),
                fault=fault.with_attempts(attempt),
            )

    def ping(self) -> bool:
        """One probe round-trip; False (never an exception) when the
        server is unreachable or answers garbage."""
        reply, fault = self._call_once({"op": "ping"})
        ok = (
            fault is None
            and isinstance(reply, dict)
            and bool(reply.get("pong"))
        )
        self._record_outcome(ok)
        return ok

    @staticmethod
    def _retryable(result: dict) -> bool:
        fault = result.get("fault")
        return bool(fault) and bool(fault.get("retryable"))

    def submit(
        self,
        request: ServiceRequest,
        deadline: float | None = None,
        corr_id: str | None = None,
    ) -> dict:
        """Resolve one request; returns the ServiceResult as JSON.

        Retryable *server-side* faults (overload, drain, request
        deadline) are retried with backoff just like transport
        failures — the store makes the retry cheap.  Deterministic
        faults come back immediately on the result.

        A correlation id is minted per call (inherited from an
        enclosing :func:`repro.obs.tracing.correlation` scope, or
        passed explicitly as ``corr_id``); it rides the wire, tags
        every server/worker/simulator span, and comes back on the
        result as ``correlation_id``.
        """
        cid = corr_id or correlation_id() or new_correlation_id()
        message: dict = {
            "op": "submit",
            "request": request.to_json(),
            "corr_id": cid,
        }
        if deadline is not None:
            message["deadline"] = deadline
        if tracing_enabled():
            message["trace"] = True
        attempt = 0
        with correlation(cid), span(
            "client.submit", label=request.label()
        ):
            while True:
                attempt += 1
                reply = self._call(message)
                absorb(reply.get("spans"))
                result = reply["result"]
                if (
                    not self._retryable(result)
                    or attempt > self.retries
                ):
                    return result
                self._sleep_backoff(attempt)

    def batch(
        self,
        requests: list[ServiceRequest],
        deadline: float | None = None,
        corr_id: str | None = None,
    ) -> list[dict]:
        """Resolve a batch; one result JSON per request, in order.

        Slots that come back with *retryable* faults (overload,
        drain, deadline) are resubmitted as a smaller batch, up to
        the retry budget; everything else keeps its first result.
        The whole batch (retries included) shares one correlation id.
        """
        cid = corr_id or correlation_id() or new_correlation_id()
        message: dict = {
            "op": "batch",
            "requests": [r.to_json() for r in requests],
            "corr_id": cid,
        }
        if deadline is not None:
            message["deadline"] = deadline
        if tracing_enabled():
            message["trace"] = True
        with correlation(cid), span(
            "client.batch", size=len(requests)
        ):
            reply = self._call(message)
            absorb(reply.get("spans"))
            results = reply["results"]
            for attempt in range(1, self.retries + 1):
                positions = [
                    pos
                    for pos, result in enumerate(results)
                    if self._retryable(result)
                ]
                if not positions:
                    break
                self._sleep_backoff(attempt)
                retry_message: dict = {
                    "op": "batch",
                    "requests": [
                        requests[pos].to_json() for pos in positions
                    ],
                    "corr_id": cid,
                }
                if deadline is not None:
                    retry_message["deadline"] = deadline
                if tracing_enabled():
                    retry_message["trace"] = True
                reply = self._call(retry_message)
                absorb(reply.get("spans"))
                fresh = reply["results"]
                for pos, result in zip(positions, fresh):
                    results[pos] = result
        return results

    def stats(self) -> dict:
        return self._call({"op": "stats"})["stats"]

    def gc(self, max_bytes: int | None = None) -> dict:
        return self._call({"op": "gc", "max_bytes": max_bytes})["gc"]

    def shutdown(self) -> None:
        """Ask the server to drain and exit (no transport retries —
        a second shutdown against a drained server would just fail)."""
        self._call({"op": "shutdown"}, retries=0)


__all__ = [
    "DRAIN_TIMEOUT_DEFAULT",
    "SERVICE_LOG_ENV",
    "EXIT_CRASH",
    "EXIT_OK",
    "EXIT_SIGINT",
    "EXIT_SIGTERM",
    "CircuitOpenError",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "serve_forever",
]
