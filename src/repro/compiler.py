"""The composable compilation facade.

:class:`Compiler` is the one entry point every flow goes through —
named pipelines, raw textual pipeline specs, or explicit pass
sequences::

    from repro.compiler import Compiler

    Compiler().compile(module)                      # the paper's flow
    Compiler(pipeline="table3-frep").compile(module)
    Compiler(
        pipeline="convert-linalg-to-memref-stream,fuse-fill,"
                 "scalar-replacement,unroll-and-jam{factor=4},"
                 "lower-to-snitch{use-frep=true},verify-streams,"
                 "fuse-fmadd,lower-snitch-stream,canonicalize,dce,"
                 "allocate-registers,lower-riscv-scf,"
                 "eliminate-identity-moves",
    ).compile(module)

``api.compile_linalg`` / ``api.compile_lowlevel`` are thin wrappers
over this class; the CLI (``repro.tools.kernel_compiler``) exposes the
same spec strings on ``--pipeline``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Sequence

from .backend.asm_emitter import emit_module
from .backend.register_allocator import count_used_registers
from .dialects import riscv_func
from .dialects.builtin import ModuleOp
from .ir.pass_manager import (
    ModulePass,
    PassInstrumentation,
    PassManager,
)
from .ir.verifier import verify
from .snitch.assembler import Program, assemble
from .transforms.pipelines import build_pipeline


@dataclass
class CompiledKernel:
    """A kernel compiled down to Snitch assembly.

    Round-trippable: :meth:`to_json` serializes everything execution
    needs (assembly, entry symbol, pass timings/stats) and
    :meth:`from_json` rehydrates a runnable kernel *without
    recompiling* — the content-addressed artifact store
    (:mod:`repro.service.store`) persists kernels in exactly this
    form.  A rehydrated kernel has no lowered module
    (:attr:`rehydrated` is true), so IR-level introspection such as
    :meth:`register_usage` is unavailable on it; simulation is not —
    :attr:`program` assembles from the stored text either way.
    """

    #: The lowered module (rv-level IR, registers allocated); None on
    #: a kernel rehydrated from a stored artifact.
    module: ModuleOp | None
    #: The emitted assembly text.
    asm: str
    #: Entry symbol.
    entry: str
    #: (pass name, IR text) snapshots if requested at compile time.
    snapshots: list[tuple[str, str]] = field(default_factory=list)
    #: (pass name, seconds) per-pass compile-time timings.
    pass_timings: list[tuple[str, float]] = field(default_factory=list)
    #: (pass name, rewrite-driver counters) per pass: ops visited,
    #: pattern invocations, rewrites applied.
    pass_stats: list[tuple[str, dict[str, int]]] = field(
        default_factory=list
    )

    @cached_property
    def program(self) -> Program:
        """The assembled program (parsed once, then cached).

        Returning one ``Program`` object per kernel matters beyond the
        parse cost: the simulator's predecoded engine memoizes its
        decode on the ``Program``, so every run and every cluster core
        executing this kernel shares a single decode.
        """
        return assemble(self.asm)

    @property
    def rehydrated(self) -> bool:
        """Whether this kernel came from a stored artifact (no IR)."""
        return self.module is None

    def register_usage(self) -> tuple[int, int]:
        """(FP, integer) registers used — the paper's Table 2 metric."""
        if self.module is None:
            raise ValueError(
                "register_usage needs the lowered module; this kernel "
                "was rehydrated from a stored artifact (assembly only)"
            )
        for op in self.module.walk():
            if isinstance(op, riscv_func.FuncOp):
                return count_used_registers(op)
        raise ValueError("no function in compiled module")

    def to_json(self) -> dict:
        """Serialize for the artifact store (module text excluded —
        the store key already content-addresses the *input* module;
        the lowered IR is recomputable and large)."""
        return {
            "asm": self.asm,
            "entry": self.entry,
            "pass_timings": [
                [name, seconds] for name, seconds in self.pass_timings
            ],
            "pass_stats": [
                [name, dict(counters)]
                for name, counters in self.pass_stats
            ],
        }

    @classmethod
    def from_json(cls, data: dict) -> "CompiledKernel":
        """Rehydrate a kernel from its stored artifact form."""
        try:
            return cls(
                module=None,
                asm=data["asm"],
                entry=data["entry"],
                pass_timings=[
                    (str(name), float(seconds))
                    for name, seconds in data.get("pass_timings", [])
                ],
                pass_stats=[
                    (str(name), dict(counters))
                    for name, counters in data.get("pass_stats", [])
                ],
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(
                f"malformed CompiledKernel artifact: {error}"
            ) from None


class Compiler:
    """Compile modules through a composable pass pipeline.

    ``pipeline`` selects the flow and may be:

    * a named pipeline (``"ours"``, ``"table3-frep"``, ``"lowlevel"``,
      ... — see ``transforms.pipelines.NAMED_PIPELINES``);
    * a raw textual pipeline spec
      (``"fuse-fill,unroll-and-jam{factor=4},..."``);
    * a :class:`PassManager` (used as-is; ``verify_each`` etc. are then
      taken from the manager, and snapshots/timings accumulate across
      compiles);
    * a sequence of :class:`ModulePass` instances.

    ``unroll_factor`` overrides every ``unroll-and-jam`` pass in a
    name/spec pipeline; ``verify_each`` verifies the module after every
    pass; ``verify_input`` verifies it before the first; ``snapshots``
    records the IR after every pass onto the compiled kernel; and
    ``instrument`` receives :class:`PassInstrumentation` callbacks
    around each pass.
    """

    def __init__(
        self,
        pipeline: str | PassManager | Sequence[ModulePass] = "ours",
        *,
        unroll_factor: int | None = None,
        verify_each: bool = True,
        verify_input: bool = True,
        snapshots: bool = False,
        instrument: PassInstrumentation | None = None,
    ):
        self.pipeline = pipeline
        self.unroll_factor = unroll_factor
        self.verify_each = verify_each
        self.verify_input = verify_input
        self.snapshots = snapshots
        self.instrument = instrument
        self._prebuilt: PassManager | None = None
        self._canonical_spec: str | None = None
        self._spec_passes: list[ModulePass] | None = None
        # Resolve names/specs eagerly so a bad pipeline fails at
        # construction, not at first compile; the built manager is
        # kept for the first compile.  The canonical spec text itself
        # is derived lazily — computing it costs as much as building
        # the manager and most compiles never read it.
        if isinstance(pipeline, str):
            self._prebuilt = self._make_manager()
            self._spec_passes = list(self._prebuilt.passes)

    def _make_manager(self) -> PassManager:
        """A pass manager for one compile.

        Built fresh per compile for name/spec/sequence pipelines so
        snapshots and timings are per-kernel (the eagerly validated
        manager serves the first compile); an explicitly provided
        :class:`PassManager` is reused as given.
        """
        if isinstance(self.pipeline, PassManager):
            return self.pipeline
        if self._prebuilt is not None:
            manager, self._prebuilt = self._prebuilt, None
            return manager
        if isinstance(self.pipeline, str):
            return build_pipeline(
                self.pipeline,
                unroll_factor=self.unroll_factor,
                snapshot=self.snapshots,
                verify_each=self.verify_each,
                instrument=self.instrument,
            )
        return PassManager(
            list(self.pipeline),
            verify_each=self.verify_each,
            snapshot=self.snapshots,
            instrument=self.instrument,
        )

    @property
    def pipeline_spec(self) -> str:
        """The flow as a canonical, round-trippable textual spec."""
        if self._canonical_spec is None:
            if self._spec_passes is not None:
                from .ir.pipeline_spec import (
                    pass_to_spec,
                    print_pipeline_spec,
                )

                self._canonical_spec = print_pipeline_spec(
                    pass_to_spec(p) for p in self._spec_passes
                )
            else:
                return self._make_manager().pipeline_spec
        return self._canonical_spec

    def compile(
        self, module: ModuleOp, entry: str | None = None
    ) -> CompiledKernel:
        """Lower ``module`` in place and emit assembly.

        ``entry`` names the entry symbol for modules whose pipeline
        does not start from ``func.func`` (e.g. handwritten rv-level
        kernels); by default the first ``rv_func.func`` produced by the
        pipeline is the entry.
        """
        manager = self._make_manager()
        if self.verify_input:
            verify(module)
        manager.run(module)
        if entry is None:
            for op in module.block.ops:
                if isinstance(op, riscv_func.FuncOp):
                    entry = op.sym_name
                    break
            if entry is None:
                raise ValueError(
                    f"pipeline {manager.pipeline_spec!r} produced no "
                    f"rv_func.func"
                )
        asm = emit_module(module)
        return CompiledKernel(
            module=module,
            asm=asm,
            entry=entry,
            snapshots=list(manager.snapshots),
            pass_timings=list(manager.timings),
            pass_stats=list(manager.pass_stats),
        )


__all__ = ["CompiledKernel", "Compiler"]
