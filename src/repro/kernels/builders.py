"""linalg-level builders for the Table 1 micro-kernels.

Each builder returns ``(module, spec)``: a fresh linalg-level module and
a :class:`KernelSpec` describing its calling convention, FLOP roofline
and numpy oracle.  Kernels with reductions are built as a
``linalg.fill`` + ``linalg.generic`` pair, "the form used by most MLIR
DNN frontends" (paper Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..dialects import arith, func, linalg
from ..dialects.builtin import ModuleOp
from ..ir.affine_map import AffineMap
from ..ir.attributes import MemRefType, f64
from ..ir.core import Block, Region

#: Neutral element used to initialise max-pooling accumulators.  The
#: fcvt-based constant materialisation needs an integral value, so we
#: use a very negative integer instead of -inf; test data stays well
#: above it.
POOL_NEUTRAL_MIN = -100_000_000.0


@dataclass
class ArrayArg:
    """One array parameter of a kernel."""

    shape: tuple[int, ...]
    #: "in", "out" or "inout".
    role: str
    dtype: type = np.float64


@dataclass
class ScalarArg:
    """One scalar (f64) parameter of a kernel."""

    role: str = "in"


@dataclass
class KernelSpec:
    """Calling convention + oracle + roofline for one kernel."""

    name: str
    arguments: list
    #: Maps the input argument values to the expected contents of every
    #: array argument after the kernel ran (None = unchanged).
    reference: Callable
    #: Paper Table 1 FLOP count (minimum FPU cycles = flops / 2 if FMA).
    flops: int
    #: Whether the inner op is an FMA (2 FLOPs/cycle peak) or not.
    uses_fma: bool = False

    @property
    def min_cycles(self) -> int:
        """Theoretical minimum cycles (the paper's roofline)."""
        return self.flops // 2 if self.uses_fma else self.flops

    def random_arguments(self, seed: int = 0) -> list:
        """Random inputs (zeroed outputs) for testing/benchmarking."""
        rng = np.random.default_rng(seed)
        values = []
        for argument in self.arguments:
            if isinstance(argument, ScalarArg):
                values.append(float(rng.uniform(-1.0, 1.0)))
            elif argument.role == "in":
                values.append(
                    rng.uniform(-1.0, 1.0, argument.shape).astype(
                        argument.dtype
                    )
                )
            else:
                values.append(
                    np.zeros(argument.shape, dtype=argument.dtype)
                )
        return values


def _memref(shape: Sequence[int]) -> MemRefType:
    return MemRefType(f64, tuple(shape))


def _binary_body(op_class) -> Region:
    """Body block ``(x, y, z_old) -> op(x, y)``."""
    block = Block([f64, f64, f64])
    result = op_class(block.args[0], block.args[1])
    block.add_op(result)
    block.add_op(linalg.YieldOp([result.result]))
    return Region([block])


# ---------------------------------------------------------------------------
# Element-wise kernels
# ---------------------------------------------------------------------------


def fill(n: int, m: int) -> tuple[ModuleOp, KernelSpec]:
    """Fill: ``out[i, j] = value`` (value passed as an argument)."""
    fn = func.FuncOp("fill", [f64, _memref((n, m))])
    value, out = fn.args
    fn.entry_block.add_op(linalg.FillOp(value, out))
    fn.entry_block.add_op(func.ReturnOp())
    spec = KernelSpec(
        name="fill",
        arguments=[ScalarArg(), ArrayArg((n, m), "out")],
        reference=lambda v, out_arr: [None, np.full((n, m), v)],
        flops=n * m,
    )
    return ModuleOp([fn]), spec


def sum_kernel(n: int, m: int) -> tuple[ModuleOp, KernelSpec]:
    """Element-wise sum: ``z = x + y``."""
    fn = func.FuncOp(
        "sum", [_memref((n, m)), _memref((n, m)), _memref((n, m))]
    )
    x, y, z = fn.args
    identity = AffineMap.identity(2)
    fn.entry_block.add_op(
        linalg.GenericOp(
            inputs=[x, y],
            outputs=[z],
            indexing_maps=[identity, identity, identity],
            iterator_types=["parallel", "parallel"],
            body=_binary_body(arith.AddfOp),
        )
    )
    fn.entry_block.add_op(func.ReturnOp())
    spec = KernelSpec(
        name="sum",
        arguments=[
            ArrayArg((n, m), "in"),
            ArrayArg((n, m), "in"),
            ArrayArg((n, m), "out"),
        ],
        reference=lambda a, b, _z: [None, None, a + b],
        flops=n * m,
    )
    return ModuleOp([fn]), spec


def relu(n: int, m: int) -> tuple[ModuleOp, KernelSpec]:
    """ReLU: ``z = max(x, 0)``."""
    fn = func.FuncOp("relu", [_memref((n, m)), _memref((n, m))])
    x, z = fn.args
    zero = arith.ConstantOp.from_float(0.0, f64)
    fn.entry_block.add_op(zero)
    block = Block([f64, f64])
    fmax = arith.MaximumfOp(block.args[0], zero.result)
    block.add_op(fmax)
    block.add_op(linalg.YieldOp([fmax.result]))
    identity = AffineMap.identity(2)
    fn.entry_block.add_op(
        linalg.GenericOp(
            inputs=[x],
            outputs=[z],
            indexing_maps=[identity, identity],
            iterator_types=["parallel", "parallel"],
            body=Region([block]),
        )
    )
    fn.entry_block.add_op(func.ReturnOp())
    spec = KernelSpec(
        name="relu",
        arguments=[ArrayArg((n, m), "in"), ArrayArg((n, m), "out")],
        reference=lambda a, _z: [None, np.maximum(a, 0.0)],
        flops=n * m,
    )
    return ModuleOp([fn]), spec


# ---------------------------------------------------------------------------
# Fixed-size reduction kernels (3x3 windows)
# ---------------------------------------------------------------------------


def _window_maps() -> list[AffineMap]:
    """(image, out) maps for 3x3 windows over dims (i, j, ki, kj)."""
    image = AffineMap.from_callable(
        4, lambda i, j, ki, kj: (i + ki, j + kj)
    )
    out = AffineMap.from_callable(4, lambda i, j, ki, kj: (i, j))
    return [image, out]


def conv3x3(n: int, m: int) -> tuple[ModuleOp, KernelSpec]:
    """3x3 convolution (cross-correlation), zero-initialised output."""
    fn = func.FuncOp(
        "conv3x3",
        [_memref((n + 2, m + 2)), _memref((3, 3)), _memref((n, m))],
    )
    image, weights, out = fn.args
    zero = arith.ConstantOp.from_float(0.0, f64)
    fn.entry_block.add_op(zero)
    fn.entry_block.add_op(linalg.FillOp(zero.result, out))
    image_map, out_map = _window_maps()
    weight_map = AffineMap.from_callable(
        4, lambda i, j, ki, kj: (ki, kj)
    )
    block = Block([f64, f64, f64])
    prod = arith.MulfOp(block.args[0], block.args[1])
    acc = arith.AddfOp(block.args[2], prod.result)
    block.add_ops([prod, acc, linalg.YieldOp([acc.result])])
    fn.entry_block.add_op(
        linalg.GenericOp(
            inputs=[image, weights],
            outputs=[out],
            indexing_maps=[image_map, weight_map, out_map],
            iterator_types=[
                "parallel", "parallel", "reduction", "reduction",
            ],
            body=Region([block]),
        )
    )
    fn.entry_block.add_op(func.ReturnOp())
    from .reference import ref_conv3x3

    spec = KernelSpec(
        name="conv3x3",
        arguments=[
            ArrayArg((n + 2, m + 2), "in"),
            ArrayArg((3, 3), "in"),
            ArrayArg((n, m), "out"),
        ],
        reference=lambda img, w, _o: [None, None, ref_conv3x3(img, w)],
        flops=18 * n * m,
        uses_fma=True,
    )
    return ModuleOp([fn]), spec


def _pool(
    name: str, n: int, m: int, body_op, init_value: float, reference
) -> tuple[ModuleOp, KernelSpec]:
    fn = func.FuncOp(
        name, [_memref((n + 2, m + 2)), _memref((n, m))]
    )
    image, out = fn.args
    init = arith.ConstantOp.from_float(init_value, f64)
    fn.entry_block.add_op(init)
    fn.entry_block.add_op(linalg.FillOp(init.result, out))
    image_map, out_map = _window_maps()
    block = Block([f64, f64])
    combine = body_op(block.args[1], block.args[0])
    block.add_ops([combine, linalg.YieldOp([combine.result])])
    fn.entry_block.add_op(
        linalg.GenericOp(
            inputs=[image],
            outputs=[out],
            indexing_maps=[image_map, out_map],
            iterator_types=[
                "parallel", "parallel", "reduction", "reduction",
            ],
            body=Region([block]),
        )
    )
    fn.entry_block.add_op(func.ReturnOp())
    spec = KernelSpec(
        name=name,
        arguments=[
            ArrayArg((n + 2, m + 2), "in"),
            ArrayArg((n, m), "out"),
        ],
        reference=reference,
        flops=9 * n * m,
    )
    return ModuleOp([fn]), spec


def max_pool3x3(n: int, m: int) -> tuple[ModuleOp, KernelSpec]:
    """3x3 max pooling, stride 1."""
    from .reference import ref_max_pool3x3

    return _pool(
        "max_pool3x3",
        n,
        m,
        arith.MaximumfOp,
        POOL_NEUTRAL_MIN,
        lambda img, _o: [None, ref_max_pool3x3(img)],
    )


def sum_pool3x3(n: int, m: int) -> tuple[ModuleOp, KernelSpec]:
    """3x3 sum pooling, stride 1."""
    from .reference import ref_sum_pool3x3

    return _pool(
        "sum_pool3x3",
        n,
        m,
        arith.AddfOp,
        0.0,
        lambda img, _o: [None, ref_sum_pool3x3(img)],
    )


# ---------------------------------------------------------------------------
# Matrix kernels
# ---------------------------------------------------------------------------


def _matmul_like(
    name: str,
    a_shape: tuple[int, int],
    b_shape: tuple[int, int],
    c_shape: tuple[int, int],
    a_map: AffineMap,
    b_map: AffineMap,
    reference,
    flops: int,
) -> tuple[ModuleOp, KernelSpec]:
    fn = func.FuncOp(
        name, [_memref(a_shape), _memref(b_shape), _memref(c_shape)]
    )
    a, b, c = fn.args
    zero = arith.ConstantOp.from_float(0.0, f64)
    fn.entry_block.add_op(zero)
    fn.entry_block.add_op(linalg.FillOp(zero.result, c))
    c_map = AffineMap.from_callable(3, lambda i, j, k: (i, j))
    block = Block([f64, f64, f64])
    prod = arith.MulfOp(block.args[0], block.args[1])
    acc = arith.AddfOp(block.args[2], prod.result)
    block.add_ops([prod, acc, linalg.YieldOp([acc.result])])
    fn.entry_block.add_op(
        linalg.GenericOp(
            inputs=[a, b],
            outputs=[c],
            indexing_maps=[a_map, b_map, c_map],
            iterator_types=["parallel", "parallel", "reduction"],
            body=Region([block]),
        )
    )
    fn.entry_block.add_op(func.ReturnOp())
    spec = KernelSpec(
        name=name,
        arguments=[
            ArrayArg(a_shape, "in"),
            ArrayArg(b_shape, "in"),
            ArrayArg(c_shape, "out"),
        ],
        reference=reference,
        flops=flops,
        uses_fma=True,
    )
    return ModuleOp([fn]), spec


def matmul(m: int, k: int, n: int) -> tuple[ModuleOp, KernelSpec]:
    """MatMul: ``C[MxN] = A[MxK] @ B[KxN]`` with zeroing fill."""
    return _matmul_like(
        "matmul",
        (m, k),
        (k, n),
        (m, n),
        AffineMap.from_callable(3, lambda i, j, kk: (i, kk)),
        AffineMap.from_callable(3, lambda i, j, kk: (kk, j)),
        lambda a, b, _c: [None, None, a @ b],
        flops=2 * m * n * k,
    )


def matmul_transposed(
    m: int, k: int, n: int
) -> tuple[ModuleOp, KernelSpec]:
    """MatMulT: ``C[MxN] = A[MxK] @ B[NxK].T`` with zeroing fill."""
    return _matmul_like(
        "matmul_t",
        (m, k),
        (n, k),
        (m, n),
        AffineMap.from_callable(3, lambda i, j, kk: (i, kk)),
        AffineMap.from_callable(3, lambda i, j, kk: (j, kk)),
        lambda a, b, _c: [None, None, a @ b.T],
        flops=2 * m * n * k,
    )


def matvec(rows: int, cols: int) -> tuple[ModuleOp, KernelSpec]:
    """Paper Figure 2: ``z[rows] = Y[rows x cols] @ x[cols]``."""
    fn = func.FuncOp(
        "matvec",
        [_memref((cols,)), _memref((rows, cols)), _memref((rows,))],
    )
    x, y, z = fn.args
    zero = arith.ConstantOp.from_float(0.0, f64)
    fn.entry_block.add_op(zero)
    fn.entry_block.add_op(linalg.FillOp(zero.result, z))
    x_map = AffineMap.from_callable(2, lambda d0, d1: (d1,))
    y_map = AffineMap.from_callable(2, lambda d0, d1: (d0, d1))
    z_map = AffineMap.from_callable(2, lambda d0, d1: (d0,))
    block = Block([f64, f64, f64])
    prod = arith.MulfOp(block.args[0], block.args[1])
    acc = arith.AddfOp(block.args[2], prod.result)
    block.add_ops([prod, acc, linalg.YieldOp([acc.result])])
    fn.entry_block.add_op(
        linalg.GenericOp(
            inputs=[x, y],
            outputs=[z],
            indexing_maps=[x_map, y_map, z_map],
            iterator_types=["parallel", "reduction"],
            body=Region([block]),
        )
    )
    fn.entry_block.add_op(func.ReturnOp())
    spec = KernelSpec(
        name="matvec",
        arguments=[
            ArrayArg((cols,), "in"),
            ArrayArg((rows, cols), "in"),
            ArrayArg((rows,), "out"),
        ],
        reference=lambda xv, ym, _z: [None, None, ym @ xv],
        flops=2 * rows * cols,
        uses_fma=True,
    )
    return ModuleOp([fn]), spec


#: Canonical kernel name -> (builder, number of size arguments): the
#: Table 1 suite as one registry shared by the CLI tools and the
#: schedule-space autotuner.
KERNEL_BUILDERS = {
    "fill": (fill, 2),
    "sum": (sum_kernel, 2),
    "relu": (relu, 2),
    "conv3x3": (conv3x3, 2),
    "max_pool3x3": (max_pool3x3, 2),
    "sum_pool3x3": (sum_pool3x3, 2),
    "matmul": (matmul, 3),
    "matmul_t": (matmul_transposed, 3),
    "matvec": (matvec, 2),
}


__all__ = [
    "ArrayArg",
    "ScalarArg",
    "KernelSpec",
    "KERNEL_BUILDERS",
    "POOL_NEUTRAL_MIN",
    "fill",
    "sum_kernel",
    "relu",
    "conv3x3",
    "max_pool3x3",
    "sum_pool3x3",
    "matmul",
    "matmul_transposed",
    "matvec",
]
