"""Numpy golden models for every kernel (validation oracles)."""

from __future__ import annotations

import numpy as np


def ref_fill(value: float, out: np.ndarray) -> np.ndarray:
    """Fill: every element becomes ``value``."""
    return np.full_like(out, value)


def ref_sum(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Element-wise sum."""
    return x + y


def ref_relu(x: np.ndarray) -> np.ndarray:
    """Element-wise max(x, 0)."""
    return np.maximum(x, 0.0)


def ref_conv3x3(image: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Valid 3x3 cross-correlation (no padding, stride 1)."""
    n = image.shape[0] - 2
    m = image.shape[1] - 2
    out = np.zeros((n, m), dtype=image.dtype)
    for ki in range(3):
        for kj in range(3):
            out += weights[ki, kj] * image[ki : ki + n, kj : kj + m]
    return out


def ref_max_pool3x3(image: np.ndarray) -> np.ndarray:
    """3x3 max pooling with stride 1."""
    n = image.shape[0] - 2
    m = image.shape[1] - 2
    out = np.full((n, m), -np.inf, dtype=image.dtype)
    for ki in range(3):
        for kj in range(3):
            out = np.maximum(out, image[ki : ki + n, kj : kj + m])
    return out


def ref_sum_pool3x3(image: np.ndarray) -> np.ndarray:
    """3x3 sum pooling with stride 1."""
    n = image.shape[0] - 2
    m = image.shape[1] - 2
    out = np.zeros((n, m), dtype=image.dtype)
    for ki in range(3):
        for kj in range(3):
            out += image[ki : ki + n, kj : kj + m]
    return out


def ref_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """C = A @ B."""
    return a @ b


def ref_matmul_transposed(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """C = A @ B.T (B stored row-per-output)."""
    return a @ b.T


def ref_matvec(matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """z = Y @ x (paper Figure 2's vector-matrix product)."""
    return matrix @ vector


__all__ = [
    "ref_fill",
    "ref_sum",
    "ref_relu",
    "ref_conv3x3",
    "ref_max_pool3x3",
    "ref_sum_pool3x3",
    "ref_matmul",
    "ref_matmul_transposed",
    "ref_matvec",
]
