"""Handwritten dialect-level micro-kernels (paper Section 4.2, RQ1).

These kernels are written directly "in a combination of the RISC-V
dialects and dialects encoding the Snitch ISA extensions, expressed in a
partially register-allocated form", then compiled with the backend
passes only (:func:`repro.api.compile_lowlevel`).  The 32-bit variants
use the Snitch packed-SIMD instructions, processing two f32 lanes per
64-bit register.

Each builder returns ``(module, spec)`` with the same
:class:`~repro.kernels.builders.KernelSpec` contract as the linalg
builders (arrays are numpy ``float32`` where applicable).
"""

from __future__ import annotations

import numpy as np

from ..dialects import riscv, riscv_func, riscv_scf, riscv_snitch
from ..dialects.builtin import ModuleOp
from ..dialects.riscv import FloatRegisterType, IntRegisterType
from ..dialects.snitch_stream import StreamingRegionOp, StridePattern
from ..ir.builder import Builder
from ..ir.core import SSAValue
from .builders import ArrayArg, KernelSpec, ScalarArg


def _frep(builder: Builder, count: int, iter_args=()):
    """Emit a ``frep_outer`` of ``count`` iterations; returns the op and
    a builder positioned inside its body."""
    max_rep = builder.insert(riscv.LiOp(count - 1)).rd
    frep = riscv_snitch.FrepOuter(max_rep, iter_args)
    builder.insert(frep)
    return frep, Builder.at_end(frep.body_block)


def _arg_copies(builder: Builder, fn: riscv_func.FuncOp) -> list[SSAValue]:
    copies = []
    for arg in fn.args:
        if isinstance(arg.type, IntRegisterType):
            copies.append(builder.insert(riscv.MVOp(arg)).rd)
        else:
            copies.append(builder.insert(riscv.FMVOp(arg)).rd)
    return copies


def lowlevel_sum_f32(n: int, m: int) -> tuple[ModuleOp, KernelSpec]:
    """Element-wise f32 sum via ``vfadd.s``: two lanes per instruction."""
    elements = n * m
    if elements % 2:
        raise ValueError("f32 kernels process two elements per register")
    words = elements // 2
    fn = riscv_func.FuncOp(
        "sum32", riscv_func.abi_arg_types(["int", "int", "int"])
    )
    builder = Builder.at_end(fn.entry_block)
    x, y, z = _arg_copies(builder, fn)
    pattern = StridePattern([words], [8])
    region = StreamingRegionOp([x, y], [z], [pattern] * 3)
    builder.insert(region)
    inner = Builder.at_end(region.body_block)
    _, frep_builder = _frep(inner, words)
    x_read = frep_builder.insert(
        riscv_snitch.ReadOp(region.body_block.args[0])
    ).result
    y_read = frep_builder.insert(
        riscv_snitch.ReadOp(region.body_block.args[1])
    ).result
    frep_builder.insert(
        riscv_snitch.VFAddSOp(
            x_read, y_read, result_type=FloatRegisterType("ft2")
        )
    )
    frep_builder.insert(riscv_snitch.FrepYieldOp())
    builder.insert(riscv_func.ReturnOp())
    spec = KernelSpec(
        name="sum32",
        arguments=[
            ArrayArg((n, m), "in", np.float32),
            ArrayArg((n, m), "in", np.float32),
            ArrayArg((n, m), "out", np.float32),
        ],
        reference=lambda a, b, _z: [None, None, a + b],
        flops=elements,
    )
    return ModuleOp([fn]), spec


def lowlevel_relu_f32(n: int, m: int) -> tuple[ModuleOp, KernelSpec]:
    """Element-wise f32 ReLU via ``vfmax.s`` against packed zeros."""
    elements = n * m
    if elements % 2:
        raise ValueError("f32 kernels process two elements per register")
    words = elements // 2
    fn = riscv_func.FuncOp(
        "relu32", riscv_func.abi_arg_types(["int", "int"])
    )
    builder = Builder.at_end(fn.entry_block)
    x, z = _arg_copies(builder, fn)
    zero_int = builder.insert(
        riscv.GetRegisterOp(IntRegisterType("zero"))
    ).result
    packed_zero = builder.insert(riscv.FCvtDWOp(zero_int)).results[0]
    pattern = StridePattern([words], [8])
    region = StreamingRegionOp([x], [z], [pattern] * 2)
    builder.insert(region)
    inner = Builder.at_end(region.body_block)
    _, frep_builder = _frep(inner, words)
    x_read = frep_builder.insert(
        riscv_snitch.ReadOp(region.body_block.args[0])
    ).result
    frep_builder.insert(
        riscv_snitch.VFMaxSOp(
            x_read, packed_zero, result_type=FloatRegisterType("ft1")
        )
    )
    frep_builder.insert(riscv_snitch.FrepYieldOp())
    builder.insert(riscv_func.ReturnOp())
    spec = KernelSpec(
        name="relu32",
        arguments=[
            ArrayArg((n, m), "in", np.float32),
            ArrayArg((n, m), "out", np.float32),
        ],
        reference=lambda a, _z: [None, np.maximum(a, np.float32(0.0))],
        flops=elements,
    )
    return ModuleOp([fn]), spec


def lowlevel_matmul_t_f32(
    k: int, n: int, unroll: int = 4
) -> tuple[ModuleOp, KernelSpec]:
    """f32 MatMulT (``C[1xN] = A[1xK] @ B[NxK].T``) with packed SIMD.

    "This kernel computes the dot products of even and odd elements of
    rows from the input matrices using SIMD operations, sums them up,
    and stores the result at the corresponding offset ... unrolled by a
    factor of four" (paper Section 4.3).
    """
    if k % 2 or n % unroll:
        raise ValueError("need K even and N divisible by the unroll")
    if unroll % 2:
        raise ValueError("unroll must be even (results stored in pairs)")
    words = k // 2
    groups = n // unroll
    fn = riscv_func.FuncOp(
        "matmul_t32", riscv_func.abi_arg_types(["int", "int", "int"])
    )
    builder = Builder.at_end(fn.entry_block)
    a, b, c = _arg_copies(builder, fn)
    # A: the same K/2 packed words are replayed `unroll` times per group.
    a_pattern = StridePattern([groups, words, unroll], [0, 8, 0])
    # B: rows j = group*unroll + lane, each row K*4 bytes.
    b_pattern = StridePattern(
        [groups, words, unroll], [unroll * k * 4, 8, k * 4]
    )
    zero_int = builder.insert(
        riscv.GetRegisterOp(IntRegisterType("zero"))
    ).result
    packed_zero = builder.insert(riscv.FCvtDWOp(zero_int)).results[0]
    region = StreamingRegionOp([a, b], [], [a_pattern, b_pattern])
    builder.insert(region)
    inner = Builder.at_end(region.body_block)
    lb = inner.insert(riscv.LiOp(0)).rd
    ub = inner.insert(riscv.LiOp(groups)).rd
    step = inner.insert(riscv.LiOp(1)).rd
    loop = riscv_scf.ForOp(lb, ub, step, [c])
    inner.insert(loop)
    body = Builder.at_end(loop.body_block)
    c_ptr = loop.body_iter_args[0]
    accumulators = [
        body.insert(riscv.FMVOp(packed_zero)).rd for _ in range(unroll)
    ]
    frep, frep_builder = _frep(body, words, accumulators)
    new_accs = []
    for lane in range(unroll):
        a_read = frep_builder.insert(
            riscv_snitch.ReadOp(region.body_block.args[0])
        ).result
        b_read = frep_builder.insert(
            riscv_snitch.ReadOp(region.body_block.args[1])
        ).result
        mac = frep_builder.insert(
            riscv_snitch.VFMacSOp(
                frep.body_iter_args[lane], a_read, b_read
            )
        )
        new_accs.append(mac.rd)
    frep_builder.insert(riscv_snitch.FrepYieldOp(new_accs))
    # Horizontal reduction of the two lanes, then pack results in pairs.
    sums = []
    for lane in range(unroll):
        fresh = body.insert(riscv.FMVOp(packed_zero)).rd
        sums.append(
            body.insert(
                riscv_snitch.VFSumSOp(fresh, frep.results[lane])
            ).rd
        )
    for pair in range(unroll // 2):
        packed = body.insert(
            riscv_snitch.VFCpkaSSOp(sums[2 * pair], sums[2 * pair + 1])
        ).rd
        body.insert(riscv.FSdOp(packed, c_ptr, 8 * pair))
    next_ptr = body.insert(riscv.AddiOp(c_ptr, 4 * unroll)).rd
    body.insert(riscv_scf.YieldOp([next_ptr]))
    builder.insert(riscv_func.ReturnOp())
    spec = KernelSpec(
        name="matmul_t32",
        arguments=[
            ArrayArg((1, k), "in", np.float32),
            ArrayArg((n, k), "in", np.float32),
            ArrayArg((1, n), "out", np.float32),
        ],
        reference=lambda av, bv, _c: [None, None, av @ bv.T],
        flops=2 * n * k,
        uses_fma=True,
    )
    return ModuleOp([fn]), spec


def lowlevel_fill_f64(n: int, m: int) -> tuple[ModuleOp, KernelSpec]:
    """Handwritten f64 fill: one streamed ``fmv.d`` per element."""
    elements = n * m
    fn = riscv_func.FuncOp(
        "fill64", riscv_func.abi_arg_types(["float", "int"])
    )
    builder = Builder.at_end(fn.entry_block)
    value, out = _arg_copies(builder, fn)
    pattern = StridePattern([elements], [8])
    region = StreamingRegionOp([], [out], [pattern])
    builder.insert(region)
    inner = Builder.at_end(region.body_block)
    _, frep_builder = _frep(inner, elements)
    frep_builder.insert(
        riscv.FMVOp(value, result_type=FloatRegisterType("ft0"))
    )
    frep_builder.insert(riscv_snitch.FrepYieldOp())
    builder.insert(riscv_func.ReturnOp())
    spec = KernelSpec(
        name="fill64",
        arguments=[ScalarArg(), ArrayArg((n, m), "out")],
        reference=lambda v, _o: [None, np.full((n, m), v)],
        flops=elements,
    )
    return ModuleOp([fn]), spec


__all__ = [
    "lowlevel_sum_f32",
    "lowlevel_relu_f32",
    "lowlevel_matmul_t_f32",
    "lowlevel_fill_f64",
]
