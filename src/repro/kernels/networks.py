"""Network-level workloads: the micro-kernel mixes of NSNet2 and AlexNet.

The paper obtains its micro-kernels from two DNNs — NSNet2 (noise
suppression) and AlexNet (image classification) — "excluding Softmax and
Sigmoid" whose exponentials are out of scope (Section 4.1).  This module
captures per-layer micro-kernel *configurations* for both networks, with
shapes scaled to fit the 128 KiB TCDM exactly as the paper does
("we select shape sizes to fit within the TCDM"), and a driver that
compiles and simulates a whole network's kernel sequence.

This is the downstream-user view of the library: hand it a layer list,
get aggregate cycles and utilization for the network.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from .. import api
from . import builders

#: Cross-call layer-compile memo: ``(builder name, sizes, pipeline)``
#: -> ``(compiled, spec)``.  Networks repeat activation and FC shapes
#: both within and across runs; a long-lived process (the compile
#: server, a benchmark loop) reuses one compiled kernel — and one
#: decoded program — per distinct config instead of recompiling every
#: ``run_network`` call.  Bounded LRU; all access under the lock.
_LAYER_MEMO: "OrderedDict[tuple, tuple]" = OrderedDict()
_LAYER_MEMO_LOCK = threading.Lock()
_LAYER_MEMO_LIMIT: int | None = 64


def layer_cache_size() -> int:
    """Number of (builder, sizes, pipeline) configs memoized."""
    with _LAYER_MEMO_LOCK:
        return len(_LAYER_MEMO)


def layer_cache_limit() -> int | None:
    """The layer memo bound (``None`` = unbounded)."""
    return _LAYER_MEMO_LIMIT


def set_layer_cache_limit(limit: int | None) -> None:
    """Bound the layer memo to ``limit`` entries (evicting the least
    recently used immediately); ``None`` removes the bound."""
    global _LAYER_MEMO_LIMIT
    if limit is not None and limit < 0:
        raise ValueError("layer cache limit must be >= 0 or None")
    with _LAYER_MEMO_LOCK:
        _LAYER_MEMO_LIMIT = limit
        _evict_layer_memo()


def clear_layer_cache() -> None:
    """Drop every memoized layer compile."""
    with _LAYER_MEMO_LOCK:
        _LAYER_MEMO.clear()


def _evict_layer_memo() -> None:
    """Evict past the limit.  Lock held."""
    if _LAYER_MEMO_LIMIT is None:
        return
    while len(_LAYER_MEMO) > _LAYER_MEMO_LIMIT:
        _LAYER_MEMO.popitem(last=False)


@dataclass
class LayerConfig:
    """One micro-kernel invocation within a network."""

    #: Human-readable layer name ("fc1", "conv2", ...).
    name: str
    #: Kernel builder from :mod:`repro.kernels.builders`.
    builder: Callable
    #: Builder arguments (shapes scaled to the TCDM).
    sizes: tuple[int, ...]

    def build(self):
        """(module, spec) for this layer's kernel."""
        return self.builder(*self.sizes)

    @property
    def schedule_key(self) -> tuple[str, tuple[int, ...]]:
        """(builder name, sizes): the key tuned schedules match on
        (see ``repro.tune.schedule_table``)."""
        return self.builder.__name__, tuple(self.sizes)


@dataclass
class LayerResult:
    """Measured outcome of one simulated layer kernel."""

    name: str
    cycles: int
    flops: int
    utilization: float


@dataclass
class NetworkResult:
    """Aggregated outcome of a network's kernel sequence."""

    name: str
    layers: list[LayerResult]

    @property
    def total_cycles(self) -> int:
        """Sum of per-layer cycle counts."""
        return sum(layer.cycles for layer in self.layers)

    @property
    def total_flops(self) -> int:
        """Sum of per-layer FLOP counts."""
        return sum(layer.flops for layer in self.layers)

    @property
    def mean_utilization(self) -> float:
        """Cycle-weighted FPU utilization across the network."""
        if not self.total_cycles:
            return 0.0
        busy = sum(
            layer.utilization * layer.cycles for layer in self.layers
        )
        return busy / self.total_cycles

    def report(self) -> str:
        """A formatted per-layer table."""
        lines = [
            f"{self.name}: {len(self.layers)} kernels, "
            f"{self.total_cycles} cycles, "
            f"{self.mean_utilization:.1%} mean FPU utilization",
            f"{'layer':<16} {'cycles':>8} {'flops':>8} {'util':>7}",
        ]
        for layer in self.layers:
            lines.append(
                f"{layer.name:<16} {layer.cycles:>8} {layer.flops:>8} "
                f"{layer.utilization:>7.1%}"
            )
        return "\n".join(lines)


def nsnet2_layers(width: int = 40) -> list[LayerConfig]:
    """An NSNet2-shaped kernel mix (TCDM-scaled).

    NSNet2 is a recurrent fully-connected noise suppressor: its compute
    is dominated by matrix-vector/matrix-matrix products over feature
    vectors, interleaved with element-wise activations.  Shapes are
    scaled so every operand set fits the 128 KiB TCDM.
    """
    half = width // 2
    return [
        LayerConfig("fc1", builders.matmul, (1, width, width)),
        LayerConfig("relu1", builders.relu, (1, width)),
        LayerConfig("gru_ih", builders.matmul, (1, width, width)),
        LayerConfig("gru_hh", builders.matmul_transposed, (1, width, width)),
        LayerConfig("gru_sum", builders.sum_kernel, (1, width)),
        LayerConfig("fc2", builders.matmul, (1, width, half)),
        LayerConfig("relu2", builders.relu, (1, half)),
        LayerConfig("fc3", builders.matmul, (1, half, width)),
        LayerConfig("relu3", builders.relu, (1, width)),
    ]


def alexnet_layers(tile: int = 12) -> list[LayerConfig]:
    """An AlexNet-shaped kernel mix (one TCDM-sized tile per layer).

    AlexNet interleaves convolutions, ReLUs and max-pooling, finishing
    with fully-connected layers; each entry is one output tile of the
    corresponding layer.
    """
    return [
        LayerConfig("conv1", builders.conv3x3, (tile, tile)),
        LayerConfig("relu1", builders.relu, (tile, tile)),
        LayerConfig("pool1", builders.max_pool3x3, (tile, tile)),
        LayerConfig("conv2", builders.conv3x3, (tile, tile)),
        LayerConfig("relu2", builders.relu, (tile, tile)),
        LayerConfig("pool2", builders.max_pool3x3, (tile, tile)),
        LayerConfig("conv3", builders.conv3x3, (tile, tile)),
        LayerConfig("relu3", builders.relu, (tile, tile)),
        LayerConfig("fc6", builders.matmul, (1, 4 * tile, 2 * tile)),
        LayerConfig("relu6", builders.relu, (1, 2 * tile)),
        LayerConfig("fc7", builders.matmul, (1, 2 * tile, 2 * tile)),
        LayerConfig("relu7", builders.relu, (1, 2 * tile)),
    ]


def compile_layers(
    layers: list[LayerConfig],
    pipeline: str = "ours",
    schedules: Mapping[tuple[str, tuple[int, ...]], str] | None = None,
) -> list[tuple]:
    """Compile every layer kernel, one compile per distinct config.

    Networks repeat activation and FC shapes; layers with the same
    builder and sizes share one ``(compiled, spec)`` pair — and
    therefore one decoded program in the simulator's predecoded
    engine.  Returns the pairs in layer order.

    ``schedules`` maps a layer's ``schedule_key`` — (builder name,
    sizes) — to a tuned pipeline spec, overriding ``pipeline`` for
    that shape; build one with ``repro.tune.schedule_table`` from the
    autotuner's :class:`~repro.tune.TunedSchedule` artifacts to run
    the network with per-layer tuned schedules.

    The memo persists across calls (bounded LRU — see
    :func:`set_layer_cache_limit` / :func:`clear_layer_cache`), so a
    long-lived process pays each distinct (builder, sizes, pipeline)
    compile once.
    """
    pairs = []
    for layer in layers:
        layer_pipeline = pipeline
        if schedules is not None:
            layer_pipeline = schedules.get(
                layer.schedule_key, pipeline
            )
        key = (
            layer.builder.__name__,
            layer.sizes,
            layer_pipeline,
        )
        with _LAYER_MEMO_LOCK:
            cached = _LAYER_MEMO.get(key)
            if cached is not None:
                _LAYER_MEMO.move_to_end(key)
        if cached is None:
            module, spec = layer.build()
            compiled = api.compile_linalg(
                module, pipeline=layer_pipeline
            )
            cached = (compiled, spec)
            with _LAYER_MEMO_LOCK:
                _LAYER_MEMO[key] = cached
                _LAYER_MEMO.move_to_end(key)
                _evict_layer_memo()
        pairs.append(cached)
    return pairs


def run_network(
    name: str,
    layers: list[LayerConfig],
    pipeline: str = "ours",
    seed: int = 0,
    validate: bool = True,
    schedules: Mapping[tuple[str, tuple[int, ...]], str] | None = None,
) -> NetworkResult:
    """Compile and simulate every layer kernel; aggregate the metrics.

    ``pipeline`` is a named pipeline or any textual pipeline spec
    (forwarded to :func:`repro.api.compile_linalg`); ``schedules``
    optionally overrides it per layer shape with tuned pipeline specs
    (see :func:`compile_layers`).

    Kernels come from :func:`compile_layers`, so repeated layer shapes
    share one compiled kernel and one decoded program; each invocation
    still simulates on fresh TCDM contents.
    """
    results = []
    for layer, (compiled, spec) in zip(
        layers, compile_layers(layers, pipeline, schedules)
    ):
        arguments = spec.random_arguments(seed=seed)
        run = api.run_kernel(compiled, arguments)
        if validate:
            expected = spec.reference(*arguments)
            for got, want in zip(run.arrays, expected):
                if want is not None and not np.allclose(
                    got, want, atol=1e-8
                ):
                    raise AssertionError(
                        f"{name}/{layer.name}: simulation does not "
                        "match the numpy oracle"
                    )
        results.append(
            LayerResult(
                name=layer.name,
                cycles=run.trace.cycles,
                flops=run.trace.flops,
                utilization=run.trace.fpu_utilization,
            )
        )
    return NetworkResult(name=name, layers=results)


__all__ = [
    "LayerConfig",
    "LayerResult",
    "NetworkResult",
    "nsnet2_layers",
    "alexnet_layers",
    "clear_layer_cache",
    "compile_layers",
    "layer_cache_limit",
    "layer_cache_size",
    "run_network",
    "set_layer_cache_limit",
]
