"""The evaluation kernel suite (paper Table 1).

``builders`` constructs the DNN micro-kernels as linalg-level IR (the
compiler path, Sections 4.3-4.4); ``lowlevel`` holds the handwritten
dialect-level kernels (Section 4.2, RQ1); ``reference`` provides numpy
golden models used by the tests and benchmarks to validate every
simulated result; ``networks`` assembles the kernels into the NSNet2
and AlexNet layer mixes the paper draws them from.
"""

from . import networks
from .builders import (
    KERNEL_BUILDERS,
    KernelSpec,
    POOL_NEUTRAL_MIN,
    conv3x3,
    fill,
    matmul,
    matmul_transposed,
    matvec,
    max_pool3x3,
    relu,
    sum_kernel,
    sum_pool3x3,
)
from .lowlevel import (
    lowlevel_fill_f64,
    lowlevel_matmul_t_f32,
    lowlevel_relu_f32,
    lowlevel_sum_f32,
)

__all__ = [
    "KERNEL_BUILDERS",
    "KernelSpec",
    "fill",
    "sum_kernel",
    "relu",
    "conv3x3",
    "max_pool3x3",
    "sum_pool3x3",
    "matmul",
    "matmul_transposed",
    "matvec",
    "POOL_NEUTRAL_MIN",
    "lowlevel_sum_f32",
    "lowlevel_relu_f32",
    "lowlevel_matmul_t_f32",
    "lowlevel_fill_f64",
    "networks",
]
