"""Execution traces and performance counters.

Implements the paper's measurement methodology (Section 4.1): cycle
count, throughput (FLOPs/cycle, an FMA counting as two FLOPs), and FPU
utilization ("the ratio of cycles spent in the FPU executing arithmetic
instructions over the total execution latency").
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class ExecutionTrace:
    """All counters collected while running one kernel."""

    #: Total execution latency in cycles.
    cycles: int = 0
    #: Cycles the FPU spent executing *arithmetic* instructions.
    fpu_arith_cycles: int = 0
    #: Floating-point operations performed (FMA = 2).
    flops: int = 0
    #: Dynamic count of executed explicit loads (lw/fld/flw).
    loads: int = 0
    #: Dynamic count of executed explicit stores (sw/fsd/fsw).
    stores: int = 0
    #: Dynamic count of executed FMA instructions.
    fmadd: int = 0
    #: Dynamic count of executed ``frep.o`` instructions.
    frep: int = 0
    #: Dynamic count of integer-core instructions.
    int_instructions: int = 0
    #: Dynamic count of FPU-side instructions (incl. replayed FREP body).
    fpu_instructions: int = 0
    #: Elements moved by the stream semantic registers.
    ssr_reads: int = 0
    ssr_writes: int = 0
    #: Cycles lost to FPU RAW stalls (diagnostic, used by tests).
    fpu_stall_cycles: int = 0
    #: Dynamic mnemonic histogram.
    histogram: dict[str, int] = field(default_factory=dict)

    def record(self, mnemonic: str) -> None:
        """Bump the dynamic histogram."""
        self.histogram[mnemonic] = self.histogram.get(mnemonic, 0) + 1

    # -- derived metrics ----------------------------------------------------------

    @property
    def fpu_utilization(self) -> float:
        """FPU arithmetic cycles over total latency (0..1)."""
        if self.cycles == 0:
            return 0.0
        return self.fpu_arith_cycles / self.cycles

    @property
    def throughput(self) -> float:
        """FLOPs per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.flops / self.cycles

    def occupancy_percent(self) -> float:
        """FPU utilization as a percentage (Table 3's "Occupancy")."""
        return 100.0 * self.fpu_utilization

    def summary(self) -> str:
        """A one-line human-readable summary."""
        return (
            f"cycles={self.cycles} flops={self.flops} "
            f"throughput={self.throughput:.2f} "
            f"util={self.fpu_utilization:.1%} loads={self.loads} "
            f"stores={self.stores}"
        )

    # -- serialization / aggregation ----------------------------------------------

    def to_json(self) -> dict:
        """All counters as a JSON-compatible dict (round-trips)."""
        return {
            f.name: (
                dict(getattr(self, f.name))
                if f.name == "histogram"
                else getattr(self, f.name)
            )
            for f in fields(self)
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ExecutionTrace":
        """Rebuild a trace from :meth:`to_json` output.

        Unknown keys are ignored so traces serialized by a newer
        revision still load.
        """
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in payload.items() if k in known}
        kwargs["histogram"] = dict(kwargs.get("histogram") or {})
        return cls(**kwargs)

    @classmethod
    def merge(cls, traces) -> "ExecutionTrace":
        """Aggregate per-core traces into one cluster-level trace.

        Cores run concurrently, so ``cycles`` (and the stall
        diagnostic) take the max — the cluster is as slow as its
        slowest core — while work counters and the mnemonic histogram
        sum.  Cluster FPU utilization then falls out of the usual
        property: summed arith cycles over one core-count multiple of
        the critical path is *not* what the paper reports, so callers
        wanting per-cluster occupancy still divide by core count
        (see :meth:`repro.snitch.cluster.ClusterRun`).
        """
        merged = cls()
        for trace in traces:
            merged.cycles = max(merged.cycles, trace.cycles)
            merged.fpu_stall_cycles = max(
                merged.fpu_stall_cycles, trace.fpu_stall_cycles
            )
            for f in fields(cls):
                if f.name in ("cycles", "fpu_stall_cycles", "histogram"):
                    continue
                setattr(
                    merged,
                    f.name,
                    getattr(merged, f.name) + getattr(trace, f.name),
                )
            for mnemonic, count in trace.histogram.items():
                merged.histogram[mnemonic] = (
                    merged.histogram.get(mnemonic, 0) + count
                )
        return merged


__all__ = ["ExecutionTrace"]

