"""Predecoded, closure-threaded execution engine.

The fast path behind :meth:`SnitchMachine.run`.  :func:`decode` runs
once per :class:`~repro.snitch.assembler.Program` and translates each
:class:`~repro.snitch.isa.Inst` into a specialized closure with
everything resolvable at decode time already resolved:

* register names become integer indices into flat list-based register
  files (one unified name space, so the dict-by-name semantics of the
  reference interpreter are preserved exactly);
* the mnemonic dispatch is burned into the closure — no ``if/elif``
  chain runs at execute time;
* branch and jump targets are pre-resolved to pc indices;
* memory accesses use prebound :class:`struct.Struct` codecs on the
  TCDM byte array;
* ``frep.o`` becomes a true macro-op: the body is legality-checked and
  decoded once, then replayed in a tight loop with the sequencer
  timing model applied incrementally;
* SSR address generation is incremental (add the innermost stride,
  carry on wrap) instead of re-summing over all dimensions per element.

Semantics are bit-exact with the reference interpreter
(:meth:`SnitchMachine.run_reference`): cycle counts, every
:class:`~repro.snitch.trace.ExecutionTrace` counter, recorded
timelines, and final memory contents are identical — the differential
test suite asserts this on randomized programs and on the paper's
kernels across all pipelines.

Decoded programs are cached on the ``Program`` object, so all cores of
a cluster (and repeated runs of one kernel) share one decode.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from collections.abc import Mapping
from time import monotonic

import numpy as np

from ..backend.registers import FLOAT_REGISTERS, INT_REGISTERS
from ..obs.metrics import METRICS
from ..obs.tracing import span
from .assembler import AssemblerError, Program
from .isa import (
    FP_ARITH_FLOPS,
    FP_LOADS,
    FP_STORES,
    FPU_INSTRUCTIONS,
    Inst,
    KIND_BRANCH,
    KIND_FPU,
    KIND_FREP,
    KIND_INT,
    KIND_JUMP,
    KIND_RET,
    SSR_COUNT,
    SSR_MAX_DIMS,
    WORD_BOUND_BASE,
    WORD_READ_POINTER_BASE,
    WORD_REPEAT,
    WORD_STRIDE_BASE,
    WORD_WRITE_POINTER_BASE,
    classify,
    scfg_decode,
)
from .machine import (
    BRANCH_TAKEN_PENALTY,
    FP_LATENCY,
    FP_LOAD_LATENCY,
    INT_LOAD_LATENCY,
    MUL_LATENCY,
    STREAM_REGISTERS,
    DeadlineExceeded,
    SimulationError,
    SnitchMachine,
    _SCALAR_OPS,
    bits_to_f32,
    f32_to_bits,
    pack_f32x2,
    unpack_f32x2,
)
from .memory import U32, U64, F64, out_of_bounds

#: Unified register name space: the reference interpreter keys its
#: integer and FP register files by *name*, accepting any register name
#: in either file, so the flat engine mirrors that with one index space
#: covering both ABI name sets (integer domain ``xs``/``xready`` and FP
#: domain ``fs``/``fready`` are separate arrays over the same indices).
_REG_NAMES = INT_REGISTERS + FLOAT_REGISTERS
_REG_INDEX = {name: i for i, name in enumerate(_REG_NAMES)}
#: Data-mover index by unified register index (ft0..ft2 only).
_STREAM_MOVER = {_REG_INDEX[n]: k for k, n in enumerate(STREAM_REGISTERS)}

_TAKEN = 1 + BRANCH_TAKEN_PENALTY

# Prebound codecs (compiled once in memory.py).
_LOAD_U64 = U64.unpack_from
_STORE_U64 = U64.pack_into
_LOAD_U32 = U32.unpack_from
_STORE_U32 = U32.pack_into
_PACK_D = F64.pack
_UNPACK_D = F64.unpack
_PACK_Q = U64.pack
_UNPACK_Q = U64.unpack

_compute_packed = SnitchMachine._compute_packed

class _DecodeStats(Mapping):
    """Read-through view over the decode counters in the obs registry.

    Keeps the historical ``DECODE_STATS["programs_decoded"]`` reading
    idiom while the actual counts live in
    :data:`repro.obs.metrics.METRICS` as atomic counters
    (``engine_programs_decoded`` / ``engine_instructions_decoded``) —
    the PR-10 fix for unlocked ``+=`` on a module dict under the
    service's thread-per-connection loop.
    """

    def __init__(self):
        self._counters = {
            "programs_decoded": METRICS.counter(
                "engine_programs_decoded"
            ),
            "instructions_decoded": METRICS.counter(
                "engine_instructions_decoded"
            ),
        }

    def __getitem__(self, key: str) -> int:
        return self._counters[key].value

    def __iter__(self):
        return iter(self._counters)

    def __len__(self) -> int:
        return len(self._counters)

    def increment(self, key: str, amount: int = 1) -> None:
        self._counters[key].inc(amount)


#: Decode telemetry: bumped once per (cache-missing) decode; the
#: perf-smoke suite budgets these to prove decoding happens once per
#: program, not once per core or per run.
DECODE_STATS = _DecodeStats()

#: Version of the engine's timing semantics.  The schedule-space
#: autotuner persists measured cycle counts keyed on this value — bump
#: it whenever a change alters *cycle counts* (not just throughput) so
#: stale caches invalidate themselves instead of mis-ranking schedules.
ENGINE_VERSION = 1

#: Guards decode publication and the decode registry: concurrent
#: :func:`decode` calls on one ``Program`` (e.g. a threaded compile
#: server's workers) must observe either no decode or a complete one,
#: never a partially initialized ``DecodedProgram``.
_DECODE_LOCK = threading.Lock()

#: LRU registry of live decoded programs, ``id(program) -> weakref``.
#: Decodes are memoized *on* the ``Program`` object (``_decoded``), so
#: they normally die with it; this registry exists to let a long-lived
#: process bound and introspect that otherwise-invisible cache.  All
#: access happens under :data:`_DECODE_LOCK`.
_DECODE_LRU: "OrderedDict[int, weakref.ref]" = OrderedDict()

#: Max live decodes kept (``None`` = unbounded).  Evicting drops the
#: ``_decoded`` attribute of the least-recently decoded program — it
#: re-decodes transparently on next use.
_DECODE_LIMIT: int | None = None


def _prune_decode_lru() -> None:
    """Drop dead weakrefs; evict past the limit.  Lock held."""
    dead = [key for key, ref in _DECODE_LRU.items() if ref() is None]
    for key in dead:
        del _DECODE_LRU[key]
    if _DECODE_LIMIT is None:
        return
    while len(_DECODE_LRU) > _DECODE_LIMIT:
        _, ref = _DECODE_LRU.popitem(last=False)
        victim = ref()
        if victim is not None:
            try:
                del victim._decoded
            except AttributeError:
                pass


def decode_cache_size() -> int:
    """Number of live decoded programs currently registered."""
    with _DECODE_LOCK:
        _prune_decode_lru()
        return len(_DECODE_LRU)


def decode_cache_limit() -> int | None:
    """The decode cache bound (``None`` = unbounded)."""
    return _DECODE_LIMIT


def set_decode_cache_limit(limit: int | None) -> None:
    """Bound the decode cache to ``limit`` live decodes (evicting
    least-recently-decoded programs immediately); ``None`` removes
    the bound."""
    global _DECODE_LIMIT
    if limit is not None and limit < 0:
        raise ValueError("decode cache limit must be >= 0 or None")
    with _DECODE_LOCK:
        _DECODE_LIMIT = limit
        _prune_decode_lru()


def clear_decode_cache() -> None:
    """Drop every memoized decode (programs re-decode on next use)."""
    with _DECODE_LOCK:
        for ref in _DECODE_LRU.values():
            program = ref()
            if program is not None:
                try:
                    del program._decoded
                except AttributeError:
                    pass
        _DECODE_LRU.clear()


def _u(name: str) -> int:
    index = _REG_INDEX.get(name)
    if index is None:
        raise AssemblerError(f"unknown register {name!r}")
    return index


def _src_meta(name: str) -> tuple[int, bool, int]:
    """(unified index, is-FP-named, data-mover index or -1)."""
    u = _u(name)
    return u, name.startswith("f"), _STREAM_MOVER.get(u, -1)


class _FastMover:
    """Incremental-address twin of :class:`machine.DataMover`.

    Maintains the invariant ``addr == base + sum(index[d] * strides[d]
    for d in range(dims))`` across advances, so each element costs one
    add instead of a sum over all dimensions.
    """

    __slots__ = (
        "bounds", "strides", "repeat", "direction", "dims", "base",
        "index", "repeat_count", "exhausted", "addr",
    )

    def __init__(self):
        self.bounds = [0] * SSR_MAX_DIMS
        self.strides = [0] * SSR_MAX_DIMS
        self.repeat = 0
        self.direction = None
        self.dims = 0
        self.base = 0
        self.index = [0] * SSR_MAX_DIMS
        self.repeat_count = 0
        self.exhausted = False
        self.addr = 0

    def arm(self, direction: str, dims: int, base: int) -> None:
        self.direction = direction
        self.dims = dims
        self.base = base
        self.index = [0] * SSR_MAX_DIMS
        self.repeat_count = 0
        self.exhausted = False
        self.addr = base

    def resync(self) -> None:
        """Recompute ``addr`` after a stride config write mid-pattern."""
        self.addr = self.base + sum(
            self.index[d] * self.strides[d] for d in range(self.dims)
        )

    def wrap(self) -> None:
        """Advance with carry (innermost dimension has hit its bound)."""
        index = self.index
        bounds = self.bounds
        strides = self.strides
        addr = self.addr
        for d in range(self.dims):
            i = index[d]
            if i < bounds[d]:
                index[d] = i + 1
                self.addr = addr + strides[d]
                return
            index[d] = 0
            addr -= i * strides[d]
        self.addr = addr
        self.exhausted = True


class _State:
    """Flat mutable execution state the decoded closures operate on."""

    __slots__ = (
        "xs", "fs", "xready", "fready", "int_time", "fpu_time",
        "streaming", "movers", "trace", "timeline", "executed",
        "max_instructions", "data", "size", "deadline",
    )


def make_state(machine: SnitchMachine) -> _State:
    """Seed a flat state from a machine's architectural dictionaries."""
    s = _State()
    int_regs = machine.int_regs
    float_regs = machine.float_regs
    int_ready = machine.int_ready
    fp_ready = machine.fp_ready
    s.xs = [int_regs.get(n, 0) for n in _REG_NAMES]
    s.fs = [float_regs.get(n, 0) for n in _REG_NAMES]
    s.xready = [int_ready.get(n, 0) for n in _REG_NAMES]
    s.fready = [fp_ready.get(n, 0) for n in _REG_NAMES]
    s.int_time = machine.int_time
    s.fpu_time = machine.fpu_time
    s.streaming = machine.streaming
    s.movers = []
    for dm in machine.movers:
        fm = _FastMover()
        fm.bounds = list(dm.bounds)
        fm.strides = list(dm.strides)
        fm.repeat = dm.repeat
        fm.direction = dm.direction
        fm.dims = dm.dims
        fm.base = dm.base
        fm.index = list(dm.index)
        fm.repeat_count = dm.repeat_count
        fm.exhausted = dm.exhausted
        fm.resync()
        s.movers.append(fm)
    s.trace = machine.trace
    s.timeline = machine.timeline if machine.record_timeline else None
    s.executed = machine._executed
    s.max_instructions = machine.max_instructions
    s.deadline = machine._deadline
    s.data = machine.memory.data
    s.size = machine.memory.size
    return s


def sync_state(machine: SnitchMachine, s: _State) -> None:
    """Write a flat state back into the machine's dictionaries.

    Zero-valued entries are dropped (the dict register files default to
    0 on read, so every accessor observes identical values); keys
    outside the ABI name space — only reachable through manual
    ``write_int``/``write_float_bits`` calls — are preserved.
    """

    def rebuild(old: dict, values: list) -> dict:
        new = {
            k: v for k, v in old.items() if k not in _REG_INDEX
        }
        for name, value in zip(_REG_NAMES, values):
            if value:
                new[name] = value
        return new

    machine.int_regs = rebuild(machine.int_regs, s.xs)
    machine.int_regs.setdefault("zero", 0)
    machine.float_regs = rebuild(machine.float_regs, s.fs)
    machine.int_ready = rebuild(machine.int_ready, s.xready)
    machine.fp_ready = rebuild(machine.fp_ready, s.fready)
    machine.int_time = s.int_time
    machine.fpu_time = s.fpu_time
    machine.streaming = s.streaming
    machine._executed = s.executed
    for dm, fm in zip(machine.movers, s.movers):
        dm.bounds = list(fm.bounds)
        dm.strides = list(fm.strides)
        dm.repeat = fm.repeat
        dm.direction = fm.direction
        dm.dims = fm.dims
        dm.base = fm.base
        dm.index = list(fm.index)
        dm.repeat_count = fm.repeat_count
        dm.exhausted = fm.exhausted


# -- SSR element transport ------------------------------------------------------


def _ssr_pop(s: _State, tr, m: _FastMover) -> int:
    """Pop the next element of a read stream (with incremental advance)."""
    if m.exhausted:
        raise SimulationError("stream read past end of pattern")
    addr = m.addr
    if addr < 0 or addr + 8 > s.size:
        raise out_of_bounds(addr, 8)
    bits = _LOAD_U64(s.data, addr)[0]
    if m.repeat_count < m.repeat:
        m.repeat_count += 1
    else:
        m.repeat_count = 0
        i = m.index[0]
        if i < m.bounds[0]:
            m.index[0] = i + 1
            m.addr = addr + m.strides[0]
        else:
            m.wrap()
    tr.ssr_reads += 1
    return bits


def _ssr_push(s: _State, tr, m: _FastMover, bits: int) -> None:
    """Push the next element of a write stream."""
    if m.exhausted:
        raise SimulationError("stream write past end of pattern")
    addr = m.addr
    if addr < 0 or addr + 8 > s.size:
        raise out_of_bounds(addr, 8)
    _STORE_U64(s.data, addr, bits)
    if m.repeat_count < m.repeat:
        m.repeat_count += 1
    else:
        m.repeat_count = 0
        i = m.index[0]
        if i < m.bounds[0]:
            m.index[0] = i + 1
            m.addr = addr + m.strides[0]
        else:
            m.wrap()
    tr.ssr_writes += 1


# -- integer-core closures ------------------------------------------------------
#
# Every factory burns the reference interpreter's exact sequence into a
# closure: bump the dynamic histogram, count the instruction, compute
# the issue cycle from the source-ready times, record the timeline row,
# advance the integer timeline, execute, publish the result-ready time.
# Writes to ``zero`` (unified index 0) are dropped, but its ready time
# is still published — exactly as the reference does.


def _make_li(rd, imm, next_pc, text):
    def op(s):
        tr = s.trace
        h = tr.histogram
        h["li"] = h.get("li", 0) + 1
        tr.int_instructions += 1
        issue = s.int_time
        tl = s.timeline
        if tl is not None:
            tl.append((issue, "int", text))
        s.int_time = issue + 1
        if rd:
            s.xs[rd] = imm
        s.xready[rd] = issue + 1
        return next_pc

    return op


def _make_mv(rd, a, next_pc, text):
    def op(s):
        tr = s.trace
        h = tr.histogram
        h["mv"] = h.get("mv", 0) + 1
        tr.int_instructions += 1
        xready = s.xready
        issue = s.int_time
        r = xready[a]
        if r > issue:
            issue = r
        tl = s.timeline
        if tl is not None:
            tl.append((issue, "int", text))
        s.int_time = issue + 1
        xs = s.xs
        if rd:
            xs[rd] = xs[a]
        xready[rd] = issue + 1
        return next_pc

    return op


def _make_alu2(mn, rd, a, b, combine, next_pc, text):
    """add/sub: two register sources, single-cycle result."""

    def op(s):
        tr = s.trace
        h = tr.histogram
        h[mn] = h.get(mn, 0) + 1
        tr.int_instructions += 1
        xready = s.xready
        issue = s.int_time
        r = xready[a]
        if r > issue:
            issue = r
        r = xready[b]
        if r > issue:
            issue = r
        tl = s.timeline
        if tl is not None:
            tl.append((issue, "int", text))
        s.int_time = issue + 1
        xs = s.xs
        if rd:
            xs[rd] = combine(xs[a], xs[b])
        xready[rd] = issue + 1
        return next_pc

    return op


def _make_mul(rd, a, b, next_pc, text):
    def op(s):
        tr = s.trace
        h = tr.histogram
        h["mul"] = h.get("mul", 0) + 1
        tr.int_instructions += 1
        xready = s.xready
        issue = s.int_time
        r = xready[a]
        if r > issue:
            issue = r
        r = xready[b]
        if r > issue:
            issue = r
        tl = s.timeline
        if tl is not None:
            tl.append((issue, "int", text))
        s.int_time = issue + 1
        xs = s.xs
        if rd:
            xs[rd] = xs[a] * xs[b]
        xready[rd] = issue + MUL_LATENCY
        return next_pc

    return op


def _make_alu1i(mn, rd, a, imm, shift, next_pc, text):
    """addi/slli: one register source plus an immediate."""

    def op(s):
        tr = s.trace
        h = tr.histogram
        h[mn] = h.get(mn, 0) + 1
        tr.int_instructions += 1
        xready = s.xready
        issue = s.int_time
        r = xready[a]
        if r > issue:
            issue = r
        tl = s.timeline
        if tl is not None:
            tl.append((issue, "int", text))
        s.int_time = issue + 1
        xs = s.xs
        if rd:
            xs[rd] = (xs[a] << imm) if shift else (xs[a] + imm)
        xready[rd] = issue + 1
        return next_pc

    return op


def _make_lw(rd, base, imm, next_pc, text):
    def op(s):
        tr = s.trace
        h = tr.histogram
        h["lw"] = h.get("lw", 0) + 1
        tr.int_instructions += 1
        xready = s.xready
        issue = s.int_time
        r = xready[base]
        if r > issue:
            issue = r
        tl = s.timeline
        if tl is not None:
            tl.append((issue, "int", text))
        s.int_time = issue + 1
        xs = s.xs
        addr = xs[base] + imm
        if addr < 0 or addr + 4 > s.size:
            raise out_of_bounds(addr, 4)
        if rd:
            xs[rd] = _LOAD_U32(s.data, addr)[0]
        tr.loads += 1
        xready[rd] = issue + INT_LOAD_LATENCY
        return next_pc

    return op


def _make_sw(value, base, imm, next_pc, text):
    def op(s):
        tr = s.trace
        h = tr.histogram
        h["sw"] = h.get("sw", 0) + 1
        tr.int_instructions += 1
        xready = s.xready
        issue = s.int_time
        r = xready[value]
        if r > issue:
            issue = r
        r = xready[base]
        if r > issue:
            issue = r
        tl = s.timeline
        if tl is not None:
            tl.append((issue, "int", text))
        s.int_time = issue + 1
        xs = s.xs
        addr = xs[base] + imm
        if addr < 0 or addr + 4 > s.size:
            raise out_of_bounds(addr, 4)
        _STORE_U32(s.data, addr, xs[value] & 0xFFFFFFFF)
        tr.stores += 1
        return next_pc

    return op


def _make_scfgwi(src, action, next_pc, text):
    """SSR config write; ``action`` is pre-decoded from the immediate."""

    def op(s):
        tr = s.trace
        h = tr.histogram
        h["scfgwi"] = h.get("scfgwi", 0) + 1
        tr.int_instructions += 1
        issue = s.int_time
        r = s.xready[src]
        if r > issue:
            issue = r
        tl = s.timeline
        if tl is not None:
            tl.append((issue, "int", text))
        s.int_time = issue + 1
        tag = action[0]
        if tag == "badmover":
            raise SimulationError(f"scfgwi: no data mover {action[1]}")
        if tag == "badword":
            raise SimulationError(
                f"scfgwi: unknown config word {action[1]}"
            )
        value = s.xs[src]
        m = s.movers[action[1]]
        if tag == "bound":
            m.bounds[action[2]] = value
        elif tag == "stride":
            m.strides[action[2]] = value
            m.resync()
        elif tag == "repeat":
            m.repeat = value
        else:  # arm
            m.arm(action[2], action[3], value)
        return next_pc

    return op


def _make_csr(mn, csr, next_pc, text):
    supported = csr == "ssrcfg"
    enable = mn == "csrsi"

    def op(s):
        tr = s.trace
        h = tr.histogram
        h[mn] = h.get(mn, 0) + 1
        tr.int_instructions += 1
        issue = s.int_time
        tl = s.timeline
        if tl is not None:
            tl.append((issue, "int", text))
        s.int_time = issue + 1
        if not supported:
            raise SimulationError(f"unsupported CSR {csr!r}")
        if enable:
            s.streaming = True
        else:
            # Disabling streaming synchronizes with the FPU.
            if s.fpu_time > s.int_time:
                s.int_time = s.fpu_time
            s.streaming = False
        return next_pc

    return op


def _make_int_unhandled(mn, srcs, text):
    """The reference raises after the issue bookkeeping; mirror that."""

    def op(s):
        tr = s.trace
        h = tr.histogram
        h[mn] = h.get(mn, 0) + 1
        tr.int_instructions += 1
        xready = s.xready
        issue = s.int_time
        for u in srcs:
            r = xready[u]
            if r > issue:
                issue = r
        tl = s.timeline
        if tl is not None:
            tl.append((issue, "int", text))
        s.int_time = issue + 1
        raise SimulationError(f"unhandled instruction {mn!r}")

    return op


def _make_bnez(a, target_pc, target, next_pc, text):
    def op(s):
        tr = s.trace
        h = tr.histogram
        h["bnez"] = h.get("bnez", 0) + 1
        tr.int_instructions += 1
        issue = s.int_time
        r = s.xready[a]
        if r > issue:
            issue = r
        if s.xs[a] != 0:
            s.int_time = issue + _TAKEN
            if target_pc is None:
                raise AssemblerError(f"undefined label {target!r}")
            return target_pc
        s.int_time = issue + 1
        return next_pc

    return op


def _make_branch2(mn, a, b, compare, target_pc, target, next_pc, text):
    def op(s):
        tr = s.trace
        h = tr.histogram
        h[mn] = h.get(mn, 0) + 1
        tr.int_instructions += 1
        xready = s.xready
        issue = s.int_time
        r = xready[a]
        if r > issue:
            issue = r
        r = xready[b]
        if r > issue:
            issue = r
        xs = s.xs
        if compare(xs[a], xs[b]):
            s.int_time = issue + _TAKEN
            if target_pc is None:
                raise AssemblerError(f"undefined label {target!r}")
            return target_pc
        s.int_time = issue + 1
        return next_pc

    return op


def _make_j(target_pc, target, text):
    def op(s):
        tr = s.trace
        h = tr.histogram
        h["j"] = h.get("j", 0) + 1
        s.int_time += _TAKEN
        if target_pc is None:
            raise AssemblerError(f"undefined label {target!r}")
        return target_pc

    return op


def _ret_op(s):
    return None


_BRANCH_COMPARE = {
    "blt": lambda lhs, rhs: lhs < rhs,
    "bge": lambda lhs, rhs: lhs >= rhs,
    "bne": lambda lhs, rhs: lhs != rhs,
    "beq": lambda lhs, rhs: lhs == rhs,
}


# -- FPU-side closures ----------------------------------------------------------
#
# FPU closures have signature ``fn(state, dispatch)`` — the integer
# core's dispatch cycle is an argument so the same closure serves both
# the standalone case (dispatch = integer issue slot) and FREP replay
# (dispatch pre-computed for the first iteration, 0 afterwards).


def _make_fp_load(mn, rd, src, imm, text):
    u0, isfp0, k0 = src
    double = mn == "fld"
    width = 8 if double else 4
    loader = _LOAD_U64 if double else _LOAD_U32

    def fn(s, dispatch):
        tr = s.trace
        tr.fpu_instructions += 1
        ready = dispatch
        if isfp0:
            if not (
                k0 >= 0
                and s.streaming
                and s.movers[k0].direction == "read"
            ):
                r = s.fready[u0]
                if r > ready:
                    ready = r
        else:
            r = s.xready[u0]
            if r > ready:
                ready = r
        ft = s.fpu_time
        issue = ready if ready > ft else ft
        if issue > ft:
            tr.fpu_stall_cycles += issue - ft
        tl = s.timeline
        if tl is not None:
            tl.append((issue, "fpu", text))
        s.fpu_time = issue + 1
        addr = s.xs[u0] + imm
        if addr < 0 or addr + width > s.size:
            raise out_of_bounds(addr, width)
        s.fs[rd] = loader(s.data, addr)[0]
        tr.loads += 1
        s.fready[rd] = issue + FP_LOAD_LATENCY

    return fn


def _make_fp_store(mn, value, base, imm, text):
    uv, isfpv, kv = value
    ub, isfpb, kb = base
    double = mn == "fsd"
    width = 8 if double else 4

    def fn(s, dispatch):
        tr = s.trace
        tr.fpu_instructions += 1
        streaming = s.streaming
        movers = s.movers
        ready = dispatch
        if isfpv:
            if not (
                kv >= 0 and streaming and movers[kv].direction == "read"
            ):
                r = s.fready[uv]
                if r > ready:
                    ready = r
        else:
            r = s.xready[uv]
            if r > ready:
                ready = r
        if isfpb:
            if not (
                kb >= 0 and streaming and movers[kb].direction == "read"
            ):
                r = s.fready[ub]
                if r > ready:
                    ready = r
        else:
            r = s.xready[ub]
            if r > ready:
                ready = r
        ft = s.fpu_time
        issue = ready if ready > ft else ft
        if issue > ft:
            tr.fpu_stall_cycles += issue - ft
        tl = s.timeline
        if tl is not None:
            tl.append((issue, "fpu", text))
        s.fpu_time = issue + 1
        addr = s.xs[ub] + imm
        if addr < 0 or addr + width > s.size:
            raise out_of_bounds(addr, width)
        bits = s.fs[uv]
        if double:
            _STORE_U64(s.data, addr, bits)
        else:
            _STORE_U32(s.data, addr, bits & 0xFFFFFFFF)
        tr.stores += 1

    return fn


def _make_fcvt(rd, rd_k, src, text):
    u0, isfp0, k0 = src

    def fn(s, dispatch):
        tr = s.trace
        tr.fpu_instructions += 1
        streaming = s.streaming
        ready = dispatch
        if isfp0:
            if not (
                k0 >= 0
                and streaming
                and s.movers[k0].direction == "read"
            ):
                r = s.fready[u0]
                if r > ready:
                    ready = r
        else:
            r = s.xready[u0]
            if r > ready:
                ready = r
        ft = s.fpu_time
        issue = ready if ready > ft else ft
        if issue > ft:
            tr.fpu_stall_cycles += issue - ft
        tl = s.timeline
        if tl is not None:
            tl.append((issue, "fpu", text))
        s.fpu_time = issue + 1
        res = _UNPACK_Q(_PACK_D(float(s.xs[u0])))[0]
        if (
            rd_k >= 0
            and streaming
            and s.movers[rd_k].direction == "write"
        ):
            _ssr_push(s, tr, s.movers[rd_k], res)
        else:
            s.fs[rd] = res
            s.fready[rd] = issue + 1

    return fn


def _make_fmadd_d(rd, rd_k, s0, s1, s2, text):
    """The GEMM workhorse: ``fmadd.d`` with inline stream handling."""
    u0, _, k0 = s0
    u1, _, k1 = s1
    u2, _, k2 = s2

    def fn(s, dispatch):
        tr = s.trace
        tr.fpu_instructions += 1
        streaming = s.streaming
        movers = s.movers
        fready = s.fready
        m0 = m1 = m2 = None
        if streaming:
            if k0 >= 0:
                m = movers[k0]
                if m.direction == "read":
                    m0 = m
            if k1 >= 0:
                m = movers[k1]
                if m.direction == "read":
                    m1 = m
            if k2 >= 0:
                m = movers[k2]
                if m.direction == "read":
                    m2 = m
        ready = dispatch
        if m0 is None:
            r = fready[u0]
            if r > ready:
                ready = r
        if m1 is None:
            r = fready[u1]
            if r > ready:
                ready = r
        if m2 is None:
            r = fready[u2]
            if r > ready:
                ready = r
        ft = s.fpu_time
        issue = ready if ready > ft else ft
        if issue > ft:
            tr.fpu_stall_cycles += issue - ft
        tl = s.timeline
        if tl is not None:
            tl.append((issue, "fpu", text))
        s.fpu_time = issue + 1
        fs = s.fs
        if m0 is not None:
            b0 = _ssr_pop(s, tr, m0)
            fs[u0] = b0
        else:
            b0 = fs[u0]
        if m1 is not None:
            b1 = _ssr_pop(s, tr, m1)
            fs[u1] = b1
        else:
            b1 = fs[u1]
        if m2 is not None:
            b2 = _ssr_pop(s, tr, m2)
            fs[u2] = b2
        else:
            b2 = fs[u2]
        res = _UNPACK_Q(_PACK_D(
            _UNPACK_D(_PACK_Q(b0))[0] * _UNPACK_D(_PACK_Q(b1))[0]
            + _UNPACK_D(_PACK_Q(b2))[0]
        ))[0]
        tr.fpu_arith_cycles += 1
        tr.flops += 2
        tr.fmadd += 1
        if (
            rd_k >= 0
            and streaming
            and movers[rd_k].direction == "write"
        ):
            _ssr_push(s, tr, movers[rd_k], res)
        else:
            fs[rd] = res
            fready[rd] = issue + FP_LATENCY

    return fn


_ARITH2_D = {
    "fadd.d": lambda a, b: a + b,
    "fsub.d": lambda a, b: a - b,
    "fmul.d": lambda a, b: a * b,
    "fdiv.d": lambda a, b: a / b,
    "fmax.d": max,
    "fmin.d": min,
}


def _make_arith2_d(mn, rd, rd_k, s0, s1, text):
    """Two-source scalar-double arithmetic with inline bit codecs."""
    u0, _, k0 = s0
    u1, _, k1 = s1
    combine = _ARITH2_D[mn]
    flops = FP_ARITH_FLOPS[mn]

    def fn(s, dispatch):
        tr = s.trace
        tr.fpu_instructions += 1
        streaming = s.streaming
        movers = s.movers
        fready = s.fready
        m0 = m1 = None
        if streaming:
            if k0 >= 0:
                m = movers[k0]
                if m.direction == "read":
                    m0 = m
            if k1 >= 0:
                m = movers[k1]
                if m.direction == "read":
                    m1 = m
        ready = dispatch
        if m0 is None:
            r = fready[u0]
            if r > ready:
                ready = r
        if m1 is None:
            r = fready[u1]
            if r > ready:
                ready = r
        ft = s.fpu_time
        issue = ready if ready > ft else ft
        if issue > ft:
            tr.fpu_stall_cycles += issue - ft
        tl = s.timeline
        if tl is not None:
            tl.append((issue, "fpu", text))
        s.fpu_time = issue + 1
        fs = s.fs
        if m0 is not None:
            b0 = _ssr_pop(s, tr, m0)
            fs[u0] = b0
        else:
            b0 = fs[u0]
        if m1 is not None:
            b1 = _ssr_pop(s, tr, m1)
            fs[u1] = b1
        else:
            b1 = fs[u1]
        res = _UNPACK_Q(_PACK_D(combine(
            _UNPACK_D(_PACK_Q(b0))[0], _UNPACK_D(_PACK_Q(b1))[0]
        )))[0]
        tr.fpu_arith_cycles += 1
        tr.flops += flops
        if (
            rd_k >= 0
            and streaming
            and movers[rd_k].direction == "write"
        ):
            _ssr_push(s, tr, movers[rd_k], res)
        else:
            fs[rd] = res
            fready[rd] = issue + FP_LATENCY

    return fn


def _make_fmv_d(rd, rd_k, s0, text):
    """``fmv.d``: a counted register copy (1 FLOP per paper Table 1)."""
    u0, _, k0 = s0

    def fn(s, dispatch):
        tr = s.trace
        tr.fpu_instructions += 1
        streaming = s.streaming
        movers = s.movers
        fready = s.fready
        m0 = None
        if streaming and k0 >= 0:
            m = movers[k0]
            if m.direction == "read":
                m0 = m
        ready = dispatch
        if m0 is None:
            r = fready[u0]
            if r > ready:
                ready = r
        ft = s.fpu_time
        issue = ready if ready > ft else ft
        if issue > ft:
            tr.fpu_stall_cycles += issue - ft
        tl = s.timeline
        if tl is not None:
            tl.append((issue, "fpu", text))
        s.fpu_time = issue + 1
        fs = s.fs
        if m0 is not None:
            res = _ssr_pop(s, tr, m0)
            fs[u0] = res
        else:
            res = fs[u0]
        tr.fpu_arith_cycles += 1
        tr.flops += 1
        if (
            rd_k >= 0
            and streaming
            and movers[rd_k].direction == "write"
        ):
            _ssr_push(s, tr, movers[rd_k], res)
        else:
            fs[rd] = res
            fready[rd] = issue + FP_LATENCY

    return fn


def _compute_fn(mn):
    """Bit-level compute function for the generic FPU closure, matching
    :meth:`SnitchMachine._compute_fp` branch for branch."""
    if mn == "fmv.d":
        return lambda bits: bits[0]
    if mn == "vfcpka.s.s":
        return lambda bits: pack_f32x2(
            bits_to_f32(bits[0] & 0xFFFFFFFF),
            bits_to_f32(bits[1] & 0xFFFFFFFF),
        )
    if mn.endswith(".d"):
        scalar = _SCALAR_OPS[mn[:-2]]

        def compute(bits):
            values = [_UNPACK_D(_PACK_Q(b))[0] for b in bits]
            return _UNPACK_Q(_PACK_D(scalar(values)))[0]

        return compute
    if mn.startswith("vf"):
        return lambda bits: _compute_packed(
            mn, [unpack_f32x2(b) for b in bits]
        )
    if mn.endswith(".s"):
        scalar = _SCALAR_OPS[mn[:-2]]

        def compute(bits):
            values = [bits_to_f32(b & 0xFFFFFFFF) for b in bits]
            return f32_to_bits(np.float32(scalar(values)))

        return compute

    def unhandled(bits):
        raise SimulationError(f"unhandled FP instruction {mn!r}")

    return unhandled


def _make_fp_generic(mn, rd, rd_k, srcs, text):
    """Arity-agnostic arithmetic/move closure (``.s``, packed SIMD...)."""
    compute = _compute_fn(mn)
    arith = mn in FP_ARITH_FLOPS
    flops = FP_ARITH_FLOPS.get(mn, 0)
    latency = FP_LATENCY if arith else 1
    is_fmadd = mn in ("fmadd.d", "fmadd.s")

    def fn(s, dispatch):
        tr = s.trace
        tr.fpu_instructions += 1
        streaming = s.streaming
        movers = s.movers
        fready = s.fready
        xready = s.xready
        ready = dispatch
        for u, isfp, k in srcs:
            if isfp:
                if (
                    k >= 0
                    and streaming
                    and movers[k].direction == "read"
                ):
                    continue
                r = fready[u]
            else:
                r = xready[u]
            if r > ready:
                ready = r
        ft = s.fpu_time
        issue = ready if ready > ft else ft
        if issue > ft:
            tr.fpu_stall_cycles += issue - ft
        tl = s.timeline
        if tl is not None:
            tl.append((issue, "fpu", text))
        s.fpu_time = issue + 1
        fs = s.fs
        bits = []
        for u, isfp, k in srcs:
            if isfp and k >= 0 and streaming:
                m = movers[k]
                if m.direction == "read":
                    b = _ssr_pop(s, tr, m)
                    fs[u] = b
                    bits.append(b)
                    continue
            bits.append(fs[u])
        res = compute(bits)
        if arith:
            tr.fpu_arith_cycles += 1
            tr.flops += flops
            if is_fmadd:
                tr.fmadd += 1
        if rd is not None:
            if (
                rd_k >= 0
                and streaming
                and movers[rd_k].direction == "write"
            ):
                _ssr_push(s, tr, movers[rd_k], res)
            else:
                fs[rd] = res
                fready[rd] = issue + latency

    return fn


def _make_fpu_fn(inst: Inst):
    """Select and build the execute closure for one FPU instruction."""
    mn = inst.mnemonic
    text = str(inst)
    srcs = tuple(_src_meta(name) for name in inst.sources)
    rd = _u(inst.rd) if inst.rd is not None else None
    rd_k = _STREAM_MOVER.get(rd, -1) if rd is not None else -1
    if mn in FP_LOADS and rd is not None and len(srcs) == 1:
        return _make_fp_load(mn, rd, srcs[0], inst.imm or 0, text)
    if mn in FP_STORES and len(srcs) == 2:
        return _make_fp_store(mn, srcs[0], srcs[1], inst.imm or 0, text)
    if mn == "fcvt.d.w" and rd is not None and len(srcs) == 1:
        return _make_fcvt(rd, rd_k, srcs[0], text)
    all_fp = all(isfp for _, isfp, _ in srcs)
    if rd is not None and all_fp:
        if mn == "fmadd.d" and len(srcs) == 3:
            return _make_fmadd_d(rd, rd_k, *srcs, text)
        if mn in _ARITH2_D and len(srcs) == 2:
            return _make_arith2_d(mn, rd, rd_k, *srcs, text)
        if mn == "fmv.d" and len(srcs) == 1:
            return _make_fmv_d(rd, rd_k, srcs[0], text)
    return _make_fp_generic(mn, rd, rd_k, srcs, text)


# -- FREP macro-op --------------------------------------------------------------


def _raising_after_record(mn, exc):
    """Record the mnemonic (as ``_step`` would), then raise."""

    def op(s):
        h = s.trace.histogram
        h[mn] = h.get(mn, 0) + 1
        raise exc

    return op


def _make_frep(rs, length, body, next_pc):
    """``frep.o`` as a macro-op: the body — decoded and legality-checked
    once — is replayed in a tight loop.  Iteration 0 carries the
    sequencer's staggered dispatch cycles; later iterations replay with
    dispatch 0, exactly as the reference models it."""

    def op(s):
        tr = s.trace
        h = tr.histogram
        h["frep.o"] = h.get("frep.o", 0) + 1
        iterations = s.xs[rs] + 1
        tr.frep += 1
        tr.int_instructions += 1
        t = s.int_time
        r = s.xready[rs]
        frep_issue = t if t > r else r
        s.int_time = frep_issue + 1 + length
        base = frep_issue + 1
        maxi = s.max_instructions
        executed = s.executed
        deadline = s.deadline
        try:
            first = True
            for _ in range(iterations):
                if deadline is not None and monotonic() > deadline:
                    raise DeadlineExceeded(
                        "wall-clock deadline exceeded after "
                        f"{executed} instructions (inside frep)"
                    )
                d = base
                for fn, mn in body:
                    h[mn] = h.get(mn, 0) + 1
                    executed += 1
                    if executed > maxi:
                        raise SimulationError(
                            "instruction budget exceeded inside frep"
                        )
                    if first:
                        fn(s, d)
                        d += 1
                    else:
                        fn(s, 0)
                first = False
        finally:
            s.executed = executed
        return next_pc

    return op


def _decode_frep(inst: Inst, pc: int, insts, fpu_fns):
    length = inst.frep_length or 0
    if length <= 0:
        return _raising_after_record(
            "frep.o",
            SimulationError("frep.o with non-positive body length"),
        )
    body_start = pc + 1
    if body_start + length > len(insts):
        return _raising_after_record(
            "frep.o",
            SimulationError("frep.o body runs past end of program"),
        )
    for binst in insts[body_start : body_start + length]:
        if binst.mnemonic not in FPU_INSTRUCTIONS:
            return _raising_after_record(
                "frep.o",
                SimulationError(
                    f"illegal instruction in FREP body: {binst.mnemonic}"
                ),
            )
    body = tuple(
        (fpu_fns[i], insts[i].mnemonic)
        for i in range(body_start, body_start + length)
    )
    return _make_frep(_u(inst.sources[0]), length, body, pc + 1 + length)


# -- decode driver --------------------------------------------------------------


def _decode_int(inst: Inst, next_pc: int):
    mn = inst.mnemonic
    text = str(inst)
    if mn == "li":
        return _make_li(_u(inst.rd), inst.imm, next_pc, text)
    if mn == "mv":
        return _make_mv(_u(inst.rd), _u(inst.sources[0]), next_pc, text)
    if mn == "add":
        return _make_alu2(
            mn, _u(inst.rd), _u(inst.sources[0]), _u(inst.sources[1]),
            lambda a, b: a + b, next_pc, text,
        )
    if mn == "sub":
        return _make_alu2(
            mn, _u(inst.rd), _u(inst.sources[0]), _u(inst.sources[1]),
            lambda a, b: a - b, next_pc, text,
        )
    if mn == "mul":
        return _make_mul(
            _u(inst.rd), _u(inst.sources[0]), _u(inst.sources[1]),
            next_pc, text,
        )
    if mn in ("addi", "slli"):
        return _make_alu1i(
            mn, _u(inst.rd), _u(inst.sources[0]), inst.imm,
            mn == "slli", next_pc, text,
        )
    if mn == "lw":
        return _make_lw(
            _u(inst.rd), _u(inst.sources[0]), inst.imm or 0,
            next_pc, text,
        )
    if mn == "sw":
        return _make_sw(
            _u(inst.sources[0]), _u(inst.sources[1]), inst.imm or 0,
            next_pc, text,
        )
    if mn == "scfgwi":
        return _make_scfgwi(
            _u(inst.sources[0]), _scfg_action(inst.imm), next_pc, text
        )
    if mn in ("csrsi", "csrci"):
        return _make_csr(mn, inst.csr, next_pc, text)
    return _make_int_unhandled(
        mn, tuple(_u(name) for name in inst.sources), text
    )


def _scfg_action(imm: int) -> tuple:
    """Pre-decode an ``scfgwi`` immediate into an action tuple."""
    mover_index, word = scfg_decode(imm)
    if not 0 <= mover_index < SSR_COUNT:
        return ("badmover", mover_index)
    if WORD_BOUND_BASE <= word < WORD_BOUND_BASE + SSR_MAX_DIMS:
        return ("bound", mover_index, word - WORD_BOUND_BASE)
    if WORD_STRIDE_BASE <= word < WORD_STRIDE_BASE + SSR_MAX_DIMS:
        return ("stride", mover_index, word - WORD_STRIDE_BASE)
    if word == WORD_REPEAT:
        return ("repeat", mover_index)
    if (
        WORD_READ_POINTER_BASE
        <= word
        < WORD_READ_POINTER_BASE + SSR_MAX_DIMS
    ):
        return ("arm", mover_index, "read", word - WORD_READ_POINTER_BASE + 1)
    if (
        WORD_WRITE_POINTER_BASE
        <= word
        < WORD_WRITE_POINTER_BASE + SSR_MAX_DIMS
    ):
        return (
            "arm", mover_index, "write", word - WORD_WRITE_POINTER_BASE + 1
        )
    return ("badword", word)


class DecodedProgram:
    """One program translated to threaded closures, decode run once."""

    __slots__ = ("program", "code", "n", "insts", "labels")

    def __init__(self, program: Program, code: list):
        self.program = program
        self.code = code
        self.n = len(code)
        # Snapshot for cache invalidation (see :meth:`matches`).
        self.insts = list(program.instructions)
        self.labels = dict(program.labels)

    def matches(self, program: Program) -> bool:
        """Whether this decode is still valid for ``program``.

        Catches instruction-list edits (insert/remove/replace, by
        object identity) and label-map changes.  Mutating a *field* of
        an ``Inst`` in place is not detectable — programs are treated
        as frozen once assembled.
        """
        insts = program.instructions
        if self.n != len(insts):
            return False
        if self.labels != program.labels:
            return False
        return all(a is b for a, b in zip(self.insts, insts))


def decode(program: Program) -> DecodedProgram:
    """Translate (and cache) a program into specialized closures.

    The result is memoized on the ``Program`` object, so every machine
    executing the same program — every core of a cluster, every run of
    a reused compiled kernel — shares a single decode.

    Thread-safe: the decode is published under :data:`_DECODE_LOCK`
    with a double check, so racing callers (a threaded compile
    server's submitters) share one complete decode — never a torn one,
    and never two redundant ones.  The lock-free fast path reads the
    already-published attribute, which CPython assignment makes atomic.
    """
    cached = getattr(program, "_decoded", None)
    if cached is not None and cached.matches(program):
        return cached
    with _DECODE_LOCK:
        return _decode_locked(program)


def _decode_locked(program: Program) -> DecodedProgram:
    """Decode under :data:`_DECODE_LOCK` (double-checked)."""
    cached = getattr(program, "_decoded", None)
    if cached is not None and cached.matches(program):
        return cached
    with span("engine.decode", instructions=len(program.instructions)):
        return _decode_miss(program)


def _decode_miss(program: Program) -> DecodedProgram:
    insts = program.instructions
    code: list = [None] * len(insts)
    fpu_fns: list = [None] * len(insts)
    freps = []
    for pc, inst in enumerate(insts):
        kind = inst.kind or classify(inst.mnemonic)
        next_pc = pc + 1
        if kind == KIND_RET:
            code[pc] = _ret_op
        elif kind == KIND_FPU:
            fn = _make_fpu_fn(inst)
            fpu_fns[pc] = fn
            code[pc] = _wrap_fpu(inst.mnemonic, fn, next_pc)
        elif kind == KIND_BRANCH:
            target_pc = program.labels.get(inst.target)
            if inst.mnemonic == "bnez":
                code[pc] = _make_bnez(
                    _u(inst.sources[0]), target_pc, inst.target,
                    next_pc, str(inst),
                )
            else:
                code[pc] = _make_branch2(
                    inst.mnemonic,
                    _u(inst.sources[0]), _u(inst.sources[1]),
                    _BRANCH_COMPARE[inst.mnemonic],
                    target_pc, inst.target, next_pc, str(inst),
                )
        elif kind == KIND_JUMP:
            code[pc] = _make_j(
                program.labels.get(inst.target), inst.target, str(inst)
            )
        elif kind == KIND_FREP:
            freps.append(pc)
        else:
            code[pc] = _decode_int(inst, next_pc)
    for pc in freps:
        code[pc] = _decode_frep(insts[pc], pc, insts, fpu_fns)
    decoded = DecodedProgram(program, code)
    program._decoded = decoded
    DECODE_STATS.increment("programs_decoded")
    DECODE_STATS.increment("instructions_decoded", len(insts))
    key = id(program)
    _DECODE_LRU[key] = weakref.ref(program)
    _DECODE_LRU.move_to_end(key)
    _prune_decode_lru()
    return decoded


def _wrap_fpu(mn, fn, next_pc):
    """Standalone FPU instruction: one integer-core dispatch slot, then
    hand off to the FPU closure."""

    def op(s):
        tr = s.trace
        h = tr.histogram
        h[mn] = h.get(mn, 0) + 1
        d = s.int_time
        s.int_time = d + 1
        fn(s, d)
        return next_pc

    return op


def execute(machine: SnitchMachine, entry: str):
    """Run a machine to ``ret`` on the predecoded engine.

    Mirrors the reference interpreter's main loop (including the order
    of the pc-range, budget, and ``ret`` checks) on flat state; the
    state is written back to the machine's dictionaries even when an
    execution error propagates.
    """
    decoded = decode(machine.program)
    code = decoded.code
    n = decoded.n
    pc = machine.program.entry(entry)
    s = make_state(machine)
    maxi = s.max_instructions
    deadline = s.deadline
    try:
        while True:
            if pc < 0 or pc >= n:
                raise SimulationError(f"pc out of range: {pc}")
            ex = s.executed + 1
            s.executed = ex
            if ex > maxi:
                raise SimulationError(
                    "instruction budget exceeded (infinite loop?)"
                )
            if (
                deadline is not None
                and (ex & 4095) == 0
                and monotonic() > deadline
            ):
                raise DeadlineExceeded(
                    "wall-clock deadline exceeded after "
                    f"{ex} instructions"
                )
            nxt = code[pc](s)
            if nxt is None:
                break
            pc = nxt
    finally:
        sync_state(machine, s)


__all__ = [
    "DECODE_STATS",
    "ENGINE_VERSION",
    "DecodedProgram",
    "clear_decode_cache",
    "decode",
    "decode_cache_limit",
    "decode_cache_size",
    "execute",
    "make_state",
    "set_decode_cache_limit",
    "sync_state",
]
