"""Snitch core simulation substrate.

The paper evaluates on a Verilator-generated RTL simulator of the Snitch
cluster; this package substitutes a cycle-approximate architectural model
of one Snitch core (DESIGN.md Section 2): an in-order single-issue integer
core, a 3-stage FPU behind a sequencer (pseudo-dual-issue under FREP),
three stream semantic registers with 4-dimensional affine address
generators, and a flat TCDM.  All quantities the paper measures — cycle
count, FLOP throughput, FPU utilization, executed loads/stores — are
exposed through :class:`repro.snitch.trace.ExecutionTrace`.
"""

from .assembler import AssemblerError, Program, assemble
from .cluster import ClusterRun, CoreRun, partition_rows, run_row_partitioned
from .engine import ENGINE_VERSION, DecodedProgram, decode
from .machine import SnitchMachine, SimulationError
from .memory import TCDM
from .trace import ExecutionTrace

__all__ = [
    "AssemblerError",
    "Program",
    "assemble",
    "DecodedProgram",
    "ENGINE_VERSION",
    "decode",
    "SnitchMachine",
    "SimulationError",
    "TCDM",
    "ExecutionTrace",
    "ClusterRun",
    "CoreRun",
    "partition_rows",
    "run_row_partitioned",
]
