"""Cycle-approximate model of one Snitch core.

Architecture modelled (paper Figure 3):

* an in-order, single-issue **integer core** that executes integer
  ALU/memory/branch instructions and dispatches FP instructions to the
  FPU subsystem (one dispatch per cycle);
* an **FPU subsystem** with one issue port behind a sequencer.  FP
  arithmetic results become usable ``FP_LATENCY`` cycles after issue
  (three pipeline stages plus write-back), so dependent chains need an
  issue distance of four — the origin of the paper's unroll-and-jam
  factor (Section 3.4);
* **FREP**: ``frep.o`` pushes its body into the sequencer once; the FPU
  replays it without integer-core involvement, making the core
  pseudo-dual-issue (Section 2.4);
* three **stream semantic registers** (ft0-ft2), each with a
  4-dimensional affine address generator and an element-repetition
  counter; reads/writes of an armed register while ``ssrcfg`` is enabled
  implicitly access the TCDM (Section 2.4);
* a single-cycle-issue **TCDM** with a 2-cycle load-use latency.

The two timelines (integer core, FPU) advance independently and
synchronize at stream disables and at data dependencies, which is what
produces the utilization behaviours the paper measures: explicit
loads/stores and loop control throttle the FPU in the baselines, while
SSR+FREP code approaches one FP instruction per cycle.

Execution is split decode/execute: :meth:`SnitchMachine.run` drives the
predecoded closure engine in :mod:`repro.snitch.engine` (decode once
per program, specialized closures, FREP replayed as a macro-op), while
:meth:`SnitchMachine.run_reference` keeps this module's original
decode-as-you-go interpreter as the semantic oracle.  The two are
bit-exact: cycles, every trace counter, timelines, and memory contents
are asserted identical by the differential test suite.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from time import monotonic

import numpy as np

from .assembler import Program
from .isa import (
    BRANCHES,
    FP_ARITH_FLOPS,
    FP_LOADS,
    FP_MOVES,
    FP_STORES,
    FPU_INSTRUCTIONS,
    INT_ALU,
    INT_LOADS,
    INT_STORES,
    Inst,
    SSR_COUNT,
    SSR_MAX_DIMS,
    WORD_BOUND_BASE,
    WORD_READ_POINTER_BASE,
    WORD_REPEAT,
    WORD_STRIDE_BASE,
    WORD_WRITE_POINTER_BASE,
    scfg_decode,
)
from .memory import TCDM
from .trace import ExecutionTrace


class SimulationError(Exception):
    """Raised on illegal programs (bad streams, runaway execution...)."""


class DeadlineExceeded(SimulationError):
    """A run blew its cooperative wall-clock deadline.

    Raised by both engines when ``deadline_seconds`` was given and the
    wall clock passes it mid-run — a *structured* failure the tuning
    layer maps to :class:`~repro.tune.faults.TimeoutFault`, so a
    pathological candidate stalls a worker for a bounded time instead
    of hanging it.  The check is cooperative (every few thousand
    instructions / every FREP iteration), so the trip point is
    load-dependent; it never fires when no deadline is set, keeping
    the engines bit-exact for ordinary runs.
    """


# -- timing parameters (DESIGN.md Section 5) -----------------------------------

#: Cycles after issue until an FP arithmetic result is usable.
FP_LATENCY = 4
#: Cycles after issue until an FP load's data is usable.
FP_LOAD_LATENCY = 3
#: Cycles after issue until an integer load's data is usable.
INT_LOAD_LATENCY = 3
#: Cycles after issue until an integer multiply's result is usable.
MUL_LATENCY = 3
#: Extra cycles a taken branch costs (fetch bubble; no predictor).
BRANCH_TAKEN_PENALTY = 2

#: Stream-register names by data-mover index.
STREAM_REGISTERS = ("ft0", "ft1", "ft2")


def f64_to_bits(value: float) -> int:
    """IEEE-754 bits of a double."""
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def bits_to_f64(bits: int) -> float:
    """Double from IEEE-754 bits."""
    return struct.unpack("<d", struct.pack("<Q", bits & (2**64 - 1)))[0]


def f32_to_bits(value: float) -> int:
    """IEEE-754 bits of a single."""
    return struct.unpack("<I", struct.pack("<f", np.float32(value)))[0]


def bits_to_f32(bits: int) -> float:
    """Single from IEEE-754 bits."""
    return struct.unpack("<f", struct.pack("<I", bits & 0xFFFFFFFF))[0]


def pack_f32x2(lane0: float, lane1: float) -> int:
    """Pack two singles into one 64-bit register image."""
    return f32_to_bits(lane0) | (f32_to_bits(lane1) << 32)


def unpack_f32x2(bits: int) -> tuple[float, float]:
    """Unpack the two single-precision lanes of a register image."""
    return bits_to_f32(bits & 0xFFFFFFFF), bits_to_f32(bits >> 32)


@dataclass
class DataMover:
    """One SSR address generator (paper Section 2.4, [65])."""

    #: Per-dimension iteration counts minus one; index 0 is innermost.
    bounds: list[int] = field(default_factory=lambda: [0] * SSR_MAX_DIMS)
    #: Per-dimension byte strides.
    strides: list[int] = field(default_factory=lambda: [0] * SSR_MAX_DIMS)
    #: Each element is served ``repeat + 1`` times.
    repeat: int = 0
    #: "read", "write" or None when not armed.
    direction: str | None = None
    #: Number of active dimensions once armed.
    dims: int = 0
    base: int = 0
    index: list[int] = field(default_factory=lambda: [0] * SSR_MAX_DIMS)
    repeat_count: int = 0
    exhausted: bool = False

    def arm(self, direction: str, dims: int, base: int) -> None:
        """Arm the mover: set the base pointer and start the pattern."""
        if not 1 <= dims <= SSR_MAX_DIMS:
            raise SimulationError(f"SSR dims out of range: {dims}")
        self.direction = direction
        self.dims = dims
        self.base = base
        self.index = [0] * SSR_MAX_DIMS
        self.repeat_count = 0
        self.exhausted = False

    def _address(self) -> int:
        return self.base + sum(
            self.index[d] * self.strides[d] for d in range(self.dims)
        )

    def _advance(self) -> None:
        if self.repeat_count < self.repeat:
            self.repeat_count += 1
            return
        self.repeat_count = 0
        for d in range(self.dims):
            if self.index[d] < self.bounds[d]:
                self.index[d] += 1
                return
            self.index[d] = 0
        self.exhausted = True

    def next_read(self, memory: TCDM) -> int:
        """Pop the next element (as raw 64-bit data)."""
        if self.direction != "read":
            raise SimulationError("stream register read but not armed")
        if self.exhausted:
            raise SimulationError("stream read past end of pattern")
        value = memory.load_u64(self._address())
        self._advance()
        return value

    def next_write(self, memory: TCDM, bits: int) -> None:
        """Push the next element (raw 64-bit data)."""
        if self.direction != "write":
            raise SimulationError("stream register written but not armed")
        if self.exhausted:
            raise SimulationError("stream write past end of pattern")
        memory.store_u64(self._address(), bits)
        self._advance()


class SnitchMachine:
    """Executes an assembled program with the timing model above."""

    def __init__(
        self,
        program: Program,
        memory: TCDM | None = None,
        max_instructions: int = 50_000_000,
        record_timeline: bool = False,
        deadline_seconds: float | None = None,
    ):
        self.program = program
        self.memory = memory if memory is not None else TCDM()
        self.max_instructions = max_instructions
        #: Cooperative wall-clock budget per run (None = unlimited).
        #: Converted to an absolute :func:`time.monotonic` deadline at
        #: the start of each run.
        self.deadline_seconds = deadline_seconds
        self._deadline: float | None = None
        #: When enabled, (issue cycle, unit, instruction) per issue —
        #: the reproduction's analogue of the paper's instruction-trace
        #: post-processing (Section 4.1).
        self.record_timeline = record_timeline
        self.timeline: list[tuple[int, str, str]] = []
        #: Optional :class:`repro.obs.profiler.CycleProfiler`; consulted
        #: only by :meth:`run_reference` (None = no profiling cost).
        self.profiler = None
        self.int_regs: dict[str, int] = {"zero": 0}
        self.float_regs: dict[str, int] = {}
        self.int_ready: dict[str, int] = {}
        self.fp_ready: dict[str, int] = {}
        self.int_time = 0
        self.fpu_time = 0
        self.movers = [DataMover() for _ in range(SSR_COUNT)]
        self.streaming = False
        self.trace = ExecutionTrace()
        self._executed = 0

    # -- register helpers -------------------------------------------------------

    def read_int(self, name: str) -> int:
        """Current architectural value of an integer register."""
        if name == "zero":
            return 0
        return self.int_regs.get(name, 0)

    def write_int(self, name: str, value: int) -> None:
        """Set an integer register (writes to ``zero`` are dropped)."""
        if name != "zero":
            self.int_regs[name] = int(value)

    def read_float_bits(self, name: str) -> int:
        """Raw 64-bit image of an FP register."""
        return self.float_regs.get(name, 0)

    def write_float_bits(self, name: str, bits: int) -> None:
        """Set an FP register from a raw 64-bit image."""
        self.float_regs[name] = bits & (2**64 - 1)

    # -- stream helpers -----------------------------------------------------------

    def _mover_for(self, reg: str, direction: str) -> DataMover | None:
        """The armed data mover behind ``reg``, if streaming applies."""
        if not self.streaming or reg not in STREAM_REGISTERS:
            return None
        mover = self.movers[STREAM_REGISTERS.index(reg)]
        if mover.direction != direction:
            return None
        return mover

    def _read_fp_operand(self, reg: str) -> int:
        mover = self._mover_for(reg, "read")
        if mover is not None:
            bits = mover.next_read(self.memory)
            self.trace.ssr_reads += 1
            self.write_float_bits(reg, bits)
            return bits
        return self.read_float_bits(reg)

    def _write_fp_result(self, reg: str, bits: int) -> None:
        mover = self._mover_for(reg, "write")
        if mover is not None:
            mover.next_write(self.memory, bits)
            self.trace.ssr_writes += 1
            return
        self.write_float_bits(reg, bits)

    # -- public API -------------------------------------------------------------------

    def run(
        self,
        entry: str,
        int_args: dict[str, int] | None = None,
        float_args: dict[str, float] | None = None,
    ) -> ExecutionTrace:
        """Run from label ``entry`` until ``ret``; returns the trace.

        ``int_args`` seeds integer registers (``{"a0": pointer}``);
        ``float_args`` seeds FP registers with doubles.

        Executes on the predecoded closure engine
        (:mod:`repro.snitch.engine`) — the program is decoded once
        (cached across machines and runs) and replayed as specialized
        closures.  Bit-exact with :meth:`run_reference`, which the
        differential test suite asserts.
        """
        from ..obs.tracing import span
        from .engine import execute

        for name, value in (int_args or {}).items():
            self.write_int(name, value)
        for name, value in (float_args or {}).items():
            self.write_float_bits(name, f64_to_bits(value))
        self._arm_deadline()
        with span("sim.run", entry=entry):
            execute(self, entry)
        self.trace.cycles = max(self.int_time, self.fpu_time)
        return self.trace

    def run_reference(
        self,
        entry: str,
        int_args: dict[str, int] | None = None,
        float_args: dict[str, float] | None = None,
    ) -> ExecutionTrace:
        """The original per-instruction interpreter (decode-as-you-go).

        Kept as the semantic oracle for :meth:`run` — differential
        tests execute randomized and paper programs on both engines and
        assert identical cycles, counters, timelines, and memory.
        """
        from ..obs.tracing import span

        for name, value in (int_args or {}).items():
            self.write_int(name, value)
        for name, value in (float_args or {}).items():
            self.write_float_bits(name, f64_to_bits(value))
        self._arm_deadline()
        deadline = self._deadline
        profiler = self.profiler
        pc = self.program.entry(entry)
        instructions = self.program.instructions
        with span("sim.run_reference", entry=entry):
            while True:
                if pc < 0 or pc >= len(instructions):
                    raise SimulationError(f"pc out of range: {pc}")
                inst = instructions[pc]
                self._executed += 1
                if self._executed > self.max_instructions:
                    raise SimulationError(
                        "instruction budget exceeded (infinite loop?)"
                    )
                if (
                    deadline is not None
                    and (self._executed & 4095) == 0
                    and monotonic() > deadline
                ):
                    raise DeadlineExceeded(
                        f"wall-clock deadline of "
                        f"{self.deadline_seconds:g}s exceeded after "
                        f"{self._executed} instructions"
                    )
                if inst.mnemonic == "ret":
                    break
                if profiler is None:
                    pc = self._step(inst, pc)
                else:
                    profiler.before_step(self)
                    pc_next = self._step(inst, pc)
                    profiler.after_step(self, inst, pc, pc_next)
                    pc = pc_next
        self.trace.cycles = max(self.int_time, self.fpu_time)
        return self.trace

    def _arm_deadline(self) -> None:
        """Fix the absolute wall-clock deadline for the coming run."""
        self._deadline = (
            monotonic() + self.deadline_seconds
            if self.deadline_seconds is not None
            else None
        )

    # -- execution -----------------------------------------------------------------------

    def _step(self, inst: Inst, pc: int) -> int:
        mnemonic = inst.mnemonic
        self.trace.record(mnemonic)
        if mnemonic == "frep.o":
            self._exec_frep(inst, pc)
            return pc + 1 + (inst.frep_length or 0)
        if mnemonic in FPU_INSTRUCTIONS:
            dispatch = self.int_time
            self.int_time += 1  # dispatch slot on the integer core
            self._exec_fpu(inst, dispatch)
            return pc + 1
        if mnemonic in BRANCHES:
            return self._exec_branch(inst, pc)
        if mnemonic == "j":
            self.int_time += 1 + BRANCH_TAKEN_PENALTY
            return self.program.entry(inst.target)
        self._exec_int(inst)
        return pc + 1

    # integer side --------------------------------------------------------------

    def _int_issue(self, sources: tuple[str, ...]) -> int:
        issue = self.int_time
        for reg in sources:
            issue = max(issue, self.int_ready.get(reg, 0))
        return issue

    def _exec_int(self, inst: Inst) -> None:
        mnemonic = inst.mnemonic
        self.trace.int_instructions += 1
        issue = self._int_issue(inst.sources)
        if self.record_timeline:
            self.timeline.append((issue, "int", str(inst)))
        self.int_time = issue + 1
        if mnemonic == "li":
            self.write_int(inst.rd, inst.imm)
        elif mnemonic == "mv":
            self.write_int(inst.rd, self.read_int(inst.sources[0]))
        elif mnemonic == "add":
            self.write_int(
                inst.rd,
                self.read_int(inst.sources[0])
                + self.read_int(inst.sources[1]),
            )
        elif mnemonic == "sub":
            self.write_int(
                inst.rd,
                self.read_int(inst.sources[0])
                - self.read_int(inst.sources[1]),
            )
        elif mnemonic == "mul":
            self.write_int(
                inst.rd,
                self.read_int(inst.sources[0])
                * self.read_int(inst.sources[1]),
            )
            self.int_ready[inst.rd] = issue + MUL_LATENCY
            return
        elif mnemonic == "addi":
            self.write_int(
                inst.rd, self.read_int(inst.sources[0]) + inst.imm
            )
        elif mnemonic == "slli":
            self.write_int(
                inst.rd, self.read_int(inst.sources[0]) << inst.imm
            )
        elif mnemonic == "lw":
            address = self.read_int(inst.sources[0]) + inst.imm
            self.write_int(inst.rd, self.memory.load_u32(address))
            self.trace.loads += 1
            self.int_ready[inst.rd] = issue + INT_LOAD_LATENCY
            return
        elif mnemonic == "sw":
            address = self.read_int(inst.sources[1]) + inst.imm
            self.memory.store_u32(address, self.read_int(inst.sources[0]))
            self.trace.stores += 1
            return
        elif mnemonic == "scfgwi":
            self._exec_scfgwi(inst)
            return
        elif mnemonic in ("csrsi", "csrci"):
            self._exec_csr(inst)
            return
        else:
            raise SimulationError(f"unhandled instruction {mnemonic!r}")
        if inst.rd is not None:
            self.int_ready[inst.rd] = issue + 1

    def _exec_branch(self, inst: Inst, pc: int) -> int:
        self.trace.int_instructions += 1
        issue = self._int_issue(inst.sources)
        mnemonic = inst.mnemonic
        if mnemonic == "bnez":
            taken = self.read_int(inst.sources[0]) != 0
        else:
            lhs = self.read_int(inst.sources[0])
            rhs = self.read_int(inst.sources[1])
            taken = {
                "blt": lhs < rhs,
                "bge": lhs >= rhs,
                "bne": lhs != rhs,
                "beq": lhs == rhs,
            }[mnemonic]
        if taken:
            self.int_time = issue + 1 + BRANCH_TAKEN_PENALTY
            return self.program.entry(inst.target)
        self.int_time = issue + 1
        return pc + 1

    def _exec_scfgwi(self, inst: Inst) -> None:
        mover_index, word = scfg_decode(inst.imm)
        if not 0 <= mover_index < SSR_COUNT:
            raise SimulationError(f"scfgwi: no data mover {mover_index}")
        mover = self.movers[mover_index]
        value = self.read_int(inst.sources[0])
        if WORD_BOUND_BASE <= word < WORD_BOUND_BASE + SSR_MAX_DIMS:
            mover.bounds[word - WORD_BOUND_BASE] = value
        elif WORD_STRIDE_BASE <= word < WORD_STRIDE_BASE + SSR_MAX_DIMS:
            mover.strides[word - WORD_STRIDE_BASE] = value
        elif word == WORD_REPEAT:
            mover.repeat = value
        elif (
            WORD_READ_POINTER_BASE
            <= word
            < WORD_READ_POINTER_BASE + SSR_MAX_DIMS
        ):
            mover.arm("read", word - WORD_READ_POINTER_BASE + 1, value)
        elif (
            WORD_WRITE_POINTER_BASE
            <= word
            < WORD_WRITE_POINTER_BASE + SSR_MAX_DIMS
        ):
            mover.arm("write", word - WORD_WRITE_POINTER_BASE + 1, value)
        else:
            raise SimulationError(f"scfgwi: unknown config word {word}")

    def _exec_csr(self, inst: Inst) -> None:
        if inst.csr != "ssrcfg":
            raise SimulationError(f"unsupported CSR {inst.csr!r}")
        if inst.mnemonic == "csrsi":
            self.streaming = True
            return
        # Disabling streaming synchronizes with the FPU: all buffered
        # FREP iterations and in-flight stream accesses must drain first.
        self.int_time = max(self.int_time, self.fpu_time)
        self.streaming = False

    # FPU side ---------------------------------------------------------------------

    def _fp_operand_ready(self, reg: str) -> int:
        if self._mover_for(reg, "read") is not None:
            return 0  # stream data is prefetched by the address generator
        return self.fp_ready.get(reg, 0)

    def _exec_fpu(self, inst: Inst, dispatch: int) -> None:
        mnemonic = inst.mnemonic
        self.trace.fpu_instructions += 1
        ready = dispatch
        for reg in inst.sources:
            if reg.startswith("f"):
                ready = max(ready, self._fp_operand_ready(reg))
            else:
                ready = max(ready, self.int_ready.get(reg, 0))
        issue = max(self.fpu_time, ready)
        self.trace.fpu_stall_cycles += max(0, issue - self.fpu_time)
        if self.record_timeline:
            self.timeline.append((issue, "fpu", str(inst)))
        self.fpu_time = issue + 1

        if mnemonic in FP_LOADS:
            address = self.read_int(inst.sources[0]) + inst.imm
            if mnemonic == "fld":
                bits = self.memory.load_u64(address)
            else:  # flw
                bits = self.memory.load_u32(address)
            self.write_float_bits(inst.rd, bits)
            self.trace.loads += 1
            self.fp_ready[inst.rd] = issue + FP_LOAD_LATENCY
            return
        if mnemonic in FP_STORES:
            address = self.read_int(inst.sources[1]) + inst.imm
            bits = self.read_float_bits(inst.sources[0])
            if mnemonic == "fsd":
                self.memory.store_u64(address, bits)
            else:  # fsw
                self.memory.store_u32(address, bits)
            self.trace.stores += 1
            return

        if mnemonic == "fcvt.d.w":
            value = float(self.read_int(inst.sources[0]))
            self._write_fp_result(inst.rd, f64_to_bits(value))
            if self._mover_for(inst.rd, "write") is None:
                self.fp_ready[inst.rd] = issue + 1
            return

        # Arithmetic and moves: read operands (popping streams), compute,
        # write result (pushing streams).
        operand_bits = [self._read_fp_operand(r) for r in inst.sources]
        result = self._compute_fp(mnemonic, operand_bits)
        if mnemonic in FP_ARITH_FLOPS:
            self.trace.fpu_arith_cycles += 1
            self.trace.flops += FP_ARITH_FLOPS[mnemonic]
            if mnemonic in ("fmadd.d", "fmadd.s"):
                self.trace.fmadd += 1
            latency = FP_LATENCY
        else:
            latency = 1
        if inst.rd is not None:
            self._write_fp_result(inst.rd, result)
            if self._mover_for(inst.rd, "write") is None:
                self.fp_ready[inst.rd] = issue + latency

    def _compute_fp(self, mnemonic: str, bits: list[int]) -> int:
        if mnemonic == "fmv.d":
            return bits[0]
        if mnemonic == "vfcpka.s.s":
            return pack_f32x2(
                bits_to_f32(bits[0] & 0xFFFFFFFF),
                bits_to_f32(bits[1] & 0xFFFFFFFF),
            )
        if mnemonic.endswith(".d"):
            values = [bits_to_f64(b) for b in bits]
            return f64_to_bits(_SCALAR_OPS[mnemonic[:-2]](values))
        if mnemonic.startswith("vf"):
            lanes = [unpack_f32x2(b) for b in bits]
            return self._compute_packed(mnemonic, lanes)
        if mnemonic.endswith(".s"):
            values = [bits_to_f32(b & 0xFFFFFFFF) for b in bits]
            result = _SCALAR_OPS[mnemonic[:-2]](values)
            return f32_to_bits(np.float32(result))
        raise SimulationError(f"unhandled FP instruction {mnemonic!r}")

    @staticmethod
    def _compute_packed(
        mnemonic: str, lanes: list[tuple[float, float]]
    ) -> int:
        f32 = np.float32
        if mnemonic == "vfadd.s":
            a, b = lanes
            return pack_f32x2(f32(a[0] + b[0]), f32(a[1] + b[1]))
        if mnemonic == "vfmul.s":
            a, b = lanes
            return pack_f32x2(f32(a[0] * b[0]), f32(a[1] * b[1]))
        if mnemonic == "vfmax.s":
            a, b = lanes
            return pack_f32x2(max(a[0], b[0]), max(a[1], b[1]))
        if mnemonic == "vfmac.s":
            acc, a, b = lanes
            return pack_f32x2(
                f32(acc[0] + f32(a[0] * b[0])),
                f32(acc[1] + f32(a[1] * b[1])),
            )
        if mnemonic == "vfsum.s":
            acc, a = lanes
            return pack_f32x2(f32(acc[0] + f32(a[0] + a[1])), acc[1])
        raise SimulationError(f"unhandled packed op {mnemonic!r}")

    # FREP -----------------------------------------------------------------------------

    def _exec_frep(self, inst: Inst, pc: int) -> None:
        length = inst.frep_length or 0
        if length <= 0:
            raise SimulationError("frep.o with non-positive body length")
        body_start = pc + 1
        body = self.program.instructions[body_start : body_start + length]
        if len(body) != length:
            raise SimulationError("frep.o body runs past end of program")
        for binst in body:
            if binst.mnemonic not in FPU_INSTRUCTIONS:
                raise SimulationError(
                    f"illegal instruction in FREP body: {binst.mnemonic}"
                )
        iterations = self.read_int(inst.sources[0]) + 1
        self.trace.frep += 1
        self.trace.int_instructions += 1
        # The integer core spends one cycle on frep.o itself, then feeds
        # the body into the sequencer once (one instruction per cycle).
        frep_issue = self._int_issue(inst.sources)
        dispatch_times = [
            frep_issue + 1 + j for j in range(length)
        ]
        self.int_time = frep_issue + 1 + length
        deadline = self._deadline
        for iteration in range(iterations):
            if deadline is not None and monotonic() > deadline:
                raise DeadlineExceeded(
                    f"wall-clock deadline of {self.deadline_seconds:g}s "
                    f"exceeded after {self._executed} instructions "
                    "(inside frep)"
                )
            for j, binst in enumerate(body):
                self.trace.record(binst.mnemonic)
                self._executed += 1
                if self._executed > self.max_instructions:
                    # Checked inside the loop: a runaway trip count must
                    # raise, not replay to completion first.
                    raise SimulationError(
                        "instruction budget exceeded inside frep"
                    )
                dispatch = dispatch_times[j] if iteration == 0 else 0
                self._exec_fpu(binst, dispatch)


def format_timeline(
    machine: "SnitchMachine", limit: int | None = None
) -> str:
    """Render a recorded timeline as aligned text, sorted by cycle."""
    rows = sorted(machine.timeline, key=lambda row: row[0])
    if limit is not None:
        rows = rows[:limit]
    return "\n".join(
        f"{cycle:>7}  {unit:<4} {text}" for cycle, unit, text in rows
    )


_SCALAR_OPS = {
    "fadd": lambda v: v[0] + v[1],
    "fsub": lambda v: v[0] - v[1],
    "fmul": lambda v: v[0] * v[1],
    "fdiv": lambda v: v[0] / v[1],
    "fmax": lambda v: max(v[0], v[1]),
    "fmin": lambda v: min(v[0], v[1]),
    "fmadd": lambda v: v[0] * v[1] + v[2],
}


__all__ = [
    "SnitchMachine",
    "SimulationError",
    "DeadlineExceeded",
    "DataMover",
    "FP_LATENCY",
    "FP_LOAD_LATENCY",
    "INT_LOAD_LATENCY",
    "BRANCH_TAKEN_PENALTY",
    "STREAM_REGISTERS",
    "f64_to_bits",
    "bits_to_f64",
    "f32_to_bits",
    "bits_to_f32",
    "pack_f32x2",
    "unpack_f32x2",
]
