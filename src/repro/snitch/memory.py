"""Tightly-coupled data memory (TCDM) model.

Snitch clusters expose 128 KiB of software-managed L1 scratchpad
(paper Section 2.4).  Kernels in the evaluation are sized to fit in the
TCDM "such that our performance measurements are not influenced by the
rest of the memory hierarchy" — so a flat byte array with single-cycle
access semantics is a faithful substitute.  A bump allocator hands out
aligned buffers to the test/benchmark harness, which moves data in and
out through numpy views.
"""

from __future__ import annotations

import struct

import numpy as np

#: Default TCDM capacity (128 KiB, as in the Snitch cluster).
TCDM_SIZE = 128 * 1024

# Prebound struct codecs: one Struct per width, compiled once, so the
# typed accessors below (and the execution engine, which binds these
# directly into its decoded closures) skip the per-call format parse of
# ``struct.pack_into``/``unpack_from``.
U32 = struct.Struct("<I")
U64 = struct.Struct("<Q")
F32 = struct.Struct("<f")
F64 = struct.Struct("<d")


class TCDMError(Exception):
    """Raised on out-of-bounds or exhausted-capacity accesses."""


def out_of_bounds(address: int, width: int) -> TCDMError:
    """The out-of-bounds error, in one place.

    Both :meth:`TCDM._check` and the execution engine's inlined bounds
    checks raise through this, so the differential contract (identical
    error messages from both engines) cannot drift.
    """
    return TCDMError(
        f"access of {width} bytes at {address:#x} outside TCDM"
    )


class TCDM:
    """A flat, byte-addressed scratchpad with typed accessors."""

    def __init__(self, size: int = TCDM_SIZE):
        self.size = size
        self.data = bytearray(size)
        self._next_free = 8  # keep address 0 invalid

    # -- allocation ------------------------------------------------------------

    def allocate(self, num_bytes: int, align: int = 8) -> int:
        """Reserve ``num_bytes`` and return the base address."""
        base = (self._next_free + align - 1) // align * align
        if base + num_bytes > self.size:
            raise TCDMError(
                f"TCDM exhausted: need {num_bytes} bytes at {base}, "
                f"capacity {self.size}"
            )
        self._next_free = base + num_bytes
        return base

    def reset_allocator(self) -> None:
        """Forget all allocations (contents are preserved)."""
        self._next_free = 8

    # -- raw access ----------------------------------------------------------------

    def _check(self, address: int, width: int) -> None:
        if address < 0 or address + width > self.size:
            raise out_of_bounds(address, width)

    def load_bytes(self, address: int, width: int) -> bytes:
        """Read ``width`` raw bytes."""
        self._check(address, width)
        return bytes(self.data[address : address + width])

    def store_bytes(self, address: int, value: bytes) -> None:
        """Write raw bytes."""
        self._check(address, len(value))
        self.data[address : address + len(value)] = value

    # -- typed access ------------------------------------------------------------------

    def load_u32(self, address: int) -> int:
        """Read a 32-bit unsigned integer."""
        self._check(address, 4)
        return U32.unpack_from(self.data, address)[0]

    def store_u32(self, address: int, value: int) -> None:
        """Write a 32-bit unsigned integer."""
        self._check(address, 4)
        U32.pack_into(self.data, address, value & 0xFFFFFFFF)

    def load_u64(self, address: int) -> int:
        """Read a 64-bit unsigned integer (one FP register's bits)."""
        self._check(address, 8)
        return U64.unpack_from(self.data, address)[0]

    def store_u64(self, address: int, value: int) -> None:
        """Write a 64-bit unsigned integer."""
        self._check(address, 8)
        U64.pack_into(self.data, address, value & 0xFFFFFFFFFFFFFFFF)

    def load_f64(self, address: int) -> float:
        """Read an IEEE double."""
        self._check(address, 8)
        return F64.unpack_from(self.data, address)[0]

    def store_f64(self, address: int, value: float) -> None:
        """Write an IEEE double."""
        self._check(address, 8)
        F64.pack_into(self.data, address, value)

    def load_f32(self, address: int) -> float:
        """Read an IEEE single."""
        self._check(address, 4)
        return F32.unpack_from(self.data, address)[0]

    def store_f32(self, address: int, value: float) -> None:
        """Write an IEEE single."""
        self._check(address, 4)
        F32.pack_into(self.data, address, np.float32(value))

    # -- numpy bridging ---------------------------------------------------------------------

    def write_array(self, address: int, array: np.ndarray) -> None:
        """Copy a (C-contiguous) numpy array into the TCDM."""
        raw = np.ascontiguousarray(array).tobytes()
        self.store_bytes(address, raw)

    def read_array(
        self, address: int, shape: tuple[int, ...], dtype
    ) -> np.ndarray:
        """Copy a buffer out of the TCDM as a numpy array."""
        count = int(np.prod(shape)) if shape else 1
        width = np.dtype(dtype).itemsize * count
        raw = self.load_bytes(address, width)
        return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()


__all__ = ["TCDM", "TCDMError", "TCDM_SIZE", "out_of_bounds"]
