"""Instruction representation and ISA classification tables.

The simulated ISA is the subset of RV32IMAFD plus the Snitch extensions
that the backend emits: FREP (``frep.o``), SSR configuration (``scfgwi``,
``csrsi``/``csrci`` on ``ssrcfg``) and the pre-standard packed-SIMD
instructions.  Classification sets below drive both the cycle model and
the performance counters (FLOP counting per the paper's methodology:
an FMA counts as two FLOPs).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Inst:
    """One decoded assembly instruction."""

    mnemonic: str
    #: Destination register name (``None`` for stores/branches).
    rd: str | None = None
    #: Source register names, in assembly order.
    sources: tuple[str, ...] = ()
    #: Immediate operand (offsets, shift amounts, scfgwi addresses).
    imm: int | None = None
    #: Branch/jump target label.
    target: str | None = None
    #: CSR name for csr instructions.
    csr: str | None = None
    #: FREP: number of body instructions.
    frep_length: int | None = None
    #: Source line (debugging aid for traces).
    text: str = ""
    #: Execution-unit class (see :func:`classify`), resolved once at
    #: construction so the predecoding engine never re-derives it.
    kind: str = ""

    def __post_init__(self) -> None:
        if not self.kind:
            self.kind = classify(self.mnemonic)

    def __str__(self) -> str:
        return self.text or self.mnemonic


# -- classification -----------------------------------------------------------

#: Integer ALU instructions (1 cycle).
INT_ALU = {"add", "sub", "mul", "addi", "slli", "li", "mv"}

#: Integer memory instructions.
INT_LOADS = {"lw"}
INT_STORES = {"sw"}

#: FP loads/stores (execute on the FPU-side LSU).
FP_LOADS = {"fld", "flw"}
FP_STORES = {"fsd", "fsw"}

#: FP moves/converts (single-cycle result, no FLOPs).
FP_MOVES = {"fcvt.d.w", "vfcpka.s.s"}

#: FP datapath ops: mnemonic -> FLOPs.
#: ``fmv.d`` counts as one operation: data-movement kernels (Fill) are
#: given an NM FLOP roofline in paper Table 1, so the register copy that
#: realises each element *is* the counted operation.
FP_ARITH_FLOPS = {
    "fmv.d": 1,
    "fadd.d": 1, "fsub.d": 1, "fmul.d": 1, "fdiv.d": 1,
    "fmax.d": 1, "fmin.d": 1, "fmadd.d": 2,
    "fadd.s": 1, "fsub.s": 1, "fmul.s": 1,
    "fmax.s": 1, "fmin.s": 1, "fmadd.s": 2,
    # packed SIMD: two f32 lanes per register
    "vfadd.s": 2, "vfmul.s": 2, "vfmax.s": 2,
    "vfmac.s": 4, "vfsum.s": 2,
}

#: All instructions the FPU sequencer accepts (legal in a FREP body).
FPU_INSTRUCTIONS = (
    set(FP_ARITH_FLOPS) | FP_MOVES | FP_LOADS | FP_STORES
)

#: Conditional branches.
BRANCHES = {"blt", "bge", "bne", "beq", "bnez"}

#: Unconditional control transfer.
JUMPS = {"j", "ret"}

#: Snitch stream configuration.
STREAM_CONFIG = {"scfgwi", "csrsi", "csrci"}


#: Values of :attr:`Inst.kind` — the execution-unit classes the cycle
#: model distinguishes.
KIND_INT = "int"
KIND_FPU = "fpu"
KIND_BRANCH = "branch"
KIND_JUMP = "jump"
KIND_RET = "ret"
KIND_FREP = "frep"


def classify(mnemonic: str) -> str:
    """Execution-unit class of a mnemonic (decode metadata)."""
    if mnemonic in FPU_INSTRUCTIONS:
        return KIND_FPU
    if mnemonic in BRANCHES:
        return KIND_BRANCH
    if mnemonic == "j":
        return KIND_JUMP
    if mnemonic == "ret":
        return KIND_RET
    if mnemonic == "frep.o":
        return KIND_FREP
    return KIND_INT


def is_fp_register(name: str) -> bool:
    """Whether ``name`` is an FP register (f-prefixed ABI name)."""
    return name.startswith("f") and name != "fp"


# -- SSR configuration word encoding -------------------------------------------
#
# ``scfgwi rs1, imm`` writes the integer register to the configuration
# word ``imm & 31`` of data mover ``imm >> 5``:
#
#   word 0..3   bound of dimension d, stored as (iterations - 1);
#               dimension 0 is the innermost
#   word 8..11  byte stride of dimension d
#   word 16     repetition count, stored as (repeats - 1): every element
#               is served that many times (the paper's zero-stride
#               optimization target)
#   word 24+d   write the base pointer and arm the mover for *reading*
#               with d+1 active dimensions
#   word 28+d   as above, for *writing*

WORD_BOUND_BASE = 0
WORD_STRIDE_BASE = 8
WORD_REPEAT = 16
WORD_READ_POINTER_BASE = 24
WORD_WRITE_POINTER_BASE = 28

#: Number of hardware address-generation dimensions per data mover.
SSR_MAX_DIMS = 4

#: Number of data movers (ft0, ft1, ft2).
SSR_COUNT = 3


def scfg_address(data_mover: int, word: int) -> int:
    """Encode an ``scfgwi`` immediate for (data mover, word)."""
    return (data_mover << 5) | word


def scfg_decode(address: int) -> tuple[int, int]:
    """Decode an ``scfgwi`` immediate into (data mover, word)."""
    return address >> 5, address & 31


__all__ = [
    "Inst",
    "INT_ALU",
    "INT_LOADS",
    "INT_STORES",
    "FP_LOADS",
    "FP_STORES",
    "FP_MOVES",
    "FP_ARITH_FLOPS",
    "FPU_INSTRUCTIONS",
    "BRANCHES",
    "JUMPS",
    "STREAM_CONFIG",
    "classify",
    "KIND_INT",
    "KIND_FPU",
    "KIND_BRANCH",
    "KIND_JUMP",
    "KIND_RET",
    "KIND_FREP",
    "is_fp_register",
    "SSR_MAX_DIMS",
    "SSR_COUNT",
    "WORD_BOUND_BASE",
    "WORD_STRIDE_BASE",
    "WORD_REPEAT",
    "WORD_READ_POINTER_BASE",
    "WORD_WRITE_POINTER_BASE",
    "scfg_address",
    "scfg_decode",
]
