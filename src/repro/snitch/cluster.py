"""Multi-core Snitch cluster execution.

A Snitch cluster couples N cores to one shared TCDM (paper Figure 3).
The paper's Figure 11 discussion notes that "higher-level tools calling
into our compiler" should account for per-kernel setup overheads "when
distributing larger workloads between Snitch cores" — this module is
that higher-level tool: it partitions a kernel's parallel output rows
across cores, runs one compiled kernel instance per core against the
shared memory, and reports per-core and aggregate metrics.

The model is contention-free (the real cluster's TCDM has enough banks
to serve all cores for the affine patterns used here): total latency is
the slowest core's latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .machine import SnitchMachine
from .memory import TCDM
from .trace import ExecutionTrace


@dataclass
class CoreRun:
    """One core's share of the work."""

    core: int
    #: Rows [start, stop) of the output this core produced.
    rows: tuple[int, int]
    trace: ExecutionTrace


@dataclass
class ClusterRun:
    """Aggregate outcome of a partitioned kernel."""

    cores: list[CoreRun]
    arrays: list[np.ndarray | None]

    def merged_trace(self) -> ExecutionTrace:
        """Cluster-level trace: cycles maxed, work counters and the
        mnemonic histogram summed (:meth:`ExecutionTrace.merge`)."""
        return ExecutionTrace.merge(core.trace for core in self.cores)

    @property
    def cycles(self) -> int:
        """Cluster latency: the slowest core."""
        return max(core.trace.cycles for core in self.cores)

    @property
    def total_flops(self) -> int:
        """Work done across all cores."""
        return sum(core.trace.flops for core in self.cores)

    @property
    def cluster_utilization(self) -> float:
        """Mean per-core FPU utilization over the cluster latency."""
        if not self.cycles:
            return 0.0
        merged = self.merged_trace()
        return merged.fpu_arith_cycles / (merged.cycles * len(self.cores))

    def speedup_over(self, single_core_cycles: int) -> float:
        """Parallel speedup relative to a single-core run."""
        return single_core_cycles / self.cycles


def partition_rows(rows: int, num_cores: int) -> list[tuple[int, int]]:
    """Split ``rows`` into contiguous, balanced [start, stop) chunks.

    Only non-empty chunks are returned: with more cores than rows the
    surplus cores simply receive no work (``rows == 0`` partitions to
    no chunks at all), so callers never see degenerate ``(s, s)``
    spans — a zero-row span would compile a 0-row kernel, which has no
    meaningful stream patterns.
    """
    if num_cores < 1:
        raise ValueError("need at least one core")
    if rows < 0:
        raise ValueError("row count must be non-negative")
    base = rows // num_cores
    extra = rows % num_cores
    chunks = []
    start = 0
    for core in range(num_cores):
        size = base + (1 if core < extra else 0)
        if size:
            chunks.append((start, start + size))
        start += size
    return chunks


def run_row_partitioned(
    kernel_builder,
    compile_fn,
    shape: tuple[int, int],
    num_cores: int,
    arguments: list[np.ndarray | float],
    row_parallel_args: list[int],
    seed_rows_arg: int | None = None,
    deadline_seconds: float | None = None,
) -> ClusterRun:
    """Run a 2-d row-parallel kernel across ``num_cores`` cores.

    ``kernel_builder(rows, cols)`` must build the kernel for a given
    row count; ``compile_fn(module, spec)`` compiles it;
    ``row_parallel_args`` lists the indices of array arguments that are
    partitioned by rows (all others are broadcast to every core).

    The shared TCDM holds one copy of every array; each core receives
    row-offset base pointers into it.  ``deadline_seconds`` arms each
    core's cooperative wall-clock watchdog (cores simulate in turn, so
    the cluster-wide worst case is ``num_cores`` times the budget).
    """
    rows, cols = shape
    chunks = partition_rows(rows, num_cores)

    memory = TCDM()
    placements: list[tuple[int, np.ndarray] | None] = []
    for argument in arguments:
        if isinstance(argument, np.ndarray):
            base = memory.allocate(argument.nbytes)
            memory.write_array(base, argument)
            placements.append((base, argument))
        else:
            placements.append(None)

    core_runs = []
    # Balanced partitions give most cores identical row counts, hence
    # identical kernels: compile once per distinct shape and share the
    # assembled Program across cores, so the simulator's predecoded
    # engine decodes it once for the whole cluster.
    compiled_by_shape: dict[tuple[int, int], object] = {}
    for core, (start, stop) in enumerate(chunks):
        shape_key = (stop - start, cols)
        compiled = compiled_by_shape.get(shape_key)
        if compiled is None:
            module, spec = kernel_builder(*shape_key)
            compiled = compile_fn(module, spec)
            compiled_by_shape[shape_key] = compiled
        machine = SnitchMachine(
            compiled.program, memory, deadline_seconds=deadline_seconds
        )
        int_args: dict[str, int] = {}
        float_args: dict[str, float] = {}
        next_int = 0
        next_float = 0
        for index, placement in enumerate(placements):
            if placement is None:
                float_args[f"fa{next_float}"] = float(arguments[index])
                next_float += 1
                continue
            base, array = placement
            offset = 0
            if index in row_parallel_args:
                row_bytes = array.nbytes // array.shape[0]
                offset = start * row_bytes
            int_args[f"a{next_int}"] = base + offset
            next_int += 1
        trace = machine.run(
            compiled.entry, int_args=int_args, float_args=float_args
        )
        core_runs.append(
            CoreRun(core=core, rows=(start, stop), trace=trace)
        )

    arrays: list[np.ndarray | None] = []
    for placement in placements:
        if placement is None:
            arrays.append(None)
            continue
        base, array = placement
        arrays.append(memory.read_array(base, array.shape, array.dtype))
    return ClusterRun(cores=core_runs, arrays=arrays)


__all__ = [
    "CoreRun",
    "ClusterRun",
    "partition_rows",
    "run_row_partitioned",
]
