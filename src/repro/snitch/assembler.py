"""Assembler: RISC-V/Snitch assembly text to an executable program.

The backend emits textual assembly (paper Figure 8: ``.asm`` is the
interchange format between compiler and simulator); this module parses it
back into :class:`~repro.snitch.isa.Inst` sequences.  Keeping text as the
interface means the simulator exercises exactly what the compiler prints,
including handwritten kernels.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..backend.registers import is_float_register, is_int_register
from .isa import (
    BRANCHES,
    FP_LOADS,
    FP_STORES,
    FPU_INSTRUCTIONS,
    INT_LOADS,
    INT_STORES,
    Inst,
)


class AssemblerError(Exception):
    """Raised on unparseable assembly."""


_MEM_OPERAND = re.compile(r"^(-?\d+)\((\w+)\)$")


@dataclass
class Program:
    """A fully assembled program: instructions plus label/symbol maps."""

    instructions: list[Inst] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)

    def entry(self, name: str) -> int:
        """Instruction index of a label."""
        if name not in self.labels:
            raise AssemblerError(f"undefined label {name!r}")
        return self.labels[name]

    def static_counts(self) -> dict[str, int]:
        """Static instruction histogram (Table 3's Assembly Operations)."""
        counts: dict[str, int] = {}
        for inst in self.instructions:
            counts[inst.mnemonic] = counts.get(inst.mnemonic, 0) + 1
        return counts


def _register(token: str, line: str) -> str:
    token = token.strip()
    if not (is_int_register(token) or is_float_register(token)):
        raise AssemblerError(f"unknown register {token!r} in: {line}")
    return token


def _split_operands(rest: str) -> list[str]:
    rest = rest.strip()
    if not rest:
        return []
    return [part.strip() for part in rest.split(",")]


def assemble(text: str) -> Program:
    """Assemble a program from text; resolves labels in one pass."""
    program = Program()
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        first_token = line.split(None, 1)[0]
        if line.startswith(".") and not first_token.endswith(":"):
            continue  # directives (.globl etc.) carry no code
        while ":" in line:
            label, _, line = line.partition(":")
            label = label.strip()
            if not re.fullmatch(r"[\w.$]+", label):
                raise AssemblerError(f"bad label {label!r}")
            program.labels[label] = len(program.instructions)
            line = line.strip()
        if not line:
            continue
        program.instructions.append(_parse_instruction(line))
    return program


def _parse_instruction(line: str) -> Inst:
    parts = line.split(None, 1)
    mnemonic = parts[0]
    rest = parts[1] if len(parts) > 1 else ""
    operands = _split_operands(rest)
    build = _PARSERS.get(mnemonic)
    if build is None:
        raise AssemblerError(f"unknown mnemonic {mnemonic!r} in: {line}")
    inst = build(mnemonic, operands, line)
    inst.text = line
    return inst


# -- per-shape parsers ------------------------------------------------------------


def _parse_rd_rs_rs(mnemonic, ops, line):
    if len(ops) != 3:
        raise AssemblerError(f"expected 3 operands: {line}")
    return Inst(
        mnemonic,
        rd=_register(ops[0], line),
        sources=(_register(ops[1], line), _register(ops[2], line)),
    )


def _parse_rd_rs_imm(mnemonic, ops, line):
    if len(ops) != 3:
        raise AssemblerError(f"expected 3 operands: {line}")
    return Inst(
        mnemonic,
        rd=_register(ops[0], line),
        sources=(_register(ops[1], line),),
        imm=int(ops[2], 0),
    )


def _parse_rd_imm(mnemonic, ops, line):
    if len(ops) != 2:
        raise AssemblerError(f"expected 2 operands: {line}")
    return Inst(mnemonic, rd=_register(ops[0], line), imm=int(ops[1], 0))


def _parse_rd_rs(mnemonic, ops, line):
    if len(ops) != 2:
        raise AssemblerError(f"expected 2 operands: {line}")
    return Inst(
        mnemonic,
        rd=_register(ops[0], line),
        sources=(_register(ops[1], line),),
    )


def _parse_load(mnemonic, ops, line):
    if len(ops) != 2:
        raise AssemblerError(f"expected 2 operands: {line}")
    match = _MEM_OPERAND.match(ops[1])
    if match is None:
        raise AssemblerError(f"bad memory operand {ops[1]!r}: {line}")
    return Inst(
        mnemonic,
        rd=_register(ops[0], line),
        sources=(_register(match.group(2), line),),
        imm=int(match.group(1)),
    )


def _parse_store(mnemonic, ops, line):
    if len(ops) != 2:
        raise AssemblerError(f"expected 2 operands: {line}")
    match = _MEM_OPERAND.match(ops[1])
    if match is None:
        raise AssemblerError(f"bad memory operand {ops[1]!r}: {line}")
    return Inst(
        mnemonic,
        sources=(
            _register(ops[0], line),  # value
            _register(match.group(2), line),  # base
        ),
        imm=int(match.group(1)),
    )


def _parse_fma(mnemonic, ops, line):
    if len(ops) != 4:
        raise AssemblerError(f"expected 4 operands: {line}")
    return Inst(
        mnemonic,
        rd=_register(ops[0], line),
        sources=tuple(_register(op, line) for op in ops[1:]),
    )


def _parse_branch2(mnemonic, ops, line):
    if len(ops) != 3:
        raise AssemblerError(f"expected 3 operands: {line}")
    return Inst(
        mnemonic,
        sources=(_register(ops[0], line), _register(ops[1], line)),
        target=ops[2],
    )


def _parse_branch1(mnemonic, ops, line):
    if len(ops) != 2:
        raise AssemblerError(f"expected 2 operands: {line}")
    return Inst(
        mnemonic, sources=(_register(ops[0], line),), target=ops[1]
    )


def _parse_jump(mnemonic, ops, line):
    if len(ops) != 1:
        raise AssemblerError(f"expected 1 operand: {line}")
    return Inst(mnemonic, target=ops[0])


def _parse_none(mnemonic, ops, line):
    if ops:
        raise AssemblerError(f"expected no operands: {line}")
    return Inst(mnemonic)


def _parse_csr(mnemonic, ops, line):
    if len(ops) != 2:
        raise AssemblerError(f"expected 2 operands: {line}")
    return Inst(mnemonic, csr=ops[0], imm=int(ops[1], 0))


def _parse_scfgwi(mnemonic, ops, line):
    if len(ops) != 2:
        raise AssemblerError(f"expected 2 operands: {line}")
    return Inst(
        mnemonic,
        sources=(_register(ops[0], line),),
        imm=int(ops[1], 0),
    )


def _parse_frep(mnemonic, ops, line):
    if len(ops) != 4:
        raise AssemblerError(
            f"frep.o takes max_rep, length, stagger_max, stagger_mask: "
            f"{line}"
        )
    return Inst(
        mnemonic,
        sources=(_register(ops[0], line),),
        frep_length=int(ops[1], 0),
    )


def _parse_rd_acc_rs(mnemonic, ops, line):
    """vfmac.s / vfsum.s: rd is read *and* written."""
    if mnemonic == "vfsum.s":
        if len(ops) != 2:
            raise AssemblerError(f"expected 2 operands: {line}")
        return Inst(
            mnemonic,
            rd=_register(ops[0], line),
            sources=(_register(ops[0], line), _register(ops[1], line)),
        )
    if len(ops) != 3:
        raise AssemblerError(f"expected 3 operands: {line}")
    return Inst(
        mnemonic,
        rd=_register(ops[0], line),
        sources=(
            _register(ops[0], line),
            _register(ops[1], line),
            _register(ops[2], line),
        ),
    )


_PARSERS = {
    "add": _parse_rd_rs_rs,
    "sub": _parse_rd_rs_rs,
    "mul": _parse_rd_rs_rs,
    "addi": _parse_rd_rs_imm,
    "slli": _parse_rd_rs_imm,
    "li": _parse_rd_imm,
    "mv": _parse_rd_rs,
    "fmv.d": _parse_rd_rs,
    "fcvt.d.w": _parse_rd_rs,
    "vfcpka.s.s": _parse_rd_rs_rs,
    "lw": _parse_load,
    "fld": _parse_load,
    "flw": _parse_load,
    "sw": _parse_store,
    "fsd": _parse_store,
    "fsw": _parse_store,
    "fadd.d": _parse_rd_rs_rs,
    "fsub.d": _parse_rd_rs_rs,
    "fmul.d": _parse_rd_rs_rs,
    "fdiv.d": _parse_rd_rs_rs,
    "fmax.d": _parse_rd_rs_rs,
    "fmin.d": _parse_rd_rs_rs,
    "fadd.s": _parse_rd_rs_rs,
    "fsub.s": _parse_rd_rs_rs,
    "fmul.s": _parse_rd_rs_rs,
    "fmax.s": _parse_rd_rs_rs,
    "fmin.s": _parse_rd_rs_rs,
    "fmadd.d": _parse_fma,
    "fmadd.s": _parse_fma,
    "vfadd.s": _parse_rd_rs_rs,
    "vfmul.s": _parse_rd_rs_rs,
    "vfmax.s": _parse_rd_rs_rs,
    "vfmac.s": _parse_rd_acc_rs,
    "vfsum.s": _parse_rd_acc_rs,
    "blt": _parse_branch2,
    "bge": _parse_branch2,
    "bne": _parse_branch2,
    "beq": _parse_branch2,
    "bnez": _parse_branch1,
    "j": _parse_jump,
    "ret": _parse_none,
    "csrsi": _parse_csr,
    "csrci": _parse_csr,
    "scfgwi": _parse_scfgwi,
    "frep.o": _parse_frep,
}

#: Mnemonics the assembler understands (exported for tests).
SUPPORTED_MNEMONICS = frozenset(_PARSERS)


__all__ = ["AssemblerError", "Program", "assemble", "SUPPORTED_MNEMONICS"]
