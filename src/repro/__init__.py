"""repro: a multi-level compiler backend for accelerated micro-kernels
targeting RISC-V ISA extensions (CGO 2025 reproduction).

Public entry points:

* :mod:`repro.kernels` — the Table 1 micro-kernel suite (linalg level
  and handwritten dialect level);
* :mod:`repro.compiler` — the composable :class:`~repro.compiler.Compiler`
  facade (named pipelines, textual pipeline specs, pass managers);
* :mod:`repro.api` — ``compile_linalg`` / ``compile_lowlevel`` /
  ``run_kernel``;
* :mod:`repro.transforms.registry` — the pass registry behind the
  textual pipeline-spec language of :mod:`repro.ir.pipeline_spec`;
* :mod:`repro.transforms.pipelines` — the named compilation flows
  ("ours", the Table 3 ablation stages, the "clang"/"mlir" baselines),
  declared as spec strings;
* :mod:`repro.snitch` — the Snitch core simulation substrate;
* :mod:`repro.obs` — observability: metrics registry, span tracing
  with correlation IDs, and the Table 1 cycle-attribution profiler;
* :mod:`repro.ir`, :mod:`repro.dialects`, :mod:`repro.backend` — the IR
  framework, dialect definitions and backend components.
"""

__version__ = "1.0.0"

from . import api, ir, kernels  # noqa: F401
from .compiler import CompiledKernel, Compiler  # noqa: F401

__all__ = [
    "api", "ir", "kernels", "CompiledKernel", "Compiler", "__version__",
]
