"""repro: a multi-level compiler backend for accelerated micro-kernels
targeting RISC-V ISA extensions (CGO 2025 reproduction).

Public entry points:

* :mod:`repro.kernels` — the Table 1 micro-kernel suite (linalg level
  and handwritten dialect level);
* :mod:`repro.api` — ``compile_linalg`` / ``compile_lowlevel`` /
  ``run_kernel``;
* :mod:`repro.transforms.pipelines` — the named compilation flows
  ("ours", the Table 3 ablation stages, the "clang"/"mlir" baselines);
* :mod:`repro.snitch` — the Snitch core simulation substrate;
* :mod:`repro.ir`, :mod:`repro.dialects`, :mod:`repro.backend` — the IR
  framework, dialect definitions and backend components.
"""

__version__ = "1.0.0"

from . import api, ir, kernels  # noqa: F401

__all__ = ["api", "ir", "kernels", "__version__"]
