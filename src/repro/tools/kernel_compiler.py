"""Command-line micro-kernel compiler.

Compile a kernel from the Table 1 suite through any named pipeline —
or any raw textual pipeline spec — print the assembly and (optionally)
simulate and validate it::

    python -m repro.tools.kernel_compiler matmul 1 200 5 \\
        --pipeline ours --run
    python -m repro.tools.kernel_compiler conv3x3 8 20 \\
        --pipeline clang --run --compare ours
    python -m repro.tools.kernel_compiler matvec 5 200 --show-stages
    python -m repro.tools.kernel_compiler --list-pipelines
    python -m repro.tools.kernel_compiler sum 4 4 --pipeline \\
        "convert-linalg-to-memref-stream,lower-to-snitch{use-frep=false},\\
verify-streams,fuse-fmadd,lower-snitch-stream,canonicalize,dce,\\
allocate-registers,lower-riscv-scf,eliminate-identity-moves"

This is the reproduction's equivalent of the paper artifact's
per-experiment scripts (Section A.7).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .. import api, kernels
from ..compiler import Compiler
from ..ir.pass_manager import PrintIRInstrumentation
from ..ir.pipeline_spec import PipelineSpecError

#: Kernel name -> (builder, number of size arguments) — the shared
#: Table 1 registry (also used by the autotuner CLI).
KERNEL_BUILDERS = kernels.KERNEL_BUILDERS


def build_argument_parser() -> argparse.ArgumentParser:
    """The tool's CLI schema."""
    from ..transforms.pipelines import PIPELINE_NAMES

    parser = argparse.ArgumentParser(
        prog="repro-kernel-compiler",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "kernel",
        nargs="?",
        choices=sorted(KERNEL_BUILDERS),
        help="kernel name",
    )
    parser.add_argument(
        "sizes", type=int, nargs="*", help="shape sizes (kernel-specific)"
    )
    parser.add_argument(
        "--pipeline",
        default="ours",
        metavar="NAME_OR_SPEC",
        help="compilation flow: a named pipeline "
        f"({', '.join(PIPELINE_NAMES)}) or a raw pipeline-spec string "
        'like "convert-linalg-to-memref-stream,...,unroll-and-jam'
        '{factor=4},..." (default: ours)',
    )
    parser.add_argument(
        "--list-pipelines",
        action="store_true",
        help="print each named pipeline's expanded spec and exit",
    )
    parser.add_argument(
        "--list-dialects",
        action="store_true",
        help="print each registered dialect (name, op count, one-line "
        "doc) and exit",
    )
    parser.add_argument(
        "--unroll-factor",
        type=int,
        default=None,
        help="override the automatic unroll-and-jam factor",
    )
    parser.add_argument(
        "--run",
        action="store_true",
        help="simulate on the Snitch model and validate against numpy",
    )
    parser.add_argument(
        "--compare",
        metavar="PIPELINE",
        default=None,
        help="also compile+run with another pipeline and compare",
    )
    parser.add_argument(
        "--show-stages",
        action="store_true",
        help="print the IR after every pass (progressive lowering)",
    )
    parser.add_argument(
        "--print-ir-after-all",
        action="store_true",
        help="stream the IR after each pass as it runs (pass-manager "
        "instrumentation; unlike --show-stages, printing interleaves "
        "with compilation)",
    )
    parser.add_argument(
        "--time-passes",
        action="store_true",
        help="print a per-pass table of wall-clock time and rewrite-"
        "driver counters (ops visited, pattern invocations, rewrites)",
    )
    parser.add_argument(
        "--no-asm", action="store_true", help="do not print the assembly"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="input data seed"
    )
    return parser


def list_pipelines() -> None:
    """Print each named pipeline's expanded spec."""
    from ..transforms.pipelines import NAMED_PIPELINES

    width = max(map(len, NAMED_PIPELINES))
    for name in sorted(NAMED_PIPELINES):
        print(f"{name:<{width}}  {NAMED_PIPELINES[name]}")


def list_dialects() -> None:
    """Print each registered dialect: name, op count, one-line doc."""
    from ..ir import op_registry

    dialects = op_registry.dialects()
    width = max(len(d.name) for d in dialects)
    for dialect in dialects:
        count = f"{len(dialect.ops):3} ops"
        print(f"{dialect.name:<{width}}  {count}  {dialect.doc}")


def compile_kernel(
    name, sizes, pipeline, unroll_factor, show_stages, print_ir=False
):
    """Build + compile; returns (spec, compiled)."""
    builder, arity = KERNEL_BUILDERS[name]
    if len(sizes) != arity:
        raise SystemExit(
            f"kernel {name!r} takes {arity} sizes, got {len(sizes)}"
        )
    module, spec = builder(*sizes)
    try:
        compiler = Compiler(
            pipeline,
            unroll_factor=unroll_factor,
            snapshots=show_stages,
            instrument=PrintIRInstrumentation() if print_ir else None,
        )
    except PipelineSpecError as error:
        raise SystemExit(f"bad --pipeline: {error}")
    try:
        compiled = compiler.compile(module)
    except ValueError as error:
        # e.g. a backend-only pipeline over a linalg-level kernel
        # produces no rv_func.func entry.
        raise SystemExit(f"compilation failed: {error}")
    return spec, compiled


def print_pass_timings(compiled) -> None:
    """The per-pass wall-clock + rewrite-counter table (--time-passes).

    ``pass_timings`` and ``pass_stats`` are parallel lists (one entry
    per executed pass, in order), so rows are zipped — a pipeline may
    legitimately run the same pass name more than once.
    """
    width = max(
        [len(name) for name, _ in compiled.pass_timings] + [4]
    )
    header = (
        f"{'pass':<{width}} {'seconds':>10} {'visited':>8} "
        f"{'invoked':>8} {'rewrites':>8}"
    )
    print("=== compile-time per pass ===")
    print(header)
    print("-" * len(header))
    total = 0.0
    for (name, seconds), (_, stats) in zip(
        compiled.pass_timings, compiled.pass_stats
    ):
        total += seconds
        print(
            f"{name:<{width}} {seconds:>10.6f} "
            f"{stats.get('ops_visited', 0):>8} "
            f"{stats.get('pattern_invocations', 0):>8} "
            f"{stats.get('rewrites_applied', 0):>8}"
        )
    print("-" * len(header))
    print(f"{'total':<{width}} {total:>10.6f}")


def report_run(spec, compiled, seed: int) -> "api.KernelRun":
    """Simulate, validate and print the paper's metrics."""
    arguments = spec.random_arguments(seed=seed)
    result = api.run_kernel(compiled, arguments)
    expected = spec.reference(*arguments)
    for got, want in zip(result.arrays, expected):
        if want is not None and not np.allclose(got, want, atol=1e-9):
            raise SystemExit("simulation result does not match numpy!")
    trace = result.trace
    fp, integer = compiled.register_usage()
    print(f"cycles:          {trace.cycles}")
    print(f"throughput:      {trace.throughput:.3f} FLOPs/cycle")
    print(f"fpu utilization: {trace.fpu_utilization:.1%}")
    print(f"loads/stores:    {trace.loads}/{trace.stores}")
    print(f"registers:       {fp}/20 FP, {integer}/15 int")
    print("numpy check:     OK")
    return result


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_argument_parser()
    args = parser.parse_args(argv)
    if args.list_pipelines:
        list_pipelines()
        return 0
    if args.list_dialects:
        list_dialects()
        return 0
    if args.kernel is None:
        parser.error(
            "a kernel name is required (or --list-pipelines / "
            "--list-dialects)"
        )
    spec, compiled = compile_kernel(
        args.kernel,
        args.sizes,
        args.pipeline,
        args.unroll_factor,
        args.show_stages,
        print_ir=args.print_ir_after_all,
    )
    if args.show_stages:
        for name, text in compiled.snapshots:
            print(f"// ===== after {name} =====")
            print(text)
    if args.time_passes:
        print_pass_timings(compiled)
    if not args.no_asm:
        print(compiled.asm)
    if args.run or args.compare:
        print(f"--- {args.pipeline} ---")
        base = report_run(spec, compiled, args.seed)
        if args.compare:
            other_spec, other = compile_kernel(
                args.kernel,
                args.sizes,
                args.compare,
                args.unroll_factor,
                False,
            )
            print(f"--- {args.compare} ---")
            other_run = report_run(other_spec, other, args.seed)
            speedup = other_run.trace.cycles / base.trace.cycles
            print(
                f"{args.pipeline} is {speedup:.2f}x faster than "
                f"{args.compare}"
                if speedup > 1
                else f"{args.compare} is {1 / speedup:.2f}x faster "
                f"than {args.pipeline}"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
