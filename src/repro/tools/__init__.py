"""Command-line tools: ``python -m repro.tools.kernel_compiler``."""
