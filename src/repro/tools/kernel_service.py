"""Command-line front end for the compile-and-tune service.

Serve a content-addressed artifact store over a Unix socket, or hit
one (a running server via ``--socket``, or the store directly,
in-process, via ``--store``)::

    # long-lived server
    python -m repro.tools.kernel_service serve \\
        --store results/artifacts --socket /tmp/repro.sock --workers 4

    # one job (against the server, or in-process against the store)
    python -m repro.tools.kernel_service submit compile matmul 4 8 8 \\
        --socket /tmp/repro.sock
    python -m repro.tools.kernel_service submit measure conv3x3 8 8 \\
        --unroll 4 --store results/artifacts

    # a batch of jobs from a JSON file (or '-' for stdin)
    python -m repro.tools.kernel_service batch jobs.json \\
        --socket /tmp/repro.sock

    # introspection and store hygiene
    python -m repro.tools.kernel_service stats --socket /tmp/repro.sock
    python -m repro.tools.kernel_service gc --store results/artifacts \\
        --max-bytes 10000000

A batch file is a JSON list of request objects::

    [{"kind": "compile", "kernel": "matmul", "sizes": [4, 8, 8]},
     {"kind": "measure", "kernel": "relu", "sizes": [8, 16],
      "config": {"unroll_factor": 4}}]

Job failures are reported per result (structured fault taxonomy, see
``docs/ROBUSTNESS.md``) and summarized in the exit code; they never
abort the batch.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..kernels.builders import KERNEL_BUILDERS
from ..obs.tracing import correlation, new_correlation_id
from ..service.client import ServiceClient, ServiceError, serve_forever
from ..service.server import CompileServer, ServiceRequest
from ..service.store import ArtifactStore, StoreError
from ..ir.core import IRError
from ..transforms.interchange import parse_permutation
from ..tune.schedule import ScheduleConfig

_EXIT_CODES = """\
exit codes:
  0    success (all jobs resolved; serve: clean shutdown, drained)
  1    one or more jobs faulted (results still printed)
  2    usage error (bad arguments)
  4    could not reach the server / bad request
  70   serve: injected crash-server chaos action (abrupt, no drain)
  130  serve: SIGINT received, drained and exited
  143  serve: SIGTERM received, drained and exited
"""


def build_argument_parser() -> argparse.ArgumentParser:
    """The tool's CLI schema."""
    parser = argparse.ArgumentParser(
        prog="repro-kernel-service",
        description=__doc__,
        epilog=_EXIT_CODES,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_backend(sub, socket_only=False):
        sub.add_argument(
            "--socket",
            metavar="PATH",
            default=None,
            help="Unix socket of a running server",
        )
        if not socket_only:
            sub.add_argument(
                "--store",
                metavar="DIR",
                default=None,
                help="artifact store directory (in-process mode, no "
                "server needed)",
            )
        sub.add_argument(
            "--connect-timeout", type=float, default=5.0,
            metavar="SECONDS",
            help="socket connect timeout (default: 5)",
        )
        sub.add_argument(
            "--call-timeout", type=float, default=None,
            metavar="SECONDS",
            help="per-call reply timeout (default: wait forever)",
        )
        sub.add_argument(
            "--client-retries", type=int, default=3, metavar="N",
            help="bounded retries for transport errors and retryable "
            "server faults (default: 3)",
        )
        sub.add_argument(
            "--breaker-threshold", type=int, default=5, metavar="N",
            help="consecutive transport failures that open the "
            "client circuit breaker (default: 5)",
        )

    serve = commands.add_parser(
        "serve", help="run a compile server on a Unix socket"
    )
    serve.add_argument(
        "--store", metavar="DIR", required=True,
        help="artifact store directory",
    )
    serve.add_argument(
        "--socket", metavar="PATH", required=True,
        help="Unix socket path to listen on",
    )
    serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for compile/measure jobs (default: 1)",
    )
    serve.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock deadline (default: none)",
    )
    serve.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="extra attempts for transient job faults (default: 2)",
    )
    serve.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="LRU size cap for the store (default: unbounded)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="admission high-water mark: refuse (retryable overload "
        "fault) past this many in-flight requests (default: "
        "unbounded)",
    )
    serve.add_argument(
        "--request-deadline", type=float, default=None,
        metavar="SECONDS",
        help="per-request wall-clock budget, admission to result "
        "(default: none)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=10.0,
        metavar="SECONDS",
        help="seconds a SIGTERM/SIGINT/shutdown drain gives "
        "in-flight work before faulting it (default: 10)",
    )

    submit = commands.add_parser(
        "submit", help="resolve one compile/measure job"
    )
    submit.add_argument(
        "kind", choices=("compile", "measure"), help="job kind"
    )
    submit.add_argument(
        "kernel", choices=sorted(KERNEL_BUILDERS),
        help="kernel name (Table 1 suite)",
    )
    submit.add_argument(
        "sizes", type=int, nargs="*",
        help="shape sizes (kernel-specific)",
    )
    submit.add_argument(
        "--pipeline", default="ours",
        help="pipeline name or spec for compile jobs (default: ours)",
    )
    submit.add_argument(
        "--permutation", default=None, metavar="PERM",
        help="loop interchange for measure jobs, e.g. 1-0-2",
    )
    submit.add_argument(
        "--unroll", type=int, default=None, metavar="N",
        help="unroll-and-jam factor for measure jobs",
    )
    submit.add_argument(
        "--cores", type=int, default=1, metavar="N",
        help="cluster cores for measure jobs (default: 1)",
    )
    submit.add_argument(
        "--seed", type=int, default=0,
        help="input-data seed for measure jobs (default: 0)",
    )
    submit.add_argument(
        "--no-validate", action="store_true",
        help="skip the numpy-oracle check on measure jobs",
    )
    submit.add_argument(
        "--asm", action="store_true",
        help="print the compiled assembly instead of the summary",
    )
    submit.add_argument(
        "--corr-id", default=None, metavar="ID",
        help="correlation id to tag the request with (default: mint "
        "a fresh one); echoed on the result, in server logs "
        "(REPRO_SERVICE_LOG=1) and in `stats` recent requests",
    )
    add_backend(submit)

    batch = commands.add_parser(
        "batch", help="resolve a JSON list of jobs"
    )
    batch.add_argument(
        "file", help="JSON file of request objects ('-' for stdin)"
    )
    batch.add_argument(
        "--json", action="store_true",
        help="print full results as JSON instead of a summary table",
    )
    add_backend(batch)

    stats = commands.add_parser(
        "stats", help="server/store statistics"
    )
    add_backend(stats)

    gc = commands.add_parser(
        "gc", help="sweep stale temporaries and evict past a size cap"
    )
    gc.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="evict least-recently-used entries past this many bytes",
    )
    add_backend(gc)
    return parser


class _InProcessBackend:
    """``--store`` mode: a private server over the store, no socket."""

    def __init__(self, store_dir: str):
        self.store = ArtifactStore(store_dir)
        self.server = CompileServer(self.store)

    def submit(self, request, corr_id=None):
        with correlation(corr_id or new_correlation_id()):
            return self.server.submit(request).to_json()

    def batch(self, requests):
        return [
            result.to_json() for result in self.server.batch(requests)
        ]

    def stats(self):
        return self.server.stats()

    def gc(self, max_bytes=None):
        return self.store.gc(max_bytes)

    def close(self):
        self.server.close()


def _backend(parser, args):
    socket = getattr(args, "socket", None)
    store = getattr(args, "store", None)
    if socket and store:
        parser.error("--socket and --store are mutually exclusive")
    if socket:
        return ServiceClient(
            socket,
            connect_timeout=args.connect_timeout,
            call_timeout=args.call_timeout,
            retries=args.client_retries,
            breaker_threshold=args.breaker_threshold,
        )
    if store:
        return _InProcessBackend(store)
    parser.error("one of --socket or --store is required")


def _request_from_args(parser, args) -> ServiceRequest:
    permutation = None
    if args.permutation is not None:
        try:
            permutation = parse_permutation(args.permutation)
        except (IRError, ValueError) as error:
            parser.error(f"bad --permutation: {error}")
    try:
        return ServiceRequest(
            kind=args.kind,
            kernel=args.kernel,
            sizes=tuple(args.sizes),
            pipeline=args.pipeline,
            config=ScheduleConfig(
                permutation=permutation,
                unroll_factor=args.unroll,
                num_cores=args.cores,
            ),
            seed=args.seed,
            validate=not args.no_validate,
        )
    except StoreError as error:
        parser.error(str(error))


def _summarize(result: dict) -> str:
    request = result["request"]
    shape = "x".join(map(str, request["sizes"]))
    name = f"{request['kind']} {request['kernel']} {shape}"
    latency = result["latency"] * 1000
    if result["fault"] is not None:
        fault = result["fault"]
        return (
            f"{name:<32} FAULT {fault['kind']}: "
            f"{fault.get('message', '')} ({latency:.1f} ms)"
        )
    payload = result["payload"]
    detail = (
        f"{payload['cycles']} cycles"
        if "cycles" in payload
        else f"{len(payload['asm'].splitlines())} asm lines"
    )
    corr = result.get("correlation_id") or "-"
    return (
        f"{name:<32} {result['source']:<8} {detail} "
        f"({latency:.1f} ms) corr={corr}"
    )


def _load_batch_file(parser, path: str) -> list[ServiceRequest]:
    try:
        if path == "-":
            data = json.load(sys.stdin)
        else:
            with open(path) as handle:
                data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        parser.error(f"cannot read batch file {path!r}: {error}")
    if not isinstance(data, list):
        parser.error("batch file must be a JSON list of requests")
    try:
        return [ServiceRequest.from_json(entry) for entry in data]
    except StoreError as error:
        parser.error(str(error))


def main(argv=None) -> int:
    """Entry point; returns a process exit code (see ``--help``)."""
    parser = build_argument_parser()
    args = parser.parse_args(argv)

    if args.command == "serve":
        print(
            f"serving {args.store} on {args.socket} "
            f"({args.workers} workers)",
            file=sys.stderr,
        )
        return serve_forever(
            args.store,
            args.socket,
            workers=args.workers,
            deadline=args.deadline,
            retries=args.retries,
            max_bytes=args.max_bytes,
            max_inflight=args.max_inflight,
            request_deadline=args.request_deadline,
            drain_timeout=args.drain_timeout,
        )

    backend = _backend(parser, args)
    try:
        if args.command == "submit":
            request = _request_from_args(parser, args)
            result = backend.submit(request, corr_id=args.corr_id)
            if args.asm:
                if result["fault"] is not None:
                    print(
                        f"fault: {result['fault']['kind']}: "
                        f"{result['fault'].get('message', '')}",
                        file=sys.stderr,
                    )
                    return 1
                if "asm" not in result["payload"]:
                    print(
                        "no assembly on a measure result",
                        file=sys.stderr,
                    )
                    return 2
                print(result["payload"]["asm"], end="")
                return 0
            print(_summarize(result))
            return 0 if result["fault"] is None else 1
        if args.command == "batch":
            requests = _load_batch_file(parser, args.file)
            results = backend.batch(requests)
            if args.json:
                json.dump(results, sys.stdout, indent=2)
                print()
            else:
                for result in results:
                    print(_summarize(result))
                hits = sum(
                    1 for r in results if r["source"] == "store"
                )
                faults = sum(
                    1 for r in results if r["fault"] is not None
                )
                print(
                    f"{len(results)} jobs: {hits} store hits, "
                    f"{faults} faults"
                )
            return 0 if all(
                r["fault"] is None for r in results
            ) else 1
        if args.command == "stats":
            json.dump(backend.stats(), sys.stdout, indent=2)
            print()
            return 0
        if args.command == "gc":
            json.dump(
                backend.gc(args.max_bytes), sys.stdout, indent=2
            )
            print()
            return 0
        raise AssertionError(f"unhandled command {args.command!r}")
    except (ServiceError, ConnectionError, FileNotFoundError) as error:
        print(f"service error: {error}", file=sys.stderr)
        return 4
    finally:
        if isinstance(backend, _InProcessBackend):
            backend.close()


if __name__ == "__main__":
    sys.exit(main())
