"""Command-line cycle-attribution profiler (paper Table 1 methodology).

Compile a Table 1 kernel through any pipeline, run it on the
reference interpreter with the cycle profiler attached, and report
where every cycle went — FPU arithmetic, FPU stalls, integer core,
SSR drain waits, branch bubbles — split by region (FREP body vs.
scalar code)::

    python -m repro.tools.kernel_profiler matmul 1 200 5
    python -m repro.tools.kernel_profiler conv3x3 8 8 \\
        --pipeline table3-scalar --regions
    python -m repro.tools.kernel_profiler relu 8 16 \\
        --json profile.json --trace trace.json

``--json`` writes the machine-readable profile (buckets sum exactly
to total cycles — the profiler's partition invariant).  ``--trace``
writes a Chrome trace-event file of the compile + run spans — load it
at https://ui.perfetto.dev.  Both accept ``-`` for stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import nullcontext

import numpy as np

from .. import api, kernels
from ..ir.pipeline_spec import PipelineSpecError
from ..obs.tracing import TraceRecorder, recording, span

KERNEL_BUILDERS = kernels.KERNEL_BUILDERS


def build_argument_parser() -> argparse.ArgumentParser:
    """The tool's CLI schema."""
    from ..transforms.pipelines import PIPELINE_NAMES

    parser = argparse.ArgumentParser(
        prog="repro-kernel-profiler",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "kernel",
        choices=sorted(KERNEL_BUILDERS),
        help="kernel name (Table 1 suite)",
    )
    parser.add_argument(
        "sizes", type=int, nargs="*",
        help="shape sizes (kernel-specific)",
    )
    parser.add_argument(
        "--pipeline", default="ours", metavar="NAME_OR_SPEC",
        help="named pipeline or raw pass spec (default: ours; "
        f"names: {', '.join(PIPELINE_NAMES)})",
    )
    parser.add_argument(
        "--unroll", type=int, default=None, metavar="N",
        help="unroll-and-jam factor override",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="input-data seed (default: 0)",
    )
    parser.add_argument(
        "--no-validate", action="store_true",
        help="skip the numpy-oracle check on the outputs",
    )
    parser.add_argument(
        "--regions", action="store_true",
        help="also print the per-region (scalar / frep_body) split",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the profile as JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a Chrome trace-event JSON of the compile + run "
        "spans ('-' for stdout; load at ui.perfetto.dev)",
    )
    return parser


def profile_kernel(
    name: str,
    sizes: tuple[int, ...],
    pipeline: str = "ours",
    unroll_factor: int | None = None,
    seed: int = 0,
    validate: bool = True,
):
    """Compile + profiled run; returns (CycleProfile, KernelRun)."""
    builder, arity = KERNEL_BUILDERS[name]
    if len(sizes) != arity:
        raise SystemExit(
            f"kernel {name!r} takes {arity} sizes, got {len(sizes)}"
        )
    module, spec = builder(*sizes)
    try:
        compiled = api.compile_linalg(
            module, pipeline=pipeline, unroll_factor=unroll_factor
        )
    except PipelineSpecError as error:
        raise SystemExit(f"bad --pipeline: {error}")
    args = spec.random_arguments(seed=seed)
    result = api.run_kernel(compiled, args, profile=True)
    if validate:
        expected = spec.reference(*args)
        for got, want in zip(result.arrays, expected):
            if want is not None:
                np.testing.assert_allclose(got, want, atol=1e-8)
    return result.profile, result


def _dump(payload: str, path: str) -> None:
    if path == "-":
        sys.stdout.write(payload)
        if not payload.endswith("\n"):
            sys.stdout.write("\n")
        return
    with open(path, "w") as handle:
        handle.write(payload)


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_argument_parser()
    args = parser.parse_args(argv)

    recorder = TraceRecorder() if args.trace else None
    # NB: an empty TraceRecorder is falsy (__len__ == 0) — test None.
    scope = recording(recorder) if recorder is not None else nullcontext()
    with scope:
        with span(
            "profiler.kernel",
            kernel=args.kernel,
            pipeline=args.pipeline,
        ):
            profile, _result = profile_kernel(
                args.kernel,
                tuple(args.sizes),
                pipeline=args.pipeline,
                unroll_factor=args.unroll,
                seed=args.seed,
                validate=not args.no_validate,
            )

    shape = "x".join(map(str, args.sizes))
    print(f"{args.kernel} {shape}  pipeline={args.pipeline}")
    print(profile.summary())
    if args.regions:
        for region, buckets in sorted(profile.regions.items()):
            total = sum(buckets.values())
            print(f"  region {region:<12} {total:>10} cycles")
            for bucket, count in sorted(buckets.items()):
                print(f"    {bucket:<15} {count:>10}")
    if args.json:
        _dump(
            json.dumps(profile.to_json(), indent=2, sort_keys=True),
            args.json,
        )
    if recorder is not None:
        _dump(
            json.dumps(recorder.chrome_trace(), indent=2), args.trace
        )
        if args.trace != "-":
            print(
                f"trace: {args.trace} ({len(recorder)} events; "
                f"load at ui.perfetto.dev)",
                file=sys.stderr,
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
