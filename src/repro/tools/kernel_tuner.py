"""Command-line schedule-space autotuner.

Search the schedule space of a Table 1 kernel — interchange
permutation, unroll-and-jam factor, cluster core count — scoring every
candidate by cycles on the predecoded simulator::

    python -m repro.tools.kernel_tuner matmul 4 4 4
    python -m repro.tools.kernel_tuner matmul 1 16 64 --strategy greedy
    python -m repro.tools.kernel_tuner conv3x3 8 8 --cores 1,2,4 \\
        --strategy random --budget 12 --seed 3
    python -m repro.tools.kernel_tuner matmul 1 16 64 --emit-spec

``--emit-spec`` prints only the winning pipeline spec, ready to feed
back into ``kernel_compiler --pipeline`` (or ``api.compile_linalg``);
``--save`` persists the winning :class:`~repro.tune.TunedSchedule` as
a JSON artifact that network runs can apply.  Measurements go through
the persistent cycle cache (``--cache``), so re-tuning is incremental.

Evaluation is fault-tolerant (see ``docs/ROBUSTNESS.md``): with
``--workers N`` candidates run on a hardened pool that retries
transient faults, respawns crashed workers, and SIGKILLs candidates
past ``--deadline``; Ctrl-C or SIGTERM checkpoints the cache, saves
the best-so-far schedule, and exits with a distinct code.  The
``REPRO_TUNE_FAULTS`` environment variable installs a deterministic
fault-injection plan (``ACTION@INDEX[=VALUE][:sticky]``; actions:
crash, delay, raise, interrupt) for chaos drills.
"""

from __future__ import annotations

import argparse
import signal
import sys

from ..kernels.builders import KERNEL_BUILDERS
from ..tune import (
    FaultInjector,
    ScheduleError,
    ScheduleSpace,
    SearchInterrupted,
    TuneCache,
    TunedSchedule,
    load_schedules,
    save_schedules,
    tune_kernel,
)
from ..tune.search import STRATEGIES

_EXIT_CODES = """\
exit codes:
  0    success
  2    usage error (bad arguments)
  3    tuning failed (the default schedule has no valid baseline)
  130  interrupted by Ctrl-C (cache checkpointed, partial results saved)
  143  terminated by SIGTERM (cache checkpointed, partial results saved)
"""


def build_argument_parser() -> argparse.ArgumentParser:
    """The tool's CLI schema."""
    parser = argparse.ArgumentParser(
        prog="repro-kernel-tuner",
        description=__doc__,
        epilog=_EXIT_CODES,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "kernel",
        choices=sorted(KERNEL_BUILDERS),
        help="kernel name (Table 1 suite)",
    )
    parser.add_argument(
        "sizes", type=int, nargs="*", help="shape sizes (kernel-specific)"
    )
    parser.add_argument(
        "--strategy",
        choices=STRATEGIES,
        default="exhaustive",
        help="search strategy (default: exhaustive)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="N",
        help="max candidates to score (default: unbounded)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for input data and random sampling — recorded with "
        "the results, so a tuning run is reproducible (default: 0)",
    )
    parser.add_argument(
        "--cores",
        default="1",
        metavar="LIST",
        help="comma-separated cluster core counts to explore "
        "(default: 1)",
    )
    parser.add_argument(
        "--cache",
        default="results/tune_cache.json",
        metavar="PATH",
        help="persistent cycle-cache file "
        "(default: results/tune_cache.json)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the persistent cache",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="content-addressed artifact store directory: an identical "
        "prior run returns its stored TunedSchedule without "
        "re-evaluating anything; fresh runs persist their winner "
        "(see docs/SERVICE.md)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="evaluation worker processes; >1 runs batches on the "
        "hardened pool (crash respawn, retry, watchdog), worth it for "
        "large kernels/budgets (default: 1 = serial)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-candidate wall-clock deadline; past-due workers are "
        "killed and the candidate recorded as a timeout fault "
        "(default: none)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="extra dispatch attempts for transient faults — worker "
        "crashes and timeouts (default: 2)",
    )
    parser.add_argument(
        "--emit-spec",
        action="store_true",
        help="print only the winning pipeline spec",
    )
    parser.add_argument(
        "--save",
        metavar="PATH",
        default=None,
        help="append the winning TunedSchedule to a JSON artifact",
    )
    parser.add_argument(
        "--list-space",
        action="store_true",
        help="print the legal schedule space and exit (no evaluation)",
    )
    return parser


def _parse_cores(
    parser: argparse.ArgumentParser, text: str
) -> tuple[int, ...]:
    try:
        return tuple(int(part) for part in text.split(","))
    except ValueError:
        parser.error(
            f"bad --cores {text!r}: expected comma-separated integers"
        )


def _save_artifact(path: str, best: TunedSchedule) -> None:
    """Append ``best`` to the artifact, replacing any same-shape entry."""
    try:
        existing = load_schedules(path)
    except ScheduleError:
        existing = []
    keep = [
        schedule
        for schedule in existing
        if (schedule.kernel, schedule.sizes) != (best.kernel, best.sizes)
    ]
    save_schedules(path, keep + [best])


def _print_result(result, args) -> None:
    if args.emit_spec:
        print(result.best.pipeline_spec)
        if result.best.config.num_cores != 1:
            print(
                f"note: best cycles ({result.best.cycles}) were "
                f"measured on {result.best.config.num_cores} cores; "
                "the emitted spec reproduces the single-core "
                "schedule only",
                file=sys.stderr,
            )
        return
    print(result.report())
    if result.from_store:
        print(f"schedule served from artifact store ({args.store})")
    print(
        f"cache: {result.cache_hits} hits, "
        f"{result.cache_misses} misses"
        + ("" if args.no_cache else f" ({args.cache})")
    )
    if result.faults:
        kinds: dict[str, int] = {}
        for fault in result.faults:
            kinds[fault.kind] = kinds.get(fault.kind, 0) + 1
        summary = ", ".join(
            f"{count} {kind}" for kind, count in sorted(kinds.items())
        )
        print(f"faults: {summary}")


def main(argv=None) -> int:
    """Entry point; returns a process exit code (see ``--help``)."""
    parser = build_argument_parser()
    args = parser.parse_args(argv)
    core_counts = _parse_cores(parser, args.cores)
    if args.list_space:
        try:
            space = ScheduleSpace.for_kernel(
                args.kernel, args.sizes, core_counts
            )
        except ScheduleError as error:
            print(f"tuning failed: {error}", file=sys.stderr)
            return 3
        print(
            f"{space.kernel}: bounds {list(space.bounds)}, "
            f"iterators {list(space.iterator_types)}, "
            f"{space.size()} legal configs"
        )
        for config in space.configs():
            print(f"  {config.key()}")
        return 0

    # SIGTERM (a supervisor's polite kill) checkpoints exactly like
    # Ctrl-C; the flag keeps the two distinguishable in the exit code.
    got_sigterm = False

    def _on_sigterm(signum, frame):
        nonlocal got_sigterm
        got_sigterm = True
        raise KeyboardInterrupt

    try:
        previous_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:  # not the main thread (embedded use)
        previous_sigterm = None

    cache = TuneCache(None if args.no_cache else args.cache)
    store = None
    if args.store is not None:
        from ..service.store import ArtifactStore

        store = ArtifactStore(args.store)
    try:
        result = tune_kernel(
            args.kernel,
            args.sizes,
            strategy=args.strategy,
            budget=args.budget,
            seed=args.seed,
            cache=cache,
            workers=args.workers,
            core_counts=core_counts,
            deadline=args.deadline,
            retries=args.retries,
            injector=FaultInjector.from_env(),
            store=store,
        )
    except SearchInterrupted as interrupt:
        # The cache was checkpointed by the search; persist the
        # best-so-far schedule too, then report what survived.
        print(f"interrupted: {interrupt}", file=sys.stderr)
        if interrupt.partial is not None:
            _print_result(interrupt.partial, args)
            if args.save:
                _save_artifact(args.save, interrupt.partial.best)
                if not args.emit_spec:
                    print(
                        f"saved best-so-far schedule to {args.save}",
                        file=sys.stderr,
                    )
        return 143 if got_sigterm else 130
    except ScheduleError as error:
        print(f"tuning failed: {error}", file=sys.stderr)
        return 3
    finally:
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)

    _print_result(result, args)
    if args.save:
        _save_artifact(args.save, result.best)
        if not args.emit_spec:
            print(f"saved tuned schedule to {args.save}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
