"""Command-line schedule-space autotuner.

Search the schedule space of a Table 1 kernel — interchange
permutation, unroll-and-jam factor, cluster core count — scoring every
candidate by cycles on the predecoded simulator::

    python -m repro.tools.kernel_tuner matmul 4 4 4
    python -m repro.tools.kernel_tuner matmul 1 16 64 --strategy greedy
    python -m repro.tools.kernel_tuner conv3x3 8 8 --cores 1,2,4 \\
        --strategy random --budget 12 --seed 3
    python -m repro.tools.kernel_tuner matmul 1 16 64 --emit-spec

``--emit-spec`` prints only the winning pipeline spec, ready to feed
back into ``kernel_compiler --pipeline`` (or ``api.compile_linalg``);
``--save`` persists the winning :class:`~repro.tune.TunedSchedule` as
a JSON artifact that network runs can apply.  Measurements go through
the persistent cycle cache (``--cache``), so re-tuning is incremental.
"""

from __future__ import annotations

import argparse
import sys

from ..kernels.builders import KERNEL_BUILDERS
from ..tune import (
    ScheduleError,
    ScheduleSpace,
    TuneCache,
    load_schedules,
    save_schedules,
    tune_kernel,
)
from ..tune.search import STRATEGIES


def build_argument_parser() -> argparse.ArgumentParser:
    """The tool's CLI schema."""
    parser = argparse.ArgumentParser(
        prog="repro-kernel-tuner",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "kernel",
        choices=sorted(KERNEL_BUILDERS),
        help="kernel name (Table 1 suite)",
    )
    parser.add_argument(
        "sizes", type=int, nargs="*", help="shape sizes (kernel-specific)"
    )
    parser.add_argument(
        "--strategy",
        choices=STRATEGIES,
        default="exhaustive",
        help="search strategy (default: exhaustive)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="N",
        help="max candidates to score (default: unbounded)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for input data and random sampling — recorded with "
        "the results, so a tuning run is reproducible (default: 0)",
    )
    parser.add_argument(
        "--cores",
        default="1",
        metavar="LIST",
        help="comma-separated cluster core counts to explore "
        "(default: 1)",
    )
    parser.add_argument(
        "--cache",
        default="results/tune_cache.json",
        metavar="PATH",
        help="persistent cycle-cache file "
        "(default: results/tune_cache.json)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the persistent cache",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="evaluation worker processes; >1 forks a process pool "
        "per batch, worth it for large kernels/budgets "
        "(default: 1 = serial)",
    )
    parser.add_argument(
        "--emit-spec",
        action="store_true",
        help="print only the winning pipeline spec",
    )
    parser.add_argument(
        "--save",
        metavar="PATH",
        default=None,
        help="append the winning TunedSchedule to a JSON artifact",
    )
    parser.add_argument(
        "--list-space",
        action="store_true",
        help="print the legal schedule space and exit (no evaluation)",
    )
    return parser


def _parse_cores(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(part) for part in text.split(","))
    except ValueError:
        raise SystemExit(
            f"bad --cores {text!r}: expected comma-separated integers"
        )


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_argument_parser()
    args = parser.parse_args(argv)
    core_counts = _parse_cores(args.cores)
    try:
        if args.list_space:
            space = ScheduleSpace.for_kernel(
                args.kernel, args.sizes, core_counts
            )
            print(
                f"{space.kernel}: bounds {list(space.bounds)}, "
                f"iterators {list(space.iterator_types)}, "
                f"{space.size()} legal configs"
            )
            for config in space.configs():
                print(f"  {config.key()}")
            return 0
        cache = TuneCache(None if args.no_cache else args.cache)
        result = tune_kernel(
            args.kernel,
            args.sizes,
            strategy=args.strategy,
            budget=args.budget,
            seed=args.seed,
            cache=cache,
            workers=args.workers,
            core_counts=core_counts,
        )
    except ScheduleError as error:
        raise SystemExit(f"tuning failed: {error}")
    if args.emit_spec:
        print(result.best.pipeline_spec)
        if result.best.config.num_cores != 1:
            print(
                f"note: best cycles ({result.best.cycles}) were "
                f"measured on {result.best.config.num_cores} cores; "
                "the emitted spec reproduces the single-core "
                "schedule only",
                file=sys.stderr,
            )
    else:
        print(result.report())
        print(
            f"cache: {result.cache_hits} hits, "
            f"{result.cache_misses} misses"
            + ("" if args.no_cache else f" ({args.cache})")
        )
    if args.save:
        try:
            existing = load_schedules(args.save)
        except ScheduleError:
            existing = []
        keep = [
            schedule
            for schedule in existing
            if (schedule.kernel, schedule.sizes)
            != (result.best.kernel, result.best.sizes)
        ]
        save_schedules(args.save, keep + [result.best])
        if not args.emit_spec:
            print(f"saved tuned schedule to {args.save}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
