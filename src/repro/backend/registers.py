"""RISC-V register file model and ABI facts.

The paper allocates from "the 15 integer (a and t) and 20 FP registers
(fa and ft) that are specified as caller-saved in the RISC-V ABI"
(Section 3.3), and Snitch reserves ``ft0``/``ft1``/``ft2`` while streaming
is enabled (Section 3.2).  This module is the single source of truth for
those sets; both the allocator and the simulator import it.
"""

from __future__ import annotations

#: Integer registers by ABI name, in encoding order x0..x31.
INT_REGISTERS = (
    "zero", "ra", "sp", "gp", "tp",
    "t0", "t1", "t2",
    "s0", "s1",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
    "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
    "t3", "t4", "t5", "t6",
)

#: Floating-point registers by ABI name, in encoding order f0..f31.
FLOAT_REGISTERS = (
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
    "fs0", "fs1",
    "fa0", "fa1", "fa2", "fa3", "fa4", "fa5", "fa6", "fa7",
    "fs2", "fs3", "fs4", "fs5", "fs6", "fs7", "fs8", "fs9", "fs10", "fs11",
    "ft8", "ft9", "ft10", "ft11",
)

#: Caller-saved integer registers the allocator may hand out (15).
ALLOCATABLE_INT = (
    "t0", "t1", "t2", "t3", "t4", "t5", "t6",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
)

#: Caller-saved FP registers the allocator may hand out (20).
ALLOCATABLE_FLOAT = (
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
    "ft8", "ft9", "ft10", "ft11",
    "fa0", "fa1", "fa2", "fa3", "fa4", "fa5", "fa6", "fa7",
)

#: FP registers with stream semantics on Snitch; reserved while streaming.
SNITCH_STREAM_REGISTERS = ("ft0", "ft1", "ft2")

#: Registers holding the first function arguments per the RISC-V ABI.
INT_ARG_REGISTERS = ("a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7")
FLOAT_ARG_REGISTERS = ("fa0", "fa1", "fa2", "fa3", "fa4", "fa5", "fa6", "fa7")

_INT_INDEX = {name: i for i, name in enumerate(INT_REGISTERS)}
_FLOAT_INDEX = {name: i for i, name in enumerate(FLOAT_REGISTERS)}


def int_register_index(name: str) -> int:
    """Encoding index (xN) of an integer register ABI name."""
    return _INT_INDEX[name]


def float_register_index(name: str) -> int:
    """Encoding index (fN) of a floating-point register ABI name."""
    return _FLOAT_INDEX[name]


def is_int_register(name: str) -> bool:
    """Whether ``name`` names an integer register."""
    return name in _INT_INDEX


def is_float_register(name: str) -> bool:
    """Whether ``name`` names a floating-point register."""
    return name in _FLOAT_INDEX


__all__ = [
    "INT_REGISTERS",
    "FLOAT_REGISTERS",
    "ALLOCATABLE_INT",
    "ALLOCATABLE_FLOAT",
    "SNITCH_STREAM_REGISTERS",
    "INT_ARG_REGISTERS",
    "FLOAT_ARG_REGISTERS",
    "int_register_index",
    "float_register_index",
    "is_int_register",
    "is_float_register",
]
