"""The multi-level, spill-free register allocator (paper Section 3.3).

Allocation happens on the *structured* backend IR — ``rv_scf.for`` loops,
``rv_snitch.frep_outer`` hardware loops and
``snitch_stream.streaming_region`` scopes are still present — in three
linear passes:

1. **Exclusion** (Figure 6 item A): every register already named in the IR
   (ABI argument registers, stream registers, partially-allocated
   handwritten kernels) is excluded from the allocatable pool.  This is
   deliberately "overly defensive": no live-range analysis of
   pre-allocated values is attempted.
2. **Outer-value tracking** (item B): for each structured loop, the values
   defined outside its region but used inside are collected; their live
   ranges must extend over the whole loop because the body may execute
   many times.
3. **Backwards walk** (item C): blocks are walked backwards, assigning a
   register at a value's first (i.e. textually last) use and freeing it
   at its definition.  SSA guarantees a single definition, so one linear
   walk per block suffices; structured loops are processed recursively.
   Loop-carried values — iteration-argument operands, body block
   arguments, yield operands and loop results — are unified into one
   register first (item D), and stream registers are reserved while a
   streaming region is active (item E).

There is **no spilling**: exhausting the pool raises
:class:`RegisterPressureError`, and the evaluation (Table 2) shows the
micro-kernel workloads never trigger it.
"""

from __future__ import annotations

from bisect import bisect_left

from ..dialects import riscv_func, riscv_scf, riscv_snitch, snitch_stream
from ..dialects.riscv import (
    FloatRegisterType,
    IntRegisterType,
    RISCVInstruction,
)
from ..ir.core import Block, IRError, Operation, SSAValue
from . import registers as regs


class RegisterPressureError(IRError):
    """Raised when a kernel needs more registers than are available."""


#: Pool orders: temporaries first, stream registers (ft0-2) last so they
#: stay free for streaming kernels.
_INT_POOL = (
    "t0", "t1", "t2", "t3", "t4", "t5", "t6",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
)
_FLOAT_POOL = (
    "ft3", "ft4", "ft5", "ft6", "ft7", "ft8", "ft9", "ft10", "ft11",
    "fa0", "fa1", "fa2", "fa3", "fa4", "fa5", "fa6", "fa7",
    "ft0", "ft1", "ft2",
)


class _RegisterFile:
    """Bookkeeping for one register kind (integer or floating point).

    The free pool is kept as a sorted list of *ranks* (positions in the
    pool order) so hand-out order is stable and every operation is a
    bisect/memmove on a ≤20-entry int list instead of keyed Python-level
    scans and sorts — the allocator runs once per value per function.
    """

    def __init__(self, pool: tuple[str, ...]):
        self.pool_order = list(pool)
        #: register name -> position in the pool order.
        self._rank = {name: i for i, name in enumerate(pool)}
        #: sorted ranks of currently free registers.
        self._free_ranks = list(range(len(pool)))
        #: register name -> number of live values currently holding it.
        self.live_counts: dict[str, int] = {}
        #: registers the allocator owns (excluded ones are not returned).
        self.owned = set(pool)
        #: registers temporarily reserved (streaming scopes).
        self.reserved: set[str] = set()

    @property
    def free(self) -> list[str]:
        """Free registers, in hand-out order (diagnostics/tests)."""
        return [self.pool_order[r] for r in self._free_ranks]

    def _drop_free(self, name: str) -> None:
        rank = self._rank.get(name)
        if rank is None:
            return
        i = bisect_left(self._free_ranks, rank)
        if i < len(self._free_ranks) and self._free_ranks[i] == rank:
            del self._free_ranks[i]

    def exclude(self, name: str) -> None:
        """Pass 1: remove ``name`` from the pool permanently."""
        self._drop_free(name)
        self.owned.discard(name)

    def reserve(self, name: str) -> None:
        """Item E: temporarily withhold ``name`` (streaming scope)."""
        self.reserved.add(name)

    def release_reservation(self, name: str) -> None:
        """End of a streaming scope: ``name`` may be handed out again."""
        self.reserved.discard(name)

    def take(self) -> str:
        """Hand out the next free, unreserved register."""
        for i, rank in enumerate(self._free_ranks):
            name = self.pool_order[rank]
            if name not in self.reserved:
                del self._free_ranks[i]
                return name
        raise RegisterPressureError(
            "out of registers: the spill-free allocator cannot satisfy "
            "this kernel (see paper Section 4.3)"
        )

    def acquire(self, name: str) -> None:
        """Record one more live value in ``name``."""
        self.live_counts[name] = self.live_counts.get(name, 0) + 1
        self._drop_free(name)

    def acquire_taken(self, name: str) -> None:
        """Record the first live value in a register :meth:`take` just
        handed out (already removed from the free pool)."""
        self.live_counts[name] = self.live_counts.get(name, 0) + 1

    def release(self, name: str) -> None:
        """Drop one live value from ``name``; pool it when empty."""
        count = self.live_counts.get(name, 0) - 1
        if count < 0:
            return
        self.live_counts[name] = count
        if count == 0 and name in self.owned:
            rank = self._rank[name]
            i = bisect_left(self._free_ranks, rank)
            if i == len(self._free_ranks) or self._free_ranks[i] != rank:
                self._free_ranks.insert(i, rank)


class RegisterAllocator:
    """Allocates every register-typed value of one ``rv_func.func``.

    ``reuse_unused_abi_registers`` implements the mitigation the paper
    lists as future work (Section 4.3): argument registers whose values
    are never read stay in the allocatable pool instead of being
    reserved for the whole function.
    """

    def __init__(self, reuse_unused_abi_registers: bool = False):
        self.reuse_unused_abi_registers = reuse_unused_abi_registers
        self.int_file = _RegisterFile(_INT_POOL)
        self.float_file = _RegisterFile(_FLOAT_POOL)
        #: register-type class -> file (dispatch without isinstance).
        self._files = {
            IntRegisterType: self.int_file,
            FloatRegisterType: self.float_file,
        }
        #: ids of values currently holding a register.
        self._live_values: set[int] = set()
        #: loop op id -> values defined outside, used inside (pass 2).
        self._outer_values: dict[int, list[SSAValue]] = {}

    # -- public API -----------------------------------------------------------

    def allocate(self, func: riscv_func.FuncOp) -> None:
        """Run all three passes over ``func``, refining types in place."""
        self._exclude_used(func)
        self._track_outer_values(func)
        self._walk_block_backwards(func.entry_block)

    # -- pass 1: exclusion -------------------------------------------------------

    def _exclude_used(self, func: riscv_func.FuncOp) -> None:
        for op in func.walk():
            for value in op.results:
                self._exclude_value(value)
            for region in op.regions:
                for block in region.blocks:
                    for value in block.args:
                        if (
                            self.reuse_unused_abi_registers
                            and op is func
                            and block is func.entry_block
                            and not value.has_uses
                        ):
                            continue  # dead argument: keep it usable
                        self._exclude_value(value)

    def _exclude_value(self, value: SSAValue) -> None:
        vtype = value.type
        register = getattr(vtype, "register", None)
        if not register:
            return  # non-register type, or not yet allocated
        if isinstance(vtype, IntRegisterType):
            self.int_file.exclude(register)
        elif isinstance(vtype, FloatRegisterType):
            self.float_file.exclude(register)

    # -- pass 2: values defined outside a loop, used inside ------------------------

    def _track_outer_values(self, func: riscv_func.FuncOp) -> None:
        loop_types = (riscv_scf.ForOp, riscv_snitch.FrepOuter)
        for loop in func.walk():
            if not isinstance(loop, loop_types):
                continue
            # One walk collects the nested ops/blocks and the candidate
            # operands; a second pass over those operands then filters
            # out the inside-defined ones.
            inside: set[int] = set()
            inside_blocks = {id(loop.body.block)}
            candidates: list[SSAValue] = []
            for op in loop.walk():
                if op is loop:
                    continue
                inside.add(id(op))
                for region in op.regions:
                    for block in region.blocks:
                        inside_blocks.add(id(block))
                candidates.extend(op.operands)
            seen: set[int] = set()
            outer: list[SSAValue] = []
            for operand in candidates:
                owner = operand.owner
                defined_inside = (
                    isinstance(owner, Operation) and id(owner) in inside
                ) or (
                    isinstance(owner, Block) and id(owner) in inside_blocks
                )
                if defined_inside or id(operand) in seen:
                    continue
                seen.add(id(operand))
                outer.append(operand)
            self._outer_values[id(loop)] = outer

    # -- pass 3: backwards allocation walk ---------------------------------------

    def _walk_block_backwards(self, block: Block) -> None:
        for op in reversed(block.ops):
            self._process_op(op)
        # Block arguments are "defined" at block entry: release them.
        for arg in block.args:
            self._release_value(arg)

    def _process_op(self, op: Operation) -> None:
        if isinstance(op, (riscv_scf.ForOp, riscv_snitch.FrepOuter)):
            self._process_loop(op)
        elif isinstance(op, snitch_stream.StreamingRegionOp):
            self._process_streaming_region(op)
        else:
            self._process_instruction(op)

    def _process_instruction(self, op: Operation) -> None:
        # Read-modify-write instructions tie an operand to a result.
        tied = getattr(op, "tied", None)
        if tied is not None:
            operand_index, result_index = tied
            self._allocate_group(
                [op.results[result_index], op.operands[operand_index]]
            )
        # Uses first: walking backwards, a use precedes its definition.
        for operand in op._operands:
            self._allocate_value(operand)
        # Results: the value's live range ends at its definition.
        for result in op.results:
            self._allocate_value(result)  # dead results still need one
            self._release_value(result)

    def _process_loop(self, loop: Operation) -> None:
        """Shared handling of ``rv_scf.for`` and ``frep_outer`` (item D)."""
        if isinstance(loop, riscv_scf.ForOp):
            iter_inits = list(loop.iter_args)
            body_iter_args = loop.body_iter_args
            control_operands = [
                loop.lower_bound, loop.upper_bound, loop.step,
            ]
            induction = [loop.induction_variable]
        else:
            assert isinstance(loop, riscv_snitch.FrepOuter)
            iter_inits = list(loop.iter_args)
            body_iter_args = loop.body_iter_args
            control_operands = [loop.max_rep]
            induction = []
        yield_op = loop.body.block.last_op
        assert yield_op is not None

        # (D) unify loop-carried groups: result / body arg / yield operand
        # share one register.  The init operand joins the group only when
        # the loop is its sole use — otherwise it stays live after the
        # loop header and must keep its own register (the rv_scf lowering
        # then inserts a move; FREP hardware loops require the unified
        # form, which our FREP codegen guarantees by construction).
        is_frep = isinstance(loop, riscv_snitch.FrepOuter)
        for i, result in enumerate(loop.results):
            init = iter_inits[i]
            group = [
                result,
                body_iter_args[i],
                yield_op.operands[i],
            ]
            init_vtype = init.type
            init_joins = is_frep or (
                len(init.uses) == 1 and not init_vtype.is_allocated
            )
            if init_joins:
                group.append(init)
            self._allocate_group(group)
            if not init_joins:
                self._allocate_value(init)

        # Control operands (bounds, step, repeat count) and the induction
        # variable live across the whole loop.
        for value in control_operands:
            self._allocate_value(value)
        for value in induction:
            self._allocate_value(value)

        # (B) values defined outside the loop but used inside must hold
        # their register for the entire loop.
        for value in self._outer_values.get(id(loop), ()):
            self._allocate_value(value)

        # Recurse into the body (releases body args at block entry).
        self._walk_block_backwards(loop.body.block)

        # The loop op defines its results: their ranges end here.
        for result in loop.results:
            self._release_value(result)

    def _process_streaming_region(
        self, region_op: snitch_stream.StreamingRegionOp
    ) -> None:
        """Item E: stream registers are reserved while streaming."""
        stream_registers = region_op.stream_registers()
        for name in stream_registers:
            self.float_file.reserve(name)
        for operand in region_op.operands:
            self._allocate_value(operand)
        self._walk_block_backwards(region_op.body.block)
        for name in stream_registers:
            self.float_file.release_reservation(name)

    # -- value-level helpers ---------------------------------------------------------

    def _file_for(self, value: SSAValue) -> _RegisterFile | None:
        return self._files.get(type(value.type))

    def _allocate_value(self, value: SSAValue) -> None:
        """Assign a register to ``value`` if it does not have one yet."""
        file = self._file_for(value)
        if file is None:
            return  # streams and other non-register values
        if id(value) in self._live_values:
            return
        vtype = value.type
        if vtype.is_allocated:
            # Pre-allocated (ABI args, stream reads): excluded in pass 1,
            # tracked as live but never pooled.
            self._live_values.add(id(value))
            file.acquire(vtype.register)
            return
        name = file.take()
        value.type = type(vtype)(name)
        self._live_values.add(id(value))
        file.acquire_taken(name)

    def _allocate_group(self, group: list[SSAValue]) -> None:
        """Put every value of a loop-carried group in the same register."""
        kinds = {type(v.type) for v in group}
        if len(kinds) != 1:
            raise IRError("loop-carried group mixes register kinds")
        file = self._file_for(group[0])
        assert file is not None
        chosen: str | None = None
        for value in group:
            if value.type.is_allocated:
                if chosen is None:
                    chosen = value.type.register
                elif chosen != value.type.register:
                    raise IRError(
                        "conflicting pre-allocated registers in "
                        f"loop-carried group: {chosen} vs "
                        f"{value.type.register}"
                    )
        if chosen is None:
            chosen = file.take()
        for value in group:
            if not value.type.is_allocated:
                value.type = type(value.type)(chosen)
            if id(value) not in self._live_values:
                self._live_values.add(id(value))
                file.acquire(chosen)

    def _release_value(self, value: SSAValue) -> None:
        """End of live range (its definition, walking backwards)."""
        file = self._file_for(value)
        if file is None:
            return
        if id(value) not in self._live_values:
            return
        self._live_values.discard(id(value))
        file.release(value.type.register)


def allocate_registers(func: riscv_func.FuncOp) -> None:
    """Allocate all registers of ``func`` with a fresh allocator."""
    RegisterAllocator().allocate(func)


def count_used_registers(func: Operation) -> tuple[int, int]:
    """Distinct (FP, integer) registers referenced by ``func``.

    This is the metric of paper Table 2: reserved argument registers and
    stream registers count as used; ``zero`` does not.
    """
    int_used: set[str] = set()
    float_used: set[str] = set()
    for op in func.walk():
        values = list(op.results) + list(op.operands)
        for region in op.regions:
            for block in region.blocks:
                values.extend(block.args)
        for value in values:
            vtype = value.type
            if isinstance(vtype, IntRegisterType) and vtype.is_allocated:
                if vtype.register != "zero":
                    int_used.add(vtype.register)
            elif (
                isinstance(vtype, FloatRegisterType) and vtype.is_allocated
            ):
                float_used.add(vtype.register)
    return len(float_used), len(int_used)


__all__ = [
    "RegisterAllocator",
    "RegisterPressureError",
    "allocate_registers",
    "count_used_registers",
]
