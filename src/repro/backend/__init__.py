"""Backend components: register file model, the multi-level spill-free
register allocator (paper Section 3.3) and assembly emission."""
