"""Assembly emission.

"Assembly is printed using an interface-based design, where the IR is
walked in-order, and printed according to implementation of each
operation" (paper Section 3.1).  Emission requires a fully lowered,
fully register-allocated function: structured ``rv_scf`` loops must
already be rewritten to ``rv_cf`` labels/branches and
``snitch_stream.streaming_region`` to ``scfgwi``/``csrsi`` sequences.
``frep_outer`` *is* emittable directly — it corresponds to the ``frep.o``
instruction followed by its body.
"""

from __future__ import annotations

from ..dialects import riscv_func, riscv_snitch
from ..dialects.riscv import RISCVInstruction, reg_name
from ..ir.core import Block, IRError, Operation


class AsmEmissionError(IRError):
    """Raised when not-yet-lowered ops reach the emitter."""


def emit_module(module: Operation) -> str:
    """Emit assembly for every ``rv_func.func`` in ``module``."""
    chunks = [
        emit_function(op)
        for op in module.walk()
        if isinstance(op, riscv_func.FuncOp)
    ]
    return "\n".join(chunks)


def emit_function(func: riscv_func.FuncOp) -> str:
    """Emit one function: a global label followed by its instructions."""
    lines = [f".globl {func.sym_name}", f"{func.sym_name}:"]
    _emit_block(func.entry_block, lines)
    return "\n".join(lines) + "\n"


def _emit_block(block: Block, lines: list[str]) -> None:
    for op in block.ops:
        _emit_op(op, lines)


def _emit_op(op: Operation, lines: list[str]) -> None:
    # Most ops are plain instructions; test that first.
    if isinstance(op, RISCVInstruction):
        line = op.assembly_line()
        if line is not None:
            indent = "" if line.endswith(":") else "    "
            lines.append(indent + line)
        return
    if isinstance(op, riscv_snitch.FrepOuter):
        _emit_frep(op, lines)
        return
    if isinstance(
        op,
        (
            riscv_snitch.ReadOp,
            riscv_snitch.WriteOp,
            riscv_snitch.FrepYieldOp,
        ),
    ):
        return  # stream/loop plumbing with no assembly form
    raise AsmEmissionError(
        f"op {op.name} cannot be emitted; lower it before emission"
    )


def _emit_frep(op: riscv_snitch.FrepOuter, lines: list[str]) -> None:
    body_count = op.body_instruction_count()
    if body_count == 0:
        raise AsmEmissionError("frep.o with an empty body")
    lines.append(
        f"    frep.o {reg_name(op.max_rep)}, {body_count}, 0, 0"
    )
    _emit_block(op.body.block, lines)


__all__ = ["AsmEmissionError", "emit_module", "emit_function"]
