"""Span tracing: contextvars propagation, Chrome trace-event export.

Answering "where did this request's time go?" end to end needs spans
that cross layers (client -> server -> pool worker -> simulator) and
processes.  The design:

* A :class:`TraceRecorder` collects completed spans as Chrome
  trace-event dicts (``ph="X"`` complete events with microsecond
  epoch timestamps), loadable directly in Perfetto / ``chrome://tracing``.
* The *active* recorder lives in a :mod:`contextvars` ``ContextVar``:
  :func:`recording` installs one for the current context; every
  instrumentation site (:func:`span`) reads it with one
  ``ContextVar.get`` and is a no-op when none is installed — the
  zero-cost-when-disabled guarantee that protects the PR-2/PR-4
  perf wins.  Context-local scoping also keeps concurrent server
  connections (thread-per-connection) from contaminating each other's
  traces.
* Parent/child: :func:`span` pushes its name onto a context-local
  stack; a child span records its parent's name in ``args.parent``.
  Visual nesting in Perfetto follows from timestamps within one
  pid/tid row, so cross-thread and cross-process spans still line up.
* Correlation IDs: :func:`new_correlation_id` mints an ID
  (``ServiceClient`` does this per call), :func:`correlation` scopes
  it, and every span completed in that scope carries it in
  ``args.correlation_id`` — the join key across processes.
* Cross-process: workers and servers record into their own local
  recorder and ship ``recorder.events_json()`` back over the existing
  result/reply channel; the caller :func:`absorb`\\ s the events into
  its recorder.  Timestamps are epoch-based so the merged timeline is
  coherent.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from pathlib import Path

#: The active recorder for this context (None = tracing disabled).
_RECORDER: contextvars.ContextVar["TraceRecorder | None"] = (
    contextvars.ContextVar("repro_obs_recorder", default=None)
)
#: Name of the innermost open span in this context (parent linkage).
_PARENT: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_obs_parent", default=None
)
#: The correlation ID scoping this context's spans.
_CORRELATION: contextvars.ContextVar[str | None] = (
    contextvars.ContextVar("repro_obs_correlation", default=None)
)


class TraceRecorder:
    """Thread-safe sink of completed Chrome trace events."""

    def __init__(self, process_name: str | None = None):
        self._lock = threading.Lock()
        self._events: list[dict] = []
        self.process_name = process_name

    def add(self, event: dict) -> None:
        with self._lock:
            self._events.append(event)

    def absorb(self, events) -> None:
        """Merge span events recorded elsewhere (worker, server)."""
        if not events:
            return
        with self._lock:
            self._events.extend(
                event for event in events if isinstance(event, dict)
            )

    def events_json(self) -> list[dict]:
        """The raw events — the cross-process shipping format."""
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def chrome_trace(self) -> dict:
        """A Perfetto-loadable trace-event JSON object.

        Adds ``process_name`` metadata rows so each pid in the merged
        timeline is labeled (client / server / worker-<pid>).
        """
        events = self.events_json()
        pids = {}
        for event in events:
            pid = event.get("pid")
            if pid is not None and pid not in pids:
                pids[pid] = event.get("args", {}).get(
                    "process", f"pid-{pid}"
                )
        metadata = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
            for pid, name in sorted(pids.items())
        ]
        return {
            "traceEvents": metadata + events,
            "displayTimeUnit": "ms",
        }

    def save(self, path: str | Path) -> Path:
        """Write the Chrome trace JSON to ``path``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.chrome_trace(), indent=2))
        return path


def tracing_enabled() -> bool:
    """Whether a recorder is installed in this context."""
    return _RECORDER.get() is not None


def active_recorder() -> TraceRecorder | None:
    return _RECORDER.get()


@contextmanager
def recording(recorder: TraceRecorder | None = None):
    """Install (and yield) a recorder for the current context."""
    recorder = recorder if recorder is not None else TraceRecorder()
    token = _RECORDER.set(recorder)
    try:
        yield recorder
    finally:
        _RECORDER.reset(token)


def new_correlation_id() -> str:
    """A fresh request-scoped join key (16 hex chars)."""
    return uuid.uuid4().hex[:16]


def correlation_id() -> str | None:
    """The correlation ID scoping this context, if any."""
    return _CORRELATION.get()


@contextmanager
def correlation(cid: str | None):
    """Scope ``cid`` over the body; spans inside carry it."""
    token = _CORRELATION.set(cid)
    try:
        yield cid
    finally:
        _CORRELATION.reset(token)


def absorb(events) -> None:
    """Merge shipped span events into the active recorder (no-op
    when tracing is disabled)."""
    recorder = _RECORDER.get()
    if recorder is not None:
        recorder.absorb(events)


@contextmanager
def span(name: str, **attrs):
    """Record one timed span around the body.

    Cheap no-op when no recorder is installed (a single
    ``ContextVar.get`` and an immediate yield).  When recording, the
    span becomes a Chrome ``ph="X"`` complete event carrying the
    parent span's name, this context's correlation ID, and ``attrs``.
    """
    recorder = _RECORDER.get()
    if recorder is None:
        yield None
        return
    parent = _PARENT.get()
    token = _PARENT.set(name)
    start_us = time.time_ns() // 1_000
    try:
        yield recorder
    finally:
        _PARENT.reset(token)
        end_us = time.time_ns() // 1_000
        args = dict(attrs)
        if parent is not None:
            args["parent"] = parent
        cid = _CORRELATION.get()
        if cid:
            args["correlation_id"] = cid
        recorder.add(
            {
                "name": name,
                "cat": name.split(".", 1)[0],
                "ph": "X",
                "ts": start_us,
                "dur": max(0, end_us - start_us),
                "pid": os.getpid(),
                "tid": threading.get_ident() % 1_000_000,
                "args": args,
            }
        )


__all__ = [
    "TraceRecorder",
    "absorb",
    "active_recorder",
    "correlation",
    "correlation_id",
    "new_correlation_id",
    "recording",
    "span",
    "tracing_enabled",
]
