"""Unified observability layer: metrics, span tracing, profiling.

Three instruments, one package (PR 10):

* :mod:`repro.obs.metrics` — a thread-safe labeled metrics registry
  (counters, gauges, histograms) with ``snapshot()``/``delta()`` and
  JSON / Prometheus-text export.  The process-wide :data:`METRICS`
  registry absorbs the formerly scattered module globals
  (``REWRITE_STATS``, ``DECODE_STATS``); the old names survive as thin
  views over the same atomic counters.
* :mod:`repro.obs.tracing` — a ``contextvars``-based span tracer with
  parent/child propagation, correlation IDs, and Chrome trace-event
  (Perfetto-loadable) JSON export.  Disabled by default: every
  instrumentation site checks a context-local recorder and is a no-op
  (one ``ContextVar.get``) until :func:`repro.obs.tracing.recording`
  installs one.
* :mod:`repro.obs.profiler` — a cycle-attribution profiler that rides
  the reference interpreter and breaks a kernel's total latency into
  FPU-arith / FPU-nonarith / FPU-stall / branch-bubble / SSR-wait /
  int-core buckets per region (FREP body vs. scalar), reproducing the
  paper's Table 1 FPU-utilization methodology.

See ``docs/OBSERVABILITY.md`` for the metric names, span taxonomy and
correlation-ID semantics.
"""

from .metrics import METRICS, Counter, Gauge, Histogram, MetricsRegistry
from .tracing import (
    TraceRecorder,
    correlation,
    correlation_id,
    new_correlation_id,
    recording,
    span,
    tracing_enabled,
)

__all__ = [
    "METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceRecorder",
    "correlation",
    "correlation_id",
    "new_correlation_id",
    "recording",
    "span",
    "tracing_enabled",
]
