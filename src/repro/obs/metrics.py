"""Thread-safe labeled metrics: counters, gauges, histograms.

A :class:`MetricsRegistry` is a flat namespace of named, optionally
labeled instruments.  Instruments are created on first use
(``registry.counter("requests", kind="compile")``) and shared by every
subsequent lookup with the same name and labels, so call sites never
coordinate.  All mutation goes through a per-instrument lock — the
fix for the pre-PR-10 thread-safety hole where ``DECODE_STATS`` and
``REWRITE_STATS`` were bumped with unlocked ``+=`` under the
thread-per-connection service loop.

The process-wide default registry is :data:`METRICS`.  Long-lived
components that need isolated numbers (one :class:`CompileServer` per
test, say) construct their own registry.

Export formats:

* :meth:`MetricsRegistry.snapshot` — flat ``{series: value}`` dict
  (histograms expand to ``_count``/``_sum``/``_min``/``_max``
  series), suitable for :meth:`MetricsRegistry.delta` arithmetic;
* :meth:`MetricsRegistry.to_json` — nested, typed JSON;
* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text
  exposition format (``name{label="value"} 123``).
"""

from __future__ import annotations

import json
import threading


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _series_name(name: str, label_key: tuple) -> str:
    if not label_key:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in label_key)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing integer (resettable for tests)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Atomically add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    def set(self, value: int) -> None:
        """Reset support (tests, process-lifetime rollovers)."""
        with self._lock:
            self._value = int(value)

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (pool sizes, in-flight counts)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


#: Default histogram bucket upper bounds (seconds-flavoured).
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


class Histogram:
    """Cumulative-bucket histogram with count/sum/min/max."""

    __slots__ = (
        "name", "labels", "_lock", "bounds", "_bucket_counts",
        "_count", "_sum", "_min", "_max",
    )

    def __init__(
        self, name: str, labels: tuple = (), buckets=DEFAULT_BUCKETS
    ):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self.bounds = tuple(sorted(buckets))
        self._bucket_counts = [0] * len(self.bounds)
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self._bucket_counts[index] += 1

    def snapshot(self) -> dict:
        """Count, sum, min, max, and cumulative bucket counts."""
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "buckets": {
                    str(bound): count
                    for bound, count in zip(
                        self.bounds, self._bucket_counts
                    )
                },
            }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Create-on-first-use registry of named, labeled instruments."""

    def __init__(self):
        self._lock = threading.Lock()
        #: (name, label key) -> instrument; the kind is pinned by the
        #: first use and re-registering under another kind is an error.
        self._instruments: dict[tuple[str, tuple], object] = {}

    def _get(self, kind: str, name: str, labels: dict, **kwargs):
        key = (name, _label_key(labels))
        cls = _KINDS[kind]
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, key[1], **kwargs)
                self._instruments[key] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {kind}"
                )
            return instrument

    def counter(self, name: str, **labels) -> Counter:
        """The counter named ``name`` with ``labels`` (created once)."""
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(
        self, name: str, buckets=DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        return self._get("histogram", name, labels, buckets=buckets)

    # -- export ---------------------------------------------------------------

    def _items(self) -> list[tuple[str, object]]:
        with self._lock:
            instruments = list(self._instruments.items())
        return [
            (_series_name(name, label_key), instrument)
            for (name, label_key), instrument in sorted(
                instruments, key=lambda item: item[0]
            )
        ]

    def snapshot(self) -> dict[str, float]:
        """Flat ``{series: numeric value}`` view (delta-friendly).

        Histograms expand to ``<series>_count`` / ``_sum`` / ``_min``
        / ``_max`` series so the whole snapshot stays numeric.
        """
        out: dict[str, float] = {}
        for series, instrument in self._items():
            if isinstance(instrument, Histogram):
                data = instrument.snapshot()
                out[f"{series}_count"] = data["count"]
                out[f"{series}_sum"] = data["sum"]
                if data["min"] is not None:
                    out[f"{series}_min"] = data["min"]
                    out[f"{series}_max"] = data["max"]
            else:
                out[series] = instrument.value
        return out

    def delta(self, since: dict[str, float]) -> dict[str, float]:
        """Per-series increments relative to an earlier snapshot.

        Series born after ``since`` count from zero; min/max series
        are carried as-is (a delta of extrema is meaningless).
        """
        now = self.snapshot()
        return {
            series: (
                value
                if series.endswith(("_min", "_max"))
                else value - since.get(series, 0)
            )
            for series, value in now.items()
        }

    def to_json(self) -> dict:
        """Nested, typed export (the ``stats``/results-file format)."""
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for series, instrument in self._items():
            if isinstance(instrument, Counter):
                out["counters"][series] = instrument.value
            elif isinstance(instrument, Gauge):
                out["gauges"][series] = instrument.value
            else:
                out["histograms"][series] = instrument.snapshot()
        return out

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format."""
        lines: list[str] = []
        for series, instrument in self._items():
            if isinstance(instrument, Counter):
                lines.append(f"# TYPE {instrument.name} counter")
                lines.append(f"{series} {instrument.value}")
            elif isinstance(instrument, Gauge):
                lines.append(f"# TYPE {instrument.name} gauge")
                lines.append(f"{series} {instrument.value:g}")
            else:
                lines.append(f"# TYPE {instrument.name} histogram")
                data = instrument.snapshot()
                base, _, label_part = series.partition("{")
                labels = label_part[:-1] if label_part else ""

                def _series(suffix: str, extra: str = "") -> str:
                    inner = ",".join(filter(None, (labels, extra)))
                    braces = f"{{{inner}}}" if inner else ""
                    return f"{base}{suffix}{braces}"

                for bound in instrument.bounds:
                    le = 'le="%s"' % bound
                    lines.append(
                        f"{_series('_bucket', le)} "
                        f"{data['buckets'][str(bound)]}"
                    )
                inf = 'le="+Inf"'
                lines.append(
                    f"{_series('_bucket', inf)} {data['count']}"
                )
                lines.append(f"{_series('_sum')} {data['sum']:g}")
                lines.append(f"{_series('_count')} {data['count']}")
        return "\n".join(lines) + ("\n" if lines else "")

    def dump_json(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)

    def reset(self) -> None:
        """Zero every counter/gauge and drop histograms (tests)."""
        with self._lock:
            instruments = list(self._instruments.items())
            for key, instrument in instruments:
                if isinstance(instrument, Counter):
                    instrument.set(0)
                elif isinstance(instrument, Gauge):
                    instrument.set(0.0)
                else:
                    del self._instruments[key]


#: The process-wide default registry.  Module-level telemetry
#: (``DECODE_STATS``, ``REWRITE_STATS``) lives here; components that
#: need isolated numbers construct their own ``MetricsRegistry``.
METRICS = MetricsRegistry()


__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "METRICS",
    "MetricsRegistry",
]
