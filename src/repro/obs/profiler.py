"""Cycle-attribution profiler for the Snitch simulator.

Reproduces the paper's Table 1 methodology (Section 4.1): total
latency is broken into attribution buckets so FPU utilization can be
read directly as "cycles the FPU retired arithmetic / total cycles",
and the *rest* of the cycles are explained rather than lumped into
"overhead".

The simulator's timing model keeps two timelines (integer core, FPU)
that each advance contiguously: every integer instruction covers
``[int_time_before, int_time_after)`` and every FPU instruction covers
its stall gap ``[prev_fpu_end, issue)`` plus one busy cycle
``[issue, issue+1)``.  Both timelines therefore partition
``[0, their final time)`` with no holes, and total cycles is their
max — so painting per-cycle claims from both sides into one array
yields a complete attribution with **zero idle cycles** and buckets
that sum exactly to the total.

Buckets (painted in ascending priority; later overwrites earlier, so
a cycle where the FPU retires arithmetic counts as ``fpu_arith`` even
if the integer core was also busy — the utilization semantics — while
a cycle where the FPU merely *waits* is charged to whatever the
machine was actually doing, so scalar-pipeline kernels show their
address-arithmetic bottleneck as ``int_core``, not as FPU stalls):

``fpu_stall``
    FPU waiting on operand latency or dispatch while the integer
    core is also idle — exposed latency, nothing else to blame.
``int_core``
    integer-core issue slots, scoreboard stalls, FPU/FREP dispatch.
``ssr_wait``
    integer core synchronizing with the FPU at stream disable
    (``csrci``) — the FREP/SSR drain.
``branch_bubble``
    taken-branch pipeline penalty cycles.
``fpu_nonarith``
    FPU busy with non-arithmetic work (FP loads/stores, moves).
``fpu_arith``
    FPU retiring arithmetic — the utilization numerator; matches
    ``ExecutionTrace.fpu_arith_cycles`` exactly.

Regions: FPU cycles issued from inside an FREP body are attributed to
the ``frep_body`` region, everything else to ``scalar`` — separating
the streamed inner loop from its scalar prologue/epilogue, as the
paper does when explaining utilization gaps.

Usage: the profiler rides the *reference* interpreter
(:meth:`SnitchMachine.run_reference`), which is bit-exact with the
closure engine, so profiled numbers are the real numbers::

    machine = SnitchMachine(program, record_timeline=True)
    profiler = CycleProfiler.attach(machine)
    machine.run_reference(entry, ...)
    profile = profiler.finalize(machine)

or simply ``run_kernel(compiled, args, profile=True)``.  The default
``machine.profiler`` is ``None`` and the hot interpreter loop checks
it once per run — zero cost when disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..snitch.isa import BRANCHES, FP_ARITH_FLOPS, FPU_INSTRUCTIONS
from ..snitch.machine import BRANCH_TAKEN_PENALTY

#: Bucket names in report order.
BUCKETS = (
    "fpu_arith",
    "fpu_nonarith",
    "fpu_stall",
    "int_core",
    "ssr_wait",
    "branch_bubble",
)

#: Paint order (ascending priority: later overwrites earlier).  FPU
#: busy cycles always win (dual issue — the FPU working is the useful
#: outcome); int-side attributions beat bare FPU stalls.
PAINT_ORDER = (
    "fpu_stall",
    "int_core",
    "ssr_wait",
    "branch_bubble",
    "fpu_nonarith",
    "fpu_arith",
)

REGIONS = ("scalar", "frep_body")

_IDLE = 0  # array code for "no claim" — must never survive finalize


@dataclass
class CycleProfile:
    """Per-kernel cycle attribution (the Table 1 report row)."""

    cycles: int = 0
    flops: int = 0
    #: bucket -> cycles; sums to ``cycles``.
    buckets: dict = field(default_factory=dict)
    #: region -> bucket -> cycles; grand total is ``cycles``.
    regions: dict = field(default_factory=dict)
    #: cycles no claim covered — 0 by construction; kept visible so a
    #: future timing-model change that breaks contiguity is loud.
    idle: int = 0

    @property
    def fpu_utilization(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.buckets.get("fpu_arith", 0) / self.cycles

    @property
    def flops_per_cycle(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.flops / self.cycles

    def to_json(self) -> dict:
        return {
            "cycles": self.cycles,
            "flops": self.flops,
            "fpu_utilization": self.fpu_utilization,
            "flops_per_cycle": self.flops_per_cycle,
            "buckets": dict(self.buckets),
            "regions": {
                region: dict(buckets)
                for region, buckets in self.regions.items()
            },
            "idle": self.idle,
        }

    def summary(self) -> str:
        lines = [
            f"cycles            {self.cycles}",
            f"flops             {self.flops}",
            f"flops/cycle       {self.flops_per_cycle:.3f}",
            f"fpu utilization   {100.0 * self.fpu_utilization:.1f}%",
        ]
        for bucket in BUCKETS:
            count = self.buckets.get(bucket, 0)
            share = 100.0 * count / self.cycles if self.cycles else 0.0
            lines.append(f"  {bucket:<15} {count:>10}  {share:5.1f}%")
        return "\n".join(lines)


class CycleProfiler:
    """Collects per-step claims from the reference interpreter.

    Attach before the run (``record_timeline`` must be on: the FPU
    side is reconstructed from the issue timeline), then
    :meth:`finalize` after it.  The hooks only read machine state —
    the observer-effect-freedom test asserts profiled runs stay
    bit-identical.
    """

    def __init__(self):
        #: (start, end, bucket) claims on the integer timeline.
        self._int_claims: list[tuple[int, int, str]] = []
        #: [tl0, tl1) timeline-row windows covering FREP body issues.
        self._frep_windows: list[tuple[int, int]] = []
        self._it0 = 0
        self._tl0 = 0

    @classmethod
    def attach(cls, machine) -> "CycleProfiler":
        """Create a profiler and hook it onto ``machine``."""
        if not machine.record_timeline:
            raise ValueError(
                "CycleProfiler needs record_timeline=True "
                "(the FPU side is derived from the issue timeline)"
            )
        profiler = cls()
        machine.profiler = profiler
        return profiler

    # -- interpreter hooks -------------------------------------------------------

    def before_step(self, machine) -> None:
        self._it0 = machine.int_time
        self._tl0 = len(machine.timeline)

    def after_step(self, machine, inst, pc_before: int, pc_next: int) -> None:
        it0, it1 = self._it0, machine.int_time
        mnemonic = inst.mnemonic
        if mnemonic == "frep.o":
            # frep.o issue + body dispatch into the sequencer; the FPU
            # rows appended during this step are the FREP body.
            self._int_claims.append((it0, it1, "int_core"))
            tl1 = len(machine.timeline)
            if tl1 > self._tl0:
                self._frep_windows.append((self._tl0, tl1))
        elif mnemonic in BRANCHES or mnemonic == "j":
            if pc_next != pc_before + 1:  # taken: trailing penalty
                split = it1 - BRANCH_TAKEN_PENALTY
                self._int_claims.append((it0, split, "int_core"))
                self._int_claims.append((split, it1, "branch_bubble"))
            else:
                self._int_claims.append((it0, it1, "int_core"))
        elif mnemonic == "csrci":
            # One issue cycle, then the stream-disable drain: the
            # integer core parks until the FPU catches up.
            self._int_claims.append((it0, it0 + 1, "int_core"))
            if it1 > it0 + 1:
                self._int_claims.append((it0 + 1, it1, "ssr_wait"))
        else:
            # Plain integer work, or the single dispatch slot of a
            # standalone FPU instruction.  Scoreboard stalls are the
            # integer core's problem, so the whole span is int_core.
            self._int_claims.append((it0, it1, "int_core"))

    # -- report ------------------------------------------------------------------

    def finalize(self, machine) -> CycleProfile:
        """Paint all claims into a cycle array and tally buckets."""
        total = max(machine.int_time, machine.fpu_time)
        trace = machine.trace

        # (region, bucket) -> small int code, in paint order.
        codes: dict[tuple[str, str], int] = {}
        claims: list[tuple[int, int, int]] = []

        def claim(start: int, end: int, region: str, bucket: str) -> None:
            start, end = max(0, start), min(end, total)
            if start >= end:
                return
            key = (region, bucket)
            code = codes.setdefault(key, len(codes) + 1)
            claims.append((start, end, code))

        for start, end, bucket in self._int_claims:
            claim(start, end, "scalar", bucket)

        # FPU side from the issue timeline: stall gap then busy cycle,
        # per instruction, contiguous over [0, fpu_time).
        windows = iter(self._frep_windows)
        window = next(windows, None)
        prev_end = 0
        for index, (issue, unit, text) in enumerate(machine.timeline):
            if unit != "fpu":
                continue
            while window is not None and index >= window[1]:
                window = next(windows, None)
            in_frep = window is not None and window[0] <= index < window[1]
            region = "frep_body" if in_frep else "scalar"
            if issue > prev_end:
                claim(prev_end, issue, region, "fpu_stall")
            op = text.split(None, 1)[0]
            bucket = "fpu_arith" if op in FP_ARITH_FLOPS else "fpu_nonarith"
            claim(issue, issue + 1, region, bucket)
            prev_end = issue + 1

        # Paint in bucket-priority order; later paints overwrite, so a
        # cycle claimed by both sides lands in the higher bucket.
        priority = {
            bucket: rank for rank, bucket in enumerate(PAINT_ORDER)
        }
        rank_of = {
            code: priority[bucket]
            for (_, bucket), code in codes.items()
        }
        array = bytearray(total)
        for start, end, code in sorted(
            claims, key=lambda item: rank_of[item[2]]
        ):
            array[start:end] = bytes([code]) * (end - start)

        buckets = {bucket: 0 for bucket in BUCKETS}
        regions = {
            region: {bucket: 0 for bucket in BUCKETS}
            for region in REGIONS
        }
        for (region, bucket), code in codes.items():
            count = array.count(code)
            buckets[bucket] += count
            regions[region][bucket] += count
        idle = array.count(_IDLE)

        return CycleProfile(
            cycles=total,
            flops=trace.flops,
            buckets=buckets,
            regions=regions,
            idle=idle,
        )


__all__ = [
    "BUCKETS",
    "PAINT_ORDER",
    "REGIONS",
    "CycleProfile",
    "CycleProfiler",
]
