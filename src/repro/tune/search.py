"""Cycle-oracle schedule search.

The driver walks a kernel's :class:`~repro.tune.schedule.ScheduleSpace`
and *measures* every candidate: compile through the ordinary
``Compiler`` facade with the config's pipeline spec, run on the
predecoded engine (or row-partitioned across a cluster for multi-core
configs), validate against the numpy oracle, score by cycles.  Three
strategies share one evaluation harness:

* ``exhaustive`` — every legal config (optionally budget-capped);
* ``random`` — the default plus a seeded random sample of the rest;
* ``greedy`` — coordinate descent: improve one schedule axis at a
  time until a full sweep finds nothing better or the budget runs out.

Candidates evaluate serially by default; ``workers > 1`` fans a batch
out across a ``concurrent.futures`` process pool (compile + simulate
is pure-Python CPU work, so threads would serialize on the GIL;
fork-style workers inherit the loaded package for free, and platforms
without fork stay serial).  Worth it once per-candidate work clearly
exceeds the ~fraction-of-a-second pool startup — large kernels or
big budgets; the Table 1 micro-shapes score faster serially.  Every
measurement goes through the persistent
:class:`~repro.tune.cache.TuneCache`, making repeated tuning runs
incremental.  The compiler default is always measured, so the winning
schedule is never worse than the untuned pipeline.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from random import Random
from typing import Sequence

import numpy as np

from .. import api
from ..compiler import Compiler
from ..snitch.cluster import run_row_partitioned
from .cache import TuneCache
from .schedule import (
    ScheduleConfig,
    ScheduleError,
    ScheduleSpace,
    TunedSchedule,
    cluster_plan,
    resolve_kernel,
)

STRATEGIES = ("exhaustive", "random", "greedy")

#: Parallel evaluation uses fork-style workers: they inherit the
#: already-imported package (no per-worker re-import) and the task
#: payload is tiny.  Platforms without fork evaluate serially.
_FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()


def _measure_task(
    task: tuple,
) -> tuple[int | None, str | None]:
    """(cycles, error) for one config — picklable pool work item."""
    kernel, sizes, config, seed, validate = task
    try:
        cycles = evaluate_config(
            kernel, sizes, config, seed=seed, validate=validate
        )
        return cycles, None
    except Exception as error:  # record, don't rank
        return None, f"{type(error).__name__}: {error}"


def _validate_arrays(kernel: str, arrays, expected) -> None:
    for got, want in zip(arrays, expected):
        if want is not None and not np.allclose(got, want, atol=1e-8):
            raise ScheduleError(
                f"{kernel}: schedule produced results that do not "
                "match the numpy oracle"
            )


def evaluate_config(
    kernel: str,
    sizes: Sequence[int],
    config: ScheduleConfig,
    seed: int = 0,
    validate: bool = True,
) -> int:
    """The cycle oracle: measured cycles of one schedule config.

    Compiles the kernel with the config's pipeline spec and simulates
    it on the predecoded engine; multi-core configs row-partition the
    kernel across a cluster sharing one TCDM and score the slowest
    core.  Raises (``ScheduleError`` or the underlying compiler error)
    when the config does not compile or fails validation — the search
    records such configs as invalid rather than ranking them.
    """
    builder, sizes = resolve_kernel(kernel, sizes)
    spec_text = config.pipeline_spec()
    module, kernel_spec = builder(*sizes)
    arguments = kernel_spec.random_arguments(seed=seed)
    if config.num_cores == 1:
        compiled = Compiler(spec_text).compile(module)
        run = api.run_kernel(compiled, arguments)
        if validate:
            _validate_arrays(
                kernel, run.arrays, kernel_spec.reference(*arguments)
            )
        return run.trace.cycles
    plan = cluster_plan(kernel, sizes)
    if plan is None:
        raise ScheduleError(
            f"kernel {kernel!r} has no known row-partitioning"
        )
    cluster = run_row_partitioned(
        plan.chunk_builder,
        lambda chunk_module, _spec: Compiler(spec_text).compile(
            chunk_module
        ),
        plan.shape,
        config.num_cores,
        list(arguments),
        row_parallel_args=list(plan.row_parallel_args),
    )
    if validate:
        _validate_arrays(
            kernel, cluster.arrays, kernel_spec.reference(*arguments)
        )
    return cluster.cycles


@dataclass
class CandidateOutcome:
    """One scored (or failed) schedule candidate."""

    config: ScheduleConfig
    spec: str
    #: Measured cycles; None when the config failed.
    cycles: int | None
    #: Whether the score came from the persistent cache.
    cached: bool
    error: str | None = None

    @property
    def valid(self) -> bool:
        return self.cycles is not None


@dataclass
class TuneResult:
    """Everything one tuning run learned."""

    kernel: str
    sizes: tuple[int, ...]
    strategy: str
    seed: int
    best: TunedSchedule
    candidates: list[CandidateOutcome] = field(default_factory=list)
    #: Persistent-cache traffic of this run only.
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def default_cycles(self) -> int:
        return self.best.default_cycles

    @property
    def candidates_evaluated(self) -> int:
        return len(self.candidates)

    def report(self) -> str:
        """A per-candidate table plus the winning schedule."""
        lines = [
            f"{self.kernel} {'x'.join(map(str, self.sizes))}: "
            f"{self.candidates_evaluated} candidates "
            f"({self.strategy}, seed {self.seed}), "
            f"default {self.default_cycles} -> best {self.best.cycles} "
            f"cycles ({self.best.speedup:.2f}x)",
            f"{'config':<36} {'cycles':>8} {'source':>7}",
        ]
        for outcome in sorted(
            self.candidates,
            key=lambda o: (o.cycles is None, o.cycles or 0),
        ):
            cycles = "failed" if not outcome.valid else str(outcome.cycles)
            source = "cache" if outcome.cached else "run"
            lines.append(
                f"{outcome.config.key():<36} {cycles:>8} {source:>7}"
            )
        cores = self.best.config.num_cores
        lines.append(
            f"winning spec: {self.best.pipeline_spec}"
            + (
                f"\n(cycles measured row-partitioned on {cores} cores;"
                " the spec alone is the single-core schedule)"
                if cores != 1
                else ""
            )
        )
        return "\n".join(lines)


class _SearchDriver:
    """Shared evaluation harness: budget, dedup, cache, parallelism."""

    def __init__(
        self,
        space: ScheduleSpace,
        cache: TuneCache,
        seed: int,
        validate: bool,
        workers: int | None,
        budget: int | None,
    ):
        self.space = space
        self.cache = cache
        self.seed = seed
        self.validate = validate
        self.workers = 1 if workers is None else max(1, workers)
        self.budget = budget
        self.count = 0
        self.ordered: list[CandidateOutcome] = []
        self.by_key: dict[str, CandidateOutcome] = {}
        self._hits0 = cache.hits
        self._misses0 = cache.misses

    def _key(self, config: ScheduleConfig) -> str:
        return TuneCache.key(self.space.kernel, self.space.sizes, config)

    def remaining(self) -> int | None:
        if self.budget is None:
            return None
        return max(0, self.budget - self.count)

    def score(
        self, configs: Sequence[ScheduleConfig]
    ) -> list[CandidateOutcome]:
        """Score configs (budget-capped, deduplicated, parallel)."""
        admitted: list[tuple[str, ScheduleConfig]] = []
        for config in configs:
            key = self._key(config)
            if key in self.by_key or any(
                key == k for k, _ in admitted
            ):
                continue
            remaining = self.remaining()
            if remaining is not None and len(admitted) >= remaining:
                break
            admitted.append((key, config))
        self.count += len(admitted)

        pending: list[tuple[str, ScheduleConfig]] = []
        for key, config in admitted:
            hit, cycles = self.cache.lookup(key)
            if hit:
                self._record(
                    key,
                    CandidateOutcome(
                        config=config,
                        spec=config.pipeline_spec(),
                        cycles=cycles,
                        cached=True,
                        error=(
                            "cached failure" if cycles is None else None
                        ),
                    ),
                )
            else:
                pending.append((key, config))

        tasks = [
            (
                self.space.kernel,
                self.space.sizes,
                config,
                self.seed,
                self.validate,
            )
            for _, config in pending
        ]
        if len(pending) > 1 and self.workers > 1 and _FORK_AVAILABLE:
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(pending)),
                mp_context=multiprocessing.get_context("fork"),
            ) as pool:
                measured = list(pool.map(_measure_task, tasks))
        else:
            measured = [_measure_task(task) for task in tasks]
        for (key, config), (cycles, error) in zip(pending, measured):
            self.cache.put(key, cycles)
            self._record(
                key,
                CandidateOutcome(
                    config=config,
                    spec=config.pipeline_spec(),
                    cycles=cycles,
                    cached=False,
                    error=error,
                ),
            )
        return [self.by_key[key] for key, _ in admitted]

    def _record(self, key: str, outcome: CandidateOutcome) -> None:
        self.by_key[key] = outcome
        self.ordered.append(outcome)

    def cycles_of(self, config: ScheduleConfig) -> int | None:
        outcome = self.by_key.get(self._key(config))
        return outcome.cycles if outcome is not None else None

    # -- strategies ----------------------------------------------------------

    def run_exhaustive(self) -> None:
        self.score(list(self.space.configs()))

    def run_random(self) -> None:
        configs = list(self.space.configs())
        default, rest = configs[0], configs[1:]
        self.score([default])
        rng = Random(self.seed)
        limit = len(rest)
        if self.budget is not None:
            limit = min(limit, max(0, self.budget - 1))
        self.score(rng.sample(rest, limit))

    def run_greedy(self) -> None:
        configs = list(self.space.configs())
        current = configs[0]
        self.score([current])
        improved = True
        while improved and (self.remaining() or self.budget is None):
            improved = False
            for axis_values in self._axes(current):
                outcomes = self.score(axis_values)
                best_cycles = self.cycles_of(current)
                if best_cycles is None:
                    return  # default failed; nothing to descend from
                for outcome in outcomes:
                    if outcome.valid and outcome.cycles < best_cycles:
                        best_cycles = outcome.cycles
                        current = outcome.config
                        improved = True
                if self.remaining() == 0:
                    return

    def _axes(self, current: ScheduleConfig):
        space = self.space
        yield [
            replace(current, permutation=perm)
            for perm in (None,) + space.permutations
        ]
        yield [
            replace(current, unroll_factor=factor)
            for factor in space.unroll_factors_for(current.permutation)
        ]
        yield [
            replace(current, num_cores=cores)
            for cores in space.core_counts
        ]

    # -- result assembly -----------------------------------------------------

    def finish(self, strategy: str) -> TuneResult:
        default = next(
            (o for o in self.ordered if o.config.is_default), None
        )
        if default is None or not default.valid:
            detail = default.error if default is not None else "not scored"
            raise ScheduleError(
                f"{self.space.kernel}: the default schedule failed "
                f"({detail}); tuning has no baseline"
            )
        best = default
        for outcome in self.ordered:
            if outcome.valid and outcome.cycles < best.cycles:
                best = outcome
        tuned = TunedSchedule(
            kernel=self.space.kernel,
            sizes=self.space.sizes,
            config=best.config,
            pipeline_spec=best.spec,
            cycles=best.cycles,
            default_cycles=default.cycles,
        )
        return TuneResult(
            kernel=self.space.kernel,
            sizes=self.space.sizes,
            strategy=strategy,
            seed=self.seed,
            best=tuned,
            candidates=list(self.ordered),
            cache_hits=self.cache.hits - self._hits0,
            cache_misses=self.cache.misses - self._misses0,
        )


def tune_kernel(
    kernel: str,
    sizes: Sequence[int],
    strategy: str = "exhaustive",
    budget: int | None = None,
    seed: int = 0,
    cache: TuneCache | str | Path | None = None,
    workers: int | None = None,
    core_counts: Sequence[int] = (1,),
    validate: bool = True,
) -> TuneResult:
    """Search a kernel's schedule space; returns the full result.

    ``budget`` caps the number of scored candidates (the compiler
    default always counts as — and is — the first).  ``seed`` fixes
    both the input data and the random strategy's sampling, so a tuning
    run is reproducible end to end.  ``cache`` may be a path (opened,
    used, and saved) or an existing :class:`TuneCache` (saved but kept
    open, so several kernels can share one store).  ``workers > 1``
    evaluates each batch across fork-based worker processes — worth it
    for large kernels or budgets; the default (serial) is fastest for
    the Table 1 micro-shapes.
    """
    if strategy not in STRATEGIES:
        raise ScheduleError(
            f"unknown strategy {strategy!r} (one of "
            f"{', '.join(STRATEGIES)})"
        )
    if budget is not None and budget < 1:
        raise ScheduleError("budget must allow at least one candidate")
    space = ScheduleSpace.for_kernel(kernel, sizes, core_counts)
    if not isinstance(cache, TuneCache):
        cache = TuneCache(cache)
    driver = _SearchDriver(space, cache, seed, validate, workers, budget)
    if strategy == "exhaustive":
        driver.run_exhaustive()
    elif strategy == "random":
        driver.run_random()
    else:
        driver.run_greedy()
    result = driver.finish(strategy)
    cache.save()
    return result


__all__ = [
    "STRATEGIES",
    "CandidateOutcome",
    "TuneResult",
    "evaluate_config",
    "tune_kernel",
]
