"""Cycle-oracle schedule search.

The driver walks a kernel's :class:`~repro.tune.schedule.ScheduleSpace`
and *measures* every candidate: compile through the ordinary
``Compiler`` facade with the config's pipeline spec, run on the
predecoded engine (or row-partitioned across a cluster for multi-core
configs), validate against the numpy oracle, score by cycles.  Three
strategies share one evaluation harness:

* ``exhaustive`` — every legal config (optionally budget-capped);
* ``random`` — the default plus a seeded random sample of the rest;
* ``greedy`` — coordinate descent: improve one schedule axis at a
  time until a full sweep finds nothing better or the budget runs out.

Candidates evaluate serially by default; ``workers > 1`` fans a batch
out across the fault-tolerant
:class:`~repro.tune.workers.HardenedPool` (compile + simulate is
pure-Python CPU work, so threads would serialize on the GIL;
fork-style workers inherit the loaded package for free, and platforms
without fork stay serial).  Every failure — compile error, oracle
mismatch, killed worker, blown deadline — surfaces as a structured
:class:`~repro.tune.faults.Fault` on the candidate's outcome;
transient faults are retried by the pool, deterministic ones are
persisted in the :class:`~repro.tune.cache.TuneCache` so reruns skip
them with provenance.  The compiler default is always measured, so the
winning schedule is never worse than the untuned pipeline.  ``Ctrl-C``
raises :class:`SearchInterrupted` carrying the best-so-far partial
result, after checkpointing the cache.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from random import Random
from typing import Sequence

import numpy as np

from .. import api
from ..compiler import Compiler
from ..obs.tracing import (
    absorb,
    correlation,
    correlation_id,
    recording,
    span,
    tracing_enabled,
)
from ..snitch.cluster import run_row_partitioned
from ..snitch.engine import ENGINE_VERSION
from .cache import TuneCache
from .faults import Fault, FaultInjector, InjectedError, classify_error
from .schedule import (
    ScheduleConfig,
    ScheduleError,
    ScheduleSpace,
    TunedSchedule,
    cluster_plan,
    resolve_kernel,
)
from .workers import HardenedPool, PoolConfig

STRATEGIES = ("exhaustive", "random", "greedy")


class SearchInterrupted(Exception):
    """Tuning was interrupted (Ctrl-C / SIGTERM / injected interrupt).

    ``partial`` carries the best-so-far :class:`TuneResult` when the
    default schedule had already been scored, else ``None``.  The
    persistent cache has been checkpointed either way.
    """

    def __init__(self, message: str, partial: "TuneResult | None" = None):
        super().__init__(message)
        self.partial = partial


def _apply_injection(injection, serial: bool, deadline) -> None:
    """Enact one planned fault at the top of a measurement."""
    if injection.action == "crash":
        if not serial:  # belt: the injector never returns crash serially
            os.kill(os.getpid(), signal.SIGKILL)
        return
    if injection.action == "delay":
        if serial and deadline is not None and injection.value >= deadline:
            # A serial sleep has no watchdog to cut it short; model the
            # outcome (deadline blown) without actually burning the
            # wall-clock.
            from ..snitch.machine import DeadlineExceeded

            raise DeadlineExceeded(
                f"injected {injection.value:g}s delay exceeded the "
                f"{deadline:g}s deadline"
            )
        time.sleep(injection.value)
        return
    if injection.action == "raise":
        raise InjectedError("injected mid-measure failure")
    if injection.action == "interrupt":
        raise KeyboardInterrupt


def _measure_task(task) -> tuple[int | dict | None, dict | None]:
    """(cycles, fault_json) for one config — the pool's work item.

    Never raises (except ``KeyboardInterrupt``): every failure is
    classified into the fault taxonomy so the pool can apply retry
    policy and the cache can persist provenance.

    When the dispatching search runs under tracing, the payload
    carries the correlation ID (its seventh element); the measurement
    then records per-candidate spans into a local recorder — workers
    are separate processes, so span context cannot ride the
    ``contextvars`` — and smuggles them back through the pool's
    2-tuple result protocol as ``({"cycles": ..., "spans": [...]},
    fault_json)``, which :meth:`_SearchDriver._absorb` unwraps.
    """
    payload, injection, serial = task
    kernel, sizes, config, seed, validate, deadline = payload[:6]
    trace_ctx = payload[6] if len(payload) > 6 else None
    stage: list[str] = ["inject"] if injection is not None else []

    def measure() -> int:
        if injection is not None:
            _apply_injection(injection, serial, deadline)
        return evaluate_config(
            kernel,
            sizes,
            config,
            seed=seed,
            validate=validate,
            deadline_seconds=deadline,
            stage_out=stage,
        )

    try:
        if trace_ctx is None:
            return measure(), None
        with recording() as recorder, correlation(trace_ctx):
            with span("tune.candidate", candidate=config.key()):
                cycles = measure()
        return {"cycles": cycles, "spans": recorder.events_json()}, None
    except KeyboardInterrupt:
        raise
    except Exception as error:  # classify, don't rank
        fault = classify_error(
            error,
            stage=stage[0] if stage else None,
            candidate=config.key(),
        )
        return None, fault.to_json()


def _validate_arrays(kernel: str, arrays, expected) -> None:
    for got, want in zip(arrays, expected):
        if want is not None and not np.allclose(got, want, atol=1e-8):
            raise ScheduleError(
                f"{kernel}: schedule produced results that do not "
                "match the numpy oracle"
            )


def evaluate_config(
    kernel: str,
    sizes: Sequence[int],
    config: ScheduleConfig,
    seed: int = 0,
    validate: bool = True,
    deadline_seconds: float | None = None,
    stage_out: list[str] | None = None,
) -> int:
    """The cycle oracle: measured cycles of one schedule config.

    Compiles the kernel with the config's pipeline spec and simulates
    it on the predecoded engine; multi-core configs row-partition the
    kernel across a cluster sharing one TCDM and score the slowest
    core.  Raises (``ScheduleError`` or the underlying compiler error)
    when the config does not compile or fails validation — the search
    records such configs as invalid rather than ranking them.

    ``deadline_seconds`` arms the simulator's cooperative wall-clock
    watchdog.  ``stage_out``, when given, is overwritten in place with
    the evaluation stage currently executing (``compile`` /
    ``simulate`` / ``verify``) so a caller catching an exception can
    attribute it to the right layer.
    """

    def _stage(name: str) -> None:
        if stage_out is not None:
            stage_out[:] = [name]

    _stage("compile")
    builder, sizes = resolve_kernel(kernel, sizes)
    spec_text = config.pipeline_spec()
    module, kernel_spec = builder(*sizes)
    arguments = kernel_spec.random_arguments(seed=seed)
    if config.num_cores == 1:
        compiled = Compiler(spec_text).compile(module)
        _stage("simulate")
        run = api.run_kernel(
            compiled, arguments, deadline_seconds=deadline_seconds
        )
        if validate:
            _stage("verify")
            _validate_arrays(
                kernel, run.arrays, kernel_spec.reference(*arguments)
            )
        return run.trace.cycles
    plan = cluster_plan(kernel, sizes)
    if plan is None:
        raise ScheduleError(
            f"kernel {kernel!r} has no known row-partitioning"
        )

    def _compile_chunk(chunk_module, _spec):
        _stage("compile")
        compiled = Compiler(spec_text).compile(chunk_module)
        _stage("simulate")
        return compiled

    cluster = run_row_partitioned(
        plan.chunk_builder,
        _compile_chunk,
        plan.shape,
        config.num_cores,
        list(arguments),
        row_parallel_args=list(plan.row_parallel_args),
        deadline_seconds=deadline_seconds,
    )
    if validate:
        _stage("verify")
        _validate_arrays(
            kernel, cluster.arrays, kernel_spec.reference(*arguments)
        )
    return cluster.cycles


@dataclass
class CandidateOutcome:
    """One scored (or failed) schedule candidate."""

    config: ScheduleConfig
    spec: str
    #: Measured cycles; None when the config failed.
    cycles: int | None
    #: Whether the score came from the persistent cache.
    cached: bool
    #: Structured failure (None for a successful measurement).
    fault: Fault | None = None

    @property
    def valid(self) -> bool:
        return self.cycles is not None

    @property
    def error(self) -> str | None:
        """Legacy one-line error string (from the fault)."""
        return self.fault.describe() if self.fault is not None else None


@dataclass
class TuneResult:
    """Everything one tuning run learned."""

    kernel: str
    sizes: tuple[int, ...]
    strategy: str
    seed: int
    best: TunedSchedule
    candidates: list[CandidateOutcome] = field(default_factory=list)
    #: Persistent-cache traffic of this run only.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Pool fault-tolerance log: respawns, retries, watchdog kills,
    #: degradations.
    events: list[str] = field(default_factory=list)
    #: Whether evaluation fell back to serial (fork unavailable or the
    #: pool died repeatedly).
    degraded: bool = False
    #: Whether the search was cut short (the result is best-so-far).
    interrupted: bool = False
    #: Whether the whole result came from a stored TunedSchedule
    #: artifact (no candidates were evaluated this run).
    from_store: bool = False

    @property
    def default_cycles(self) -> int:
        return self.best.default_cycles

    @property
    def candidates_evaluated(self) -> int:
        return len(self.candidates)

    @property
    def faults(self) -> list[Fault]:
        """Structured faults of every failed candidate."""
        return [o.fault for o in self.candidates if o.fault is not None]

    def report(self) -> str:
        """A per-candidate table plus the winning schedule."""
        lines = [
            f"{self.kernel} {'x'.join(map(str, self.sizes))}: "
            f"{self.candidates_evaluated} candidates "
            f"({self.strategy}, seed {self.seed}), "
            f"default {self.default_cycles} -> best {self.best.cycles} "
            f"cycles ({self.best.speedup:.2f}x)"
            + (" [interrupted: partial result]" if self.interrupted else ""),
            f"{'config':<36} {'cycles':>8} {'source':>7}",
        ]
        for outcome in sorted(
            self.candidates,
            key=lambda o: (o.cycles is None, o.cycles or 0),
        ):
            cycles = "failed" if not outcome.valid else str(outcome.cycles)
            source = "cache" if outcome.cached else "run"
            line = f"{outcome.config.key():<36} {cycles:>8} {source:>7}"
            if outcome.fault is not None:
                line += f"  [{outcome.fault.kind}]"
            lines.append(line)
        cores = self.best.config.num_cores
        lines.append(
            f"winning spec: {self.best.pipeline_spec}"
            + (
                f"\n(cycles measured row-partitioned on {cores} cores;"
                " the spec alone is the single-core schedule)"
                if cores != 1
                else ""
            )
        )
        if self.events:
            lines.append("pool events:")
            lines.extend(f"  - {event}" for event in self.events)
        return "\n".join(lines)


class _SearchDriver:
    """Shared evaluation harness: budget, dedup, cache, fault policy."""

    def __init__(
        self,
        space: ScheduleSpace,
        cache: TuneCache,
        seed: int,
        validate: bool,
        workers: int | None,
        budget: int | None,
        deadline: float | None = None,
        retries: int = 2,
        injector: FaultInjector | None = None,
    ):
        self.space = space
        self.cache = cache
        self.seed = seed
        self.validate = validate
        self.workers = 1 if workers is None else max(1, workers)
        self.budget = budget
        self.deadline = deadline
        self.injector = injector
        self.count = 0
        self.ordered: list[CandidateOutcome] = []
        self.by_key: dict[str, CandidateOutcome] = {}
        self._hits0 = cache.hits
        self._misses0 = cache.misses
        #: Measurement sequence number: counts *measured* candidates in
        #: dispatch order (cache hits do not consume one) — the fault
        #: injector's key.
        self._seq = 0
        self.pool = HardenedPool(
            _measure_task,
            PoolConfig(
                workers=self.workers, deadline=deadline, retries=retries
            ),
            decorate=self._decorate,
        )

    def _decorate(self, payload, seq, attempt, serial):
        injection = (
            self.injector.for_attempt(seq, attempt, serial=serial)
            if self.injector is not None
            else None
        )
        return (payload, injection, serial)

    def _key(self, config: ScheduleConfig) -> str:
        return TuneCache.key(self.space.kernel, self.space.sizes, config)

    def remaining(self) -> int | None:
        if self.budget is None:
            return None
        return max(0, self.budget - self.count)

    def score(
        self, configs: Sequence[ScheduleConfig]
    ) -> list[CandidateOutcome]:
        """Score configs (budget-capped, deduplicated, fault-tolerant)."""
        admitted: list[tuple[str, ScheduleConfig]] = []
        for config in configs:
            key = self._key(config)
            if key in self.by_key or any(
                key == k for k, _ in admitted
            ):
                continue
            remaining = self.remaining()
            if remaining is not None and len(admitted) >= remaining:
                break
            admitted.append((key, config))
        self.count += len(admitted)

        pending: list[tuple[str, ScheduleConfig]] = []
        for key, config in admitted:
            hit, cycles, fault = self.cache.lookup(key)
            if hit:
                self._record(
                    key,
                    CandidateOutcome(
                        config=config,
                        spec=config.pipeline_spec(),
                        cycles=cycles,
                        cached=True,
                        fault=fault,
                    ),
                )
            else:
                pending.append((key, config))

        tasks = []
        # When the caller is tracing, ship the correlation ID with each
        # task so worker-side candidate spans join this trace.
        trace_ctx = (
            (correlation_id() or "") if tracing_enabled() else None
        )
        for _, config in pending:
            payload = (
                self.space.kernel,
                self.space.sizes,
                config,
                self.seed,
                self.validate,
                self.deadline,
                trace_ctx,
            )
            tasks.append((self._seq, config.key(), payload))
            self._seq += 1
        staged: dict[int, tuple] = {}
        try:
            measured = self.pool.map(tasks, on_result=staged.__setitem__)
        except KeyboardInterrupt:
            # Bank whatever finished before the interrupt, so the
            # partial result (and the cache checkpoint) keep it.
            for pos in sorted(staged):
                key, config = pending[pos]
                self._absorb(key, config, staged[pos])
            raise
        for (key, config), result in zip(pending, measured):
            self._absorb(key, config, result)
        # Checkpoint after every batch: an interrupt or crash later
        # loses at most one batch of measurements.
        if pending:
            self.cache.save()
        return [self.by_key[key] for key, _ in admitted]

    def _absorb(
        self, key: str, config: ScheduleConfig, result: tuple
    ) -> None:
        """Record one fresh measurement and apply the cache policy."""
        cycles, fault_json = result
        if isinstance(cycles, dict):
            # Traced measurement: unwrap the smuggled worker spans into
            # this context's recorder (see ``_measure_task``).
            absorb(cycles.get("spans"))
            cycles = cycles.get("cycles")
        fault = (
            Fault.from_json(fault_json) if fault_json is not None else None
        )
        if fault is None:
            self.cache.put(key, cycles)
        elif not fault.retryable:
            # Deterministic failures are worth remembering; transient
            # ones (timeout, crash) may succeed next run.
            self.cache.put_failure(key, fault)
        self._record(
            key,
            CandidateOutcome(
                config=config,
                spec=config.pipeline_spec(),
                cycles=cycles,
                cached=False,
                fault=fault,
            ),
        )

    def _record(self, key: str, outcome: CandidateOutcome) -> None:
        self.by_key[key] = outcome
        self.ordered.append(outcome)

    def cycles_of(self, config: ScheduleConfig) -> int | None:
        outcome = self.by_key.get(self._key(config))
        return outcome.cycles if outcome is not None else None

    # -- strategies ----------------------------------------------------------

    def run_exhaustive(self) -> None:
        self.score(list(self.space.configs()))

    def run_random(self) -> None:
        configs = list(self.space.configs())
        default, rest = configs[0], configs[1:]
        self.score([default])
        rng = Random(self.seed)
        limit = len(rest)
        if self.budget is not None:
            limit = min(limit, max(0, self.budget - 1))
        self.score(rng.sample(rest, limit))

    def run_greedy(self) -> None:
        configs = list(self.space.configs())
        current = configs[0]
        self.score([current])
        improved = True
        while improved and (self.remaining() or self.budget is None):
            improved = False
            for axis_values in self._axes(current):
                outcomes = self.score(axis_values)
                best_cycles = self.cycles_of(current)
                if best_cycles is None:
                    return  # default failed; nothing to descend from
                for outcome in outcomes:
                    if outcome.valid and outcome.cycles < best_cycles:
                        best_cycles = outcome.cycles
                        current = outcome.config
                        improved = True
                if self.remaining() == 0:
                    return

    def _axes(self, current: ScheduleConfig):
        space = self.space
        yield [
            replace(current, permutation=perm)
            for perm in (None,) + space.permutations
        ]
        yield [
            replace(current, unroll_factor=factor)
            for factor in space.unroll_factors_for(current.permutation)
        ]
        yield [
            replace(current, num_cores=cores)
            for cores in space.core_counts
        ]

    # -- result assembly -----------------------------------------------------

    def finish(self, strategy: str, interrupted: bool = False) -> TuneResult:
        default = next(
            (o for o in self.ordered if o.config.is_default), None
        )
        if default is None or not default.valid:
            detail = default.error if default is not None else "not scored"
            raise ScheduleError(
                f"{self.space.kernel}: the default schedule failed "
                f"({detail}); tuning has no baseline"
            )
        best = default
        for outcome in self.ordered:
            if outcome.valid and outcome.cycles < best.cycles:
                best = outcome
        tuned = TunedSchedule(
            kernel=self.space.kernel,
            sizes=self.space.sizes,
            config=best.config,
            pipeline_spec=best.spec,
            cycles=best.cycles,
            default_cycles=default.cycles,
        )
        return TuneResult(
            kernel=self.space.kernel,
            sizes=self.space.sizes,
            strategy=strategy,
            seed=self.seed,
            best=tuned,
            candidates=list(self.ordered),
            cache_hits=self.cache.hits - self._hits0,
            cache_misses=self.cache.misses - self._misses0,
            events=list(self.pool.events),
            degraded=self.pool.degraded,
            interrupted=interrupted,
        )


def tune_kernel(
    kernel: str,
    sizes: Sequence[int],
    strategy: str = "exhaustive",
    budget: int | None = None,
    seed: int = 0,
    cache: TuneCache | str | Path | None = None,
    workers: int | None = None,
    core_counts: Sequence[int] = (1,),
    validate: bool = True,
    deadline: float | None = None,
    retries: int = 2,
    injector: FaultInjector | None = None,
    store=None,
) -> TuneResult:
    """Search a kernel's schedule space; returns the full result.

    ``budget`` caps the number of scored candidates (the compiler
    default always counts as — and is — the first).  ``seed`` fixes
    both the input data and the random strategy's sampling, so a tuning
    run is reproducible end to end.  ``cache`` may be a path (opened,
    used, and saved) or an existing :class:`TuneCache` (saved but kept
    open, so several kernels can share one store).  ``workers > 1``
    evaluates each batch across the fault-tolerant
    :class:`~repro.tune.workers.HardenedPool` — worth it for large
    kernels or budgets; the default (serial) is fastest for the Table 1
    micro-shapes.

    ``deadline`` bounds each candidate's wall-clock seconds: in a
    worker the pool's watchdog SIGKILLs past-due candidates; serially
    the engine's cooperative :class:`DeadlineExceeded` fires.
    ``retries`` bounds extra dispatch attempts for transient faults
    (crashes, timeouts).  ``injector`` installs a deterministic
    fault-injection plan (testing / chaos drills).

    An interrupt (Ctrl-C) checkpoints the cache and raises
    :class:`SearchInterrupted` with the best-so-far partial result
    attached.

    ``store`` (an :class:`~repro.service.ArtifactStore`) persists the
    *outcome* of the whole search, complementing the per-measurement
    ``cache``: an identical (kernel, sizes, strategy, seed, budget,
    cores, validate, engine version) run returns the stored
    :class:`TunedSchedule` without evaluating anything
    (``result.from_store``); a fresh run writes its winner back.
    """
    if strategy not in STRATEGIES:
        raise ScheduleError(
            f"unknown strategy {strategy!r} (one of "
            f"{', '.join(STRATEGIES)})"
        )
    if budget is not None and budget < 1:
        raise ScheduleError("budget must allow at least one candidate")
    space = ScheduleSpace.for_kernel(kernel, sizes, core_counts)
    store_key = None
    if store is not None:
        # Lazy import: repro.service depends on this module.
        from ..service.store import content_key

        store_key = content_key(
            "tuned-schedule",
            kernel,
            "x".join(str(int(s)) for s in sizes),
            strategy,
            seed,
            -1 if budget is None else budget,
            list(core_counts),
            validate,
            ENGINE_VERSION,
        )
        payload = store.get("schedule", store_key)
        if payload is not None:
            best = TunedSchedule.from_json(payload)
            if best.engine_version == ENGINE_VERSION:
                return TuneResult(
                    kernel=kernel,
                    sizes=best.sizes,
                    strategy=strategy,
                    seed=seed,
                    best=best,
                    from_store=True,
                )
    if not isinstance(cache, TuneCache):
        cache = TuneCache(cache)
    driver = _SearchDriver(
        space,
        cache,
        seed,
        validate,
        workers,
        budget,
        deadline=deadline,
        retries=retries,
        injector=injector,
    )
    try:
        interrupted = False
        try:
            with span("tune.search", kernel=kernel, strategy=strategy):
                if strategy == "exhaustive":
                    driver.run_exhaustive()
                elif strategy == "random":
                    driver.run_random()
                else:
                    driver.run_greedy()
        except KeyboardInterrupt:
            interrupted = True
        if interrupted:
            partial = None
            try:
                partial = driver.finish(strategy, interrupted=True)
            except ScheduleError:
                pass  # default never scored: nothing to report
            raise SearchInterrupted(
                f"tuning {kernel} interrupted after "
                f"{len(driver.ordered)} candidates",
                partial=partial,
            )
        result = driver.finish(strategy)
        if store is not None:
            store.put("schedule", store_key, result.best.to_json())
        return result
    finally:
        driver.pool.close()
        cache.save()


__all__ = [
    "STRATEGIES",
    "CandidateOutcome",
    "SearchInterrupted",
    "TuneResult",
    "evaluate_config",
    "tune_kernel",
]
