"""Crash-safe persistent cycle cache for schedule-space search.

Cycle counts on the simulator are deterministic: the engine's timing
model is data-independent, so one (kernel, shape, schedule config,
engine version) quadruple always scores the same.  That makes tuning
perfectly cacheable — repeated tuner runs, CI smoke jobs, and network-
wide sweeps only pay for configs they have never measured.

The store is a flat JSON file (schema 2)::

    {"schema": 2,
     "entries": {"<key>": <cycles>,
                 "<key>": {"fault": {"kind": "compile", ...}}, ...}}

A *failed* config is cached as its structured
:class:`~repro.tune.faults.Fault` — kind, stage, message, attempt
count — never as a bare ``null``, so reruns skip it with full
provenance.  Only **deterministic** faults (compile / verify / sim)
are persisted; transient ones (worker crashes, timeouts) are not,
because a later run on a healthier machine may well succeed.  Schema-1
files (``null`` failures) migrate on load: the ``null`` becomes an
``unknown``-kind fault.  The engine version is part of every key — a
timing-model change silently starts a fresh keyspace instead of
serving stale cycles.

Durability guarantees:

* **corruption is quarantined, never silently eaten** — an unreadable
  file is renamed to ``<path>.corrupt`` with a warning, so the bytes
  survive for inspection and the next save cannot clobber the only
  evidence;
* **merge-on-save** — ``save()`` takes an exclusive ``flock`` on a
  sidecar lock file, re-reads the store, unions the on-disk entries
  with this process's, fsyncs, and atomically renames.  Two tuner
  processes sharing one store therefore *union* their work instead of
  last-writer-wins clobbering;
* **checkpointing** — with ``checkpoint_every=N`` the cache persists
  itself every N new measurements, so an interrupt loses at most one
  batch of work;
* **abnormal-exit hygiene** — pid-tagged temp files abandoned by a
  SIGKILLed writer are swept on the next load/save (the embedded pid
  proves ownership), and a leftover ``.lock`` file never blocks the
  next run: the kernel releases a dead process's ``flock``
  automatically.
"""

from __future__ import annotations

import json
import os
import threading
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Sequence

from ..snitch.engine import ENGINE_VERSION
from .faults import Fault, UnknownFault
from .schedule import ScheduleConfig

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

#: Internal miss sentinel (a cached failure is a *hit* with a fault).
_MISS = object()


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # someone else's live process
        return True
    except OSError:
        return False
    return True


def _sweep_stale_tmp(path: Path) -> None:
    """Remove abandoned ``<name>.<pid>.tmp`` siblings of ``path``.

    A SIGKILLed (or OOM-killed) writer leaves its pid-tagged temp file
    behind; since the pid names the owner, a dead pid proves the file
    is garbage.  The sidecar ``.lock`` file needs no such sweep — the
    kernel drops a dead process's ``flock`` automatically, so a
    leftover lock file can never block the next run (and unlinking it
    would race live lockers onto different inodes).
    """
    prefix = path.name + "."
    try:
        siblings = list(path.parent.iterdir())
    except OSError:
        return
    for candidate in siblings:
        name = candidate.name
        if not (name.startswith(prefix) and name.endswith(".tmp")):
            continue
        pid_text = name[len(prefix) : -len(".tmp")]
        if not pid_text.isdigit() or _pid_alive(int(pid_text)):
            continue
        try:
            candidate.unlink()
        except OSError:
            pass


@contextmanager
def _exclusive_lock(path: Path):
    """Advisory exclusive lock on ``<path>.lock`` (no-op sans fcntl)."""
    if fcntl is None:
        yield
        return
    lock_path = path.with_suffix(path.suffix + ".lock")
    with open(lock_path, "w") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


def _parse_entries(payload) -> dict[str, int | Fault] | None:
    """Entries of a schema-1 or schema-2 payload; None if unreadable.

    Schema-1 ``null`` failures migrate to an ``unknown`` fault (the
    old format recorded no provenance).  Individually malformed
    entries are dropped; a structurally alien payload returns None so
    the caller can quarantine the file.
    """
    if not isinstance(payload, dict):
        return None
    raw = payload.get("entries")
    if not isinstance(raw, dict):
        return None
    schema = payload.get("schema")
    entries: dict[str, int | Fault] = {}
    if schema == 1:
        for key, cycles in raw.items():
            if cycles is None:
                entries[str(key)] = UnknownFault(
                    message=(
                        "schema-1 cached failure (no provenance "
                        "recorded)"
                    ),
                    candidate=None,
                )
            elif isinstance(cycles, int) and not isinstance(cycles, bool):
                entries[str(key)] = cycles
        return entries
    if schema == TuneCache.SCHEMA:
        for key, value in raw.items():
            if isinstance(value, bool):
                continue
            if isinstance(value, int):
                entries[str(key)] = value
            elif isinstance(value, dict):
                try:
                    entries[str(key)] = Fault.from_json(value["fault"])
                except (KeyError, ValueError):
                    continue
        return entries
    return None


class TuneCache:
    """Thread-safe (kernel, shape, config, engine) -> cycles store."""

    SCHEMA = 2

    def __init__(
        self,
        path: str | Path | None = None,
        checkpoint_every: int | None = None,
    ):
        #: Backing file; None = in-memory only (still deduplicates
        #: within one tuning run).
        self.path = Path(path) if path is not None else None
        #: Auto-save after this many new measurements (None = only on
        #: explicit :meth:`save`).
        self.checkpoint_every = checkpoint_every
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: dict[str, int | Fault] = {}
        self._dirty = False
        self._puts_since_save = 0
        if self.path is not None:
            self._entries = self._load()

    def _load(self) -> dict[str, int | Fault]:
        _sweep_stale_tmp(self.path)
        try:
            text = self.path.read_text()
        except OSError:
            return {}  # missing file: a fresh store
        except ValueError:  # undecodable bytes: corrupt
            self._quarantine()
            return {}
        try:
            payload = json.loads(text)
        except ValueError:
            payload = None
        entries = _parse_entries(payload)
        if entries is None:
            self._quarantine()
            return {}
        return entries

    def _quarantine(self) -> None:
        """Set a corrupt store aside as ``<path>.corrupt`` + warn."""
        corrupt = self.path.with_suffix(self.path.suffix + ".corrupt")
        try:
            self.path.replace(corrupt)
            where = str(corrupt)
        except OSError:
            where = "(quarantine rename failed; file left in place)"
        warnings.warn(
            f"tune cache {self.path} is corrupt; quarantined to "
            f"{where} and starting from an empty store",
            RuntimeWarning,
            stacklevel=4,
        )

    @staticmethod
    def key(
        kernel: str,
        sizes: Sequence[int],
        config: ScheduleConfig,
        engine_version: int = ENGINE_VERSION,
    ) -> str:
        """The canonical cache key of one measurement."""
        shape = "x".join(str(int(s)) for s in sizes)
        return f"{kernel}/{shape}/{config.key()}/engine={engine_version}"

    def lookup(self, key: str) -> tuple[bool, int | None, Fault | None]:
        """(hit, cycles, fault).  A recorded failure is a hit with a
        structured fault and ``cycles is None``."""
        with self._lock:
            value = self._entries.get(key, _MISS)
            if value is _MISS:
                self.misses += 1
                return False, None, None
            self.hits += 1
            if isinstance(value, Fault):
                return True, None, value
            return True, value, None

    def put(self, key: str, cycles: int | None) -> None:
        """Record a measurement.

        ``None`` (the legacy failure form) is upgraded to an
        ``unknown`` fault; prefer :meth:`put_failure` with a real one.
        """
        if cycles is None:
            self.put_failure(
                key,
                UnknownFault(message="recorded failure (no provenance)"),
            )
            return
        self._store(key, cycles)

    def put_failure(self, key: str, fault: Fault) -> None:
        """Record a config's structured failure."""
        self._store(key, fault)

    def _store(self, key: str, value: int | Fault) -> None:
        with self._lock:
            self._entries[key] = value
            self._dirty = True
            self._puts_since_save += 1
            if (
                self.checkpoint_every is not None
                and self._puts_since_save >= self.checkpoint_every
                and self.path is not None
            ):
                self._save_locked()

    def __len__(self) -> int:
        return len(self._entries)

    def save(self) -> None:
        """Merge-union persist the store (no-op when in-memory/clean).

        Concurrency-safe: under an exclusive file lock the current
        on-disk entries are re-read and unioned with this process's
        (ours win on key collisions — the oracle is deterministic, so
        collisions agree anyway), then written through a
        fsync + atomic-rename sequence.
        """
        if self.path is None:
            return
        with self._lock:
            self._save_locked()

    def _save_locked(self) -> None:
        if not self._dirty:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with _exclusive_lock(self.path):
            # Merge-on-save: union entries another process persisted
            # since our load, instead of last-writer-wins clobbering.
            try:
                disk = _parse_entries(json.loads(self.path.read_text()))
            except (OSError, ValueError):
                disk = None
            if disk:
                merged = dict(disk)
                merged.update(self._entries)
                self._entries = merged
            serialized = {
                key: (
                    {"fault": value.to_json()}
                    if isinstance(value, Fault)
                    else value
                )
                for key, value in sorted(self._entries.items())
            }
            payload = {"schema": self.SCHEMA, "entries": serialized}
            tmp = self.path.with_suffix(
                f"{self.path.suffix}.{os.getpid()}.tmp"
            )
            with open(tmp, "w") as handle:
                handle.write(json.dumps(payload, indent=2) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            tmp.replace(self.path)
            try:
                dir_fd = os.open(self.path.parent, os.O_RDONLY)
                try:
                    os.fsync(dir_fd)
                finally:
                    os.close(dir_fd)
            except OSError:  # pragma: no cover - fs without dir fsync
                pass
            _sweep_stale_tmp(self.path)
        self._dirty = False
        self._puts_since_save = 0


__all__ = ["TuneCache"]
