"""Persistent cycle cache for schedule-space search.

Cycle counts on the simulator are deterministic: the engine's timing
model is data-independent, so one (kernel, shape, schedule config,
engine version) quadruple always scores the same.  That makes tuning
perfectly cacheable — repeated tuner runs, CI smoke jobs, and network-
wide sweeps only pay for configs they have never measured.

The store is a flat JSON file::

    {"schema": 1, "entries": {"<key>": <cycles | null>, ...}}

``null`` records a config that *failed* (did not compile, or produced
wrong results) so reruns skip it without recompiling.  The engine
version is part of every key — a timing-model change silently starts
a fresh keyspace instead of serving stale cycles.  A missing or
corrupt file is treated as empty, never an error.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Sequence

from ..snitch.engine import ENGINE_VERSION
from .schedule import ScheduleConfig

#: Internal miss sentinel (a cached failure is a *hit* with None).
_MISS = object()


class TuneCache:
    """Thread-safe (kernel, shape, config, engine) -> cycles store."""

    SCHEMA = 1

    def __init__(self, path: str | Path | None = None):
        #: Backing file; None = in-memory only (still deduplicates
        #: within one tuning run).
        self.path = Path(path) if path is not None else None
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: dict[str, int | None] = {}
        self._dirty = False
        if self.path is not None:
            self._entries = self._load()

    def _load(self) -> dict[str, int | None]:
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return {}
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != self.SCHEMA
            or not isinstance(payload.get("entries"), dict)
        ):
            return {}
        entries: dict[str, int | None] = {}
        for key, cycles in payload["entries"].items():
            if cycles is None or isinstance(cycles, int):
                entries[str(key)] = cycles
        return entries

    @staticmethod
    def key(
        kernel: str,
        sizes: Sequence[int],
        config: ScheduleConfig,
        engine_version: int = ENGINE_VERSION,
    ) -> str:
        """The canonical cache key of one measurement."""
        shape = "x".join(str(int(s)) for s in sizes)
        return f"{kernel}/{shape}/{config.key()}/engine={engine_version}"

    def lookup(self, key: str) -> tuple[bool, int | None]:
        """(hit, cycles).  A recorded failure is a hit with None."""
        with self._lock:
            cycles = self._entries.get(key, _MISS)
            if cycles is _MISS:
                self.misses += 1
                return False, None
            self.hits += 1
            return True, cycles

    def put(self, key: str, cycles: int | None) -> None:
        """Record a measurement (or a failure as None)."""
        with self._lock:
            self._entries[key] = cycles
            self._dirty = True

    def __len__(self) -> int:
        return len(self._entries)

    def save(self) -> None:
        """Atomically persist the store (no-op when in-memory/clean)."""
        if self.path is None:
            return
        with self._lock:
            if not self._dirty:
                return
            payload = {"schema": self.SCHEMA, "entries": self._entries}
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            tmp.write_text(json.dumps(payload, indent=2) + "\n")
            tmp.replace(self.path)
            self._dirty = False


__all__ = ["TuneCache"]
