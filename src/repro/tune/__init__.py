"""Schedule-space autotuning (cycle-oracle search).

The scheduling decisions the compiler normally makes heuristically —
iteration order (``interchange``), unroll-and-jam factor, cluster
core count — are all expressible as pass options, and the predecoded
simulator is fast enough to *measure* every choice instead of
predicting it.  This package closes that loop:

* :mod:`repro.tune.schedule` — :class:`ScheduleConfig` (one point in
  the schedule space, round-trippable as a pipeline-spec string),
  :class:`ScheduleSpace` (the legal configs of one kernel) and
  :class:`TunedSchedule` (a persisted winning schedule that
  ``api``/``kernels.networks`` can apply);
* :mod:`repro.tune.search` — the search driver: exhaustive, budgeted
  random, and greedy coordinate-descent strategies, each candidate
  compiled through the ``Compiler`` facade and scored by cycles on the
  predecoded engine (optionally fanned out across worker processes);
* :mod:`repro.tune.cache` — a persistent JSON cycle cache keyed by
  (kernel, shape, config, engine version) so repeated tuning runs and
  CI are incremental.

See ``docs/TUNING.md`` and ``python -m repro.tools.kernel_tuner``.
"""

from .cache import TuneCache
from .schedule import (
    ScheduleConfig,
    ScheduleError,
    ScheduleSpace,
    TunedSchedule,
    load_schedules,
    save_schedules,
    schedule_table,
)
from .search import CandidateOutcome, TuneResult, evaluate_config, tune_kernel

__all__ = [
    "CandidateOutcome",
    "ScheduleConfig",
    "ScheduleError",
    "ScheduleSpace",
    "TuneCache",
    "TuneResult",
    "TunedSchedule",
    "evaluate_config",
    "load_schedules",
    "save_schedules",
    "schedule_table",
    "tune_kernel",
]
