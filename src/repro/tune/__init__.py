"""Schedule-space autotuning (cycle-oracle search).

The scheduling decisions the compiler normally makes heuristically —
iteration order (``interchange``), unroll-and-jam factor, cluster
core count — are all expressible as pass options, and the predecoded
simulator is fast enough to *measure* every choice instead of
predicting it.  This package closes that loop:

* :mod:`repro.tune.schedule` — :class:`ScheduleConfig` (one point in
  the schedule space, round-trippable as a pipeline-spec string),
  :class:`ScheduleSpace` (the legal configs of one kernel) and
  :class:`TunedSchedule` (a persisted winning schedule that
  ``api``/``kernels.networks`` can apply);
* :mod:`repro.tune.search` — the search driver: exhaustive, budgeted
  random, and greedy coordinate-descent strategies, each candidate
  compiled through the ``Compiler`` facade and scored by cycles on the
  predecoded engine (optionally fanned out across worker processes);
* :mod:`repro.tune.cache` — a crash-safe persistent JSON cycle cache
  keyed by (kernel, shape, config, engine version) so repeated tuning
  runs and CI are incremental (corrupt files quarantine, concurrent
  savers merge);
* :mod:`repro.tune.faults` — the structured fault taxonomy every
  evaluation failure is classified into, plus the deterministic
  fault-injection harness the chaos tests drive;
* :mod:`repro.tune.workers` — :class:`HardenedPool`, the
  retry/timeout/respawn/degrade worker pool candidate evaluation runs
  on.

See ``docs/TUNING.md``, ``docs/ROBUSTNESS.md`` and
``python -m repro.tools.kernel_tuner``.
"""

from .cache import TuneCache
from .faults import (
    FAULT_KINDS,
    CancelledFault,
    CompileFault,
    Fault,
    FaultInjector,
    InjectedError,
    Injection,
    OverloadFault,
    SimFault,
    TimeoutFault,
    TransportFault,
    UnknownFault,
    VerifyFault,
    WorkerCrash,
    classify_error,
)
from .schedule import (
    ScheduleConfig,
    ScheduleError,
    ScheduleSpace,
    TunedSchedule,
    load_schedules,
    save_schedules,
    schedule_table,
)
from .search import (
    CandidateOutcome,
    SearchInterrupted,
    TuneResult,
    evaluate_config,
    tune_kernel,
)
from .workers import HardenedPool, PoolConfig

__all__ = [
    "FAULT_KINDS",
    "CancelledFault",
    "CandidateOutcome",
    "CompileFault",
    "Fault",
    "FaultInjector",
    "HardenedPool",
    "InjectedError",
    "Injection",
    "OverloadFault",
    "PoolConfig",
    "ScheduleConfig",
    "ScheduleError",
    "ScheduleSpace",
    "SearchInterrupted",
    "SimFault",
    "TimeoutFault",
    "TransportFault",
    "TuneCache",
    "TuneResult",
    "TunedSchedule",
    "UnknownFault",
    "VerifyFault",
    "WorkerCrash",
    "classify_error",
    "evaluate_config",
    "load_schedules",
    "save_schedules",
    "schedule_table",
    "tune_kernel",
]
