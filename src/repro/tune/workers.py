"""Hardened worker pool for candidate evaluation.

PR 5's parallel evaluation was a bare ``ProcessPoolExecutor.map``:
one crashed fork worker aborted the whole search with
``BrokenProcessPool``, a hung candidate blocked its batch forever, and
there was no retry.  :class:`HardenedPool` replaces it with the
retry/timeout/degradation semantics of a real evaluation service:

* **watchdog timeouts** — every in-flight candidate has a wall-clock
  deadline; a worker that blows it is SIGKILLed and the candidate
  recorded as a :class:`~repro.tune.faults.TimeoutFault` (or retried —
  timeouts are transient);
* **bounded retry with exponential backoff** — transient faults
  (worker crashes, timeouts) are re-dispatched up to ``retries`` extra
  attempts, each attempt waiting ``backoff * 2**(attempt-1)`` seconds;
* **automatic respawn** — a dead worker is replaced and the batch
  continues; only the in-flight candidate is affected, and no
  pool-infrastructure exception ever escapes to the caller;
* **graceful degradation to serial** — when fork is unavailable, or
  workers keep dying (more than ``respawn_limit`` respawns), the pool
  kills its workers and finishes the remaining candidates in-process,
  relying on the engine's cooperative deadline
  (:class:`~repro.snitch.machine.DeadlineExceeded`) for hang
  protection.

The pool is task-agnostic: ``task_fn(task) -> (cycles, fault_json)``
must never raise (the search's measurement function classifies its own
exceptions into faults); ``decorate(payload, seq, attempt, serial)``
is called at every dispatch so the fault-injection harness can attach
per-attempt injections.  Workers are fork-started (they inherit the
loaded package; platforms without fork run serially) and communicate
over one pipe each, which is what makes per-worker kill-and-respawn
possible at all — a shared queue cannot attribute a death to a task.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait

from .faults import Fault, TimeoutFault, WorkerCrash

#: Fork-start workers inherit the already-imported package (no
#: per-worker re-import) and need no picklable entry point.  Platforms
#: without fork evaluate serially.
_FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()

#: Longest the scheduler sleeps in one ``wait`` call — bounds how late
#: a watchdog kill can fire after a deadline passes.
_MAX_POLL = 0.25


@dataclass(frozen=True)
class PoolConfig:
    """Fault-tolerance policy of one :class:`HardenedPool`."""

    #: Worker processes; <= 1 evaluates in-process.
    workers: int = 1
    #: Per-candidate wall-clock deadline in seconds (None = no limit).
    deadline: float | None = None
    #: Extra dispatch attempts for *retryable* faults.
    retries: int = 2
    #: Base backoff before attempt N+1: ``backoff * 2**(N-1)`` seconds.
    backoff: float = 0.05
    #: Worker deaths (crashes + watchdog kills) tolerated before the
    #: pool degrades to serial evaluation for the rest of the run.
    respawn_limit: int = 4


def _default_decorate(payload, seq, attempt, serial):
    return (payload, None)


def _worker_main(conn, task_fn) -> None:
    """Worker loop: recv task, evaluate, send result, repeat.

    ``task_fn`` classifies its own failures; anything that still
    escapes (a bug, an injected exception outside the measure path) is
    reported as a structured worker fault rather than poisoning the
    pipe protocol.  A ``None`` task or a closed pipe shuts the worker
    down.
    """
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        try:
            result = task_fn(task)
        except KeyboardInterrupt:
            return
        except BaseException as error:  # belt: never break the protocol
            result = (
                None,
                WorkerCrash(
                    message=(
                        "worker evaluation escaped fault classification: "
                        f"{type(error).__name__}: {error}"
                    ),
                    stage="worker",
                ).to_json(),
            )
        try:
            conn.send(result)
        except (BrokenPipeError, OSError):
            return


class _ResultSink(dict):
    """A results dict that notifies the caller on every completion."""

    def __init__(self, callback=None):
        super().__init__()
        self._callback = callback

    def __setitem__(self, pos, result):
        super().__setitem__(pos, result)
        if self._callback is not None:
            self._callback(pos, result)


@dataclass
class _Item:
    """One candidate's measurement work, across attempts."""

    pos: int  #: index into the caller's task list (result slot)
    seq: int  #: global measurement sequence number (injection key)
    label: str  #: candidate provenance (config key)
    payload: object
    attempts: int = 0  #: dispatch attempts started so far
    not_before: float = 0.0  #: backoff gate for the next dispatch


class _Worker:
    """One fork-started worker process and its pipe."""

    __slots__ = ("process", "conn", "item", "deadline_at")

    def __init__(self, ctx, task_fn):
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_worker_main, args=(child_conn, task_fn), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.item: _Item | None = None
        self.deadline_at: float | None = None

    def kill(self) -> None:
        try:
            self.process.kill()
        except (OSError, ValueError):
            pass
        self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:
            pass


class HardenedPool:
    """Fault-tolerant fan-out over worker processes (see module doc).

    One pool serves a whole search (batches reuse warm workers); call
    :meth:`close` when done.  :attr:`events` accumulates a human-
    readable log of every respawn, retry, watchdog kill, and
    degradation — the search result surfaces it.
    """

    def __init__(
        self,
        task_fn,
        config: PoolConfig,
        decorate=None,
    ):
        self.task_fn = task_fn
        self.config = config
        self.decorate = decorate or _default_decorate
        self.events: list[str] = []
        self.degraded = config.workers > 1 and not _FORK_AVAILABLE
        if self.degraded:
            self.events.append(
                "fork unavailable on this platform: evaluating serially"
            )
        self._ctx = (
            multiprocessing.get_context("fork") if _FORK_AVAILABLE else None
        )
        self._workers: list[_Worker] = []
        self._respawns = 0

    @property
    def parallel(self) -> bool:
        return (
            self.config.workers > 1
            and self._ctx is not None
            and not self.degraded
        )

    def prestart(self) -> None:
        """Fork the full worker complement now (idempotent).

        Workers normally fork lazily on the first parallel
        :meth:`map`.  A long-lived server must fork them *before* it
        accepts connections: a child forked mid-connection inherits
        every open connection fd, and a same-process peer then never
        sees EOF on a connection it has closed.  No-op when the pool
        would run serially anyway.
        """
        if not self.parallel:
            return
        while len(self._workers) < self.config.workers:
            self._spawn()

    # -- serial path ---------------------------------------------------------

    def _run_serial(self, item: _Item):
        """Evaluate one item in-process, honouring retry policy."""
        while True:
            item.attempts += 1
            task = self.decorate(item.payload, item.seq, item.attempts, True)
            cycles, fault = self.task_fn(task)
            if fault is None:
                return cycles, None
            fault["attempts"] = item.attempts
            if fault.get("retryable") and item.attempts <= self.config.retries:
                self.events.append(
                    f"retry {item.label} (attempt {item.attempts + 1}): "
                    f"{fault.get('kind')}"
                )
                time.sleep(
                    self.config.backoff * (2 ** (item.attempts - 1))
                )
                continue
            return None, fault

    # -- parallel plumbing ---------------------------------------------------

    def _spawn(self) -> _Worker | None:
        worker = _Worker(self._ctx, self.task_fn)
        self._workers.append(worker)
        return worker

    def _discard(self, worker: _Worker) -> None:
        worker.kill()
        if worker in self._workers:
            self._workers.remove(worker)

    def _note_death(self, reason: str) -> None:
        self._respawns += 1
        if self._respawns > self.config.respawn_limit:
            self.degraded = True
            self.events.append(
                f"pool died repeatedly ({self._respawns} respawns, "
                f"limit {self.config.respawn_limit}); degrading to "
                f"serial evaluation [{reason}]"
            )
        else:
            self.events.append(f"worker respawn ({reason})")

    def _finish_or_retry(
        self,
        item: _Item,
        fault: Fault,
        results: dict,
        retry_queue: deque,
        now: float,
    ) -> None:
        """Apply retry policy to a parent-detected fault."""
        record = fault.with_attempts(item.attempts).to_json()
        if fault.retryable and item.attempts <= self.config.retries:
            item.not_before = now + self.config.backoff * (
                2 ** (item.attempts - 1)
            )
            retry_queue.append(item)
            self.events.append(
                f"retry {item.label} (attempt {item.attempts + 1}): "
                f"{fault.kind}"
            )
        else:
            results[item.pos] = (None, record)

    def map(self, tasks, on_result=None) -> list:
        """Evaluate ``tasks`` (``(seq, label, payload)`` triples);
        returns one ``(cycles, fault_json)`` per task, in order.

        Never raises on worker failure — every task gets a result or a
        structured fault.  ``KeyboardInterrupt`` propagates (after the
        workers are torn down) so the driver can checkpoint;
        ``on_result(pos, result)`` fires as each task finishes, letting
        the caller bank completed work before such an abort.
        """
        items = [
            _Item(pos=pos, seq=seq, label=label, payload=payload)
            for pos, (seq, label, payload) in enumerate(tasks)
        ]
        results: dict[int, tuple] = _ResultSink(on_result)
        if self.parallel and len(items) > 1:
            try:
                self._map_parallel(items, results)
            except KeyboardInterrupt:
                self.close()
                raise
        # Serial path, and the tail of a degraded parallel run.
        for item in items:
            if item.pos not in results:
                results[item.pos] = self._run_serial(item)
        return [results[pos] for pos in range(len(items))]

    def _map_parallel(self, items, results) -> None:
        config = self.config
        pending = deque(items)
        retry_queue: deque = deque()
        while len(results) < len(items):
            if self.degraded:
                self._teardown_workers()
                return  # map() drains the rest serially
            now = time.monotonic()
            while retry_queue and retry_queue[0].not_before <= now:
                pending.append(retry_queue.popleft())
            in_flight = sum(1 for w in self._workers if w.item is not None)
            want = min(
                config.workers,
                in_flight + len(pending) + len(retry_queue),
            )
            while len(self._workers) < want:
                self._spawn()
            # Dispatch to idle workers.
            for worker in list(self._workers):
                if worker.item is not None or not pending:
                    continue
                item = pending.popleft()
                item.attempts += 1
                task = self.decorate(
                    item.payload, item.seq, item.attempts, False
                )
                try:
                    worker.conn.send(task)
                except (BrokenPipeError, OSError):
                    # Died while idle: respawn, re-dispatch next round.
                    item.attempts -= 1
                    pending.appendleft(item)
                    self._discard(worker)
                    self._note_death("worker died while idle")
                    continue
                worker.item = item
                worker.deadline_at = (
                    now + config.deadline
                    if config.deadline is not None
                    else None
                )
            busy = [w for w in self._workers if w.item is not None]
            if not busy:
                if pending or retry_queue:
                    # Waiting out a backoff window (or all dispatches
                    # failed this round).
                    time.sleep(
                        min(
                            _MAX_POLL,
                            max(
                                0.0,
                                min(
                                    (
                                        i.not_before
                                        for i in retry_queue
                                    ),
                                    default=now,
                                )
                                - now,
                            ),
                        )
                        or 0.01
                    )
                    continue
                return
            timeout = _MAX_POLL
            for worker in busy:
                if worker.deadline_at is not None:
                    timeout = min(timeout, worker.deadline_at - now)
            ready = _connection_wait(
                [w.conn for w in busy], timeout=max(0.0, timeout)
            )
            by_conn = {w.conn: w for w in busy}
            now = time.monotonic()
            for conn in ready:
                worker = by_conn.get(conn)
                if worker is None or worker.item is None:
                    continue
                item = worker.item
                try:
                    cycles, fault = conn.recv()
                except (EOFError, OSError):
                    # The worker died mid-measure (SIGKILL, OOM...).
                    worker.item = None
                    self._discard(worker)
                    self._note_death(
                        f"worker crashed measuring {item.label}"
                    )
                    self._finish_or_retry(
                        item,
                        WorkerCrash(
                            message=(
                                "worker process died before reporting "
                                "a result"
                            ),
                            candidate=item.label,
                            stage="worker",
                        ),
                        results,
                        retry_queue,
                        now,
                    )
                    continue
                worker.item = None
                if fault is not None:
                    fault = Fault.from_json(fault)
                    self._finish_or_retry(
                        item, fault, results, retry_queue, now
                    )
                else:
                    results[item.pos] = (cycles, None)
            # Watchdog: kill workers that blew their deadline.
            for worker in list(self._workers):
                item = worker.item
                if (
                    item is None
                    or worker.deadline_at is None
                    or now <= worker.deadline_at
                ):
                    continue
                worker.item = None
                self._discard(worker)
                self._note_death(
                    f"watchdog killed worker: {item.label} exceeded "
                    f"{config.deadline:g}s deadline"
                )
                self._finish_or_retry(
                    item,
                    TimeoutFault(
                        message=(
                            f"exceeded {config.deadline:g}s wall-clock "
                            "deadline; worker killed by watchdog"
                        ),
                        candidate=item.label,
                        stage="simulate",
                    ),
                    results,
                    retry_queue,
                    now,
                )

    def _teardown_workers(self) -> None:
        for worker in self._workers:
            worker.kill()
        self._workers = []

    def close(self) -> None:
        """Shut down worker processes (idempotent)."""
        self._teardown_workers()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


__all__ = ["HardenedPool", "PoolConfig", "_FORK_AVAILABLE"]
