"""The schedule space: what a tuner is allowed to choose.

A *schedule* for a kernel is one point in the cross product of

* an interchange permutation of the iteration space (legal = keeps the
  parallel-then-reduction partition, see
  :func:`repro.transforms.interchange.legal_interchange_permutations`);
* an unroll-and-jam factor (legal = divides the bound of the chosen
  interleave dim, see
  :func:`repro.transforms.unroll_and_jam.legal_unroll_factors`);
* a cluster core count (legal = any, for kernels with a known
  row-partitioning; surplus cores simply idle).

:class:`ScheduleConfig` names one such point and renders it as a
textual pipeline spec, so every tuned schedule round-trips through the
ordinary ``Compiler``/CLI surface.  :class:`ScheduleSpace` enumerates
the legal configs of a concrete kernel by probing its
``memref_stream.generic`` after conversion.  :class:`TunedSchedule`
is the persisted artifact a search produces: JSON-serialisable and
directly appliable to ``api.compile_linalg`` or a network layer list.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Sequence
import json

from ..dialects import memref_stream
from ..kernels.builders import KERNEL_BUILDERS
from ..snitch.engine import ENGINE_VERSION
from ..transforms.interchange import (
    format_permutation,
    legal_interchange_permutations,
)
from ..transforms.pipelines import build_pipeline, scheduled_pipeline_spec
from ..transforms.unroll_and_jam import (
    legal_unroll_factors,
    select_unroll_factor,
)


class ScheduleError(ValueError):
    """An unknown kernel, illegal config, or malformed artifact."""


@dataclass(frozen=True)
class ScheduleConfig:
    """One point in a kernel's schedule space.

    ``None`` always means "the compiler's own default": no interchange
    pass, the automatic unroll heuristic.  ``num_cores == 1`` is a
    plain single-core run; more cores row-partition the kernel across
    a cluster and score the slowest core.
    """

    permutation: tuple[int, ...] | None = None
    unroll_factor: int | None = None
    num_cores: int = 1

    @property
    def is_default(self) -> bool:
        """Whether this is exactly the untuned compiler behaviour."""
        return (
            self.permutation is None
            and self.unroll_factor is None
            and self.num_cores == 1
        )

    def pipeline_spec(self) -> str:
        """The schedule as a round-trippable textual pipeline spec."""
        return scheduled_pipeline_spec(
            permutation=(
                format_permutation(self.permutation)
                if self.permutation is not None
                else None
            ),
            unroll_factor=self.unroll_factor,
        )

    def key(self) -> str:
        """Canonical short form, used in cache keys and reports."""
        perm = (
            format_permutation(self.permutation)
            if self.permutation is not None
            else "id"
        )
        factor = (
            "auto" if self.unroll_factor is None else self.unroll_factor
        )
        return f"perm={perm}|factor={factor}|cores={self.num_cores}"

    def to_json(self) -> dict:
        return {
            "permutation": (
                list(self.permutation)
                if self.permutation is not None
                else None
            ),
            "unroll_factor": self.unroll_factor,
            "num_cores": self.num_cores,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ScheduleConfig":
        permutation = data.get("permutation")
        return cls(
            permutation=(
                tuple(int(d) for d in permutation)
                if permutation is not None
                else None
            ),
            unroll_factor=data.get("unroll_factor"),
            num_cores=int(data.get("num_cores", 1)),
        )


def resolve_kernel(kernel: str, sizes: Sequence[int]):
    """(builder, sizes) for a canonical kernel name, arity-checked."""
    try:
        builder, arity = KERNEL_BUILDERS[kernel]
    except KeyError:
        raise ScheduleError(
            f"unknown kernel {kernel!r} (known: "
            f"{', '.join(sorted(KERNEL_BUILDERS))})"
        ) from None
    if len(sizes) != arity:
        raise ScheduleError(
            f"kernel {kernel!r} takes {arity} sizes, got {len(sizes)}"
        )
    return builder, tuple(int(s) for s in sizes)


@dataclass(frozen=True)
class ClusterPlan:
    """How to row-partition one kernel across cluster cores."""

    #: (rows, cols) the partitioner splits.
    shape: tuple[int, int]
    #: Indices of array arguments offset per row chunk.
    row_parallel_args: tuple[int, ...]
    #: ``(chunk_rows, cols) -> (module, spec)`` for one core's share.
    chunk_builder: Callable


def cluster_plan(kernel: str, sizes: Sequence[int]) -> ClusterPlan | None:
    """The row-partitioning of a paper kernel, or None if unknown.

    Every Table 1 kernel is parallel over its output rows; the plans
    record which arguments are split (the rest broadcast) and how to
    build one core's chunk-sized kernel.  Halo'd inputs (conv/pool
    images with their two extra boundary rows) work because the offset
    is taken in *that operand's* row pitch.
    """
    from ..kernels import builders

    sizes = tuple(sizes)
    if kernel == "fill":
        n, m = sizes
        return ClusterPlan((n, m), (1,), builders.fill)
    if kernel == "sum":
        n, m = sizes
        return ClusterPlan((n, m), (0, 1, 2), builders.sum_kernel)
    if kernel == "relu":
        n, m = sizes
        return ClusterPlan((n, m), (0, 1), builders.relu)
    if kernel == "conv3x3":
        n, m = sizes
        return ClusterPlan(
            (n, m), (0, 2), lambda r, c: builders.conv3x3(r, c)
        )
    if kernel == "max_pool3x3":
        n, m = sizes
        return ClusterPlan((n, m), (0, 1), builders.max_pool3x3)
    if kernel == "sum_pool3x3":
        n, m = sizes
        return ClusterPlan((n, m), (0, 1), builders.sum_pool3x3)
    if kernel == "matmul":
        m_rows, k, n = sizes
        return ClusterPlan(
            (m_rows, n), (0, 2), lambda r, c: builders.matmul(r, k, n)
        )
    if kernel == "matmul_t":
        m_rows, k, n = sizes
        return ClusterPlan(
            (m_rows, n),
            (0, 2),
            lambda r, c: builders.matmul_transposed(r, k, n),
        )
    if kernel == "matvec":
        rows, cols = sizes
        return ClusterPlan((rows, cols), (1, 2), builders.matvec)
    return None


#: The probe pipeline: just enough lowering to see the scheduled
#: generic (explicit bounds, fill fused) without fixing any schedule.
_PROBE_SPEC = "convert-linalg-to-memref-stream,fuse-fill"


@dataclass(frozen=True)
class ScheduleSpace:
    """The legal schedule configs of one concrete kernel."""

    kernel: str
    builder: Callable
    sizes: tuple[int, ...]
    #: Iteration-space shape of the kernel's main generic.
    bounds: tuple[int, ...]
    iterator_types: tuple[str, ...]
    #: Per dim: whether every output varies along it (the unroll-and-
    #: jam candidate dims are the parallel ones among these).
    output_varying: tuple[bool, ...]
    #: Legal non-identity interchange permutations.
    permutations: tuple[tuple[int, ...], ...]
    core_counts: tuple[int, ...] = (1,)

    @classmethod
    def for_kernel(
        cls,
        kernel: str,
        sizes: Sequence[int],
        core_counts: Sequence[int] = (1,),
    ) -> "ScheduleSpace":
        """Probe a kernel and enumerate its legal schedule axes."""
        builder, sizes = resolve_kernel(kernel, sizes)
        core_counts = tuple(sorted(set(int(c) for c in core_counts)))
        if not core_counts or core_counts[0] < 1:
            raise ScheduleError("core counts must be positive")
        if core_counts != (1,) and cluster_plan(kernel, sizes) is None:
            raise ScheduleError(
                f"kernel {kernel!r} has no known row-partitioning; "
                "cluster core count is not tunable for it"
            )
        module, _ = builder(*sizes)
        build_pipeline(_PROBE_SPEC, verify_each=False).run(module)
        generic = None
        for op in module.walk():
            if isinstance(op, memref_stream.GenericOp):
                if generic is None or len(op.bounds) > len(generic.bounds):
                    generic = op
        if generic is None:
            raise ScheduleError(
                f"kernel {kernel!r} lowers to no memref_stream.generic"
            )
        kinds = tuple(generic.iterator_types)
        bounds = tuple(generic.bounds)
        out_maps = generic.indexing_maps[len(generic.inputs) :]
        varying = tuple(
            all(
                any(d != 0 for d in amap.unit_deltas()[dim])
                for amap in out_maps
            )
            for dim in range(len(bounds))
        )
        identity = tuple(range(len(bounds)))
        permutations = tuple(
            perm
            for perm in legal_interchange_permutations(list(kinds))
            if perm != identity
        )
        return cls(
            kernel=kernel,
            builder=builder,
            sizes=sizes,
            bounds=bounds,
            iterator_types=kinds,
            output_varying=varying,
            permutations=permutations,
            core_counts=core_counts,
        )

    # -- axis enumeration -----------------------------------------------------

    def unroll_dim_for(
        self, permutation: tuple[int, ...] | None
    ) -> int | None:
        """The dim unroll-and-jam would pick after an interchange.

        Mirrors ``select_unroll_dim``: the innermost parallel dim (in
        the permuted order) along which every output varies.  Returns
        the *old* dim index (whose bound is the factor's legality
        base), or None for pure-parallel kernels.
        """
        if "reduction" not in self.iterator_types:
            return None  # the pass only interleaves reductions
        order = permutation or tuple(range(len(self.bounds)))
        for old in reversed(order):
            if (
                self.iterator_types[old] == "parallel"
                and self.output_varying[old]
            ):
                return old
        return None

    def unroll_factors_for(
        self, permutation: tuple[int, ...] | None
    ) -> tuple[int | None, ...]:
        """Legal factor choices given an interchange: ``None`` (the
        automatic heuristic) plus every other exact divisor <= the
        register-pressure cap."""
        dim = self.unroll_dim_for(permutation)
        if dim is None:
            return (None,)
        bound = self.bounds[dim]
        heuristic = select_unroll_factor(bound)
        return (None,) + tuple(
            f for f in legal_unroll_factors(bound) if f != heuristic
        )

    def configs(self) -> Iterator[ScheduleConfig]:
        """Every legal config, the compiler default first."""
        for permutation in (None,) + self.permutations:
            for factor in self.unroll_factors_for(permutation):
                for cores in self.core_counts:
                    yield ScheduleConfig(
                        permutation=permutation,
                        unroll_factor=factor,
                        num_cores=cores,
                    )

    def size(self) -> int:
        """Number of configs :meth:`configs` enumerates."""
        return sum(1 for _ in self.configs())


@dataclass(frozen=True)
class TunedSchedule:
    """A winning schedule, ready to persist and apply.

    ``pipeline_spec`` carries the *compile-time* schedule (interchange
    + unroll): pass it straight to ``api.compile_linalg(module,
    pipeline=...)`` (or the CLI's ``--pipeline``) to recompile the
    kernel with it.  A cluster core count is an *execution* choice a
    pipeline spec cannot express — it lives in ``config.num_cores``,
    and ``cycles`` for a multi-core winner is the cluster latency of
    running that spec row-partitioned across those cores (re-measure
    with ``evaluate_config``, or run via
    ``snitch.run_row_partitioned``); compiling the spec alone
    reproduces only the single-core schedule.
    """

    kernel: str
    sizes: tuple[int, ...]
    config: ScheduleConfig
    pipeline_spec: str
    cycles: int
    default_cycles: int
    engine_version: int = ENGINE_VERSION

    @property
    def speedup(self) -> float:
        """Default-schedule cycles over tuned cycles (>= 1.0)."""
        return self.default_cycles / self.cycles if self.cycles else 1.0

    def builder_key(self) -> tuple[str, tuple[int, ...]]:
        """(builder ``__name__``, sizes) — the key network layer
        compilation matches layers against."""
        builder, sizes = resolve_kernel(self.kernel, self.sizes)
        return builder.__name__, sizes

    def to_json(self) -> dict:
        return {
            "kernel": self.kernel,
            "sizes": list(self.sizes),
            "config": self.config.to_json(),
            "pipeline_spec": self.pipeline_spec,
            "cycles": self.cycles,
            "default_cycles": self.default_cycles,
            "engine_version": self.engine_version,
        }

    @classmethod
    def from_json(cls, data: dict) -> "TunedSchedule":
        try:
            return cls(
                kernel=data["kernel"],
                sizes=tuple(int(s) for s in data["sizes"]),
                config=ScheduleConfig.from_json(data["config"]),
                pipeline_spec=data["pipeline_spec"],
                cycles=int(data["cycles"]),
                default_cycles=int(data["default_cycles"]),
                engine_version=int(
                    data.get("engine_version", ENGINE_VERSION)
                ),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ScheduleError(
                f"malformed TunedSchedule record: {error}"
            ) from None


def save_schedules(path, schedules: Sequence[TunedSchedule]) -> None:
    """Write tuned schedules as a JSON artifact (atomic replace)."""
    payload = {
        "schema": 1,
        "schedules": [schedule.to_json() for schedule in schedules],
    }
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2) + "\n")
    tmp.replace(path)


def load_schedules(path) -> list[TunedSchedule]:
    """Read a tuned-schedule artifact written by :func:`save_schedules`."""
    try:
        payload = json.loads(Path(path).read_text())
        records = payload["schedules"]
    except (OSError, ValueError, KeyError) as error:
        raise ScheduleError(
            f"cannot load schedules from {path}: {error}"
        ) from None
    return [TunedSchedule.from_json(record) for record in records]


def schedule_table(
    schedules: Sequence[TunedSchedule],
) -> dict[tuple[str, tuple[int, ...]], str]:
    """(builder name, sizes) -> tuned pipeline spec.

    The mapping ``kernels.networks.compile_layers`` consumes to run a
    whole network with per-layer tuned schedules.  Multi-core
    schedules are rejected: network layers run single-core, so a
    cluster-tuned schedule's cycles are unreachable through a pipeline
    spec and silently applying its spec would claim a speedup the run
    cannot reproduce — re-tune with ``core_counts=(1,)`` for network
    use.
    """
    for schedule in schedules:
        if schedule.config.num_cores != 1:
            raise ScheduleError(
                f"{schedule.kernel} {'x'.join(map(str, schedule.sizes))}"
                f": schedule was tuned on {schedule.config.num_cores} "
                "cores; a pipeline spec cannot express cluster "
                "partitioning, so it cannot be applied to a "
                "single-core network layer"
            )
    return {
        schedule.builder_key(): schedule.pipeline_spec
        for schedule in schedules
    }


__all__ = [
    "ClusterPlan",
    "ScheduleConfig",
    "ScheduleError",
    "ScheduleSpace",
    "TunedSchedule",
    "cluster_plan",
    "load_schedules",
    "resolve_kernel",
    "save_schedules",
    "schedule_table",
]
