"""Structured fault taxonomy and deterministic fault injection.

Candidate evaluation is a small distributed system: a compile, a
simulation, and a numpy check running in a worker process that can be
killed, hang, or raise.  Before this module, every failure collapsed
into a bare string (and a bare ``null`` in the persistent cache) —
indistinguishable, unretryable, and without provenance.  Here each
failure becomes a :class:`Fault` value with

* a **kind** (``compile``, ``verify``, ``sim``, ``timeout``,
  ``worker-crash``, ``unknown`` — plus the service-lifecycle kinds
  ``overload``, ``transport``, ``cancelled`` used by
  :mod:`repro.service`) that names which layer failed;
* a **retryability** class: deterministic faults (a config that does
  not compile will never compile) are final, transient faults (a
  killed worker, a wall-clock timeout on a loaded machine) earn a
  bounded retry with exponential backoff in
  :class:`~repro.tune.workers.HardenedPool`;
* **provenance**: the candidate's config key, the evaluation stage,
  and how many dispatch attempts were consumed.

Faults round-trip through JSON so they thread unchanged through
:class:`~repro.tune.search.CandidateOutcome`, the schema-2
:class:`~repro.tune.cache.TuneCache` (failures are cached as faults,
never as ``null``), and tuning artifacts.

The second half is the **deterministic fault-injection harness** the
chaos test suite drives: a :class:`FaultInjector` holds a plan of
:class:`Injection` actions keyed by measurement sequence number —
kill the worker (SIGKILL), delay a candidate past its deadline, raise
mid-measure, corrupt cache bytes — installable per search
(``tune_kernel(injector=...)``) or via the ``REPRO_TUNE_FAULTS``
environment variable (the CLI/CI hook).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

#: Environment variable the CLI consults for an injection plan.
FAULTS_ENV = "REPRO_TUNE_FAULTS"

#: Environment variable the *service* consults for an injection plan
#: (same grammar, service-scoped actions; see ``SERVICE_ACTIONS``).
SERVICE_FAULTS_ENV = "REPRO_SERVICE_FAULTS"


class InjectedError(RuntimeError):
    """A mid-measure exception raised by a ``raise`` injection."""


@dataclass(frozen=True)
class Fault:
    """One structured evaluation failure, with provenance.

    Subclasses fix :attr:`KIND` and :attr:`RETRYABLE`; instances add
    the human-readable message, the candidate (config key) that
    failed, the evaluation stage, and the number of dispatch attempts
    consumed before the fault became final.
    """

    KIND = "unknown"
    RETRYABLE = False

    message: str
    #: ``ScheduleConfig.key()`` of the candidate, when known.
    candidate: str | None = None
    #: Evaluation stage: ``compile`` | ``simulate`` | ``verify`` |
    #: ``inject`` | ``worker``.
    stage: str | None = None
    #: Dispatch attempts consumed (1 = failed on the first try).
    attempts: int = 1

    @property
    def kind(self) -> str:
        return type(self).KIND

    @property
    def retryable(self) -> bool:
        return type(self).RETRYABLE

    def describe(self) -> str:
        """One-line form used in reports and legacy ``error`` strings."""
        parts = [f"{self.kind}: {self.message}"]
        if self.stage:
            parts.append(f"stage={self.stage}")
        if self.attempts != 1:
            parts.append(f"attempts={self.attempts}")
        return " ".join(parts)

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "message": self.message,
            "retryable": self.retryable,
            "candidate": self.candidate,
            "stage": self.stage,
            "attempts": self.attempts,
        }

    @staticmethod
    def from_json(data: dict) -> "Fault":
        """Rebuild a fault from its JSON form (unknown kinds degrade
        to :class:`UnknownFault` instead of erroring)."""
        if not isinstance(data, dict):
            raise ValueError(f"malformed fault record: {data!r}")
        cls = FAULT_KINDS.get(data.get("kind"), UnknownFault)
        message = data.get("message")
        if not isinstance(message, str):
            raise ValueError(f"malformed fault record: {data!r}")
        attempts = data.get("attempts", 1)
        return cls(
            message=message,
            candidate=data.get("candidate"),
            stage=data.get("stage"),
            attempts=attempts if isinstance(attempts, int) else 1,
        )

    def with_attempts(self, attempts: int) -> "Fault":
        """The same fault with its attempt count updated."""
        return type(self)(
            message=self.message,
            candidate=self.candidate,
            stage=self.stage,
            attempts=attempts,
        )


class CompileFault(Fault):
    """The candidate's pipeline failed to build or run a pass.

    Deterministic — the same spec fails the same way — so never
    retried, and safe to persist in the cache.
    """

    KIND = "compile"
    RETRYABLE = False


class VerifyFault(Fault):
    """The candidate compiled and ran but mismatched the numpy oracle.

    Deterministic (the simulator is bit-exact and the inputs are
    seeded), so never retried, and cached.
    """

    KIND = "verify"
    RETRYABLE = False


class SimFault(Fault):
    """The simulation itself raised: illegal program, runaway
    instruction budget, out-of-bounds access, injected mid-measure
    exception.  Deterministic, cached."""

    KIND = "sim"
    RETRYABLE = False


class TimeoutFault(Fault):
    """The candidate exceeded its wall-clock deadline.

    The pool watchdog SIGKILLs the worker (or the engine's cooperative
    deadline fires, serially).  Wall-clock time is load-dependent, so
    timeouts are *transient*: retried (bounded) and never persisted to
    the cache.
    """

    KIND = "timeout"
    RETRYABLE = True


class WorkerCrash(Fault):
    """The worker process died (SIGKILL, OOM kill, hard crash) before
    reporting a result.  Transient: retried and never cached."""

    KIND = "worker-crash"
    RETRYABLE = True


class UnknownFault(Fault):
    """A failure with no recorded provenance — schema-1 cache entries
    (bare ``null``) migrate to this kind."""

    KIND = "unknown"
    RETRYABLE = False


class OverloadFault(Fault):
    """The server refused admission: its in-flight queue is at the
    high-water mark (``max_inflight``).  Transient by definition —
    load drains — so retryable (with backoff) and never cached."""

    KIND = "overload"
    RETRYABLE = True


class TransportFault(Fault):
    """The connection to the server failed: refused, dropped
    mid-call, reset, or never answered.  Says nothing about the job
    itself, so retryable (the server may be restarting) and never
    cached."""

    KIND = "transport"
    RETRYABLE = True


class CancelledFault(Fault):
    """The server is draining (SIGTERM/SIGINT/shutdown) and faulted
    the request instead of finishing it.  Retryable against a
    restarted server; never cached."""

    KIND = "cancelled"
    RETRYABLE = True


FAULT_KINDS: dict[str, type[Fault]] = {
    cls.KIND: cls
    for cls in (
        CompileFault,
        VerifyFault,
        SimFault,
        TimeoutFault,
        WorkerCrash,
        UnknownFault,
        OverloadFault,
        TransportFault,
        CancelledFault,
    )
}


def classify_error(
    error: BaseException,
    stage: str | None = None,
    candidate: str | None = None,
    attempts: int = 1,
) -> Fault:
    """Map a raw evaluation exception onto the taxonomy.

    The exception *type* decides first (a deadline is a timeout
    wherever it fires); otherwise the evaluation ``stage`` picks the
    bucket.  Anything unrecognized becomes :class:`UnknownFault` —
    never a bare string, never ``null``.
    """
    # Imported lazily: machine -> engine -> ... must not import tune.
    from ..snitch.machine import DeadlineExceeded, SimulationError

    message = f"{type(error).__name__}: {error}"
    kwargs = dict(candidate=candidate, stage=stage, attempts=attempts)
    if isinstance(error, DeadlineExceeded):
        return TimeoutFault(message=message, **kwargs)
    if isinstance(error, InjectedError):
        return SimFault(message=message, **kwargs)
    if isinstance(error, SimulationError):
        return SimFault(message=message, **kwargs)
    if stage == "verify":
        return VerifyFault(message=message, **kwargs)
    if stage == "compile":
        return CompileFault(message=message, **kwargs)
    if stage == "simulate":
        return SimFault(message=message, **kwargs)
    return UnknownFault(message=message, **kwargs)


# -- deterministic fault injection ----------------------------------------------

#: Injection actions the *tuner* harness understands (applied at
#: candidate-measurement dispatch, see :meth:`FaultInjector.for_attempt`).
TUNE_ACTIONS = ("crash", "delay", "raise", "interrupt")

#: Injection actions the *service* harness understands (applied at the
#: wire/admission layer, keyed by request sequence number — see
#: :meth:`FaultInjector.for_request` and ``repro.service.client``):
#:
#: * ``drop-connection`` — close the client's connection before
#:   replying (the client observes EOF mid-call);
#: * ``delay-response`` — stall the reply ``value`` seconds (drives
#:   client call timeouts);
#: * ``crash-server`` — tear the whole server down abruptly: no
#:   drain, no reply, listener and connections closed (exit code
#:   ``EXIT_CRASH``);
#: * ``reject-admission`` — refuse the request with a retryable
#:   :class:`OverloadFault`, as if the in-flight queue were full.
SERVICE_ACTIONS = (
    "drop-connection",
    "delay-response",
    "crash-server",
    "reject-admission",
)

#: Every action either harness understands.
INJECTION_ACTIONS = TUNE_ACTIONS + SERVICE_ACTIONS


@dataclass(frozen=True)
class Injection:
    """One planned fault: fire ``action`` on measurement ``index``.

    ``index`` counts *measured* candidates in dispatch order (cache
    hits do not count), starting at 0 — the compiler default is always
    measurement 0, so plans that must leave the baseline intact simply
    avoid index 0 for non-retryable actions.

    Actions:

    * ``crash`` — SIGKILL the worker process mid-measure.  Pool-only:
      in serial (degraded) mode there is no worker to kill, so crash
      injections are inert there — which is exactly what makes
      degradation a fix for repeated pool death.
    * ``delay`` — stall the candidate ``value`` seconds before
      measuring, driving it past its deadline.  In a worker this is a
      real sleep (the parent watchdog must catch a real hang); in
      serial mode a delay at least as long as the remaining deadline
      raises :class:`~repro.snitch.machine.DeadlineExceeded`
      immediately instead of actually sleeping.
    * ``raise`` — raise :class:`InjectedError` mid-measure
      (deterministic, non-retryable).
    * ``interrupt`` — raise ``KeyboardInterrupt`` in the driver
      (serial-only), simulating Ctrl-C between candidates.

    One-shot by default: the injection fires on the first dispatch
    attempt only, so a retry observes a healthy system.  ``sticky``
    injections fire on every attempt (modelling a deterministic
    crash/hang that retries cannot fix).
    """

    index: int
    action: str
    value: float = 0.0
    sticky: bool = False

    def __post_init__(self):
        if self.action not in INJECTION_ACTIONS:
            raise ValueError(
                f"unknown injection action {self.action!r} "
                f"(one of {', '.join(INJECTION_ACTIONS)})"
            )


class FaultInjector:
    """A deterministic plan of injections, consulted at dispatch time.

    The search driver asks :meth:`for_attempt` for every dispatch of
    every measured candidate; the returned :class:`Injection` (if any)
    rides into the worker with the task payload and is applied there.
    The same plan therefore produces the same faults run after run —
    the chaos suite's foundation.
    """

    def __init__(self, plan: tuple[Injection, ...] | list = ()):
        self.plan = tuple(plan)

    def __bool__(self) -> bool:
        return bool(self.plan)

    def for_attempt(
        self, index: int, attempt: int, serial: bool = False
    ) -> Injection | None:
        """The injection to apply to dispatch ``attempt`` (1-based) of
        measurement ``index``, or None."""
        for injection in self.plan:
            if injection.index != index:
                continue
            if injection.action in SERVICE_ACTIONS:
                continue  # wire-layer actions; see for_request
            if serial and injection.action == "crash":
                continue  # no worker process to kill
            if not serial and injection.action == "interrupt":
                continue  # driver-side action; needs the driver's thread
            if injection.sticky or attempt == 1:
                return injection
        return None

    def for_request(self, index: int) -> Injection | None:
        """The service-scoped injection to apply to admitted request
        ``index`` (0-based, counted over job-bearing messages in
        admission order), or None.

        Only ``SERVICE_ACTIONS`` fire here; a plan can mix tuner and
        service actions and each harness picks out its own.  Requests
        have no attempt axis on the server side (a client retry
        arrives as a fresh request index), so ``sticky`` is
        meaningless and ignored.
        """
        for injection in self.plan:
            if (
                injection.index == index
                and injection.action in SERVICE_ACTIONS
            ):
                return injection
        return None

    @classmethod
    def from_env(cls, var: str = FAULTS_ENV) -> "FaultInjector | None":
        """Build an injector from ``REPRO_TUNE_FAULTS``, or None.

        Grammar (``;`` or ``,`` separated)::

            ACTION@INDEX[=VALUE][:sticky]

        e.g. ``crash@2;delay@1=0.5;raise@3:sticky``.
        """
        text = os.environ.get(var, "").strip()
        if not text:
            return None
        plan = []
        for part in text.replace(",", ";").split(";"):
            part = part.strip()
            if not part:
                continue
            sticky = False
            if part.endswith(":sticky"):
                sticky = True
                part = part[: -len(":sticky")]
            try:
                action, _, rest = part.partition("@")
                index_text, _, value_text = rest.partition("=")
                plan.append(
                    Injection(
                        index=int(index_text),
                        action=action.strip(),
                        value=float(value_text) if value_text else 0.0,
                        sticky=sticky,
                    )
                )
            except ValueError as error:
                raise ValueError(
                    f"bad {var} entry {part!r}: {error}"
                ) from None
        return cls(plan)

    @staticmethod
    def corrupt_file(path, offset: int | None = None, flips: int = 8) -> None:
        """Deterministically corrupt a stored artifact's bytes.

        XOR-flips ``flips`` bytes starting mid-file (or at ``offset``)
        — the chaos suite's model of torn writes and bit rot in the
        shared cache store.
        """
        path = Path(path)
        data = bytearray(path.read_bytes())
        if not data:
            data = bytearray(b"\xff")
        start = len(data) // 2 if offset is None else offset
        for i in range(start, min(start + flips, len(data))):
            data[i] ^= 0xFF
        path.write_bytes(bytes(data))


__all__ = [
    "FAULT_KINDS",
    "FAULTS_ENV",
    "INJECTION_ACTIONS",
    "SERVICE_ACTIONS",
    "SERVICE_FAULTS_ENV",
    "TUNE_ACTIONS",
    "CancelledFault",
    "CompileFault",
    "Fault",
    "FaultInjector",
    "InjectedError",
    "Injection",
    "OverloadFault",
    "SimFault",
    "TimeoutFault",
    "TransportFault",
    "UnknownFault",
    "VerifyFault",
    "WorkerCrash",
    "classify_error",
]
