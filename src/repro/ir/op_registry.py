"""Registry mapping operation names to their Python classes.

The textual parser needs to reconstruct typed operation objects (so
verification hooks and accessors work on parsed IR).  Registration is
driven by the first-class :class:`~repro.ir.irdl.Dialect` objects each
dialect module exports: :func:`populate` imports every dialect module
and registers its ``Dialect`` — there is no ``inspect`` scan and no
"abstract helper" sentinel; a class is registered exactly when its
dialect lists it.
"""

from __future__ import annotations

from .core import Operation
from .irdl import Dialect

_REGISTRY: dict[str, type[Operation]] = {}
_DIALECTS: dict[str, Dialect] = {}


def register(op_class: type[Operation]) -> None:
    """Register one operation class under its ``name``."""
    name = op_class.name
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not op_class:
        raise ValueError(
            f"duplicate op name {name!r}: {existing} vs {op_class}"
        )
    _REGISTRY[name] = op_class


def register_dialect(dialect: Dialect) -> None:
    """Register a dialect and all its operations (idempotent)."""
    existing = _DIALECTS.get(dialect.name)
    if existing is dialect:
        return
    if existing is not None:
        raise ValueError(f"duplicate dialect {dialect.name!r}")
    for op_class in dialect.ops:
        register(op_class)
    _DIALECTS[dialect.name] = dialect


def populate() -> None:
    """Import all dialects and fill the registry (idempotent)."""
    from ..dialects import (
        arith,
        builtin,
        func,
        linalg,
        memref,
        memref_stream,
        riscv,
        riscv_cf,
        riscv_func,
        riscv_scf,
        riscv_snitch,
        scf,
        snitch_stream,
        stream,
    )

    for dialect in (
        builtin.BUILTIN,
        arith.ARITH,
        func.FUNC,
        scf.SCF,
        memref.MEMREF,
        linalg.LINALG,
        stream.STREAM,
        memref_stream.MEMREF_STREAM,
        riscv.RISCV,
        riscv_cf.RISCV_CF,
        riscv_func.RISCV_FUNC,
        riscv_scf.RISCV_SCF,
        riscv_snitch.RISCV_SNITCH,
        snitch_stream.SNITCH_STREAM,
    ):
        register_dialect(dialect)


def lookup(name: str) -> type[Operation]:
    """The class registered for ``name`` (Operation if unknown)."""
    if not _REGISTRY:
        populate()
    return _REGISTRY.get(name, Operation)


def registered_names() -> list[str]:
    """All registered operation names."""
    if not _REGISTRY:
        populate()
    return sorted(_REGISTRY)


def dialects() -> list[Dialect]:
    """All registered dialects, sorted by name."""
    if not _DIALECTS:
        populate()
    return [_DIALECTS[name] for name in sorted(_DIALECTS)]


def get_dialect(name: str) -> Dialect | None:
    """The dialect registered under ``name``, if any."""
    if not _DIALECTS:
        populate()
    return _DIALECTS.get(name)


__all__ = [
    "register",
    "register_dialect",
    "populate",
    "lookup",
    "registered_names",
    "dialects",
    "get_dialect",
]
