"""Registry mapping operation names to their Python classes.

The textual parser needs to reconstruct typed operation objects (so
verification hooks and accessors work on parsed IR).  Registration is
explicit-but-automated: :func:`populate` imports every dialect module
and records each concrete :class:`~repro.ir.core.Operation` subclass
under its ``name``.
"""

from __future__ import annotations

import inspect

from .core import Operation

_REGISTRY: dict[str, type[Operation]] = {}


def register(op_class: type[Operation]) -> None:
    """Register one operation class under its ``name``."""
    name = op_class.name
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not op_class:
        raise ValueError(
            f"duplicate op name {name!r}: {existing} vs {op_class}"
        )
    _REGISTRY[name] = op_class


def _register_module(module) -> None:
    for _, value in inspect.getmembers(module, inspect.isclass):
        if (
            issubclass(value, Operation)
            and value is not Operation
            and value.name != Operation.name  # abstract helper classes
        ):
            register(value)


def populate() -> None:
    """Import all dialects and fill the registry (idempotent)."""
    from ..dialects import (  # noqa: F401  (imported for registration)
        arith,
        builtin,
        func,
        linalg,
        memref,
        memref_stream,
        riscv,
        riscv_cf,
        riscv_func,
        riscv_scf,
        riscv_snitch,
        scf,
        snitch_stream,
    )

    for module in (
        arith, builtin, func, linalg, memref, memref_stream,
        riscv, riscv_cf, riscv_func, riscv_scf, riscv_snitch, scf,
        snitch_stream,
    ):
        _register_module(module)


def lookup(name: str) -> type[Operation]:
    """The class registered for ``name`` (Operation if unknown)."""
    if not _REGISTRY:
        populate()
    return _REGISTRY.get(name, Operation)


def registered_names() -> list[str]:
    """All registered operation names."""
    if not _REGISTRY:
        populate()
    return sorted(_REGISTRY)


__all__ = ["register", "populate", "lookup", "registered_names"]
