"""Declarative, IRDL-style operation definitions.

This is the definition layer the dialects are written against, modelled
on xDSL's IRDL (which the paper's compiler builds on): an operation
*declares* its operands, results, attributes and regions as class-level
field descriptors, and :func:`irdl_op_definition` derives the rest —
named accessors, a keyword constructor and a ``verify_`` hook that
enforces every declared arity and type constraint::

    @irdl_op_definition
    class MulOp(Operation):
        \"\"\"``mul rd, rs1, rs2``.\"\"\"

        name = "rv.mul"
        rs1 = operand_def(BaseAttr(IntRegisterType))
        rs2 = operand_def(BaseAttr(IntRegisterType))
        rd = result_def(BaseAttr(IntRegisterType), default=UNALLOCATED_INT)

    op = MulOp(a, b)                   # synthesized constructor
    op.rs1                             # synthesized accessor
    op.verify_()                       # synthesized verification

Ops keep the plain :class:`~repro.ir.core.Operation` storage underneath,
so the intrusive linked-list IR and the worklist rewrite driver are
untouched; the decorator only installs class-level properties (all
``__slots__``-compatible) and precompiled check closures.  Structural
invariants that cannot be expressed as per-field constraints (body
terminators, yield arities, cross-operand correlations) live in an
optional ``verify_extra_`` hook that the generated ``verify_`` calls
last.

:class:`Dialect` groups the op (and attribute) classes of one namespace
into a first-class object; the registry, the parser's name lookup, the
generated dialect reference and the CLI's ``--list-dialects`` are all
driven from these objects instead of module scans.
"""

from __future__ import annotations

from typing import Sequence

from .attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    DenseIntAttr,
    IntAttr,
    StringAttr,
    TypeAttribute,
)
from .core import Block, IRError, Operation, Region, SSAValue
from .traits import SameOperandsAndResultType

#: Sentinel for "no default was given".
_REQUIRED = object()

#: Name of the attribute recording per-group operand counts when an op
#: declares more than one variadic operand group (MLIR's convention).
SEGMENT_ATTR = "operand_segment_sizes"


# ---------------------------------------------------------------------------
# Constraint language
# ---------------------------------------------------------------------------


class Constraint:
    """Base class of attribute/type constraints."""

    __slots__ = ()

    def satisfied_by(self, attr) -> bool:
        """Whether ``attr`` meets this constraint."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short human-readable form (used in errors and docs)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.describe()


class AnyAttr(Constraint):
    """Matches every attribute (the unconstrained default)."""

    __slots__ = ()

    def satisfied_by(self, attr) -> bool:
        return True

    def describe(self) -> str:
        return "any"


class BaseAttr(Constraint):
    """Matches instances of one attribute class (subclasses included)."""

    __slots__ = ("attr_class",)

    def __init__(self, attr_class: type):
        self.attr_class = attr_class

    def satisfied_by(self, attr) -> bool:
        return isinstance(attr, self.attr_class)

    def describe(self) -> str:
        return self.attr_class.__name__


class EqAttr(Constraint):
    """Matches exactly one attribute value (type equality checks)."""

    __slots__ = ("attr",)

    def __init__(self, attr: Attribute):
        self.attr = attr

    def satisfied_by(self, attr) -> bool:
        return attr == self.attr

    def describe(self) -> str:
        return str(self.attr)


class AnyOf(Constraint):
    """Matches when any of the given constraints matches."""

    __slots__ = ("choices",)

    def __init__(self, *choices):
        self.choices = tuple(coerce_constraint(c) for c in choices)

    def satisfied_by(self, attr) -> bool:
        return any(c.satisfied_by(attr) for c in self.choices)

    def describe(self) -> str:
        return " | ".join(c.describe() for c in self.choices)


class ParamAttr(Constraint):
    """A parametrized attribute: base class plus per-field constraints.

    ``ParamAttr(ReadableStreamType, element_type=FloatRegisterType)``
    matches readable streams whose element is an FP register type.
    """

    __slots__ = ("attr_class", "field_constraints")

    def __init__(self, attr_class: type, **field_constraints):
        self.attr_class = attr_class
        self.field_constraints = {
            name: coerce_constraint(c)
            for name, c in field_constraints.items()
        }

    def satisfied_by(self, attr) -> bool:
        if not isinstance(attr, self.attr_class):
            return False
        for name, constraint in self.field_constraints.items():
            if not constraint.satisfied_by(getattr(attr, name, None)):
                return False
        return True

    def describe(self) -> str:
        params = ", ".join(
            f"{name}: {c.describe()}"
            for name, c in self.field_constraints.items()
        )
        return f"{self.attr_class.__name__}<{params}>"


def coerce_constraint(value) -> Constraint:
    """Promote shorthand into a :class:`Constraint`.

    ``None`` means unconstrained, an attribute class becomes a
    :class:`BaseAttr`, an attribute *instance* an :class:`EqAttr`.
    """
    if value is None:
        return AnyAttr()
    if isinstance(value, Constraint):
        return value
    if isinstance(value, type) and issubclass(value, Attribute):
        return BaseAttr(value)
    if isinstance(value, Attribute):
        return EqAttr(value)
    raise TypeError(f"cannot turn {value!r} into a constraint")


# ---------------------------------------------------------------------------
# Result-type derivations
# ---------------------------------------------------------------------------


class SameAs:
    """Result-type default: copy the type of the named operand field."""

    __slots__ = ("field",)

    def __init__(self, field: str):
        self.field = field


class ElementOf:
    """Result-type default: the named operand's ``type.element_type``."""

    __slots__ = ("field",)

    def __init__(self, field: str):
        self.field = field


# ---------------------------------------------------------------------------
# Field descriptors
# ---------------------------------------------------------------------------


class _FieldDef:
    """Base class of the class-body field markers."""

    __slots__ = ("doc",)


class OperandDef(_FieldDef):
    """One required operand."""

    __slots__ = ("constraint",)
    variadic = False

    def __init__(self, constraint=None, doc: str = ""):
        self.constraint = coerce_constraint(constraint)
        self.doc = doc


class VarOperandDef(OperandDef):
    """A variable-length group of operands."""

    __slots__ = ()
    variadic = True


class ResultDef(_FieldDef):
    """One op result.

    ``default`` is the result type used by the synthesized constructor
    when the caller does not pass one: a concrete type, a
    :class:`SameAs`/:class:`ElementOf` derivation, or ``None``
    (caller must supply it).
    """

    __slots__ = ("constraint", "default")
    variadic = False

    def __init__(self, constraint=None, default=None, doc: str = ""):
        self.constraint = coerce_constraint(constraint)
        self.default = default
        self.doc = doc


class VarResultDef(ResultDef):
    """A variable-length group of results (loop-carried values)."""

    __slots__ = ()
    variadic = True


class AttrDef(_FieldDef):
    """One dictionary attribute of the operation.

    ``kind`` is the expected attribute class (or a full
    :class:`Constraint`); plain Python values are converted on
    construction (``int`` -> :class:`IntAttr`, ``str`` ->
    :class:`StringAttr`, ``bool`` -> :class:`BoolAttr`, int sequences ->
    :class:`DenseIntAttr`) and unwrapped symmetrically by the accessor.
    ``elem`` unwraps array elements too (e.g. ``ArrayAttr`` of
    ``StringAttr`` reads as a list of ``str``).  ``raw=True`` disables
    unwrapping.
    """

    __slots__ = (
        "constraint", "attr_class", "optional", "default", "elem", "raw",
        "is_successor",
    )

    def __init__(
        self,
        kind,
        default=_REQUIRED,
        optional: bool = False,
        elem=None,
        raw: bool = False,
        doc: str = "",
    ):
        if isinstance(kind, type) and issubclass(kind, Attribute):
            self.attr_class = kind
            self.constraint = BaseAttr(kind)
        else:
            self.attr_class = None
            self.constraint = coerce_constraint(kind)
        self.optional = optional
        self.default = default
        self.elem = elem
        self.raw = raw
        self.is_successor = False
        self.doc = doc


class RegionDef(_FieldDef):
    """One region of the operation."""

    __slots__ = ()

    def __init__(self, doc: str = ""):
        self.doc = doc


def operand_def(constraint=None, doc: str = "") -> OperandDef:
    """Declare one operand (optionally type-constrained)."""
    return OperandDef(constraint, doc)


def var_operand_def(constraint=None, doc: str = "") -> VarOperandDef:
    """Declare a variadic operand group."""
    return VarOperandDef(constraint, doc)


def result_def(constraint=None, default=None, doc: str = "") -> ResultDef:
    """Declare one result (with an optional default/derived type)."""
    return ResultDef(constraint, default, doc)


def var_result_def(constraint=None, doc: str = "") -> VarResultDef:
    """Declare a variadic result group (e.g. loop-carried values).

    An op without any result declaration is verified to have *zero*
    results; declaring a variadic group instead admits any number.
    """
    return VarResultDef(constraint, None, doc)


def attr_def(kind, default=_REQUIRED, elem=None, raw=False, doc="") -> AttrDef:
    """Declare a required attribute."""
    return AttrDef(kind, default=default, elem=elem, raw=raw, doc=doc)


def opt_attr_def(kind, elem=None, raw=False, doc: str = "") -> AttrDef:
    """Declare an optional attribute (accessor yields ``None`` if absent)."""
    return AttrDef(
        kind, default=None, optional=True, elem=elem, raw=raw, doc=doc
    )


def region_def(doc: str = "") -> RegionDef:
    """Declare one region."""
    return RegionDef(doc)


def successor_def(doc: str = "") -> AttrDef:
    """Declare a control-flow successor.

    This IR lowers structured loops only after register allocation, so
    branch targets are assembly *labels*, not block references; a
    successor is therefore stored as a :class:`StringAttr` naming the
    target label and reads back as ``str``.
    """
    definition = AttrDef(StringAttr, doc=doc)
    definition.is_successor = True
    return definition


# ---------------------------------------------------------------------------
# Operation specs
# ---------------------------------------------------------------------------


class OpSpec:
    """The collected declarative shape of one operation class."""

    __slots__ = (
        "operands", "results", "attrs", "regions", "segmented",
        "variadic_results",
    )

    def __init__(self, operands, results, attrs, regions):
        self.operands: list[tuple[str, OperandDef]] = operands
        self.results: list[tuple[str, ResultDef]] = results
        self.attrs: list[tuple[str, AttrDef]] = attrs
        self.regions: list[tuple[str, RegionDef]] = regions
        variadic = [d for _, d in operands if d.variadic]
        self.segmented = len(variadic) > 1
        if self.segmented and len(variadic) != len(operands):
            raise TypeError(
                "ops with several variadic operand groups must make "
                "every operand group variadic (segment encoding)"
            )
        self.variadic_results = any(d.variadic for _, d in results)
        if self.variadic_results and len(results) != 1:
            raise TypeError(
                "a variadic result group must be the only result "
                "declaration"
            )

    @classmethod
    def from_class(cls, op_class: type) -> "OpSpec":
        base_spec = getattr(op_class, "irdl_spec", None)
        operands = list(base_spec.operands) if base_spec else []
        results = list(base_spec.results) if base_spec else []
        attrs = list(base_spec.attrs) if base_spec else []
        regions = list(base_spec.regions) if base_spec else []
        for name, value in list(op_class.__dict__.items()):
            if isinstance(value, VarOperandDef) or isinstance(
                value, OperandDef
            ):
                operands.append((name, value))
            elif isinstance(value, ResultDef):
                results.append((name, value))
            elif isinstance(value, AttrDef):
                attrs.append((name, value))
            elif isinstance(value, RegionDef):
                regions.append((name, value))
        return cls(operands, results, attrs, regions)

    def check_arity(
        self, num_operands: int, num_results: int
    ) -> str | None:
        """Check operand/result counts against this spec.

        Returns a human-readable complaint (without the op name) or
        ``None`` when the counts are admissible.  Shared by the
        generated verifier and the parser, so arity diagnostics stay
        consistent between built and parsed IR.
        """
        variadic = sum(1 for _, d in self.operands if d.variadic)
        total = len(self.operands)
        if self.segmented:
            pass  # group sizes live in the segment attribute
        elif variadic == 0:
            if num_operands != total:
                return f"expected {total} operand(s), got {num_operands}"
        elif num_operands < total - variadic:
            return (
                f"expected at least {total - variadic} operand(s), "
                f"got {num_operands}"
            )
        if not self.variadic_results and num_results != len(
            self.results
        ):
            return (
                f"expected {len(self.results)} result(s), "
                f"got {num_results}"
            )
        return None

    def signature(self) -> str:
        """Compact ``(operands) -> results`` form for generated docs."""

        def mark(name: str, definition) -> str:
            return f"{name}..." if definition.variadic else name

        parts = ", ".join(mark(n, d) for n, d in self.operands)
        outs = ", ".join(mark(n, d) for n, d in self.results)
        attrs = ", ".join(
            f"{n}?" if d.optional else n
            for n, d in self.attrs
            if not d.is_successor
        )
        succ = ", ".join(n for n, d in self.attrs if d.is_successor)
        text = f"({parts})"
        if outs:
            text += f" -> {outs}"
        if attrs:
            text += f" {{{attrs}}}"
        if succ:
            text += f" [{succ}]"
        if self.regions:
            text += " (" + ", ".join(n for n, _ in self.regions) + ")"
        return text


# ---------------------------------------------------------------------------
# Accessor synthesis
# ---------------------------------------------------------------------------


def _segment_bounds(op: Operation, field_index: int) -> tuple[int, int]:
    attr = op.attributes.get(SEGMENT_ATTR)
    if not isinstance(attr, DenseIntAttr):
        raise IRError(f"{op.name}: missing {SEGMENT_ATTR} attribute")
    sizes = attr.values
    start = sum(sizes[:field_index])
    return start, start + sizes[field_index]


def _operand_accessors(spec: OpSpec):
    defs = spec.operands
    total = len(defs)
    variadic_at = [i for i, (_, d) in enumerate(defs) if d.variadic]
    accessors = {}
    for i, (name, definition) in enumerate(defs):
        if spec.segmented:

            def get(self, _i=i):
                start, stop = _segment_bounds(self, _i)
                return tuple(self._operands[start:stop])

        elif not variadic_at:

            def get(self, _i=i):
                return self._operands[_i]

        elif definition.variadic:
            tail = total - i - 1

            def get(self, _i=i, _tail=tail):
                return tuple(
                    self._operands[_i : len(self._operands) - _tail]
                )

        elif i < variadic_at[0]:

            def get(self, _i=i):
                return self._operands[_i]

        else:  # fixed operand after the variadic group: index from end

            def get(self, _i=i - total):
                return self._operands[_i]

        accessors[name] = property(get, doc=definition.doc or None)
    return accessors


_ATTR_UNWRAP = {
    IntAttr: lambda a: a.value,
    StringAttr: lambda a: a.value,
    BoolAttr: lambda a: a.value,
    DenseIntAttr: lambda a: a.values,
}


def _attr_accessor(name: str, definition: AttrDef):
    unwrap = None
    if not definition.raw and definition.attr_class is not None:
        unwrap = _ATTR_UNWRAP.get(definition.attr_class)
        if definition.attr_class is ArrayAttr:
            elem_unwrap = (
                _ATTR_UNWRAP.get(definition.elem) if definition.elem
                else None
            )
            if elem_unwrap is not None:
                unwrap = lambda a, _e=elem_unwrap: [  # noqa: E731
                    _e(x) for x in a.elements
                ]
            else:
                unwrap = lambda a: list(a.elements)  # noqa: E731

    if definition.optional:

        def get(self, _k=name, _u=unwrap):
            attr = self.attributes.get(_k)
            if attr is None:
                return None
            return _u(attr) if _u is not None else attr

    elif unwrap is not None:

        def get(self, _k=name, _u=unwrap):
            return _u(self.attributes[_k])

    else:

        def get(self, _k=name):
            return self.attributes[_k]

    return property(get, doc=definition.doc or None)


# ---------------------------------------------------------------------------
# Constructor synthesis
# ---------------------------------------------------------------------------


def _check_operand(op_name, field, value, constraint):
    if not isinstance(value, SSAValue):
        raise IRError(
            f"operand of {op_name} must be an SSAValue, got "
            f"{type(value).__name__}"
        )
    if type(constraint) is not AnyAttr and not constraint.satisfied_by(
        value.type
    ):
        raise IRError(
            f"{op_name}: operand '{field}' must be "
            f"{constraint.describe()}, got {value.type}"
        )


def _to_attribute(op_name, field, definition: AttrDef, value) -> Attribute:
    if isinstance(value, Attribute):
        if not definition.constraint.satisfied_by(value):
            raise IRError(
                f"{op_name}: attribute '{field}' must be "
                f"{definition.constraint.describe()}, got {value}"
            )
        return value
    base = definition.attr_class
    if base is IntAttr and isinstance(value, int) and not isinstance(
        value, bool
    ):
        return IntAttr(value)
    if base is StringAttr and isinstance(value, str):
        return StringAttr(value)
    if base is BoolAttr and isinstance(value, bool):
        return BoolAttr(value)
    if base is DenseIntAttr:
        return DenseIntAttr(value)
    if base is ArrayAttr and isinstance(value, (list, tuple)):
        elem = definition.elem
        elements = []
        for item in value:
            if isinstance(item, Attribute):
                elements.append(item)
            elif elem is StringAttr and isinstance(item, str):
                elements.append(StringAttr(item))
            elif elem is IntAttr and isinstance(item, int):
                elements.append(IntAttr(item))
            else:
                raise IRError(
                    f"{op_name}: attribute '{field}' expects a sequence "
                    f"of attributes, got {type(item).__name__}"
                )
        return ArrayAttr(elements)
    expected = base.__name__ if base else definition.constraint.describe()
    raise IRError(
        f"{op_name}: attribute '{field}' expects {expected}, got "
        f"{type(value).__name__}"
    )


def _compile_init(op_class: type, spec: OpSpec):
    """Build the synthesized keyword constructor for ``op_class``.

    Positional order is operands, then attributes, then result types;
    variadic operand groups take a sequence.  A single declared result
    is also addressable as ``result_type=`` regardless of its field
    name, matching the hand-written constructors this replaces.
    """
    positional = (
        [name for name, _ in spec.operands]
        + [name for name, _ in spec.attrs]
        + [name for name, _ in spec.results]
        + [name for name, _ in spec.regions]
    )
    param_set = set(positional)
    if spec.variadic_results:
        raise TypeError(
            f"{op_class.__name__}: ops with a variadic result group "
            "must define their own __init__ (the result count depends "
            "on runtime arguments)"
        )
    single_result = (
        spec.results[0][0] if len(spec.results) == 1 else None
    )
    operand_defs = spec.operands
    attr_defs = spec.attrs
    result_defs = spec.results
    region_defs = spec.regions
    segmented = spec.segmented

    def __init__(self, *args, **kwargs):
        # Read the *concrete* class at call time: leaf classes (e.g.
        # the rv.* instruction table) inherit this constructor from the
        # decorated shape class, and errors must name them, not it.
        cls = type(self)
        op_name = cls.name
        if len(args) > len(positional):
            raise TypeError(
                f"{cls.__name__} takes at most {len(positional)} "
                f"arguments, got {len(args)}"
            )
        bound = dict(zip(positional, args))
        for key, value in kwargs.items():
            if key == "result_type" and single_result is not None:
                key = single_result
            if key not in param_set:
                raise TypeError(
                    f"{cls.__name__} got an unexpected argument "
                    f"{key!r}"
                )
            if key in bound:
                raise TypeError(
                    f"{cls.__name__} got duplicate values for "
                    f"{key!r}"
                )
            bound[key] = value
        # -- operands --------------------------------------------------
        operand_values: list[SSAValue] = []
        groups: dict[str, object] = {}
        segment_sizes: list[int] = []
        for name, definition in operand_defs:
            value = bound.get(
                name, () if definition.variadic else _REQUIRED
            )
            if value is _REQUIRED:
                raise TypeError(
                    f"{cls.__name__} missing required operand "
                    f"{name!r}"
                )
            if definition.variadic:
                values = list(value)
                for item in values:
                    _check_operand(
                        op_name, name, item, definition.constraint
                    )
                groups[name] = values
                segment_sizes.append(len(values))
                operand_values.extend(values)
            else:
                _check_operand(op_name, name, value, definition.constraint)
                groups[name] = value
                operand_values.append(value)
        # -- attributes ------------------------------------------------
        attributes: dict[str, Attribute] = {}
        for name, definition in attr_defs:
            value = bound.get(name, _REQUIRED)
            if value is _REQUIRED:
                value = definition.default
                if definition.optional and value is _REQUIRED:
                    value = None
            if value is _REQUIRED:
                raise TypeError(
                    f"{cls.__name__} missing required attribute "
                    f"{name!r}"
                )
            if value is None and definition.optional:
                continue
            attributes[name] = _to_attribute(
                op_name, name, definition, value
            )
        if segmented:
            attributes[SEGMENT_ATTR] = DenseIntAttr(segment_sizes)
        # -- results ---------------------------------------------------
        result_types: list[TypeAttribute] = []
        for name, definition in result_defs:
            value = bound.get(name)
            if value is None:
                default = definition.default
                if isinstance(default, SameAs):
                    value = groups[default.field].type
                elif isinstance(default, ElementOf):
                    operand = groups[default.field]
                    value = getattr(operand.type, "element_type", None)
                    if value is None:
                        raise IRError(
                            f"{op_name}: cannot derive the type of "
                            f"'{name}' from {operand.type}"
                        )
                else:
                    value = default
            if value is None:
                raise TypeError(
                    f"{cls.__name__} missing required result type "
                    f"{name!r}"
                )
            result_types.append(value)
        # -- regions ---------------------------------------------------
        regions = [
            bound.get(name) or Region([Block()]) for name, _ in region_defs
        ]
        Operation.__init__(
            self,
            operands=operand_values,
            result_types=result_types,
            attributes=attributes,
            regions=regions,
        )

    __init__.__qualname__ = f"{op_class.__qualname__}.__init__"
    return __init__


# ---------------------------------------------------------------------------
# Verification synthesis
# ---------------------------------------------------------------------------


def _compile_verify(op_class: type, spec: OpSpec):
    """Precompile the declarative checks into one ``verify_`` closure."""
    odefs = spec.operands
    total = len(odefs)
    variadic_at = [i for i, (_, d) in enumerate(odefs) if d.variadic]
    segmented = spec.segmented
    exact_operands = total if not variadic_at else None
    min_operands = total - len(variadic_at)
    # (index, field, constraint) triples for constrained fixed operands;
    # indices are from the front before the variadic group and from the
    # back after it.
    fixed_checks = []
    var_check = None
    for i, (name, definition) in enumerate(odefs):
        constrained = type(definition.constraint) is not AnyAttr
        if segmented:
            if constrained:
                fixed_checks.append((i, name, definition.constraint))
            continue
        if definition.variadic:
            if constrained:
                var_check = (i, total - i - 1, name, definition.constraint)
        elif constrained:
            index = i if not variadic_at or i < variadic_at[0] else i - total
            fixed_checks.append((index, name, definition.constraint))
    result_defs = spec.results
    variadic_results = spec.variadic_results
    exact_results = None if variadic_results else len(result_defs)
    result_checks = [
        (i, name, d.constraint)
        for i, (name, d) in enumerate(result_defs)
        if type(d.constraint) is not AnyAttr
    ]
    var_result_check = None
    if variadic_results:
        name, definition = result_defs[0]
        if type(definition.constraint) is not AnyAttr:
            var_result_check = (name, definition.constraint)
        result_checks = []
    attr_checks = [
        (
            name,
            definition.optional,
            definition.constraint
            if type(definition.constraint) is not AnyAttr
            else None,
        )
        for name, definition in spec.attrs
    ]
    num_regions = len(spec.regions)
    same_type = SameOperandsAndResultType in op_class.traits

    def verify_(self):
        operands = self._operands
        count = len(operands)
        if exact_operands is not None:
            if count != exact_operands:
                raise IRError(
                    f"{self.name}: expected {exact_operands} operand(s), "
                    f"got {count}"
                )
        elif not segmented:
            if count < min_operands:
                raise IRError(
                    f"{self.name}: expected at least {min_operands} "
                    f"operand(s), got {count}"
                )
        else:
            sizes_attr = self.attributes.get(SEGMENT_ATTR)
            if not isinstance(sizes_attr, DenseIntAttr):
                raise IRError(
                    f"{self.name}: missing {SEGMENT_ATTR} attribute"
                )
            sizes = sizes_attr.values
            if len(sizes) != total:
                raise IRError(
                    f"{self.name}: {SEGMENT_ATTR} names {len(sizes)} "
                    f"group(s), expected {total}"
                )
            if any(s < 0 for s in sizes) or sum(sizes) != count:
                raise IRError(
                    f"{self.name}: {SEGMENT_ATTR} {list(sizes)} does not "
                    f"cover {count} operand(s)"
                )
        if segmented:
            for i, name, constraint in fixed_checks:
                start, stop = _segment_bounds(self, i)
                for value in operands[start:stop]:
                    if not constraint.satisfied_by(value.type):
                        raise IRError(
                            f"{self.name}: operand '{name}' has type "
                            f"{value.type}, expected "
                            f"{constraint.describe()}"
                        )
        else:
            for index, name, constraint in fixed_checks:
                value_type = operands[index].type
                if not constraint.satisfied_by(value_type):
                    raise IRError(
                        f"{self.name}: operand '{name}' has type "
                        f"{value_type}, expected {constraint.describe()}"
                    )
            if var_check is not None:
                start, tail, name, constraint = var_check
                for value in operands[start : count - tail]:
                    if not constraint.satisfied_by(value.type):
                        raise IRError(
                            f"{self.name}: operand '{name}' has type "
                            f"{value.type}, expected "
                            f"{constraint.describe()}"
                        )
        results = self.results
        if exact_results is not None and len(results) != exact_results:
            raise IRError(
                f"{self.name}: expected {exact_results} result(s), "
                f"got {len(results)}"
            )
        for i, name, constraint in result_checks:
            result_type = results[i].type
            if not constraint.satisfied_by(result_type):
                raise IRError(
                    f"{self.name}: result '{name}' has type "
                    f"{result_type}, expected {constraint.describe()}"
                )
        if var_result_check is not None:
            name, constraint = var_result_check
            for result in results:
                if not constraint.satisfied_by(result.type):
                    raise IRError(
                        f"{self.name}: result '{name}' has type "
                        f"{result.type}, expected {constraint.describe()}"
                    )
        attributes = self.attributes
        for key, optional, constraint in attr_checks:
            attr = attributes.get(key)
            if attr is None:
                if not optional:
                    raise IRError(
                        f"{self.name}: missing attribute '{key}'"
                    )
            elif constraint is not None and not constraint.satisfied_by(
                attr
            ):
                raise IRError(
                    f"{self.name}: attribute '{key}' must be "
                    f"{constraint.describe()}, got {attr}"
                )
        if len(self.regions) != num_regions:
            raise IRError(
                f"{self.name}: expected {num_regions} region(s), got "
                f"{len(self.regions)}"
            )
        if same_type and (operands or self.results):
            reference = (
                operands[0].type if operands else self.results[0].type
            )
            for value in operands:
                if value.type != reference:
                    raise IRError(f"{self.name}: operand types differ")
            for result in self.results:
                if result.type != reference:
                    raise IRError(
                        f"{self.name}: result type differs from operands"
                    )
        # Resolved at call time, not decoration time: a subclass of a
        # decorated shape class may add (or override) the hook.
        extra = getattr(self, "verify_extra_", None)
        if extra is not None:
            extra()

    verify_.__qualname__ = f"{op_class.__qualname__}.verify_"
    return verify_


# ---------------------------------------------------------------------------
# The decorator
# ---------------------------------------------------------------------------


def irdl_op_definition(op_class: type) -> type:
    """Derive accessors, constructor and verification from field defs.

    The class is modified in place: every field descriptor in the class
    body is replaced by a named ``property``, ``verify_`` is installed
    from the precompiled declarative checks (it calls an optional
    ``verify_extra_`` hook last for structural invariants), and a
    keyword ``__init__`` is synthesized unless the class (or a mixin
    below :class:`Operation`) defines its own.
    """
    if not (isinstance(op_class, type) and issubclass(op_class, Operation)):
        raise TypeError("@irdl_op_definition expects an Operation subclass")
    spec = OpSpec.from_class(op_class)
    op_class.irdl_spec = spec
    for name, prop in _operand_accessors(spec).items():
        setattr(op_class, name, prop)
    for i, (name, definition) in enumerate(spec.results):
        if definition.variadic:

            def get(self):
                return tuple(self.results)

        else:

            def get(self, _i=i):
                return self.results[_i]

        setattr(op_class, name, property(get, doc=definition.doc or None))
    for name, definition in spec.attrs:
        setattr(op_class, name, _attr_accessor(name, definition))
    for i, (name, definition) in enumerate(spec.regions):

        def get_region(self, _i=i):
            return self.regions[_i]

        setattr(
            op_class, name, property(get_region, doc=definition.doc or None)
        )
    op_class.verify_ = _compile_verify(op_class, spec)
    if op_class.__init__ is Operation.__init__:
        op_class.__init__ = _compile_init(op_class, spec)
    return op_class


# ---------------------------------------------------------------------------
# Dialects
# ---------------------------------------------------------------------------


class Dialect:
    """A named group of operation and attribute classes.

    These objects (one per dialect module) drive op registration, the
    parser's name lookup, the generated dialect reference and the CLI's
    ``--list-dialects`` — replacing the old module-scan discovery.
    """

    __slots__ = ("name", "ops", "attrs", "doc")

    def __init__(
        self,
        name: str,
        ops: Sequence[type] = (),
        attrs: Sequence[type] = (),
        doc: str = "",
    ):
        self.name = name
        self.ops = tuple(ops)
        self.attrs = tuple(attrs)
        self.doc = doc
        seen: set[str] = set()
        for op in self.ops:
            namespace, _, suffix = op.name.partition(".")
            if namespace != name or not suffix:
                raise ValueError(
                    f"op {op.name!r} does not belong to dialect {name!r}"
                )
            if op.name in seen:
                raise ValueError(f"duplicate op {op.name!r} in {name!r}")
            seen.add(op.name)

    def op_names(self) -> list[str]:
        """The names of all ops in this dialect, sorted."""
        return sorted(op.name for op in self.ops)

    def __repr__(self) -> str:
        return f"Dialect({self.name!r}, {len(self.ops)} ops)"


__all__ = [
    "Constraint",
    "AnyAttr",
    "BaseAttr",
    "EqAttr",
    "AnyOf",
    "ParamAttr",
    "coerce_constraint",
    "SameAs",
    "ElementOf",
    "OperandDef",
    "VarOperandDef",
    "ResultDef",
    "VarResultDef",
    "AttrDef",
    "RegionDef",
    "operand_def",
    "var_operand_def",
    "result_def",
    "var_result_def",
    "attr_def",
    "opt_attr_def",
    "region_def",
    "successor_def",
    "OpSpec",
    "SEGMENT_ATTR",
    "irdl_op_definition",
    "Dialect",
]
