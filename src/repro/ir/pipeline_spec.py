"""Textual pipeline specifications.

An MLIR-style, round-trippable syntax for describing a pass pipeline::

    convert-linalg-to-memref-stream,fuse-fill,unroll-and-jam{factor=4},
    lower-to-snitch{use-frep=true},...

Grammar::

    pipeline ::= pass ("," pass)*
    pass     ::= name ("{" option (" " option)* "}")?
    option   ::= key "=" value

Names and keys are kebab-case identifiers; values are integers, floats,
``true``/``false``, bare words, or double-quoted strings.  The parser
produces :class:`PassSpec` values and is purely syntactic — resolving a
name to an actual pass (and validating its options) is the job of the
pass registry (:mod:`repro.transforms.registry`).

:func:`parse_pipeline_spec` and :func:`print_pipeline_spec` round-trip:
``parse(print(specs)) == specs`` for any well-formed spec list, and
``print(parse(text))`` is the canonical form of ``text``.
"""

from __future__ import annotations

import inspect
import re
from dataclasses import dataclass, field

#: Scalar option values representable in a textual spec.
OptionValue = bool | int | float | str


class PipelineSpecError(ValueError):
    """A malformed pipeline spec, unknown pass, or bad pass option."""


@dataclass
class PassSpec:
    """One pass occurrence in a pipeline spec: a name plus options."""

    name: str
    options: dict[str, OptionValue] = field(default_factory=dict)

    def __str__(self) -> str:
        return print_pipeline_spec([self])


_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_-]*")
_INT_RE = re.compile(r"[+-]?\d+\Z")
_FLOAT_RE = re.compile(r"[+-]?(\d+\.\d*|\.\d+|\d+[eE][+-]?\d+)\Z")
#: Values printable without quotes.
_BARE_RE = re.compile(r"[A-Za-z0-9._/+-]+\Z")


class _Cursor:
    """Scanner over a spec string with position-annotated errors."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> PipelineSpecError:
        return PipelineSpecError(
            f"{message} at column {self.pos + 1} of pipeline spec "
            f"{self.text!r}"
        )

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def expect(self, char: str) -> None:
        if self.peek() != char:
            found = repr(self.peek()) if self.peek() else "end of spec"
            raise self.error(f"expected {char!r}, found {found}")
        self.pos += 1

    def name(self, what: str) -> str:
        match = _NAME_RE.match(self.text, self.pos)
        if match is None:
            found = repr(self.peek()) if self.peek() else "end of spec"
            raise self.error(f"expected {what}, found {found}")
        self.pos = match.end()
        return match.group()

    def value(self) -> OptionValue:
        if self.peek() == '"':
            return self._quoted()
        start = self.pos
        while self.peek() not in ("", " ", "\t", "}", ","):
            self.pos += 1
        token = self.text[start : self.pos]
        if not token:
            raise self.error("expected an option value")
        if token == "true":
            return True
        if token == "false":
            return False
        if _INT_RE.match(token):
            return int(token)
        if _FLOAT_RE.match(token):
            return float(token)
        return token

    def _quoted(self) -> str:
        self.expect('"')
        out = []
        while True:
            char = self.peek()
            if char == "":
                raise self.error("unterminated quoted value")
            self.pos += 1
            if char == '"':
                return "".join(out)
            if char == "\\":
                escaped = self.peek()
                if escaped not in ('"', "\\"):
                    raise self.error(f"bad escape '\\{escaped}'")
                self.pos += 1
                out.append(escaped)
            else:
                out.append(char)


#: Parsed-spec cache: named pipelines are parsed on every ``Compiler``
#: construction, and specs are immutable enough to share (the registry
#: only reads them).  Bounded to keep adversarial inputs from pinning
#: memory.
_PARSE_CACHE: dict[str, list[PassSpec]] = {}
_PARSE_CACHE_LIMIT = 256


def parse_pipeline_spec(text: str) -> list[PassSpec]:
    """Parse a textual pipeline spec into a list of :class:`PassSpec`.

    Raises :class:`PipelineSpecError` with the offending column on any
    syntax error.  An empty/whitespace spec is the empty pipeline.
    Results are cached per spec string; callers receive a fresh list of
    shared :class:`PassSpec` values.
    """
    cached = _PARSE_CACHE.get(text)
    if cached is None:
        cached = _parse_pipeline_spec_uncached(text)
        if len(_PARSE_CACHE) < _PARSE_CACHE_LIMIT:
            _PARSE_CACHE[text] = cached
    # Fresh PassSpec copies: options dicts are public and mutable, and
    # a caller's mutation must not poison the cache.
    return [PassSpec(spec.name, dict(spec.options)) for spec in cached]


def _parse_pipeline_spec_uncached(text: str) -> list[PassSpec]:
    cursor = _Cursor(text)
    specs: list[PassSpec] = []
    cursor.skip_ws()
    if cursor.peek() == "":
        return specs
    while True:
        cursor.skip_ws()
        name = cursor.name("a pass name")
        options: dict[str, OptionValue] = {}
        cursor.skip_ws()
        if cursor.peek() == "{":
            cursor.expect("{")
            cursor.skip_ws()
            while cursor.peek() != "}":
                key = cursor.name("an option name")
                cursor.skip_ws()
                cursor.expect("=")
                cursor.skip_ws()
                if key in options:
                    raise cursor.error(
                        f"duplicate option {key!r} for pass {name!r}"
                    )
                options[key] = cursor.value()
                cursor.skip_ws()
            cursor.expect("}")
            cursor.skip_ws()
        specs.append(PassSpec(name, options))
        if cursor.peek() == "":
            return specs
        cursor.expect(",")
        cursor.skip_ws()
        if cursor.peek() == "":
            raise cursor.error("expected a pass name after ','")


def _print_value(value: OptionValue) -> str:
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if (
        _BARE_RE.match(value)
        # Quote strings the parser would re-type (bools/numbers).
        and value not in ("true", "false")
        and not _INT_RE.match(value)
        and not _FLOAT_RE.match(value)
    ):
        return value
    escaped = value.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def print_pipeline_spec(specs) -> str:
    """Render specs in canonical textual form (inverse of the parser)."""
    parts = []
    for spec in specs:
        if spec.options:
            options = " ".join(
                f"{key}={_print_value(value)}"
                for key, value in spec.options.items()
            )
            parts.append(f"{spec.name}{{{options}}}")
        else:
            parts.append(spec.name)
    return ",".join(parts)


#: Per-pass-class constructor signature cache: ``inspect.signature`` is
#: far too slow to recompute on every ``pass_to_spec`` call (it showed
#: up as the dominant cost of ``Compiler()`` construction).
_SIGNATURE_CACHE: dict[type, "inspect.Signature"] = {}


def _class_signature(cls: type) -> "inspect.Signature":
    signature = _SIGNATURE_CACHE.get(cls)
    if signature is None:
        signature = inspect.signature(cls.__init__)
        _SIGNATURE_CACHE[cls] = signature
    return signature


def pass_to_spec(pass_) -> PassSpec:
    """Recover the :class:`PassSpec` of a constructed pass instance.

    Reads the pass constructor's signature and includes every scalar
    parameter whose current value (the attribute of the same name)
    differs from its default — so default-configured passes print as a
    bare name and ``print_pipeline_spec`` round-trips through the
    registry.
    """
    options: dict[str, OptionValue] = {}
    signature = _class_signature(type(pass_))
    for parameter in list(signature.parameters.values())[1:]:
        if parameter.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            continue
        if parameter.name == "name":  # a pass identity, never an option
            continue
        value = getattr(pass_, parameter.name, parameter.default)
        if value == parameter.default and type(value) is type(
            parameter.default
        ):
            continue
        if not isinstance(value, (bool, int, float, str)):
            continue
        options[parameter.name.replace("_", "-")] = value
    return PassSpec(pass_.name, options)


__all__ = [
    "OptionValue",
    "PassSpec",
    "PipelineSpecError",
    "parse_pipeline_spec",
    "pass_to_spec",
    "print_pipeline_spec",
]
