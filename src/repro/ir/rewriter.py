"""Pattern rewriting infrastructure.

The paper's lowerings are "structured as small, self-contained passes"
(Section 3.4) built from peephole rewrites ("simple peephole rewrites for
custom optimizations", Section 3.2).  This module provides the machinery:
:class:`RewritePattern` subclasses match one operation and mutate the IR
through a :class:`PatternRewriter`; :func:`apply_patterns` drives them to a
fixpoint over a module.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .core import Block, IRError, Operation, Region, SSAValue


class PatternRewriter:
    """Mutation interface handed to patterns.

    Tracks whether anything changed so the driver knows when the fixpoint
    is reached.
    """

    def __init__(self, current_op: Operation):
        self.current_op = current_op
        self.changed = False

    # -- insertion -------------------------------------------------------------

    def insert_before(
        self, ops: "Operation | Sequence[Operation]", anchor: Operation | None = None
    ) -> None:
        """Insert op(s) right before ``anchor`` (default: the matched op)."""
        anchor = anchor or self.current_op
        block = anchor.parent
        if block is None:
            raise IRError("anchor not attached to a block")
        for op in _as_ops(ops):
            block.insert_op_before(op, anchor)
        self.changed = True

    def insert_after(
        self, ops: "Operation | Sequence[Operation]", anchor: Operation | None = None
    ) -> None:
        """Insert op(s) right after ``anchor`` (default: the matched op)."""
        anchor = anchor or self.current_op
        block = anchor.parent
        if block is None:
            raise IRError("anchor not attached to a block")
        for op in reversed(_as_ops(ops)):
            block.insert_op_after(op, anchor)
        self.changed = True

    def insert_at_start(self, block: Block, ops) -> None:
        """Insert op(s) at the beginning of ``block``."""
        for op in reversed(_as_ops(ops)):
            block.insert_op(0, op)
        self.changed = True

    # -- replacement --------------------------------------------------------------

    def replace_op(
        self,
        op: Operation,
        new_ops: "Operation | Sequence[Operation]",
        new_results: Sequence[SSAValue] | None = None,
    ) -> None:
        """Replace ``op`` with ``new_ops``.

        ``new_results`` provides the replacement for each old result; when
        omitted the results of the last new op are used.
        """
        ops = _as_ops(new_ops)
        block = op.parent
        if block is None:
            raise IRError("cannot replace a detached operation")
        index = block.index_of(op)
        for offset, new_op in enumerate(ops):
            block.insert_op(index + offset, new_op)
        if new_results is None:
            new_results = list(ops[-1].results) if ops else []
        if len(new_results) != len(op.results):
            raise IRError(
                f"replacing {op.name}: expected {len(op.results)} results, "
                f"got {len(new_results)}"
            )
        for old, new in zip(op.results, new_results):
            old.replace_all_uses_with(new)
        op.erase()
        self.changed = True

    def replace_matched_op(self, new_ops, new_results=None) -> None:
        """Replace the op the pattern matched."""
        self.replace_op(self.current_op, new_ops, new_results)

    def erase_op(self, op: Operation) -> None:
        """Erase ``op`` (results must be unused)."""
        op.erase()
        self.changed = True

    def erase_matched_op(self) -> None:
        """Erase the op the pattern matched."""
        self.erase_op(self.current_op)

    # -- block surgery ---------------------------------------------------------------

    def inline_block_before(
        self,
        block: Block,
        anchor: Operation,
        arg_values: Sequence[SSAValue],
    ) -> None:
        """Splice all ops of ``block`` before ``anchor``.

        Block arguments are replaced with ``arg_values``.
        """
        if len(arg_values) != len(block.args):
            raise IRError(
                f"inlining block with {len(block.args)} args but "
                f"{len(arg_values)} values were supplied"
            )
        for arg, value in zip(block.args, arg_values):
            arg.replace_all_uses_with(value)
        for op in list(block.ops):
            op.detach()
            anchor.parent.insert_op_before(op, anchor)
        self.changed = True


def _as_ops(ops) -> list[Operation]:
    if isinstance(ops, Operation):
        return [ops]
    return list(ops)


class RewritePattern:
    """One rewrite rule; subclasses implement :meth:`match_and_rewrite`."""

    def match_and_rewrite(
        self, op: Operation, rewriter: PatternRewriter
    ) -> None:
        """Attempt to rewrite ``op``; mutate through ``rewriter`` on match."""
        raise NotImplementedError


class TypedPattern(RewritePattern):
    """A pattern that fires only on a specific operation class."""

    #: Operation class this pattern applies to.
    op_type: type[Operation] = Operation

    def match_and_rewrite(self, op, rewriter) -> None:
        if isinstance(op, self.op_type):
            self.rewrite(op, rewriter)

    def rewrite(self, op, rewriter: PatternRewriter) -> None:
        """Type-narrowed rewrite hook."""
        raise NotImplementedError


def apply_patterns(
    root: Operation,
    patterns: Iterable[RewritePattern],
    max_iterations: int = 200,
) -> bool:
    """Apply ``patterns`` over all ops under ``root`` until fixpoint.

    Returns whether anything changed.  A deliberately simple worklist: each
    round re-walks the IR, which is plenty for micro-kernel-sized modules
    and keeps the driver easy to reason about.
    """
    pattern_list = list(patterns)
    changed_any = False
    for _ in range(max_iterations):
        changed_this_round = False
        for op in list(root.walk()):
            if op.parent is None and op is not root:
                continue  # erased by an earlier pattern this round
            for pattern in pattern_list:
                rewriter = PatternRewriter(op)
                pattern.match_and_rewrite(op, rewriter)
                if rewriter.changed:
                    changed_this_round = True
                    changed_any = True
                    break
            # A changed op may have been erased; move on to a fresh walk
            # entry either way.
        if not changed_this_round:
            return changed_any
    raise IRError("pattern application did not converge")


__all__ = [
    "PatternRewriter",
    "RewritePattern",
    "TypedPattern",
    "apply_patterns",
]
