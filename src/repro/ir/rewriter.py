"""Pattern rewriting infrastructure.

The paper's lowerings are "structured as small, self-contained passes"
(Section 3.4) built from peephole rewrites ("simple peephole rewrites for
custom optimizations", Section 3.2).  This module provides the machinery:
:class:`RewritePattern` subclasses match one operation and mutate the IR
through a :class:`PatternRewriter`; :func:`apply_patterns` drives them
with a greedy worklist.

The driver is worklist-based so pattern application is ~O(rewrites)
instead of O(rounds x ops x patterns): the worklist is seeded with one
pre-order walk, patterns are dispatched from a per-op-class index
(:class:`TypedPattern` declares its class; generic patterns try every
op), and a successful rewrite re-enqueues only the new ops and the users
of changed values.  The original fixpoint re-walk driver is retained as
:func:`apply_patterns_naive` — the reference oracle for differential
tests.  Both drivers update the module-level :data:`REWRITE_STATS`
counters, which the pass manager snapshots around every pass.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

from ..obs.metrics import METRICS
from .core import Block, IRError, Operation, Region, SSAValue


class RewriteStats:
    """Pattern-driver counters (ops visited, invocations, rewrites).

    ``PassManager`` snapshots these around each pass; the compile-time
    benchmark and the ``perf_smoke`` tests read them to track driver
    efficiency across PRs.

    Since PR 10 this is a thin view over ``ir_rewrite_*`` counters in
    the observability registry (:data:`repro.obs.metrics.METRICS`), so
    concurrent compiles — the service's thread-per-connection loop —
    update them atomically.  The drivers accumulate plain local ints in
    their hot loops and flush once per ``apply_patterns`` call via
    :meth:`add`, so the migration costs the hot path nothing.
    """

    __slots__ = ("_visited", "_invoked", "_applied")

    def __init__(self, registry=None):
        registry = registry if registry is not None else METRICS
        self._visited = registry.counter("ir_rewrite_ops_visited")
        self._invoked = registry.counter("ir_rewrite_pattern_invocations")
        self._applied = registry.counter("ir_rewrite_rewrites_applied")

    def add(
        self, visited: int = 0, invoked: int = 0, applied: int = 0
    ) -> None:
        """Atomically flush a driver's locally accumulated counts."""
        if visited:
            self._visited.inc(visited)
        if invoked:
            self._invoked.inc(invoked)
        if applied:
            self._applied.inc(applied)

    @property
    def ops_visited(self) -> int:
        return self._visited.value

    @property
    def pattern_invocations(self) -> int:
        return self._invoked.value

    @property
    def rewrites_applied(self) -> int:
        return self._applied.value

    def reset(self) -> None:
        """Zero all counters."""
        self._visited.set(0)
        self._invoked.set(0)
        self._applied.set(0)

    def snapshot(self) -> dict[str, int]:
        """The current counter values as a plain dict."""
        return {
            "ops_visited": self._visited.value,
            "pattern_invocations": self._invoked.value,
            "rewrites_applied": self._applied.value,
        }

    def delta(self, since: dict[str, int]) -> dict[str, int]:
        """Counter increments since a previous :meth:`snapshot`."""
        now = self.snapshot()
        return {key: now[key] - since[key] for key in now}


#: Process-wide driver counters (both drivers update them).
REWRITE_STATS = RewriteStats()


class PatternRewriter:
    """Mutation interface handed to patterns.

    Tracks whether anything changed so the driver knows when the
    fixpoint is reached, which ops were inserted and which values were
    substituted — the worklist driver re-enqueues exactly those.
    """

    def __init__(self, current_op: Operation):
        self.current_op = current_op
        self.changed = False
        #: Ops inserted by the pattern (worklist re-enqueue roots).
        self.added_ops: list[Operation] = []
        #: Values that replaced old results (their users re-enqueue).
        self.replaced_values: list[SSAValue] = []
        #: Values that lost a use through an erasure: their producers
        #: (possibly newly dead) and remaining users re-enqueue.
        self.freed_values: list[SSAValue] = []
        #: Block neighbours of erased ops: position-dependent patterns
        #: (e.g. prev_op adjacency matches) become applicable when an
        #: intervening op disappears, so the ops around an erasure are
        #: re-enqueued too.
        self.adjacent_ops: list[Operation] = []

    # -- insertion -------------------------------------------------------------

    def insert_before(
        self, ops: "Operation | Sequence[Operation]", anchor: Operation | None = None
    ) -> None:
        """Insert op(s) right before ``anchor`` (default: the matched op)."""
        anchor = anchor or self.current_op
        block = anchor.parent
        if block is None:
            raise IRError("anchor not attached to a block")
        for op in _as_ops(ops):
            block.insert_op_before(op, anchor)
            self.added_ops.append(op)
        self.changed = True

    def insert_after(
        self, ops: "Operation | Sequence[Operation]", anchor: Operation | None = None
    ) -> None:
        """Insert op(s) right after ``anchor`` (default: the matched op)."""
        anchor = anchor or self.current_op
        block = anchor.parent
        if block is None:
            raise IRError("anchor not attached to a block")
        for op in reversed(_as_ops(ops)):
            block.insert_op_after(op, anchor)
            self.added_ops.append(op)
        self.changed = True

    def insert_at_start(self, block: Block, ops) -> None:
        """Insert op(s) at the beginning of ``block``."""
        for op in reversed(_as_ops(ops)):
            first = block.first_op
            if first is None:
                block.add_op(op)
            else:
                block.insert_op_before(op, first)
            self.added_ops.append(op)
        self.changed = True

    # -- replacement --------------------------------------------------------------

    def replace_op(
        self,
        op: Operation,
        new_ops: "Operation | Sequence[Operation]",
        new_results: Sequence[SSAValue] | None = None,
    ) -> None:
        """Replace ``op`` with ``new_ops``.

        ``new_results`` provides the replacement for each old result; when
        omitted the results of the last new op are used.
        """
        ops = _as_ops(new_ops)
        block = op.parent
        if block is None:
            raise IRError("cannot replace a detached operation")
        for new_op in ops:
            block.insert_op_before(new_op, op)
            self.added_ops.append(new_op)
        if new_results is None:
            new_results = list(ops[-1].results) if ops else []
        if len(new_results) != len(op.results):
            raise IRError(
                f"replacing {op.name}: expected {len(op.results)} results, "
                f"got {len(new_results)}"
            )
        for old, new in zip(op.results, new_results):
            old.replace_all_uses_with(new)
            self.replaced_values.append(new)
        self._record_freed(op)
        op.erase()
        self.changed = True

    def replace_matched_op(self, new_ops, new_results=None) -> None:
        """Replace the op the pattern matched."""
        self.replace_op(self.current_op, new_ops, new_results)

    def erase_op(self, op: Operation) -> None:
        """Erase ``op`` (results must be unused)."""
        self._record_freed(op)
        op.erase()
        self.changed = True

    def _record_freed(self, op: Operation) -> None:
        """Record every value losing a use when ``op`` is erased —
        including uses held by ops nested inside its regions, which
        ``drop_all_references`` will drop along with the subtree —
        plus the op's block neighbours (adjacency matches may open up
        once the op is gone)."""
        if op.prev_op is not None:
            self.adjacent_ops.append(op.prev_op)
        if op.next_op is not None:
            self.adjacent_ops.append(op.next_op)
        if op.regions:
            for nested in op.walk():
                self.freed_values.extend(nested._operands)
        else:
            self.freed_values.extend(op._operands)

    def erase_matched_op(self) -> None:
        """Erase the op the pattern matched."""
        self.erase_op(self.current_op)

    # -- block surgery ---------------------------------------------------------------

    def inline_block_before(
        self,
        block: Block,
        anchor: Operation,
        arg_values: Sequence[SSAValue],
    ) -> None:
        """Splice all ops of ``block`` before ``anchor``.

        Block arguments are replaced with ``arg_values``.
        """
        if len(arg_values) != len(block.args):
            raise IRError(
                f"inlining block with {len(block.args)} args but "
                f"{len(arg_values)} values were supplied"
            )
        for arg, value in zip(block.args, arg_values):
            arg.replace_all_uses_with(value)
            self.replaced_values.append(value)
        for op in block.ops:
            op.detach()
            anchor.parent.insert_op_before(op, anchor)
            self.added_ops.append(op)
        self.changed = True


def _as_ops(ops) -> list[Operation]:
    if isinstance(ops, Operation):
        return [ops]
    return list(ops)


class RewritePattern:
    """One rewrite rule; subclasses implement :meth:`match_and_rewrite`."""

    def match_and_rewrite(
        self, op: Operation, rewriter: PatternRewriter
    ) -> None:
        """Attempt to rewrite ``op``; mutate through ``rewriter`` on match."""
        raise NotImplementedError


class TypedPattern(RewritePattern):
    """A pattern that fires only on a specific operation class.

    Besides the type-narrowed :meth:`rewrite` hook, ``op_type`` lets the
    worklist driver index the pattern by op class so non-matching ops
    never even invoke it.
    """

    #: Operation class this pattern applies to.
    op_type: type[Operation] = Operation

    def match_and_rewrite(self, op, rewriter) -> None:
        if isinstance(op, self.op_type):
            self.rewrite(op, rewriter)

    def rewrite(self, op, rewriter: PatternRewriter) -> None:
        """Type-narrowed rewrite hook."""
        raise NotImplementedError


class PatternIndex:
    """Dispatch table: op class -> the patterns that can match it.

    :class:`TypedPattern` entries apply only to subclasses of their
    ``op_type``; plain patterns apply to every op.  The per-class
    candidate tuple (in original pattern order) is computed once per
    concrete op class and cached.
    """

    __slots__ = ("_patterns", "_cache")

    def __init__(self, patterns: Iterable[RewritePattern]):
        self._patterns: list[tuple[type[Operation], RewritePattern]] = [
            (
                pattern.op_type
                if isinstance(pattern, TypedPattern)
                else Operation,
                pattern,
            )
            for pattern in patterns
        ]
        self._cache: dict[type, tuple[RewritePattern, ...]] = {}

    def __len__(self) -> int:
        return len(self._patterns)

    def patterns_for(
        self, op_class: type[Operation]
    ) -> tuple[RewritePattern, ...]:
        """Candidate patterns for ``op_class``, in registration order."""
        cached = self._cache.get(op_class)
        if cached is None:
            cached = tuple(
                pattern
                for op_type, pattern in self._patterns
                if issubclass(op_class, op_type)
            )
            self._cache[op_class] = cached
        return cached


def apply_patterns(
    root: Operation,
    patterns: Iterable[RewritePattern],
    max_iterations: int = 200,
) -> bool:
    """Greedily apply ``patterns`` under ``root`` until fixpoint.

    Returns whether anything changed.  Worklist-driven: one walk seeds
    the list, rewrites re-enqueue only their follow-up work (ops the
    pattern inserted, users of substituted values, and — for in-place
    updates — the matched op's own subtree), and entries whose parent
    chain no longer reaches ``root`` (erased subtrees) are dropped.

    ``max_iterations`` bounds the total number of rewrites at
    ``max_iterations * initial-op-count``; exceeding it raises
    :class:`IRError`, mirroring the fixpoint driver's divergence check.
    """
    index = PatternIndex(patterns)
    if not len(index):
        return False
    stats = REWRITE_STATS
    patterns_for = index.patterns_for
    dispatch = index._cache
    # Seed with candidate ops only: ops no pattern can match never
    # enter the worklist (the walk itself is still one linear pass).
    worklist: deque[Operation] = deque()
    seed_size = 0
    for op in root.walk():
        seed_size += 1
        cls = type(op)
        cands = dispatch.get(cls)
        if cands is None:
            cands = patterns_for(cls)
        if cands:
            worklist.append(op)
    enqueued = {id(op) for op in worklist}
    rewrite_budget = max_iterations * max(1, seed_size)
    changed_any = False
    rewrites = 0
    # Local accumulators; flushed to the shared atomic counters once
    # per call (including on divergence) so the hot loop stays lockless.
    visited = invoked = applied = 0

    def enqueue(op: Operation) -> None:
        if id(op) not in enqueued and patterns_for(type(op)):
            enqueued.add(id(op))
            worklist.append(op)

    try:
        while worklist:
            op = worklist.popleft()
            enqueued.discard(id(op))
            # Drop stale entries: ops erased since being enqueued,
            # including ops nested inside an erased ancestor (their own
            # parent link is still set — only the subtree root was
            # detached).
            if op is not root and not op.is_attached_to(root):
                continue
            visited += 1
            for pattern in patterns_for(type(op)):
                invoked += 1
                rewriter = PatternRewriter(op)
                pattern.match_and_rewrite(op, rewriter)
                if not rewriter.changed:
                    continue
                applied += 1
                changed_any = True
                rewrites += 1
                if rewrites > rewrite_budget:
                    raise IRError("pattern application did not converge")
                for new_op in rewriter.added_ops:
                    if new_op.parent is None:
                        continue
                    if new_op.regions:
                        for nested in new_op.walk():
                            enqueue(nested)
                    else:
                        enqueue(new_op)
                for value in rewriter.replaced_values:
                    for use in value.uses:
                        enqueue(use.operation)
                for value in rewriter.freed_values:
                    # An erasure dropped a use: the producer may now be
                    # dead, and remaining users may match differently
                    # (e.g. single-use fusion guards).
                    owner = value.owner
                    if isinstance(owner, Operation):
                        enqueue(owner)
                    for use in value.uses:
                        enqueue(use.operation)
                for neighbour in rewriter.adjacent_ops:
                    if neighbour.parent is not None:
                        enqueue(neighbour)
                if op.parent is not None or op is root:
                    # In-place update: revisit the op and anything
                    # nested under it (a pattern may swap whole body
                    # blocks).
                    if op.regions:
                        for nested in op.walk():
                            enqueue(nested)
                    else:
                        enqueue(op)
                break
    finally:
        stats.add(visited, invoked, applied)
    return changed_any


def apply_patterns_naive(
    root: Operation,
    patterns: Iterable[RewritePattern],
    max_iterations: int = 200,
) -> bool:
    """Reference driver: re-walk the module to fixpoint each round.

    The original O(rounds x ops x patterns) formulation.  Kept as the
    differential-testing oracle for :func:`apply_patterns` — both must
    produce structurally identical IR on confluent pattern sets.
    """
    pattern_list = list(patterns)
    stats = REWRITE_STATS
    changed_any = False
    visited = invoked = applied = 0
    try:
        for _ in range(max_iterations):
            changed_this_round = False
            for op in list(root.walk()):
                if op is not root and not op.is_attached_to(root):
                    continue  # erased by an earlier pattern this round
                visited += 1
                for pattern in pattern_list:
                    invoked += 1
                    rewriter = PatternRewriter(op)
                    pattern.match_and_rewrite(op, rewriter)
                    if rewriter.changed:
                        applied += 1
                        changed_this_round = True
                        changed_any = True
                        break
                # A changed op may have been erased; move on to a fresh
                # walk entry either way.
            if not changed_this_round:
                return changed_any
        raise IRError("pattern application did not converge")
    finally:
        stats.add(visited, invoked, applied)


__all__ = [
    "PatternRewriter",
    "RewritePattern",
    "TypedPattern",
    "PatternIndex",
    "RewriteStats",
    "REWRITE_STATS",
    "apply_patterns",
    "apply_patterns_naive",
]
