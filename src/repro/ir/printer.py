"""Textual IR printing.

Prints operations in an MLIR-like generic syntax so tests, examples and the
progressive-lowering demos can show the IR between pipeline stages:

    %2 = "arith.addf"(%0, %1) : (f64, f64) -> f64

Value names are stable within one print: name hints are honoured and
deduplicated, everything else is numbered.
"""

from __future__ import annotations

import io

from .attributes import Attribute
from .core import Block, BlockArgument, Operation, Region, SSAValue


class Printer:
    """Stateful printer assigning names to SSA values on the fly."""

    def __init__(self):
        self._names: dict[int, str] = {}
        self._used_names: set[str] = set()
        self._counter = 0
        self._out = io.StringIO()
        self._indent = 0

    # -- value naming ----------------------------------------------------------

    def name_of(self, value: SSAValue) -> str:
        """The printed name of ``value`` (allocating one if needed)."""
        key = id(value)
        if key in self._names:
            return self._names[key]
        if value.name_hint and value.name_hint not in self._used_names:
            name = value.name_hint
        else:
            name = str(self._counter)
            self._counter += 1
        self._names[key] = name
        self._used_names.add(name)
        return name

    # -- emission -----------------------------------------------------------------

    def _write(self, text: str) -> None:
        self._out.write(text)

    def _newline(self) -> None:
        self._out.write("\n" + "  " * self._indent)

    def print_operation(self, op: Operation) -> None:
        """Print one operation (with nested regions) at current indent."""
        if op.results:
            names = ", ".join(f"%{self.name_of(r)}" for r in op.results)
            self._write(f"{names} = ")
        self._write(f'"{op.name}"')
        self._write("(")
        self._write(
            ", ".join(f"%{self.name_of(v)}" for v in op.operands)
        )
        self._write(")")
        if op.regions:
            self._write(" (")
            for i, region in enumerate(op.regions):
                if i:
                    self._write(", ")
                self.print_region(region)
            self._write(")")
        if op.attributes:
            pairs = ", ".join(
                f"{k} = {self.attr_str(v)}"
                for k, v in sorted(op.attributes.items())
            )
            self._write(" {" + pairs + "}")
        in_types = ", ".join(str(v.type) for v in op.operands)
        out_types = ", ".join(str(r.type) for r in op.results)
        self._write(f" : ({in_types}) -> ({out_types})")

    def print_region(self, region: Region) -> None:
        """Print a region in braces, one block per label."""
        self._write("{")
        self._indent += 1
        for i, block in enumerate(region.blocks):
            self.print_block(block, i)
        self._indent -= 1
        self._newline()
        self._write("}")

    def print_block(self, block: Block, index: int) -> None:
        """Print a block label (with arguments) and its operations."""
        self._newline()
        args = ", ".join(
            f"%{self.name_of(a)} : {a.type}" for a in block.args
        )
        self._write(f"^{index}({args}):")
        self._indent += 1
        for op in block.ops:
            self._newline()
            self.print_operation(op)
        self._indent -= 1

    @staticmethod
    def attr_str(attr: Attribute) -> str:
        """The textual form of an attribute."""
        return str(attr)

    def result(self) -> str:
        """The accumulated text."""
        return self._out.getvalue()


def print_op(op: Operation) -> str:
    """Render ``op`` (and everything nested in it) to text."""
    printer = Printer()
    printer.print_operation(op)
    return printer.result() + "\n"


def value_name(value: SSAValue) -> str:
    """A short debugging name for a value outside a full print."""
    if value.name_hint:
        return f"%{value.name_hint}"
    if isinstance(value, BlockArgument):
        return f"%arg{value.index}"
    return "%?"


__all__ = ["Printer", "print_op", "value_name"]
