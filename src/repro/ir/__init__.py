"""SSA-with-regions IR core.

A from-scratch implementation of the MLIR/xDSL concepts the paper's
multi-level backend is built on (paper Table 4): operations, SSA values,
attributes/types, blocks and regions, plus builders, printing, verification,
pattern rewriting and a pass manager.
"""

from .attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    DenseIntAttr,
    FloatAttr,
    FloatType,
    FunctionType,
    IndexType,
    IntAttr,
    IntegerType,
    MemRefType,
    StringAttr,
    SymbolRefAttr,
    TypeAttribute,
    f32,
    f64,
    i1,
    i32,
    i64,
    index,
)
from .affine_map import (
    AffineBinaryExpr,
    AffineConstantExpr,
    AffineDimExpr,
    AffineExpr,
    AffineMap,
)
from .builder import Builder, InsertPoint
from .core import (
    Block,
    BlockArgument,
    BlockOps,
    IRError,
    OperandsView,
    Operation,
    OpResult,
    Region,
    SSAValue,
    Use,
    single_block_region,
)
from .parser import Parser, ParseError, parse_module, parse_op
from .pass_manager import (
    FunctionPass,
    LambdaPass,
    ModulePass,
    PassInstrumentation,
    PassManager,
    PrintIRInstrumentation,
)
from .pipeline_spec import (
    PassSpec,
    PipelineSpecError,
    parse_pipeline_spec,
    pass_to_spec,
    print_pipeline_spec,
)
from .printer import Printer, print_op, value_name
from .rewriter import (
    REWRITE_STATS,
    PatternIndex,
    PatternRewriter,
    RewritePattern,
    RewriteStats,
    TypedPattern,
    apply_patterns,
    apply_patterns_naive,
)
from .traits import (
    ConstantLike,
    HasMemoryEffect,
    IsolatedFromAbove,
    IsTerminator,
    OpTrait,
    Pure,
    SameOperandsAndResultType,
)
from .verifier import VerificationError, verify

__all__ = [
    # attributes
    "Attribute", "TypeAttribute", "IntegerType", "IndexType", "FloatType",
    "IntAttr", "BoolAttr", "FloatAttr", "StringAttr", "ArrayAttr",
    "DenseIntAttr", "SymbolRefAttr", "MemRefType", "FunctionType",
    "i1", "i32", "i64", "index", "f32", "f64",
    # affine
    "AffineExpr", "AffineDimExpr", "AffineConstantExpr", "AffineBinaryExpr",
    "AffineMap",
    # core
    "IRError", "Use", "SSAValue", "OpResult", "BlockArgument", "Operation",
    "Block", "Region", "single_block_region", "BlockOps", "OperandsView",
    # builder
    "Builder", "InsertPoint",
    # printer / parser
    "Printer", "print_op", "value_name",
    "Parser", "ParseError", "parse_op", "parse_module",
    # rewriter
    "PatternRewriter", "RewritePattern", "TypedPattern", "apply_patterns",
    "apply_patterns_naive", "PatternIndex", "RewriteStats", "REWRITE_STATS",
    # traits
    "OpTrait", "IsTerminator", "Pure", "HasMemoryEffect",
    "IsolatedFromAbove", "SameOperandsAndResultType", "ConstantLike",
    # passes / verification
    "ModulePass", "FunctionPass", "PassManager", "LambdaPass",
    "PassInstrumentation", "PrintIRInstrumentation",
    "VerificationError", "verify",
    # pipeline specs
    "PassSpec", "PipelineSpecError", "parse_pipeline_spec",
    "pass_to_spec", "print_pipeline_spec",
]
