"""Affine expressions and maps.

``linalg.generic`` and ``memref_stream.generic`` describe how loop iteration
indices map onto operand elements through *affine maps* (paper Section 2.2:
"affine mappings between iteration space and operand data").  The stream
lowering (Section 3.4) turns these maps plus the iteration bounds into the
per-dimension strides programmed into the Snitch stream semantic registers.

This module implements the small affine sub-language needed for that:
dimension variables, integer constants, addition and multiplication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .attributes import Attribute


class AffineExpr:
    """Base class of affine expressions over dimension variables."""

    def evaluate(self, dims: Sequence[int]) -> int:
        """Evaluate the expression for concrete dimension values."""
        raise NotImplementedError

    def is_pure_affine(self) -> bool:
        """Whether the expression is affine (linear + constant)."""
        return True

    # Operator sugar -------------------------------------------------------

    def __add__(self, other: "AffineExpr | int") -> "AffineExpr":
        return AffineBinaryExpr("+", self, _as_expr(other))

    def __radd__(self, other: int) -> "AffineExpr":
        return _as_expr(other) + self

    def __mul__(self, other: "AffineExpr | int") -> "AffineExpr":
        return AffineBinaryExpr("*", self, _as_expr(other))

    def __rmul__(self, other: int) -> "AffineExpr":
        return _as_expr(other) * self


@dataclass(frozen=True)
class AffineDimExpr(AffineExpr):
    """A reference to iteration dimension ``position`` (printed ``dN``)."""

    position: int

    def evaluate(self, dims: Sequence[int]) -> int:
        return dims[self.position]

    def __str__(self) -> str:
        return f"d{self.position}"


@dataclass(frozen=True)
class AffineConstantExpr(AffineExpr):
    """An integer constant."""

    value: int

    def evaluate(self, dims: Sequence[int]) -> int:
        return self.value

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class AffineBinaryExpr(AffineExpr):
    """A binary affine expression; ``kind`` is ``"+"`` or ``"*"``."""

    kind: str
    lhs: AffineExpr
    rhs: AffineExpr

    def __post_init__(self):
        if self.kind not in ("+", "*"):
            raise ValueError(f"unsupported affine operator {self.kind!r}")

    def evaluate(self, dims: Sequence[int]) -> int:
        left = self.lhs.evaluate(dims)
        right = self.rhs.evaluate(dims)
        return left + right if self.kind == "+" else left * right

    def __str__(self) -> str:
        return f"({self.lhs} {self.kind} {self.rhs})"


def _as_expr(value: "AffineExpr | int") -> AffineExpr:
    if isinstance(value, AffineExpr):
        return value
    return AffineConstantExpr(int(value))


def substitute_dims(
    expr: AffineExpr, mapping: dict[int, AffineExpr]
) -> AffineExpr:
    """Replace dimension expressions according to ``mapping``.

    Dimensions absent from the mapping are left untouched.  Used by
    unroll-and-jam (``d -> d_outer * F + d_inner``) and by iteration-space
    permutations.
    """
    if isinstance(expr, AffineDimExpr):
        return mapping.get(expr.position, expr)
    if isinstance(expr, AffineBinaryExpr):
        return AffineBinaryExpr(
            expr.kind,
            substitute_dims(expr.lhs, mapping),
            substitute_dims(expr.rhs, mapping),
        )
    return expr


def expr_uses_dim(expr: AffineExpr, position: int) -> bool:
    """Whether ``expr`` references dimension ``position``."""
    if isinstance(expr, AffineDimExpr):
        return expr.position == position
    if isinstance(expr, AffineBinaryExpr):
        return expr_uses_dim(expr.lhs, position) or expr_uses_dim(
            expr.rhs, position
        )
    return False


def permute_map(amap: "AffineMap", permutation: Sequence[int]) -> "AffineMap":
    """Rewrite a map for a permuted iteration space.

    ``permutation[new]`` is the old dimension index that new dimension
    ``new`` iterates, so every ``d_old`` in the map becomes ``d_new``.
    Used by the linalg conversion (normalising to parallel-then-
    reduction order) and by the interchange scheduling pass.
    """
    mapping = {
        old: AffineDimExpr(new) for new, old in enumerate(permutation)
    }
    exprs = [substitute_dims(e, mapping) for e in amap.exprs]
    return AffineMap(amap.num_dims, exprs)


@dataclass(frozen=True)
class AffineMap(Attribute):
    """A multi-dimensional affine map ``(d0, ..., dN-1) -> (e0, ..., eM-1)``.

    Used both as a ``linalg`` indexing map and, via :meth:`strides`, to
    derive the stride pattern of a stream semantic register.
    """

    num_dims: int
    exprs: tuple[AffineExpr, ...]

    def __init__(self, num_dims: int, exprs: Sequence[AffineExpr]):
        object.__setattr__(self, "num_dims", num_dims)
        object.__setattr__(self, "exprs", tuple(exprs))
        # Derived-data cache (unit deltas, linearity): maps are
        # immutable, but these are re-queried by every scheduling pass
        # and verifier round.  Not a dataclass field — stays out of
        # __eq__/__hash__/__repr__.
        object.__setattr__(self, "_derived", {})

    # -- constructors -------------------------------------------------------

    @staticmethod
    def identity(rank: int) -> "AffineMap":
        """``(d0, ..., dN-1) -> (d0, ..., dN-1)``."""
        return AffineMap(rank, tuple(AffineDimExpr(i) for i in range(rank)))

    @staticmethod
    def from_callable(num_dims: int, fn) -> "AffineMap":
        """Build a map from a Python lambda over dim expressions."""
        dims = tuple(AffineDimExpr(i) for i in range(num_dims))
        result = fn(*dims)
        if isinstance(result, AffineExpr):
            result = (result,)
        return AffineMap(num_dims, tuple(_as_expr(e) for e in result))

    @staticmethod
    def constant(num_dims: int, values: Sequence[int]) -> "AffineMap":
        """A map producing fixed constants regardless of the input dims."""
        return AffineMap(
            num_dims, tuple(AffineConstantExpr(int(v)) for v in values)
        )

    # -- queries -------------------------------------------------------------

    @property
    def num_results(self) -> int:
        """Number of result expressions."""
        return len(self.exprs)

    def evaluate(self, dims: Sequence[int]) -> tuple[int, ...]:
        """Apply the map to concrete dimension values."""
        if len(dims) != self.num_dims:
            raise ValueError(
                f"expected {self.num_dims} dims, got {len(dims)}"
            )
        return tuple(e.evaluate(dims) for e in self.exprs)

    def is_linear(self) -> bool:
        """Check linearity by probing superposition on the unit vectors."""
        cached = self._derived.get("is_linear")
        if cached is not None:
            return cached
        zero = self.evaluate((0,) * self.num_dims)
        deltas = self.unit_deltas()
        result = True
        for d in range(self.num_dims):
            unit = deltas[d]
            for scale in (1, 2, 5):
                point = [0] * self.num_dims
                point[d] = scale
                got = self.evaluate(point)
                want = tuple(z + scale * u for z, u in zip(zero, unit))
                if got != want:
                    result = False
                    break
            if not result:
                break
        self._derived["is_linear"] = result
        return result

    def unit_deltas(self) -> list[tuple[int, ...]]:
        """Per-dimension deltas of the results for a unit step in that dim."""
        cached = self._derived.get("unit_deltas")
        if cached is None:
            zero = self.evaluate((0,) * self.num_dims)
            cached = []
            for d in range(self.num_dims):
                point = [0] * self.num_dims
                point[d] = 1
                at_one = self.evaluate(point)
                cached.append(tuple(a - z for a, z in zip(at_one, zero)))
            self._derived["unit_deltas"] = cached
        return list(cached)

    def compose_with_values(
        self, dims: Sequence[int]
    ) -> tuple[int, ...]:  # pragma: no cover - alias
        """Alias of :meth:`evaluate` kept for MLIR-API familiarity."""
        return self.evaluate(dims)

    def strides(self, operand_strides: Sequence[int]) -> tuple[int, ...]:
        """Linear stride of the mapped flat offset per iteration dimension.

        ``operand_strides`` are the operand's strides (in elements or bytes);
        the result has one entry per *iteration* dimension and feeds directly
        into a stream stride pattern.  Raises ``ValueError`` for non-linear
        maps, which cannot be streamed.
        """
        if len(operand_strides) != self.num_results:
            raise ValueError(
                f"map has {self.num_results} results but operand has "
                f"{len(operand_strides)} strides"
            )
        if not self.is_linear():
            raise ValueError(f"map {self} is not linear; cannot stream")
        out = []
        for delta in self.unit_deltas():
            out.append(sum(d * s for d, s in zip(delta, operand_strides)))
        return tuple(out)

    def offset(self, operand_strides: Sequence[int]) -> int:
        """Constant flat offset of the map at the all-zero iteration point."""
        zero = self.evaluate((0,) * self.num_dims)
        return sum(z * s for z, s in zip(zero, operand_strides))

    def __str__(self) -> str:
        dims = ", ".join(f"d{i}" for i in range(self.num_dims))
        exprs = ", ".join(str(e) for e in self.exprs)
        return f"affine_map<({dims}) -> ({exprs})>"


__all__ = [
    "AffineExpr",
    "AffineDimExpr",
    "AffineConstantExpr",
    "AffineBinaryExpr",
    "AffineMap",
    "permute_map",
    "substitute_dims",
    "expr_uses_dim",
]
