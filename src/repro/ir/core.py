"""Core SSA-with-regions IR data structures.

This is the structural heart of the reproduction: operations with operands,
results, attributes and nested regions; regions with blocks; blocks with
arguments and a doubly-linked list of operations.  The design follows MLIR
(paper Section 2.1 and Table 4): instructions are *operations*, instruction
operands are *SSA values*, registers are encoded in *types*, and scoping is
expressed with *blocks and regions*.

Use-def chains are maintained eagerly so the register allocator can perform
its backwards walk (Section 3.3) and so rewrites can do RAUW safely.

Operations are linked into their block *intrusively*: every
:class:`Operation` carries ``prev_op``/``next_op`` pointers, so
insert-before/after, detach and erase are O(1) regardless of block size —
the property that keeps rewriting linear in module size on the large
unrolled kernels of the evaluation sweeps (Figures 10/11).
:attr:`Block.ops` and :attr:`Operation.operands` are lightweight live
views, not per-access tuple copies.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence, TypeVar

from .attributes import Attribute, TypeAttribute

OpT = TypeVar("OpT", bound="Operation")


class IRError(Exception):
    """Raised on malformed IR (verification failures, bad mutations)."""


# ---------------------------------------------------------------------------
# SSA values
# ---------------------------------------------------------------------------


class Use:
    """One use of an SSA value: ``operation.operands[index]``."""

    __slots__ = ("operation", "index")

    def __init__(self, operation: "Operation", index: int):
        self.operation = operation
        self.index = index

    def __repr__(self) -> str:
        return f"Use({self.operation.name}, {self.index})"


class SSAValue:
    """A value in SSA form: defined once, used many times.

    ``type`` is the value's type attribute and ``uses`` the live use list.
    """

    __slots__ = ("type", "uses", "name_hint")

    def __init__(self, type: TypeAttribute, name_hint: str | None = None):
        self.type = type
        self.uses: list[Use] = []
        self.name_hint = name_hint

    # -- use management -----------------------------------------------------

    def add_use(self, use: Use) -> None:
        """Record a new use of this value."""
        self.uses.append(use)

    def remove_use(self, operation: "Operation", index: int) -> None:
        """Drop the use at ``operation.operands[index]``."""
        for i, use in enumerate(self.uses):
            if use.operation is operation and use.index == index:
                del self.uses[i]
                return
        raise IRError(f"use not found on {self}")

    def replace_all_uses_with(self, other: "SSAValue") -> None:
        """Redirect every use of this value to ``other`` (RAUW)."""
        if other is self:
            return
        for use in list(self.uses):
            use.operation.set_operand(use.index, other)

    @property
    def has_uses(self) -> bool:
        """Whether any operation still refers to this value."""
        return bool(self.uses)

    @property
    def users(self) -> list["Operation"]:
        """Operations using this value (with duplicates for multi-use)."""
        return [use.operation for use in self.uses]

    @property
    def owner(self) -> "Operation | Block":
        """The operation or block defining this value."""
        raise NotImplementedError

    def __repr__(self) -> str:
        hint = self.name_hint or "?"
        return f"<{type(self).__name__} %{hint}: {self.type}>"


class OpResult(SSAValue):
    """A value produced by an operation."""

    __slots__ = ("op", "index")

    def __init__(
        self,
        type: TypeAttribute,
        op: "Operation",
        index: int,
        name_hint: str | None = None,
    ):
        # Inlined SSAValue.__init__ (results are built per op on the
        # hottest construction path).
        self.type = type
        self.uses = []
        self.name_hint = name_hint
        self.op = op
        self.index = index

    @property
    def owner(self) -> "Operation":
        return self.op


class BlockArgument(SSAValue):
    """A value bound on entry to a block (e.g. a loop induction variable)."""

    __slots__ = ("block", "index")

    def __init__(
        self,
        type: TypeAttribute,
        block: "Block",
        index: int,
        name_hint: str | None = None,
    ):
        super().__init__(type, name_hint)
        self.block = block
        self.index = index

    @property
    def owner(self) -> "Block":
        return self.block


# ---------------------------------------------------------------------------
# Lightweight sequence views
# ---------------------------------------------------------------------------


class OperandsView:
    """A live, read-only view of an operation's operand list.

    Reflects mutations through :meth:`Operation.set_operand` /
    :meth:`Operation.add_operand` immediately; supports the sequence
    protocol without allocating a fresh tuple per access.  Callers that
    need snapshot semantics take an explicit ``tuple(op.operands)``.
    """

    __slots__ = ("_values",)

    def __init__(self, values: list[SSAValue]):
        self._values = values

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[SSAValue]:
        return iter(self._values)

    def __reversed__(self) -> Iterator[SSAValue]:
        return reversed(self._values)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return tuple(self._values[index])
        return self._values[index]

    def __contains__(self, value) -> bool:
        return value in self._values

    def __eq__(self, other) -> bool:
        if isinstance(other, OperandsView):
            other = other._values
        if not isinstance(other, (list, tuple)):
            return NotImplemented
        return len(self._values) == len(other) and all(
            a == b for a, b in zip(self._values, other)
        )

    def __repr__(self) -> str:
        return f"OperandsView({self._values!r})"


class BlockOps:
    """A live view of a block's operation list (intrusive linked list).

    Iteration is mutation-safe against *erasing the op just yielded*:
    the successor is captured before each yield.  ``len`` is O(1);
    positional indexing is O(index) and intended for tests and
    small-block inspection, not hot paths.
    """

    __slots__ = ("_block",)

    def __init__(self, block: "Block"):
        self._block = block

    def __len__(self) -> int:
        return self._block._num_ops

    def __bool__(self) -> bool:
        return self._block._first_op is not None

    def __iter__(self) -> Iterator["Operation"]:
        op = self._block._first_op
        while op is not None:
            next_op = op.next_op
            yield op
            op = next_op

    def __reversed__(self) -> Iterator["Operation"]:
        op = self._block._last_op
        while op is not None:
            prev_op = op.prev_op
            yield op
            op = prev_op

    def __getitem__(self, index):
        if isinstance(index, slice):
            return tuple(self)[index]
        count = self._block._num_ops
        if index < 0:
            index += count
        if not 0 <= index < count:
            raise IndexError("block op index out of range")
        # Walk from the nearer end.
        if index <= count // 2:
            op = self._block._first_op
            for _ in range(index):
                op = op.next_op
        else:
            op = self._block._last_op
            for _ in range(count - 1 - index):
                op = op.prev_op
        return op

    def __contains__(self, op) -> bool:
        return (
            isinstance(op, Operation) and op.parent is self._block
        )

    def __eq__(self, other) -> bool:
        if isinstance(other, BlockOps):
            if other._block is self._block:
                return True
            other = tuple(other)
        if not isinstance(other, (list, tuple)):
            return NotImplemented
        if self._block._num_ops != len(other):
            return False
        return all(a is b for a, b in zip(self, other))

    def index(self, op: "Operation") -> int:
        """Position of ``op`` in the block (O(n))."""
        for i, existing in enumerate(self):
            if existing is op:
                return i
        raise IRError("operation not in block")

    def __repr__(self) -> str:
        return f"BlockOps({list(self)!r})"


# ---------------------------------------------------------------------------
# Operations
# ---------------------------------------------------------------------------


class Operation:
    """A single IR operation.

    Subclasses set the class attribute ``name`` (e.g. ``"arith.addf"``) and
    ``traits`` and usually provide a typed ``__init__`` plus properties for
    named operand/result access.  Storage is fully generic, so passes can
    treat all operations uniformly.

    ``prev_op``/``next_op`` are the intrusive block-list links; they are
    ``None`` while the operation is detached.
    """

    name = "builtin.unregistered"
    #: Set of trait classes (see :mod:`repro.ir.traits`).
    traits: frozenset = frozenset()

    __slots__ = (
        "_operands",
        "_operands_view",
        "results",
        "attributes",
        "regions",
        "parent",
        "prev_op",
        "next_op",
    )

    def __init__(
        self,
        operands: Sequence[SSAValue] = (),
        result_types: Sequence[TypeAttribute] = (),
        attributes: dict[str, Attribute] | None = None,
        regions: Sequence["Region"] = (),
    ):
        operand_list: list[SSAValue] = []
        self._operands = operand_list
        self._operands_view = None
        self.results: list[OpResult] = [
            OpResult(t, self, i) for i, t in enumerate(result_types)
        ]
        self.attributes: dict[str, Attribute] = (
            {} if attributes is None else dict(attributes)
        )
        self.regions: list[Region] = []
        self.parent: Block | None = None
        self.prev_op: Operation | None = None
        self.next_op: Operation | None = None
        for value in operands:
            # Inlined add_operand: construction is the hottest IR path.
            if not isinstance(value, SSAValue):
                raise IRError(
                    f"operand of {self.name} must be an SSAValue, got "
                    f"{type(value).__name__}"
                )
            value.uses.append(Use(self, len(operand_list)))
            operand_list.append(value)
        for region in regions:
            self.add_region(region)

    # -- operand management --------------------------------------------------

    @property
    def operands(self) -> OperandsView:
        """The operation's operands, as a live read-only view."""
        view = self._operands_view
        if view is None:
            view = self._operands_view = OperandsView(self._operands)
        return view

    def add_operand(self, value: SSAValue) -> None:
        """Append ``value`` to the operand list, recording the use."""
        if not isinstance(value, SSAValue):
            raise IRError(
                f"operand of {self.name} must be an SSAValue, got "
                f"{type(value).__name__}"
            )
        index = len(self._operands)
        self._operands.append(value)
        value.add_use(Use(self, index))

    def set_operand(self, index: int, value: SSAValue) -> None:
        """Replace the operand at ``index`` with ``value``."""
        old = self._operands[index]
        old.remove_use(self, index)
        self._operands[index] = value
        value.add_use(Use(self, index))

    def drop_all_references(self) -> None:
        """Detach this op (and nested ops) from all used values."""
        for index, value in enumerate(self._operands):
            value.remove_use(self, index)
        self._operands.clear()
        for region in self.regions:
            for block in region.blocks:
                for op in block.ops:
                    op.drop_all_references()

    # -- region management ----------------------------------------------------

    def add_region(self, region: "Region") -> None:
        """Attach ``region`` as the last region of this operation."""
        if region.parent is not None:
            raise IRError("region already attached to an operation")
        region.parent = self
        self.regions.append(region)

    @property
    def body(self) -> "Region":
        """The single region of this op; errors if there is not exactly one."""
        if len(self.regions) != 1:
            raise IRError(f"{self.name} has {len(self.regions)} regions")
        return self.regions[0]

    # -- navigation ------------------------------------------------------------

    @property
    def parent_block(self) -> "Block | None":
        """The block containing this operation, if attached."""
        return self.parent

    @property
    def parent_op(self) -> "Operation | None":
        """The operation whose region contains this operation."""
        if self.parent is None or self.parent.parent is None:
            return None
        return self.parent.parent.parent

    def parent_of_type(self, kind: type[OpT]) -> OpT | None:
        """The closest ancestor operation of the given type, if any."""
        op = self.parent_op
        while op is not None:
            if isinstance(op, kind):
                return op
            op = op.parent_op
        return None

    def is_ancestor_of(self, other: "Operation") -> bool:
        """Whether ``other`` is nested (transitively) inside this op."""
        op = other.parent_op
        while op is not None:
            if op is self:
                return True
            op = op.parent_op
        return False

    def is_attached_to(self, root: "Operation") -> bool:
        """Whether this op's parent chain reaches ``root``.

        ``False`` for ops hanging off a detached/erased subtree — even
        when their own ``parent`` link is still set (erasing an op
        detaches the op itself but leaves the internal links of its
        regions intact).  Rewrite drivers use this to drop stale
        worklist entries.
        """
        op = self
        while op is not root:
            block = op.parent
            if block is None or block.parent is None:
                return False
            op = block.parent.parent
            if op is None:
                return False
        return True

    def _nested_ops(self) -> Iterator["Operation"]:
        """Direct child operations, across all regions and blocks."""
        for region in self.regions:
            for block in region.blocks:
                op = block._first_op
                while op is not None:
                    next_op = op.next_op
                    yield op
                    op = next_op

    def walk(self) -> Iterator["Operation"]:
        """Pre-order traversal of this op and all nested operations.

        Iterative (no recursive generator chain) and copy-free: block
        successors are captured before each yield, so erasing the
        yielded op itself is safe.  Callers that erase *other* ops
        mid-walk should snapshot with ``list(root.walk())`` first.
        """
        yield self
        if not self.regions:
            return
        stack: list[Iterator[Operation]] = [self._nested_ops()]
        while stack:
            op = next(stack[-1], None)
            if op is None:
                stack.pop()
                continue
            yield op
            if op.regions:
                stack.append(op._nested_ops())

    def walk_type(self, kind: type[OpT]) -> Iterator[OpT]:
        """Walk, filtered to operations of the given type."""
        for op in self.walk():
            if isinstance(op, kind):
                yield op

    # -- traits -----------------------------------------------------------------

    def has_trait(self, trait: type) -> bool:
        """Whether the operation carries the given trait."""
        return trait in type(self).traits

    # -- mutation -----------------------------------------------------------------

    def detach(self) -> None:
        """Remove this operation from its parent block (keeping uses)."""
        if self.parent is None:
            return
        self.parent._unlink(self)

    def erase(self) -> None:
        """Remove and destroy this operation.

        All results must be unused; nested operations are erased too.
        """
        for result in self.results:
            if result.has_uses:
                raise IRError(
                    f"cannot erase {self.name}: result still has uses"
                )
        self.detach()
        self.drop_all_references()

    def verify_(self) -> None:
        """Op-specific verification hook; subclasses override."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class Block:
    """A straight-line sequence of operations with block arguments.

    Operations are stored as an intrusive doubly-linked list threaded
    through :attr:`Operation.prev_op`/:attr:`Operation.next_op`:
    insertion at either end or around an existing op, detaching and
    erasing are all O(1).
    """

    __slots__ = (
        "args",
        "_first_op",
        "_last_op",
        "_num_ops",
        "_ops_view",
        "parent",
    )

    def __init__(self, arg_types: Sequence[TypeAttribute] = ()):
        self.args: list[BlockArgument] = [
            BlockArgument(t, self, i) for i, t in enumerate(arg_types)
        ]
        self._first_op: Operation | None = None
        self._last_op: Operation | None = None
        self._num_ops = 0
        self._ops_view: BlockOps | None = None
        self.parent: Region | None = None

    # -- op list management ---------------------------------------------------

    @property
    def ops(self) -> BlockOps:
        """The operations of the block, as a live sequence view."""
        view = self._ops_view
        if view is None:
            view = self._ops_view = BlockOps(self)
        return view

    @property
    def first_op(self) -> Operation | None:
        """First operation, or ``None`` if the block is empty."""
        return self._first_op

    @property
    def last_op(self) -> Operation | None:
        """Last operation, or ``None`` if the block is empty."""
        return self._last_op

    def _check_detached(self, op: Operation) -> None:
        if op.parent is not None:
            raise IRError("operation already attached to a block")

    def _link(
        self,
        op: Operation,
        prev_op: Operation | None,
        next_op: Operation | None,
    ) -> None:
        """Splice a detached ``op`` between ``prev_op`` and ``next_op``."""
        op.prev_op = prev_op
        op.next_op = next_op
        if prev_op is None:
            self._first_op = op
        else:
            prev_op.next_op = op
        if next_op is None:
            self._last_op = op
        else:
            next_op.prev_op = op
        op.parent = self
        self._num_ops += 1

    def _unlink(self, op: Operation) -> None:
        """O(1) removal of an attached ``op`` from the list."""
        prev_op, next_op = op.prev_op, op.next_op
        if prev_op is None:
            self._first_op = next_op
        else:
            prev_op.next_op = next_op
        if next_op is None:
            self._last_op = prev_op
        else:
            next_op.prev_op = prev_op
        op.prev_op = None
        op.next_op = None
        op.parent = None
        self._num_ops -= 1

    def add_op(self, op: Operation) -> None:
        """Append ``op`` at the end of the block (O(1))."""
        if op.parent is not None:
            raise IRError("operation already attached to a block")
        # Inlined append fast path: building IR is the hottest loop of
        # every lowering pass.
        last = self._last_op
        op.prev_op = last
        if last is None:
            self._first_op = op
        else:
            last.next_op = op
        self._last_op = op
        op.parent = self
        self._num_ops += 1

    def add_ops(self, ops: Iterable[Operation]) -> None:
        """Append several operations at the end of the block."""
        for op in ops:
            self.add_op(op)

    def insert_op(self, index: int, op: Operation) -> None:
        """Insert ``op`` at position ``index`` (O(index); prefer the
        anchor-based ``insert_op_before``/``insert_op_after``)."""
        self._check_detached(op)
        if not 0 <= index <= self._num_ops:
            raise IRError("insertion index out of range")
        if index == self._num_ops:
            self._link(op, self._last_op, None)
            return
        anchor = self._first_op
        for _ in range(index):
            anchor = anchor.next_op
        self._link(op, anchor.prev_op, anchor)

    def insert_op_before(self, op: Operation, before: Operation) -> None:
        """Insert ``op`` immediately before ``before`` (O(1))."""
        self._check_detached(op)
        if before.parent is not self:
            raise IRError("anchor operation not in block")
        self._link(op, before.prev_op, before)

    def insert_op_after(self, op: Operation, after: Operation) -> None:
        """Insert ``op`` immediately after ``after`` (O(1))."""
        self._check_detached(op)
        if after.parent is not self:
            raise IRError("anchor operation not in block")
        self._link(op, after, after.next_op)

    def index_of(self, op: Operation) -> int:
        """Position of ``op`` in this block (O(n); debugging/tests)."""
        if op.parent is not self:
            raise IRError("operation not in block")
        return self.ops.index(op)

    # -- argument management ----------------------------------------------------

    def add_arg(
        self, type: TypeAttribute, name_hint: str | None = None
    ) -> BlockArgument:
        """Append a new block argument of the given type."""
        arg = BlockArgument(type, self, len(self.args), name_hint)
        self.args.append(arg)
        return arg

    # -- navigation ----------------------------------------------------------------

    @property
    def parent_op(self) -> Operation | None:
        """The operation owning the region that contains this block."""
        return self.parent.parent if self.parent is not None else None

    def __repr__(self) -> str:
        return f"<Block with {self._num_ops} ops>"


class Region:
    """A list of blocks owned by an operation."""

    __slots__ = ("blocks", "parent")

    def __init__(self, blocks: Sequence[Block] = ()):
        self.blocks: list[Block] = []
        self.parent: Operation | None = None
        for block in blocks:
            self.add_block(block)

    @property
    def block(self) -> Block:
        """The single block of the region; errors otherwise."""
        if len(self.blocks) != 1:
            raise IRError(f"region has {len(self.blocks)} blocks")
        return self.blocks[0]

    @property
    def first_block(self) -> Block | None:
        """The entry block, or ``None`` for an empty region."""
        return self.blocks[0] if self.blocks else None

    def add_block(self, block: Block) -> None:
        """Append ``block`` to the region."""
        if block.parent is not None:
            raise IRError("block already attached to a region")
        block.parent = self
        self.blocks.append(block)

    def __repr__(self) -> str:
        return f"<Region with {len(self.blocks)} blocks>"


def single_block_region(ops: Sequence[Operation], arg_types=()) -> Region:
    """Convenience: a region holding one block with the given ops."""
    block = Block(arg_types)
    block.add_ops(ops)
    return Region([block])


__all__ = [
    "IRError",
    "Use",
    "SSAValue",
    "OpResult",
    "BlockArgument",
    "OperandsView",
    "BlockOps",
    "Operation",
    "Block",
    "Region",
    "single_block_region",
]
