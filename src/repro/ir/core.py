"""Core SSA-with-regions IR data structures.

This is the structural heart of the reproduction: operations with operands,
results, attributes and nested regions; regions with blocks; blocks with
arguments and a doubly-linked list of operations.  The design follows MLIR
(paper Section 2.1 and Table 4): instructions are *operations*, instruction
operands are *SSA values*, registers are encoded in *types*, and scoping is
expressed with *blocks and regions*.

Use-def chains are maintained eagerly so the register allocator can perform
its backwards walk (Section 3.3) and so rewrites can do RAUW safely.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence, TypeVar

from .attributes import Attribute, TypeAttribute

OpT = TypeVar("OpT", bound="Operation")


class IRError(Exception):
    """Raised on malformed IR (verification failures, bad mutations)."""


# ---------------------------------------------------------------------------
# SSA values
# ---------------------------------------------------------------------------


class Use:
    """One use of an SSA value: ``operation.operands[index]``."""

    __slots__ = ("operation", "index")

    def __init__(self, operation: "Operation", index: int):
        self.operation = operation
        self.index = index

    def __repr__(self) -> str:
        return f"Use({self.operation.name}, {self.index})"


class SSAValue:
    """A value in SSA form: defined once, used many times.

    ``type`` is the value's type attribute and ``uses`` the live use list.
    """

    __slots__ = ("type", "uses", "name_hint")

    def __init__(self, type: TypeAttribute, name_hint: str | None = None):
        self.type = type
        self.uses: list[Use] = []
        self.name_hint = name_hint

    # -- use management -----------------------------------------------------

    def add_use(self, use: Use) -> None:
        """Record a new use of this value."""
        self.uses.append(use)

    def remove_use(self, operation: "Operation", index: int) -> None:
        """Drop the use at ``operation.operands[index]``."""
        for i, use in enumerate(self.uses):
            if use.operation is operation and use.index == index:
                del self.uses[i]
                return
        raise IRError(f"use not found on {self}")

    def replace_all_uses_with(self, other: "SSAValue") -> None:
        """Redirect every use of this value to ``other`` (RAUW)."""
        if other is self:
            return
        for use in list(self.uses):
            use.operation.set_operand(use.index, other)

    @property
    def has_uses(self) -> bool:
        """Whether any operation still refers to this value."""
        return bool(self.uses)

    @property
    def users(self) -> list["Operation"]:
        """Operations using this value (with duplicates for multi-use)."""
        return [use.operation for use in self.uses]

    @property
    def owner(self) -> "Operation | Block":
        """The operation or block defining this value."""
        raise NotImplementedError

    def __repr__(self) -> str:
        hint = self.name_hint or "?"
        return f"<{type(self).__name__} %{hint}: {self.type}>"


class OpResult(SSAValue):
    """A value produced by an operation."""

    __slots__ = ("op", "index")

    def __init__(
        self,
        type: TypeAttribute,
        op: "Operation",
        index: int,
        name_hint: str | None = None,
    ):
        super().__init__(type, name_hint)
        self.op = op
        self.index = index

    @property
    def owner(self) -> "Operation":
        return self.op


class BlockArgument(SSAValue):
    """A value bound on entry to a block (e.g. a loop induction variable)."""

    __slots__ = ("block", "index")

    def __init__(
        self,
        type: TypeAttribute,
        block: "Block",
        index: int,
        name_hint: str | None = None,
    ):
        super().__init__(type, name_hint)
        self.block = block
        self.index = index

    @property
    def owner(self) -> "Block":
        return self.block


# ---------------------------------------------------------------------------
# Operations
# ---------------------------------------------------------------------------


class Operation:
    """A single IR operation.

    Subclasses set the class attribute ``name`` (e.g. ``"arith.addf"``) and
    ``traits`` and usually provide a typed ``__init__`` plus properties for
    named operand/result access.  Storage is fully generic, so passes can
    treat all operations uniformly.
    """

    name = "builtin.unregistered"
    #: Set of trait classes (see :mod:`repro.ir.traits`).
    traits: frozenset = frozenset()

    __slots__ = ("_operands", "results", "attributes", "regions", "parent")

    def __init__(
        self,
        operands: Sequence[SSAValue] = (),
        result_types: Sequence[TypeAttribute] = (),
        attributes: dict[str, Attribute] | None = None,
        regions: Sequence["Region"] = (),
    ):
        self._operands: list[SSAValue] = []
        self.results: list[OpResult] = [
            OpResult(t, self, i) for i, t in enumerate(result_types)
        ]
        self.attributes: dict[str, Attribute] = dict(attributes or {})
        self.regions: list[Region] = []
        self.parent: Block | None = None
        for value in operands:
            self.add_operand(value)
        for region in regions:
            self.add_region(region)

    # -- operand management --------------------------------------------------

    @property
    def operands(self) -> tuple[SSAValue, ...]:
        """The operation's operands, as an immutable view."""
        return tuple(self._operands)

    def add_operand(self, value: SSAValue) -> None:
        """Append ``value`` to the operand list, recording the use."""
        if not isinstance(value, SSAValue):
            raise IRError(
                f"operand of {self.name} must be an SSAValue, got "
                f"{type(value).__name__}"
            )
        index = len(self._operands)
        self._operands.append(value)
        value.add_use(Use(self, index))

    def set_operand(self, index: int, value: SSAValue) -> None:
        """Replace the operand at ``index`` with ``value``."""
        old = self._operands[index]
        old.remove_use(self, index)
        self._operands[index] = value
        value.add_use(Use(self, index))

    def drop_all_references(self) -> None:
        """Detach this op (and nested ops) from all used values."""
        for index, value in enumerate(self._operands):
            value.remove_use(self, index)
        self._operands.clear()
        for region in self.regions:
            for block in region.blocks:
                for op in list(block.ops):
                    op.drop_all_references()

    # -- region management ----------------------------------------------------

    def add_region(self, region: "Region") -> None:
        """Attach ``region`` as the last region of this operation."""
        if region.parent is not None:
            raise IRError("region already attached to an operation")
        region.parent = self
        self.regions.append(region)

    @property
    def body(self) -> "Region":
        """The single region of this op; errors if there is not exactly one."""
        if len(self.regions) != 1:
            raise IRError(f"{self.name} has {len(self.regions)} regions")
        return self.regions[0]

    # -- navigation ------------------------------------------------------------

    @property
    def parent_block(self) -> "Block | None":
        """The block containing this operation, if attached."""
        return self.parent

    @property
    def parent_op(self) -> "Operation | None":
        """The operation whose region contains this operation."""
        if self.parent is None or self.parent.parent is None:
            return None
        return self.parent.parent.parent

    def parent_of_type(self, kind: type[OpT]) -> OpT | None:
        """The closest ancestor operation of the given type, if any."""
        op = self.parent_op
        while op is not None:
            if isinstance(op, kind):
                return op
            op = op.parent_op
        return None

    def is_ancestor_of(self, other: "Operation") -> bool:
        """Whether ``other`` is nested (transitively) inside this op."""
        op = other.parent_op
        while op is not None:
            if op is self:
                return True
            op = op.parent_op
        return False

    def walk(self) -> Iterator["Operation"]:
        """Pre-order traversal of this op and all nested operations."""
        yield self
        for region in self.regions:
            for block in region.blocks:
                for op in list(block.ops):
                    yield from op.walk()

    def walk_type(self, kind: type[OpT]) -> Iterator[OpT]:
        """Walk, filtered to operations of the given type."""
        for op in self.walk():
            if isinstance(op, kind):
                yield op

    # -- traits -----------------------------------------------------------------

    def has_trait(self, trait: type) -> bool:
        """Whether the operation carries the given trait."""
        return trait in type(self).traits

    # -- mutation -----------------------------------------------------------------

    def detach(self) -> None:
        """Remove this operation from its parent block (keeping uses)."""
        if self.parent is None:
            return
        self.parent._ops.remove(self)
        self.parent = None

    def erase(self) -> None:
        """Remove and destroy this operation.

        All results must be unused; nested operations are erased too.
        """
        for result in self.results:
            if result.has_uses:
                raise IRError(
                    f"cannot erase {self.name}: result still has uses"
                )
        self.detach()
        self.drop_all_references()

    def verify_(self) -> None:
        """Op-specific verification hook; subclasses override."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class Block:
    """A straight-line sequence of operations with block arguments."""

    __slots__ = ("args", "_ops", "parent")

    def __init__(self, arg_types: Sequence[TypeAttribute] = ()):
        self.args: list[BlockArgument] = [
            BlockArgument(t, self, i) for i, t in enumerate(arg_types)
        ]
        self._ops: list[Operation] = []
        self.parent: Region | None = None

    # -- op list management ---------------------------------------------------

    @property
    def ops(self) -> tuple[Operation, ...]:
        """The operations of the block, as an immutable view."""
        return tuple(self._ops)

    @property
    def first_op(self) -> Operation | None:
        """First operation, or ``None`` if the block is empty."""
        return self._ops[0] if self._ops else None

    @property
    def last_op(self) -> Operation | None:
        """Last operation, or ``None`` if the block is empty."""
        return self._ops[-1] if self._ops else None

    def add_op(self, op: Operation) -> None:
        """Append ``op`` at the end of the block."""
        self.insert_op(len(self._ops), op)

    def add_ops(self, ops: Iterable[Operation]) -> None:
        """Append several operations at the end of the block."""
        for op in ops:
            self.add_op(op)

    def insert_op(self, index: int, op: Operation) -> None:
        """Insert ``op`` at position ``index``."""
        if op.parent is not None:
            raise IRError("operation already attached to a block")
        self._ops.insert(index, op)
        op.parent = self

    def insert_op_before(self, op: Operation, before: Operation) -> None:
        """Insert ``op`` immediately before ``before`` (must be in block)."""
        self.insert_op(self.index_of(before), op)

    def insert_op_after(self, op: Operation, after: Operation) -> None:
        """Insert ``op`` immediately after ``after`` (must be in block)."""
        self.insert_op(self.index_of(after) + 1, op)

    def index_of(self, op: Operation) -> int:
        """Position of ``op`` in this block."""
        for i, existing in enumerate(self._ops):
            if existing is op:
                return i
        raise IRError("operation not in block")

    # -- argument management ----------------------------------------------------

    def add_arg(
        self, type: TypeAttribute, name_hint: str | None = None
    ) -> BlockArgument:
        """Append a new block argument of the given type."""
        arg = BlockArgument(type, self, len(self.args), name_hint)
        self.args.append(arg)
        return arg

    # -- navigation ----------------------------------------------------------------

    @property
    def parent_op(self) -> Operation | None:
        """The operation owning the region that contains this block."""
        return self.parent.parent if self.parent is not None else None

    def __repr__(self) -> str:
        return f"<Block with {len(self._ops)} ops>"


class Region:
    """A list of blocks owned by an operation."""

    __slots__ = ("blocks", "parent")

    def __init__(self, blocks: Sequence[Block] = ()):
        self.blocks: list[Block] = []
        self.parent: Operation | None = None
        for block in blocks:
            self.add_block(block)

    @property
    def block(self) -> Block:
        """The single block of the region; errors otherwise."""
        if len(self.blocks) != 1:
            raise IRError(f"region has {len(self.blocks)} blocks")
        return self.blocks[0]

    @property
    def first_block(self) -> Block | None:
        """The entry block, or ``None`` for an empty region."""
        return self.blocks[0] if self.blocks else None

    def add_block(self, block: Block) -> None:
        """Append ``block`` to the region."""
        if block.parent is not None:
            raise IRError("block already attached to a region")
        block.parent = self
        self.blocks.append(block)

    def __repr__(self) -> str:
        return f"<Region with {len(self.blocks)} blocks>"


def single_block_region(ops: Sequence[Operation], arg_types=()) -> Region:
    """Convenience: a region holding one block with the given ops."""
    block = Block(arg_types)
    block.add_ops(ops)
    return Region([block])


__all__ = [
    "IRError",
    "Use",
    "SSAValue",
    "OpResult",
    "BlockArgument",
    "Operation",
    "Block",
    "Region",
    "single_block_region",
]
