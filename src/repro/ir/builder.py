"""IR construction helper.

A :class:`Builder` tracks an insertion point inside a block and appends
operations there, mirroring MLIR's ``OpBuilder``.  All kernel builders and
lowering passes construct IR through it.

Insertion points are *anchor-based*: a point is "before ``anchor``" (or
"at the end" when the anchor is ``None``), so every insertion is an O(1)
linked-list splice and the point stays valid across unrelated mutations
of the same block — no positional index to maintain.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

from .core import Block, IRError, Operation, Region

OpT = TypeVar("OpT", bound=Operation)


class InsertPoint:
    """A position inside a block where new operations are inserted.

    ``anchor`` is the operation new ops are inserted *before*; ``None``
    means "append at the end of the block" — unless ``at_block_start``
    is set, in which case the point tracks the (possibly changing)
    start of the block itself.
    """

    __slots__ = ("block", "anchor", "at_block_start")

    def __init__(
        self,
        block: Block,
        anchor: Operation | None = None,
        at_block_start: bool = False,
    ):
        if anchor is not None and anchor.parent is not block:
            raise IRError("insertion anchor not in block")
        self.block = block
        self.anchor = anchor
        self.at_block_start = at_block_start

    @property
    def index(self) -> int:
        """The positional index of this point (O(n); for inspection)."""
        if self.at_block_start:
            return 0
        if self.anchor is None:
            return len(self.block.ops)
        return self.block.index_of(self.anchor)

    @staticmethod
    def at_end(block: Block) -> "InsertPoint":
        """Insertion point after the last operation of ``block``."""
        return InsertPoint(block, None)

    @staticmethod
    def at_start(block: Block) -> "InsertPoint":
        """Insertion point before the first operation of ``block``
        (tracking the block start even as ops are added around it)."""
        return InsertPoint(block, None, at_block_start=True)

    @staticmethod
    def before(op: Operation) -> "InsertPoint":
        """Insertion point immediately before ``op``."""
        if op.parent is None:
            raise IRError("operation is not attached to a block")
        return InsertPoint(op.parent, op)

    @staticmethod
    def after(op: Operation) -> "InsertPoint":
        """Insertion point immediately after ``op``."""
        if op.parent is None:
            raise IRError("operation is not attached to a block")
        return InsertPoint(op.parent, op.next_op)


class Builder:
    """Appends operations at a movable insertion point."""

    def __init__(self, insert_point: InsertPoint):
        self.insert_point = insert_point

    # -- constructors --------------------------------------------------------

    @staticmethod
    def at_end(block: Block) -> "Builder":
        """A builder appending at the end of ``block``."""
        return Builder(InsertPoint.at_end(block))

    @staticmethod
    def at_start(block: Block) -> "Builder":
        """A builder inserting at the start of ``block``."""
        return Builder(InsertPoint.at_start(block))

    @staticmethod
    def before(op: Operation) -> "Builder":
        """A builder inserting before ``op``."""
        return Builder(InsertPoint.before(op))

    # -- insertion -------------------------------------------------------------

    def insert(self, op: OpT) -> OpT:
        """Insert ``op`` at the current point and advance past it."""
        point = self.insert_point
        if point.at_block_start:
            # First insertion lands at the block start; the point then
            # becomes an ordinary anchor so subsequent inserts keep
            # source order.
            first = point.block.first_op
            if first is None:
                point.block.add_op(op)
            else:
                point.block.insert_op_before(op, first)
            point.at_block_start = False
            point.anchor = op.next_op
        elif point.anchor is None:
            point.block.add_op(op)
        else:
            point.block.insert_op_before(op, point.anchor)
        return op

    def insert_all(self, ops: Sequence[Operation]) -> None:
        """Insert several operations in order."""
        for op in ops:
            self.insert(op)

    # -- region helpers ----------------------------------------------------------

    def new_block_region(self, arg_types=()) -> tuple[Region, Block]:
        """Create a fresh single-block region (not yet attached)."""
        block = Block(arg_types)
        return Region([block]), block


__all__ = ["Builder", "InsertPoint"]
