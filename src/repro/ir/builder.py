"""IR construction helper.

A :class:`Builder` tracks an insertion point inside a block and appends
operations there, mirroring MLIR's ``OpBuilder``.  All kernel builders and
lowering passes construct IR through it.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

from .core import Block, IRError, Operation, Region

OpT = TypeVar("OpT", bound=Operation)


class InsertPoint:
    """A position inside a block where new operations are inserted."""

    __slots__ = ("block", "index")

    def __init__(self, block: Block, index: int):
        self.block = block
        self.index = index

    @staticmethod
    def at_end(block: Block) -> "InsertPoint":
        """Insertion point after the last operation of ``block``."""
        return InsertPoint(block, len(block.ops))

    @staticmethod
    def at_start(block: Block) -> "InsertPoint":
        """Insertion point before the first operation of ``block``."""
        return InsertPoint(block, 0)

    @staticmethod
    def before(op: Operation) -> "InsertPoint":
        """Insertion point immediately before ``op``."""
        if op.parent is None:
            raise IRError("operation is not attached to a block")
        return InsertPoint(op.parent, op.parent.index_of(op))

    @staticmethod
    def after(op: Operation) -> "InsertPoint":
        """Insertion point immediately after ``op``."""
        if op.parent is None:
            raise IRError("operation is not attached to a block")
        return InsertPoint(op.parent, op.parent.index_of(op) + 1)


class Builder:
    """Appends operations at a movable insertion point."""

    def __init__(self, insert_point: InsertPoint):
        self.insert_point = insert_point

    # -- constructors --------------------------------------------------------

    @staticmethod
    def at_end(block: Block) -> "Builder":
        """A builder appending at the end of ``block``."""
        return Builder(InsertPoint.at_end(block))

    @staticmethod
    def at_start(block: Block) -> "Builder":
        """A builder inserting at the start of ``block``."""
        return Builder(InsertPoint.at_start(block))

    @staticmethod
    def before(op: Operation) -> "Builder":
        """A builder inserting before ``op``."""
        return Builder(InsertPoint.before(op))

    # -- insertion -------------------------------------------------------------

    def insert(self, op: OpT) -> OpT:
        """Insert ``op`` at the current point and advance past it."""
        self.insert_point.block.insert_op(self.insert_point.index, op)
        self.insert_point.index += 1
        return op

    def insert_all(self, ops: Sequence[Operation]) -> None:
        """Insert several operations in order."""
        for op in ops:
            self.insert(op)

    # -- region helpers ----------------------------------------------------------

    def new_block_region(self, arg_types=()) -> tuple[Region, Block]:
        """Create a fresh single-block region (not yet attached)."""
        block = Block(arg_types)
        return Region([block]), block


__all__ = ["Builder", "InsertPoint"]
