"""Structural IR verification.

Checks the invariants every pass relies on: operands dominate their uses
within a block, terminators sit last, use-def bookkeeping is consistent,
and op-specific ``verify_`` hooks pass.  Running the verifier between
pipeline stages is how the test suite catches mis-lowerings early.

The walk is O(ops + uses): scope sets are allocated per *block* (never
per op), use lists are indexed once per value (no per-use rescans of
multi-use values), and the use-list and dominance checks share one pass
over each op's operands — ``verify_each`` pipelines stay cheap on large
unrolled kernels.
"""

from __future__ import annotations

from .core import Block, IRError, Operation, Region
from .traits import IsolatedFromAbove, IsTerminator


class VerificationError(IRError):
    """Raised when the IR violates a structural invariant."""


def verify(op: Operation) -> None:
    """Verify ``op`` and everything nested inside it."""
    use_sets: dict[int, set[tuple[int, int]]] = {}
    _check_use_list(op, use_sets)
    op.verify_()
    _verify_regions(op, set(), use_sets)


def _check_use_list(
    op: Operation, use_sets: dict[int, set[tuple[int, int]]]
) -> None:
    """Every operand's use list must record this op at this index.

    ``use_sets`` memoizes each value's use list as a set of
    ``(id(op), index)`` pairs for the duration of one ``verify`` call,
    so a value with many uses is indexed once instead of rescanned at
    every use site.
    """
    for index, operand in enumerate(op._operands):
        if not _use_recorded(op, index, operand, use_sets):
            raise VerificationError(
                f"{op.name}: operand #{index} missing from use list"
            )


def _use_recorded(op, index, operand, use_sets) -> bool:
    """Whether ``operand.uses`` records ``op.operands[index]``.

    Short use lists are scanned directly; long ones (shared constants,
    induction variables) are indexed once per ``verify`` call so the
    check stays O(1) per use instead of O(uses) per use.
    """
    uses = operand.uses
    if len(uses) <= 4:
        for use in uses:
            if use.operation is op and use.index == index:
                return True
        return False
    key = id(operand)
    use_set = use_sets.get(key)
    if use_set is None:
        use_set = {(id(u.operation), u.index) for u in uses}
        use_sets[key] = use_set
    return (id(op), index) in use_set


#: Op classes overriding the (no-op) default ``verify_`` hook — skips
#: a virtual call per op per round for the common hook-less classes.
#: Probed inline by ``_verify_block`` (its hot loop deliberately
#: inlines both this cache lookup and ``_use_recorded``'s short-list
#: fast path).
_HAS_VERIFY_HOOK: dict[type, bool] = {}


def _verify_regions(
    op: Operation,
    enclosing_values: set[int],
    use_sets: dict[int, set[tuple[int, int]]],
) -> None:
    if IsolatedFromAbove in type(op).traits:
        enclosing_values = _EMPTY_SCOPE
    for region in op.regions:
        for block in region.blocks:
            _verify_block(block, enclosing_values, use_sets)


#: Shared empty scope for isolated-from-above regions (read-only here:
#: blocks copy it before defining values).
_EMPTY_SCOPE: set[int] = set()


def _verify_block(
    block: Block,
    enclosing_values: set[int],
    use_sets: dict[int, set[tuple[int, int]]],
) -> None:
    # One scope copy per block (values defined here must not leak to
    # sibling blocks); individual ops read it without copying.  The op
    # list and operand storage are accessed directly — this loop runs
    # after every pass of every pipeline.
    defined = set(enclosing_values)
    defined_add = defined.add
    for arg in block.args:
        defined_add(id(arg))
    last_op = block.last_op
    has_hook_cache = _HAS_VERIFY_HOOK
    op = block.first_op
    while op is not None:
        if op.parent is not block:
            raise VerificationError(f"{op.name}: wrong parent block")
        for index, operand in enumerate(op._operands):
            # Use-list consistency and dominance in one operand pass
            # (short use lists scanned inline; long ones via the memo).
            uses = operand.uses
            if len(uses) <= 4:
                for use in uses:
                    if use.operation is op and use.index == index:
                        break
                else:
                    raise VerificationError(
                        f"{op.name}: operand #{index} missing from "
                        "use list"
                    )
            elif not _use_recorded(op, index, operand, use_sets):
                raise VerificationError(
                    f"{op.name}: operand #{index} missing from use list"
                )
            if id(operand) not in defined:
                raise VerificationError(
                    f"{op.name}: operand {operand!r} does not dominate "
                    "its use (or is not in scope)"
                )
        cls = op.__class__
        if IsTerminator in cls.traits and op is not last_op:
            raise VerificationError(
                f"{op.name}: terminator is not the last op of its block"
            )
        hook = has_hook_cache.get(cls)
        if hook is None:
            hook = cls.verify_ is not Operation.verify_
            has_hook_cache[cls] = hook
        if hook:
            op.verify_()
        if op.regions:
            _verify_regions(op, defined, use_sets)
        for result in op.results:
            defined_add(id(result))
        op = op.next_op


__all__ = ["VerificationError", "verify"]
