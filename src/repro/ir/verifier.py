"""Structural IR verification.

Checks the invariants every pass relies on: operands dominate their uses
within a block, terminators sit last, use-def bookkeeping is consistent,
and op-specific ``verify_`` hooks pass.  Running the verifier between
pipeline stages is how the test suite catches mis-lowerings early.
"""

from __future__ import annotations

from .core import Block, BlockArgument, IRError, Operation, OpResult, Region
from .traits import IsolatedFromAbove, IsTerminator


class VerificationError(IRError):
    """Raised when the IR violates a structural invariant."""


def verify(op: Operation) -> None:
    """Verify ``op`` and everything nested inside it."""
    _verify_op(op, enclosing_values=set())


def _verify_op(op: Operation, enclosing_values: set[int]) -> None:
    for index, operand in enumerate(op.operands):
        if not any(
            use.operation is op and use.index == index
            for use in operand.uses
        ):
            raise VerificationError(
                f"{op.name}: operand #{index} missing from use list"
            )
    op.verify_()

    visible = set(enclosing_values)
    if op.has_trait(IsolatedFromAbove):
        visible = set()
    for region in op.regions:
        _verify_region(region, visible)


def _verify_region(region: Region, enclosing_values: set[int]) -> None:
    for block in region.blocks:
        _verify_block(block, enclosing_values)


def _verify_block(block: Block, enclosing_values: set[int]) -> None:
    defined = set(enclosing_values)
    for arg in block.args:
        defined.add(id(arg))
    ops = block.ops
    for position, op in enumerate(ops):
        if op.parent is not block:
            raise VerificationError(f"{op.name}: wrong parent block")
        for operand in op.operands:
            if isinstance(operand, OpResult):
                if id(operand) not in defined:
                    raise VerificationError(
                        f"{op.name}: operand {operand!r} does not dominate "
                        "its use"
                    )
            elif isinstance(operand, BlockArgument):
                if id(operand) not in defined:
                    raise VerificationError(
                        f"{op.name}: block argument {operand!r} not in scope"
                    )
        if op.has_trait(IsTerminator) and position != len(ops) - 1:
            raise VerificationError(
                f"{op.name}: terminator is not the last op of its block"
            )
        nested_visible = set(defined)
        _verify_op(op, nested_visible)
        for result in op.results:
            defined.add(id(result))


__all__ = ["VerificationError", "verify"]
