"""Module passes and the pass manager.

The multi-level backend is "structured as small, self-contained passes,
making it easier to introspect, develop and maintain" (paper Section 3.4).
A :class:`ModulePass` transforms a module in place; a :class:`PassManager`
runs a named sequence and can record IR snapshots between stages (used by
the progressive-lowering example and the ablation benchmarks).
"""

from __future__ import annotations

from typing import Callable, Sequence

from .core import Operation
from .printer import print_op
from .verifier import verify


class ModulePass:
    """Base class of all passes; subclasses set ``name`` and ``run``."""

    #: Identifier used in pipeline specifications.
    name = "unnamed-pass"

    def run(self, module: Operation) -> None:
        """Transform ``module`` in place."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<pass {self.name}>"


class FunctionPass(ModulePass):
    """A pass applied independently to each function-like op.

    Subclasses implement :meth:`run_on_function`; functions are discovered
    by walking for ops whose name ends in ``.func``.
    """

    def run(self, module: Operation) -> None:
        for op in list(module.walk()):
            if op.name.endswith(".func"):
                self.run_on_function(op)

    def run_on_function(self, func: Operation) -> None:
        """Transform one function in place."""
        raise NotImplementedError


class PassManager:
    """Runs a sequence of passes, optionally verifying/snapshotting."""

    def __init__(
        self,
        passes: Sequence[ModulePass] = (),
        verify_each: bool = True,
        snapshot: bool = False,
    ):
        self.passes: list[ModulePass] = list(passes)
        self.verify_each = verify_each
        self.snapshot = snapshot
        #: (pass name, IR text) pairs recorded when ``snapshot`` is set.
        self.snapshots: list[tuple[str, str]] = []

    def add(self, pass_: ModulePass) -> "PassManager":
        """Append a pass; returns self for chaining."""
        self.passes.append(pass_)
        return self

    def run(self, module: Operation) -> None:
        """Run every pass in order on ``module``."""
        if self.snapshot:
            self.snapshots.append(("input", print_op(module)))
        for pass_ in self.passes:
            pass_.run(module)
            if self.verify_each:
                verify(module)
            if self.snapshot:
                self.snapshots.append((pass_.name, print_op(module)))

    @property
    def pipeline_spec(self) -> str:
        """Comma-separated names of the scheduled passes."""
        return ",".join(p.name for p in self.passes)


class LambdaPass(ModulePass):
    """Wrap a plain callable as a pass (handy in tests)."""

    def __init__(self, name: str, fn: Callable[[Operation], None]):
        self.name = name
        self._fn = fn

    def run(self, module: Operation) -> None:
        self._fn(module)


__all__ = ["ModulePass", "FunctionPass", "PassManager", "LambdaPass"]
