"""Module passes and the pass manager.

The multi-level backend is "structured as small, self-contained passes,
making it easier to introspect, develop and maintain" (paper Section 3.4).
A :class:`ModulePass` transforms a module in place; a :class:`PassManager`
runs a named sequence and can record IR snapshots between stages (used by
the progressive-lowering example and the ablation benchmarks).
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Sequence

from ..obs.metrics import METRICS
from ..obs.tracing import span
from .core import Operation
from .printer import print_op
from .rewriter import REWRITE_STATS
from .verifier import verify

#: Callbacks invoked with every newly defined :class:`ModulePass`
#: subclass — how the pass registry auto-registers passes at import
#: time (see :mod:`repro.transforms.registry`).
SUBCLASS_HOOKS: list[Callable[[type], None]] = []


class ModulePass:
    """Base class of all passes; subclasses set ``name`` and ``run``."""

    #: Identifier used in pipeline specifications.
    name = "unnamed-pass"

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        for hook in SUBCLASS_HOOKS:
            hook(cls)

    def run(self, module: Operation) -> None:
        """Transform ``module`` in place."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<pass {self.name}>"


class FunctionPass(ModulePass):
    """A pass applied independently to each function-like op.

    Subclasses implement :meth:`run_on_function`; functions are discovered
    by walking for ops whose name ends in ``.func``.
    """

    def run(self, module: Operation) -> None:
        for op in list(module.walk()):
            if op.name.endswith(".func"):
                self.run_on_function(op)

    def run_on_function(self, func: Operation) -> None:
        """Transform one function in place."""
        raise NotImplementedError


class PassInstrumentation:
    """Observer hooks around every pass a :class:`PassManager` runs.

    Subclass and override any subset; hand an instance to
    ``PassManager(instrument=...)`` (or ``Compiler(instrument=...)``).
    """

    def before_pass(self, pass_: ModulePass, module: Operation) -> None:
        """Called immediately before ``pass_`` runs."""

    def after_pass(
        self, pass_: ModulePass, module: Operation, elapsed: float
    ) -> None:
        """Called after ``pass_`` (and verification); ``elapsed`` is
        the pass run time in seconds."""


class PrintIRInstrumentation(PassInstrumentation):
    """Print the IR after every pass (``--print-ir-after-all``)."""

    def __init__(self, stream=None):
        self.stream = stream

    def after_pass(self, pass_, module, elapsed) -> None:
        stream = self.stream if self.stream is not None else sys.stdout
        print(f"// -----// IR after {pass_.name} //----- //", file=stream)
        print(print_op(module), file=stream)


class PassManager:
    """Runs a sequence of passes, with optional verification,
    IR snapshots, per-pass timing and instrumentation hooks."""

    def __init__(
        self,
        passes: Sequence[ModulePass] = (),
        verify_each: bool = True,
        snapshot: bool = False,
        instrument: PassInstrumentation | None = None,
    ):
        self.passes: list[ModulePass] = list(passes)
        self.verify_each = verify_each
        self.snapshot = snapshot
        self.instrument = instrument
        #: (pass name, IR text) pairs recorded when ``snapshot`` is set.
        self.snapshots: list[tuple[str, str]] = []
        #: (pass name, seconds) pairs, recorded on every run.
        self.timings: list[tuple[str, float]] = []
        #: (pass name, rewrite-driver counter deltas) pairs: ops visited,
        #: pattern invocations and rewrites applied by each pass.
        self.pass_stats: list[tuple[str, dict[str, int]]] = []

    def add(self, pass_: ModulePass) -> "PassManager":
        """Append a pass; returns self for chaining."""
        self.passes.append(pass_)
        return self

    def run(self, module: Operation) -> None:
        """Run every pass in order on ``module``."""
        if self.snapshot:
            self.snapshots.append(("input", print_op(module)))
        for pass_ in self.passes:
            if self.instrument is not None:
                self.instrument.before_pass(pass_, module)
            stats_before = REWRITE_STATS.snapshot()
            start = time.perf_counter()
            with span(f"pass.{pass_.name}"):
                pass_.run(module)
            elapsed = time.perf_counter() - start
            self.timings.append((pass_.name, elapsed))
            METRICS.histogram(
                "compile_pass_seconds", **{"pass": pass_.name}
            ).observe(elapsed)
            self.pass_stats.append(
                (pass_.name, REWRITE_STATS.delta(stats_before))
            )
            if self.verify_each:
                verify(module)
            if self.instrument is not None:
                self.instrument.after_pass(pass_, module, elapsed)
            if self.snapshot:
                self.snapshots.append((pass_.name, print_op(module)))

    @property
    def pipeline_spec(self) -> str:
        """The scheduled passes as a round-trippable textual spec
        (non-default pass options included)."""
        from .pipeline_spec import pass_to_spec, print_pipeline_spec

        return print_pipeline_spec(pass_to_spec(p) for p in self.passes)


class LambdaPass(ModulePass):
    """Wrap a plain callable as a pass (handy in tests)."""

    def __init__(self, name: str, fn: Callable[[Operation], None]):
        self.name = name
        self._fn = fn

    def run(self, module: Operation) -> None:
        self._fn(module)


__all__ = [
    "ModulePass",
    "FunctionPass",
    "PassInstrumentation",
    "PassManager",
    "PrintIRInstrumentation",
    "LambdaPass",
]
