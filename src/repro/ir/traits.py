"""Operation traits.

Traits declare verifiable structural properties of operations, letting
generic passes (DCE, the verifier, the register allocator) reason about
unfamiliar dialects — the extensibility property the multi-level backend
relies on (paper Section 3.1).
"""

from __future__ import annotations


class OpTrait:
    """Base class for all traits (used only as a marker namespace)."""


class IsTerminator(OpTrait):
    """The operation ends its block (branch, return, yield)."""


class Pure(OpTrait):
    """No side effects: erasable when all results are unused."""


class HasMemoryEffect(OpTrait):
    """Reads or writes memory; never erased by DCE."""


class IsolatedFromAbove(OpTrait):
    """Region bodies may not reference values defined outside (functions)."""


class SameOperandsAndResultType(OpTrait):
    """All operands and results share one type (verified)."""


class ConstantLike(OpTrait):
    """Materializes a compile-time constant."""


__all__ = [
    "OpTrait",
    "IsTerminator",
    "Pure",
    "HasMemoryEffect",
    "IsolatedFromAbove",
    "SameOperandsAndResultType",
    "ConstantLike",
]
