"""Textual IR parser: the inverse of :mod:`repro.ir.printer`.

Parses the generic operation syntax the printer emits::

    %2 = "arith.addf"(%0, %1) : (f64, f64) -> (f64)
    "builtin.module"() ({ ^0(): ... }) : () -> ()

Operation classes are resolved through :mod:`repro.ir.op_registry`, so
parsed IR carries the same typed accessors and verification hooks as
built IR — which makes print/parse round-trips first-class citizens in
the test suite, mirroring how the paper's xDSL/MLIR toolchains
interoperate "via the common text IR format" (Section 4.1).
"""

from __future__ import annotations

import re

from .affine_map import (
    AffineConstantExpr,
    AffineDimExpr,
    AffineExpr,
    AffineMap,
)
from .attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    DenseIntAttr,
    FloatAttr,
    FloatType,
    FunctionType,
    IndexType,
    IntAttr,
    IntegerType,
    MemRefType,
    StringAttr,
    SymbolRefAttr,
    TypeAttribute,
)
from .core import Block, IRError, Operation, Region, SSAValue
from . import op_registry


class ParseError(IRError):
    """Raised on malformed IR text, with position information.

    A subclass of :class:`~repro.ir.core.IRError`: a parse failure *is*
    malformed IR, so callers that guard IR construction with ``except
    IRError`` also catch text-level problems.
    """

    def __init__(self, message: str, text: str, position: int):
        line = text.count("\n", 0, position) + 1
        column = position - (text.rfind("\n", 0, position) + 1) + 1
        super().__init__(f"{message} (line {line}, column {column})")


_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_.$]*")
_VALUE_ID = re.compile(r"%[A-Za-z0-9_.$]+")
_INTEGER = re.compile(r"-?\d+")
_FLOAT = re.compile(r"-?\d+\.\d*(e[+-]?\d+)?|-?\d+e[+-]?\d+")
_STRING = re.compile(r'"([^"\\]*)"')


_UNREGISTERED_CACHE: dict[str, type[Operation]] = {}


def _unregistered_class(name: str) -> type[Operation]:
    """A generic Operation subclass preserving an unregistered name."""
    cached = _UNREGISTERED_CACHE.get(name)
    if cached is None:
        cached = type(
            "UnregisteredOp", (Operation,), {"name": name, "__slots__": ()}
        )
        _UNREGISTERED_CACHE[name] = cached
    return cached


class Parser:
    """Recursive-descent parser over the printed generic format."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.values: dict[str, SSAValue] = {}

    # -- low-level cursor helpers --------------------------------------------

    def error(self, message: str) -> ParseError:
        return ParseError(message, self.text, self.pos)

    def error_at(self, position: int, message: str) -> ParseError:
        """An error anchored at an earlier position (e.g. an op name)."""
        return ParseError(message, self.text, position)

    def skip_ws(self) -> None:
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch in " \t\n\r":
                self.pos += 1
            elif self.text.startswith("//", self.pos):
                end = self.text.find("\n", self.pos)
                self.pos = len(self.text) if end == -1 else end
            else:
                return

    def peek(self, token: str) -> bool:
        self.skip_ws()
        return self.text.startswith(token, self.pos)

    def accept(self, token: str) -> bool:
        if self.peek(token):
            self.pos += len(token)
            return True
        return False

    def expect(self, token: str) -> None:
        if not self.accept(token):
            raise self.error(f"expected {token!r}")

    def match(self, pattern: re.Pattern) -> str | None:
        self.skip_ws()
        found = pattern.match(self.text, self.pos)
        if found is None:
            return None
        self.pos = found.end()
        return found.group(0)

    def expect_match(self, pattern: re.Pattern, what: str) -> str:
        token = self.match(pattern)
        if token is None:
            raise self.error(f"expected {what}")
        return token

    def at_end(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)

    # -- entry points -----------------------------------------------------------

    def parse_operation(self) -> Operation:
        """Parse one (possibly nested) operation."""
        result_names = self._parse_result_bindings()
        self.skip_ws()
        name_pos = self.pos
        name = self._parse_op_name()
        operands = self._parse_operand_list()
        regions = self._parse_optional_regions()
        attributes = self._parse_optional_attributes()
        self.expect(":")
        operand_types, result_types = self._parse_signature()
        if len(operand_types) != len(operands):
            raise self.error_at(
                name_pos,
                f"'{name}': {len(operands)} operand(s) but "
                f"{len(operand_types)} operand type(s)",
            )
        if len(result_names) not in (0, len(result_types)):
            raise self.error_at(
                name_pos,
                f"'{name}': {len(result_names)} result binding(s) but "
                f"{len(result_types)} result type(s)",
            )
        op_class = op_registry.lookup(name)
        if op_class is Operation:
            # Tolerate entirely foreign dialects (round-tripping IR from
            # other tools), but an unknown op *within* a registered
            # dialect is almost certainly a typo — reject it with the
            # offending name and source location.
            namespace = name.partition(".")[0]
            if op_registry.get_dialect(namespace) is not None:
                raise self.error_at(
                    name_pos,
                    f"unknown operation '{name}' in registered dialect "
                    f"'{namespace}'",
                )
            op_class = _unregistered_class(name)
        spec = getattr(op_class, "irdl_spec", None)
        if spec is not None:
            complaint = spec.check_arity(len(operands), len(result_types))
            if complaint is not None:
                raise self.error_at(name_pos, f"'{name}': {complaint}")
        op = object.__new__(op_class)
        Operation.__init__(
            op,
            operands=operands,
            result_types=result_types,
            attributes=attributes,
            regions=regions,
        )
        for binding, result in zip(result_names, op.results):
            self.values[binding] = result
        for value, declared in zip(operands, operand_types):
            if value.type != declared:
                raise self.error_at(
                    name_pos,
                    f"'{name}': operand type mismatch: {value.type} vs "
                    f"{declared}",
                )
        return op

    # -- operation pieces ----------------------------------------------------------

    def _parse_result_bindings(self) -> list[str]:
        saved = self.pos
        names = []
        while True:
            token = self.match(_VALUE_ID)
            if token is None:
                self.pos = saved
                return []
            names.append(token)
            if self.accept(","):
                continue
            if self.accept("="):
                return names
            self.pos = saved
            return []

    def _parse_op_name(self) -> str:
        token = self.expect_match(_STRING, "operation name")
        return token[1:-1]

    def _parse_operand_list(self) -> list[SSAValue]:
        self.expect("(")
        operands = []
        while not self.accept(")"):
            token = self.expect_match(_VALUE_ID, "value id")
            if token not in self.values:
                raise self.error(f"use of undefined value {token}")
            operands.append(self.values[token])
            if not self.peek(")"):
                self.expect(",")
        return operands

    def _parse_optional_regions(self) -> list[Region]:
        saved = self.pos
        if not self.accept("("):
            return []
        if not self.peek("{"):
            self.pos = saved
            return []
        regions = [self._parse_region()]
        while self.accept(","):
            regions.append(self._parse_region())
        self.expect(")")
        return regions

    def _parse_region(self) -> Region:
        self.expect("{")
        blocks = []
        while self.peek("^"):
            blocks.append(self._parse_block())
        self.expect("}")
        return Region(blocks)

    def _parse_block(self) -> Block:
        self.expect("^")
        self.expect_match(_INTEGER, "block label")
        self.expect("(")
        block = Block()
        while not self.accept(")"):
            token = self.expect_match(_VALUE_ID, "block argument")
            self.expect(":")
            arg = block.add_arg(self.parse_type())
            self.values[token] = arg
            if not self.peek(")"):
                self.expect(",")
        self.expect(":")
        while self.peek('"') or self.peek("%"):
            block.add_op(self.parse_operation())
        return block

    def _parse_optional_attributes(self) -> dict[str, Attribute]:
        if not self.accept("{"):
            return {}
        attributes: dict[str, Attribute] = {}
        while not self.accept("}"):
            key = self.expect_match(_IDENT, "attribute name")
            self.expect("=")
            attributes[key] = self.parse_attribute()
            if not self.peek("}"):
                self.expect(",")
        return attributes

    def _parse_signature(
        self,
    ) -> tuple[list[TypeAttribute], list[TypeAttribute]]:
        operand_types = self._parse_type_list()
        self.expect("->")
        result_types = self._parse_type_list()
        return operand_types, result_types

    def _parse_type_list(self) -> list[TypeAttribute]:
        self.expect("(")
        types = []
        while not self.accept(")"):
            types.append(self.parse_type())
            if not self.peek(")"):
                self.expect(",")
        return types

    # -- types ------------------------------------------------------------------------

    def parse_type(self) -> TypeAttribute:
        """Parse one type."""
        if self.accept("index"):
            return IndexType()
        if self.accept("memref<"):
            return self._parse_memref_body()
        if self.accept("!rv.reg"):
            from ..dialects.riscv import IntRegisterType

            return IntRegisterType(self._parse_optional_angle_ident())
        if self.accept("!rv.freg"):
            from ..dialects.riscv import FloatRegisterType

            return FloatRegisterType(self._parse_optional_angle_ident())
        if self.accept("!stream.readable<"):
            from ..dialects.stream import ReadableStreamType

            element = self.parse_type()
            self.expect(">")
            return ReadableStreamType(element)
        if self.accept("!stream.writable<"):
            from ..dialects.stream import WritableStreamType

            element = self.parse_type()
            self.expect(">")
            return WritableStreamType(element)
        if self.peek("("):
            operand_types = self._parse_type_list()
            self.expect("->")
            result_types = self._parse_type_list()
            return FunctionType(operand_types, result_types)
        token = self.match(re.compile(r"[fi]\d+"))
        if token is not None:
            width = int(token[1:])
            return (
                FloatType(width)
                if token[0] == "f"
                else IntegerType(width)
            )
        raise self.error("expected a type")

    def _parse_optional_angle_ident(self) -> str:
        if not self.accept("<"):
            return ""
        name = self.expect_match(_IDENT, "register name")
        self.expect(">")
        return name

    def _parse_memref_body(self) -> MemRefType:
        shape = []
        while True:
            saved = self.pos
            token = self.match(_INTEGER)
            if token is not None and self.accept("x"):
                shape.append(int(token))
                continue
            self.pos = saved
            element = self.parse_type()
            self.expect(">")
            return MemRefType(element, shape)

    # -- attributes ----------------------------------------------------------------------

    def parse_attribute(self) -> Attribute:
        """Parse one attribute value."""
        if self.accept("true"):
            return BoolAttr(True)
        if self.accept("false"):
            return BoolAttr(False)
        if self.peek('"'):
            token = self.expect_match(_STRING, "string")
            return StringAttr(token[1:-1])
        if self.accept("@"):
            return SymbolRefAttr(self.expect_match(_IDENT, "symbol"))
        if self.accept("affine_map<"):
            return self._parse_affine_map_body()
        if self.accept("#memref_stream.stride_pattern<"):
            return self._parse_memref_stream_pattern()
        if self.accept("#snitch_stream.stride_pattern<"):
            return self._parse_snitch_stream_pattern()
        if self.peek("["):
            return self._parse_array_or_dense()
        if self.peek("("):
            # function-type attribute (e.g. func.func's signature)
            return self.parse_type()
        number = self.match(_FLOAT)
        if number is not None:
            self.expect(":")
            attr_type = self.parse_type()
            if not isinstance(attr_type, FloatType):
                raise self.error("float attribute needs a float type")
            return FloatAttr(float(number), attr_type)
        token = self.match(_INTEGER)
        if token is not None:
            return IntAttr(int(token))
        raise self.error("expected an attribute")

    def _parse_array_or_dense(self) -> Attribute:
        self.expect("[")
        elements: list[Attribute] = []
        all_ints = True
        while not self.accept("]"):
            element = self.parse_attribute()
            elements.append(element)
            if not isinstance(element, IntAttr):
                all_ints = False
            if not self.peek("]"):
                self.expect(",")
        if elements and all_ints:
            return DenseIntAttr([e.value for e in elements])
        if not elements:
            return DenseIntAttr([])
        return ArrayAttr(elements)

    def _parse_int_list(self) -> list[int]:
        self.expect("[")
        values = []
        while not self.accept("]"):
            values.append(
                int(self.expect_match(_INTEGER, "integer"))
            )
            if not self.peek("]"):
                self.expect(",")
        return values

    def _parse_memref_stream_pattern(self) -> Attribute:
        from ..dialects.memref_stream import StridePatternAttr

        self.expect("ub")
        self.expect("=")
        ub = self._parse_int_list()
        self.expect(",")
        self.expect("index_map")
        self.expect("=")
        self.expect("affine_map<")
        index_map = self._parse_affine_map_body()
        self.expect(">")
        return StridePatternAttr(DenseIntAttr(ub), index_map)

    def _parse_snitch_stream_pattern(self) -> Attribute:
        from ..dialects.snitch_stream import StridePattern

        self.expect("ub")
        self.expect("=")
        ub = self._parse_int_list()
        self.expect(",")
        self.expect("strides")
        self.expect("=")
        strides = self._parse_int_list()
        self.expect(">")
        return StridePattern(ub, strides)

    # -- affine maps --------------------------------------------------------------

    def _parse_affine_map_body(self) -> AffineMap:
        self.expect("(")
        num_dims = 0
        while not self.accept(")"):
            self.expect_match(re.compile(r"d\d+"), "dim name")
            num_dims += 1
            if not self.peek(")"):
                self.expect(",")
        self.expect("->")
        self.expect("(")
        exprs = []
        while not self.accept(")"):
            exprs.append(self._parse_affine_expr())
            if not self.peek(")"):
                self.expect(",")
        self.expect(">")
        return AffineMap(num_dims, exprs)

    def _parse_affine_expr(self) -> AffineExpr:
        left = self._parse_affine_term()
        while True:
            self.skip_ws()
            if self.accept("+"):
                left = left + self._parse_affine_term()
            elif self.accept("*"):
                left = left * self._parse_affine_term()
            else:
                return left

    def _parse_affine_term(self) -> AffineExpr:
        if self.accept("("):
            expr = self._parse_affine_expr()
            self.expect(")")
            return expr
        token = self.match(re.compile(r"d\d+"))
        if token is not None:
            return AffineDimExpr(int(token[1:]))
        token = self.expect_match(_INTEGER, "affine term")
        return AffineConstantExpr(int(token))


def parse_op(text: str) -> Operation:
    """Parse a single top-level operation (e.g. a module)."""
    parser = Parser(text)
    op = parser.parse_operation()
    if not parser.at_end():
        raise parser.error("trailing input after operation")
    return op


def parse_module(text: str):
    """Parse text that must hold a ``builtin.module``."""
    from ..dialects.builtin import ModuleOp

    op = parse_op(text)
    if not isinstance(op, ModuleOp):
        raise ParseError("expected builtin.module", text, 0)
    return op


__all__ = ["Parser", "ParseError", "parse_op", "parse_module"]
