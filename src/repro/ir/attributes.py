"""Attributes and types for the SSA IR.

Attributes are immutable compile-time values attached to operations, and
types are attributes that classify SSA values.  This mirrors the MLIR design
the paper builds on: "attributes, a key-value map of compile-time constants"
(Section 2.1).  All attributes are hashable value objects so they can be
freely shared, compared and used as dictionary keys by rewrites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence


@dataclass(frozen=True)
class Attribute:
    """Base class of every compile-time constant in the IR."""

    def __str__(self) -> str:  # pragma: no cover - overridden widely
        return repr(self)


@dataclass(frozen=True)
class TypeAttribute(Attribute):
    """Base class of attributes that may classify SSA values."""


# ---------------------------------------------------------------------------
# Scalar types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IntegerType(TypeAttribute):
    """Fixed-width two's-complement integer type (e.g. ``i32``)."""

    width: int

    def __str__(self) -> str:
        return f"i{self.width}"


@dataclass(frozen=True)
class IndexType(TypeAttribute):
    """Target-width integer used for indexing and loop bounds."""

    def __str__(self) -> str:
        return "index"


@dataclass(frozen=True)
class FloatType(TypeAttribute):
    """IEEE-754 binary floating-point type of a given width."""

    width: int

    def __str__(self) -> str:
        return f"f{self.width}"

    @property
    def byte_width(self) -> int:
        """Size of one element of this type in bytes."""
        return self.width // 8


#: Canonical instances, shared across the code base.
i1 = IntegerType(1)
i32 = IntegerType(32)
i64 = IntegerType(64)
index = IndexType()
f32 = FloatType(32)
f64 = FloatType(64)


# ---------------------------------------------------------------------------
# Data attributes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IntAttr(Attribute):
    """A plain integer constant (used for widths, bounds, factors...)."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class BoolAttr(Attribute):
    """A boolean constant."""

    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class FloatAttr(Attribute):
    """A floating-point constant together with its type."""

    value: float
    type: FloatType = f64

    def __str__(self) -> str:
        return f"{self.value!r} : {self.type}"


@dataclass(frozen=True)
class StringAttr(Attribute):
    """A string constant."""

    value: str

    def __str__(self) -> str:
        return f'"{self.value}"'


@dataclass(frozen=True)
class ArrayAttr(Attribute):
    """An ordered, immutable sequence of attributes."""

    elements: tuple[Attribute, ...]

    def __init__(self, elements: Sequence[Attribute]):
        object.__setattr__(self, "elements", tuple(elements))

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __getitem__(self, i: int) -> Attribute:
        return self.elements[i]

    def __str__(self) -> str:
        return "[" + ", ".join(str(e) for e in self.elements) + "]"


@dataclass(frozen=True)
class DenseIntAttr(Attribute):
    """An immutable sequence of integers (bounds, strides, shapes...)."""

    values: tuple[int, ...]

    def __init__(self, values: Sequence[int]):
        object.__setattr__(self, "values", tuple(int(v) for v in values))

    def __iter__(self) -> Iterator[int]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, i: int) -> int:
        return self.values[i]

    def __str__(self) -> str:
        return "[" + ", ".join(str(v) for v in self.values) + "]"


@dataclass(frozen=True)
class SymbolRefAttr(Attribute):
    """A reference to a symbol (e.g. a function name)."""

    name: str

    def __str__(self) -> str:
        return f"@{self.name}"


# ---------------------------------------------------------------------------
# Shaped types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MemRefType(TypeAttribute):
    """A reference to a shaped buffer in memory.

    Layout is always row-major (the only layout the Snitch micro-kernels in
    the paper use); strides are derived from the shape.
    """

    element_type: TypeAttribute
    shape: tuple[int, ...]

    def __init__(self, element_type: TypeAttribute, shape: Sequence[int]):
        object.__setattr__(self, "element_type", element_type)
        object.__setattr__(self, "shape", tuple(int(s) for s in shape))

    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def element_count(self) -> int:
        """Total number of elements in the buffer."""
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def element_byte_width(self) -> int:
        """Size in bytes of one element."""
        if isinstance(self.element_type, FloatType):
            return self.element_type.width // 8
        if isinstance(self.element_type, IntegerType):
            return max(1, self.element_type.width // 8)
        raise ValueError(f"unsized element type {self.element_type}")

    @property
    def byte_size(self) -> int:
        """Total size of the buffer in bytes."""
        return self.element_count * self.element_byte_width

    def strides(self) -> tuple[int, ...]:
        """Row-major strides, in elements."""
        strides = [1] * self.rank
        for i in range(self.rank - 2, -1, -1):
            strides[i] = strides[i + 1] * self.shape[i + 1]
        return tuple(strides)

    def byte_strides(self) -> tuple[int, ...]:
        """Row-major strides, in bytes."""
        w = self.element_byte_width
        return tuple(s * w for s in self.strides())

    def __str__(self) -> str:
        dims = "x".join(str(s) for s in self.shape)
        sep = "x" if dims else ""
        return f"memref<{dims}{sep}{self.element_type}>"


@dataclass(frozen=True)
class FunctionType(TypeAttribute):
    """The type of a function: inputs and results."""

    inputs: tuple[TypeAttribute, ...]
    results: tuple[TypeAttribute, ...]

    def __init__(
        self,
        inputs: Sequence[TypeAttribute],
        results: Sequence[TypeAttribute],
    ):
        object.__setattr__(self, "inputs", tuple(inputs))
        object.__setattr__(self, "results", tuple(results))

    def __str__(self) -> str:
        ins = ", ".join(str(t) for t in self.inputs)
        outs = ", ".join(str(t) for t in self.results)
        return f"({ins}) -> ({outs})"


__all__ = [
    "Attribute",
    "TypeAttribute",
    "IntegerType",
    "IndexType",
    "FloatType",
    "IntAttr",
    "BoolAttr",
    "FloatAttr",
    "StringAttr",
    "ArrayAttr",
    "DenseIntAttr",
    "SymbolRefAttr",
    "MemRefType",
    "FunctionType",
    "i1",
    "i32",
    "i64",
    "index",
    "f32",
    "f64",
]
