"""Progressive lowering of the paper's running example (Figures 2, 6, 7).

Compiles the vector-matrix product z[5] = Y[5x200] @ x[200] with IR
snapshots enabled, then prints the IR after each pipeline stage —
showing how linalg.generic turns into memref_stream.generic, gets
scheduled (fill fusion, scalar replacement, unroll-and-jam), becomes a
snitch_stream.streaming_region with an FREP loop, and finally flat
register-allocated assembly.

Run with:  python examples/matvec_progressive_lowering.py
"""

import numpy as np

from repro import api, kernels
from repro.compiler import Compiler

#: Stages worth showing (the rest are plumbing).
INTERESTING = (
    "input",
    "convert-linalg-to-memref-stream",
    "fuse-fill",
    "scalar-replacement",
    "unroll-and-jam",
    "lower-to-snitch",
    "allocate-registers",
    "lower-riscv-scf",
)


def main() -> None:
    module, spec = kernels.matvec(5, 200)
    compiler = Compiler("ours", snapshots=True)
    print(f"# pipeline: {compiler.pipeline_spec}")
    compiled = compiler.compile(module)
    for name, text in compiled.snapshots:
        if name not in INTERESTING:
            continue
        print("=" * 72)
        print(f"after: {name}")
        print("=" * 72)
        print(text)
    print("=" * 72)
    print("final assembly")
    print("=" * 72)
    print(compiled.asm)
    print("=" * 72)
    print("compile-time per pass")
    print("=" * 72)
    for name, seconds in compiled.pass_timings:
        print(f"{name:<34} {seconds * 1e3:7.2f} ms")

    arguments = spec.random_arguments(seed=0)
    result = api.run_kernel(compiled, arguments)
    expected = spec.reference(*arguments)[2]
    assert np.allclose(result.arrays[2], expected)
    print(f"# verified against numpy; {result.trace.summary()}")


if __name__ == "__main__":
    main()
