"""Inspect the spill-free register allocator (paper Section 3.3, Table 2).

Compiles the kernel suite and prints, per kernel: the FP/integer
register budget actually used, whether stream registers were reserved,
and the allocated assembly — a hands-on view of the allocator's
three-pass design.

Run with:  python examples/inspect_register_allocation.py [--asm]
"""

import sys

from repro import api, kernels
from repro.kernels import lowlevel

SUITE = [
    ("fill 64-bit 4x4", lambda: kernels.fill(4, 4), "linalg"),
    ("relu 64-bit 4x4", lambda: kernels.relu(4, 4), "linalg"),
    ("sum 64-bit 4x4", lambda: kernels.sum_kernel(4, 4), "linalg"),
    (
        "max_pool 64-bit 4x4",
        lambda: kernels.max_pool3x3(4, 4),
        "linalg",
    ),
    ("conv3x3 64-bit 4x4", lambda: kernels.conv3x3(4, 4), "linalg"),
    ("matmul 64-bit 4x16x8", lambda: kernels.matmul(4, 16, 8), "linalg"),
    (
        "matmul_t 32-bit 16x16",
        lambda: lowlevel.lowlevel_matmul_t_f32(16, 16),
        "lowlevel",
    ),
]


def main() -> None:
    show_asm = "--asm" in sys.argv
    print(f"{'kernel':<24} {'FP regs':>8} {'int regs':>9}")
    print("-" * 45)
    for label, build, level in SUITE:
        module, spec = build()
        if level == "linalg":
            compiled = api.compile_linalg(module, pipeline="ours")
        else:
            compiled = api.compile_lowlevel(module, spec.name)
        fp, integer = compiled.register_usage()
        print(f"{label:<24} {fp:>5}/20 {integer:>6}/15")
        if show_asm:
            print(compiled.asm)
    print(
        "\nAll kernels allocate within the caller-saved budget with no"
        "\nspill code — the paper's RQ2 (pass --asm to see the code)."
    )


if __name__ == "__main__":
    main()
