"""Run the NSNet2- and AlexNet-shaped kernel mixes end to end.

The paper's kernels come from these two networks (Section 4.1).  This
example compiles each network's per-layer micro-kernels with both our
pipeline and the Clang-like baseline, simulates them back to back, and
reports the aggregate speedup — the number a deployment engineer would
actually care about.

Run with:  python examples/network_inference.py
"""

from repro.kernels import networks


def main() -> None:
    for name, layers in (
        ("NSNet2", networks.nsnet2_layers()),
        ("AlexNet", networks.alexnet_layers()),
    ):
        ours = networks.run_network(name, layers, pipeline="ours")
        baseline = networks.run_network(name, layers, pipeline="clang")
        print(ours.report())
        speedup = baseline.total_cycles / ours.total_cycles
        print(
            f"-> vs clang-like flow: {baseline.total_cycles} cycles, "
            f"speedup {speedup:.2f}x"
        )
        print()


if __name__ == "__main__":
    main()
