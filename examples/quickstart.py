"""Quickstart: compile a MatMul micro-kernel and run it on the Snitch model.

This is the 30-second tour of the library:

1. build a kernel at the linalg level (what an ML frontend would emit);
2. compile it with the multi-level backend ("ours" pipeline);
3. simulate it on the Snitch core model;
4. check the result against numpy and read the performance counters.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import api, kernels


def main() -> None:
    # 1. A MatMul C[1x5] = A[1x200] @ B[200x5], zero-initialised —
    #    the kernel the paper uses for its Table 3 study.
    module, spec = kernels.matmul(1, 200, 5)

    # 2. Compile through the full pipeline: fill fusion, scalar
    #    replacement, unroll-and-jam, stream + FREP lowering, spill-free
    #    register allocation, assembly emission.  ``pipeline`` also
    #    accepts raw pass-spec strings — see
    #    examples/compose_pipeline.py.
    compiled = api.compile_linalg(module, pipeline="ours")
    print("=== generated Snitch assembly ===")
    print(compiled.asm)

    # 3. Run on the simulated Snitch core.
    arguments = spec.random_arguments(seed=42)
    result = api.run_kernel(compiled, arguments)

    # 4. Validate and report.
    expected = spec.reference(*arguments)[2]
    assert np.allclose(result.arrays[2], expected), "wrong result!"
    trace = result.trace
    print("=== performance ===")
    print(f"cycles:           {trace.cycles}")
    print(f"FLOPs:            {trace.flops}")
    print(f"throughput:       {trace.throughput:.2f} FLOPs/cycle")
    print(f"FPU utilization:  {trace.fpu_utilization:.1%}")
    print(f"explicit loads:   {trace.loads}")
    print(f"explicit stores:  {trace.stores}")
    fp, integer = compiled.register_usage()
    print(f"registers:        {fp}/20 FP, {integer}/15 integer")
    print("result matches numpy: OK")


if __name__ == "__main__":
    main()
