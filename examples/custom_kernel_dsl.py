"""Bring your own kernel: an AXPY-like operation from scratch.

The compiler accepts any ``linalg.generic``-shaped computation.  This
example builds z = x * y + z_init element-wise (a fused multiply-add
map) and a row-sum reduction — neither is part of the built-in kernel
suite — and compiles both through the full pipeline, demonstrating that
the backend generalises beyond the paper's Table 1 set.

Run with:  python examples/custom_kernel_dsl.py
"""

import numpy as np

from repro import api
from repro.dialects import arith, func, linalg
from repro.dialects.builtin import ModuleOp
from repro.ir import AffineMap, Block, MemRefType, Region, f64


def build_fma_map(n: int, m: int):
    """z[i,j] = x[i,j] * y[i,j] + z[i,j] (reads its own output)."""
    memref = MemRefType(f64, (n, m))
    fn = func.FuncOp("fma_map", [memref, memref, memref])
    x, y, z = fn.args
    identity = AffineMap.identity(2)
    block = Block([f64, f64, f64])
    prod = arith.MulfOp(block.args[0], block.args[1])
    total = arith.AddfOp(block.args[2], prod.result)
    block.add_ops([prod, total, linalg.YieldOp([total.result])])
    fn.entry_block.add_op(
        linalg.GenericOp(
            inputs=[x, y],
            outputs=[z],
            indexing_maps=[identity, identity, identity],
            iterator_types=["parallel", "parallel"],
            body=Region([block]),
        )
    )
    fn.entry_block.add_op(func.ReturnOp())
    return ModuleOp([fn])


def build_row_sum(n: int, m: int):
    """out[i] = sum_j x[i, j]: a fresh reduction kernel."""
    fn = func.FuncOp(
        "row_sum", [MemRefType(f64, (n, m)), MemRefType(f64, (n,))]
    )
    x, out = fn.args
    zero = arith.ConstantOp.from_float(0.0, f64)
    fn.entry_block.add_op(zero)
    fn.entry_block.add_op(linalg.FillOp(zero.result, out))
    block = Block([f64, f64])
    acc = arith.AddfOp(block.args[1], block.args[0])
    block.add_ops([acc, linalg.YieldOp([acc.result])])
    fn.entry_block.add_op(
        linalg.GenericOp(
            inputs=[x],
            outputs=[out],
            indexing_maps=[
                AffineMap.identity(2),
                AffineMap.from_callable(2, lambda i, j: (i,)),
            ],
            iterator_types=["parallel", "reduction"],
            body=Region([block]),
        )
    )
    fn.entry_block.add_op(func.ReturnOp())
    return ModuleOp([fn])


def main() -> None:
    rng = np.random.default_rng(1)

    # --- element-wise fused multiply-add ---------------------------------
    n, m = 8, 16
    x = rng.uniform(-1, 1, (n, m))
    y = rng.uniform(-1, 1, (n, m))
    z = rng.uniform(-1, 1, (n, m))
    compiled = api.compile_linalg(build_fma_map(n, m), pipeline="ours")
    result = api.run_kernel(compiled, [x, y, z.copy()])
    assert np.allclose(result.arrays[2], x * y + z)
    print(f"fma_map : {result.trace.summary()}")

    # --- row-wise reduction -----------------------------------------------
    x = rng.uniform(-1, 1, (8, 40))
    compiled = api.compile_linalg(build_row_sum(8, 40), pipeline="ours")
    result = api.run_kernel(compiled, [x, np.zeros(8)])
    assert np.allclose(result.arrays[1], x.sum(axis=1))
    print(f"row_sum : {result.trace.summary()}")

    print("both custom kernels verified against numpy")


if __name__ == "__main__":
    main()
