"""Scale a kernel across the cores of a Snitch cluster.

The paper's Figure 11 discussion notes that setup overheads must be
weighed "when distributing larger workloads between Snitch cores".
This example splits an elementwise Sum over 1..8 cores of a shared-TCDM
cluster and prints the scaling curve: speedup grows with core count but
bends away from ideal as the fixed per-core stream-setup overhead stops
amortising.

Run with:  python examples/multicore_scaling.py
"""

import numpy as np

from repro import api, kernels
from repro.snitch.cluster import run_row_partitioned


def compile_ours(module, spec):
    return api.compile_linalg(module, pipeline="ours")


def main() -> None:
    rows, cols = 48, 40
    rng = np.random.default_rng(0)
    x = rng.uniform(-1, 1, (rows, cols))
    y = rng.uniform(-1, 1, (rows, cols))

    print(f"Sum {rows}x{cols} on a shared-TCDM Snitch cluster")
    print(f"{'cores':>5} {'cycles':>8} {'speedup':>8} {'per-core util':>14}")
    baseline = None
    for cores in (1, 2, 4, 8):
        cluster = run_row_partitioned(
            kernels.sum_kernel,
            compile_ours,
            (rows, cols),
            cores,
            [x, y, np.zeros((rows, cols))],
            row_parallel_args=[0, 1, 2],
        )
        assert np.allclose(cluster.arrays[2], x + y)
        if baseline is None:
            baseline = cluster.cycles
        print(
            f"{cores:>5} {cluster.cycles:>8} "
            f"{baseline / cluster.cycles:>7.2f}x "
            f"{cluster.cluster_utilization:>13.1%}"
        )
    print(
        "\nspeedup bends away from ideal: each core pays the same "
        "constant\nstream-setup overhead on an ever smaller row slice."
    )


if __name__ == "__main__":
    main()
