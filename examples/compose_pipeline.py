"""Composing a custom pipeline from a textual spec.

The named pipelines ("ours", "table3-*", ...) are just entries in a
spec-string table — the same machinery accepts any composition of
registered passes.  This example builds a *custom* ablation the paper
never names: the full streaming flow but with a fixed unroll factor of
2 instead of the automatic selection, written as an MLIR-style spec
with a pass option (``unroll-and-jam{factor=2}``).  It then compares
the result against the stock "ours" flow on a matvec kernel.

Run with:  python examples/compose_pipeline.py
"""

import numpy as np

from repro import kernels
from repro.api import run_kernel
from repro.compiler import Compiler
from repro.ir.pipeline_spec import parse_pipeline_spec
from repro.transforms.pipelines import NAMED_PIPELINES

#: The full flow of paper Section 3.4, but with unroll factor pinned
#: to 2.  Every element is a registered pass; options are typed and
#: validated (try misspelling one to see the error message).
CUSTOM_SPEC = (
    "convert-linalg-to-memref-stream,fuse-fill,scalar-replacement,"
    "unroll-and-jam{factor=2},lower-to-snitch{use-frep=true},"
    "verify-streams,fuse-fmadd,lower-snitch-stream,canonicalize,dce,"
    "allocate-registers,lower-riscv-scf,eliminate-identity-moves"
)


def measure(pipeline: str) -> tuple[str, float]:
    module, spec = kernels.matvec(4, 200)
    compiler = Compiler(pipeline)
    compiled = compiler.compile(module)
    arguments = spec.random_arguments(seed=0)
    result = run_kernel(compiled, arguments)
    expected = spec.reference(*arguments)[2]
    assert np.allclose(result.arrays[2], expected)
    return compiler.pipeline_spec, result.trace.fpu_utilization


def main() -> None:
    # The spec language round-trips: parse -> build -> print is
    # canonical, so pipelines are introspectable as plain text.
    print(f"# custom spec has {len(parse_pipeline_spec(CUSTOM_SPEC))} "
          f"passes; 'ours' expands to:\n#   {NAMED_PIPELINES['ours']}")
    for label, pipeline in (("ours", "ours"), ("custom", CUSTOM_SPEC)):
        spec_text, utilization = measure(pipeline)
        print(f"{label:<8} fpu-utilization={utilization:.1%}")
        print(f"         {spec_text}")


if __name__ == "__main__":
    main()
