"""Write a kernel directly at the Snitch dialect level (paper Fig. 4/6).

Sometimes the DSL path is not enough and you want full control, like the
paper's Section 4.2 micro-kernels.  This example hand-builds a fused
"scaled accumulate" kernel — acc = sum_i (x_i * y_i), the SSR + FREP dot
product of paper Figure 4 — in the rv/rv_snitch/snitch_stream dialects,
then lets the backend do stream lowering, register allocation and
emission.

Run with:  python examples/handwritten_snitch_kernel.py
"""

import numpy as np

from repro import api
from repro.dialects import riscv, riscv_func, riscv_snitch
from repro.dialects.builtin import ModuleOp
from repro.dialects.riscv import IntRegisterType
from repro.dialects.snitch_stream import StreamingRegionOp, StridePattern
from repro.ir import Builder
from repro.snitch.memory import TCDM
from repro.snitch.machine import SnitchMachine, bits_to_f64
from repro.snitch.assembler import assemble


def build_dot(n: int) -> ModuleOp:
    """dot(x_ptr in a0, y_ptr in a1) -> result left in fa0."""
    fn = riscv_func.FuncOp("dot", riscv_func.abi_arg_types(["int", "int"]))
    builder = Builder.at_end(fn.entry_block)
    x_ptr = builder.insert(riscv.MVOp(fn.args[0])).rd
    y_ptr = builder.insert(riscv.MVOp(fn.args[1])).rd

    pattern = StridePattern([n], [8])
    region = StreamingRegionOp([x_ptr, y_ptr], [], [pattern, pattern])
    builder.insert(region)

    inner = Builder.at_end(region.body_block)
    zero = inner.insert(
        riscv.GetRegisterOp(IntRegisterType("zero"))
    ).result
    acc0 = inner.insert(riscv.FCvtDWOp(zero)).results[0]
    count = inner.insert(riscv.LiOp(n - 1)).rd
    frep = riscv_snitch.FrepOuter(count, [acc0])
    inner.insert(frep)
    body = Builder.at_end(frep.body_block)
    x = body.insert(
        riscv_snitch.ReadOp(region.body_block.args[0])
    ).result
    y = body.insert(
        riscv_snitch.ReadOp(region.body_block.args[1])
    ).result
    fma = body.insert(riscv.FMAddDOp(x, y, frep.body_iter_args[0]))
    body.insert(riscv_snitch.FrepYieldOp([fma.rd]))

    # Leave the accumulated result in the ABI return register fa0.
    builder.insert(
        riscv.FMVOp(
            frep.results[0],
            result_type=riscv.FloatRegisterType("fa0"),
        )
    )
    builder.insert(riscv_func.ReturnOp())
    return ModuleOp([fn])


def main() -> None:
    n = 256
    module = build_dot(n)
    compiled = api.compile_lowlevel(module, "dot")
    print(compiled.asm)

    rng = np.random.default_rng(7)
    x = rng.uniform(-1, 1, n)
    y = rng.uniform(-1, 1, n)
    memory = TCDM()
    x_base = memory.allocate(x.nbytes)
    y_base = memory.allocate(y.nbytes)
    memory.write_array(x_base, x)
    memory.write_array(y_base, y)
    machine = SnitchMachine(assemble(compiled.asm), memory)
    trace = machine.run("dot", int_args={"a0": x_base, "a1": y_base})
    got = bits_to_f64(machine.read_float_bits("fa0"))

    assert np.isclose(got, x @ y), (got, x @ y)
    print(f"dot({n}) = {got:.6f}  (numpy: {x @ y:.6f})")
    print(trace.summary())
    print(
        "note the single-accumulator FMA chain: utilization is pinned "
        "near 25%\nby the 4-cycle FPU latency — exactly the RAW hazard "
        "unroll-and-jam removes."
    )


if __name__ == "__main__":
    main()
