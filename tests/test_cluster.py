"""Tests for multi-core cluster execution."""

import numpy as np
import pytest

from repro import api, kernels
from repro.snitch.cluster import partition_rows, run_row_partitioned


class TestPartition:
    def test_even_split(self):
        assert partition_rows(8, 4) == [
            (0, 2), (2, 4), (4, 6), (6, 8),
        ]

    def test_uneven_split_balanced(self):
        chunks = partition_rows(10, 4)
        sizes = [stop - start for start, stop in chunks]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_more_cores_than_rows(self):
        chunks = partition_rows(2, 4)
        assert sum(stop - start for start, stop in chunks) == 2

    def test_more_cores_than_rows_yields_no_empty_spans(self):
        """Surplus cores get no chunk at all, never a (s, s) span."""
        chunks = partition_rows(2, 4)
        assert chunks == [(0, 1), (1, 2)]
        assert all(stop > start for start, stop in chunks)
        assert partition_rows(1, 8) == [(0, 1)]

    def test_zero_rows_partitions_to_nothing(self):
        assert partition_rows(0, 4) == []

    def test_uneven_split_covers_contiguously(self):
        chunks = partition_rows(7, 3)
        assert chunks == [(0, 3), (3, 5), (5, 7)]
        for (_, stop), (next_start, _) in zip(chunks, chunks[1:]):
            assert stop == next_start

    def test_spans_always_non_empty_and_balanced(self):
        for rows in range(0, 12):
            for cores in range(1, 12):
                chunks = partition_rows(rows, cores)
                sizes = [stop - start for start, stop in chunks]
                assert all(size > 0 for size in sizes)
                assert sum(sizes) == rows
                if sizes:
                    assert max(sizes) - min(sizes) <= 1

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            partition_rows(4, 0)

    def test_negative_rows_rejected(self):
        with pytest.raises(ValueError):
            partition_rows(-1, 2)


def compile_ours(module, spec):
    return api.compile_linalg(module, pipeline="ours")


def run_sum_on_cluster(rows, cols, num_cores, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, (rows, cols))
    y = rng.uniform(-1, 1, (rows, cols))
    z = np.zeros((rows, cols))
    return (
        run_row_partitioned(
            kernels.sum_kernel,
            compile_ours,
            (rows, cols),
            num_cores,
            [x, y, z],
            row_parallel_args=[0, 1, 2],
        ),
        x,
        y,
    )


class TestClusterExecution:
    def test_result_correct_on_4_cores(self):
        cluster, x, y = run_sum_on_cluster(16, 20, 4)
        np.testing.assert_allclose(cluster.arrays[2], x + y)

    def test_single_core_matches_api(self):
        cluster, x, y = run_sum_on_cluster(16, 20, 1)
        module, spec = kernels.sum_kernel(16, 20)
        compiled = api.compile_linalg(module, pipeline="ours")
        single = api.run_kernel(compiled, [x, y, np.zeros((16, 20))])
        assert cluster.cycles == single.trace.cycles

    def test_parallel_speedup(self):
        single, *_ = run_sum_on_cluster(32, 40, 1)
        quad, *_ = run_sum_on_cluster(32, 40, 4)
        speedup = quad.speedup_over(single.cycles)
        # Per-core setup overhead caps the speedup below ideal —
        # exactly the distribution trade-off the paper's Fig 11
        # discussion warns higher-level tools about.
        assert 2.5 < speedup < 4.0

    def test_uneven_rows(self):
        cluster, x, y = run_sum_on_cluster(7, 12, 3)
        np.testing.assert_allclose(cluster.arrays[2], x + y)

    def test_matvec_partitioned_over_output_rows(self):
        """Partition z[rows] = Y[rows x cols] @ x: Y and z split by
        rows, x broadcast."""
        rows, cols = 12, 40
        rng = np.random.default_rng(3)
        x = rng.uniform(-1, 1, cols)
        y = rng.uniform(-1, 1, (rows, cols))
        z = np.zeros(rows)

        def builder(chunk_rows, chunk_cols):
            return kernels.matvec(chunk_rows, chunk_cols)

        cluster = run_row_partitioned(
            builder,
            compile_ours,
            (rows, cols),
            4,
            [x, y, z],
            row_parallel_args=[1, 2],
        )
        np.testing.assert_allclose(cluster.arrays[2], y @ x, atol=1e-9)

    def test_cluster_utilization_bounded(self):
        cluster, *_ = run_sum_on_cluster(16, 20, 4)
        assert 0.0 < cluster.cluster_utilization <= 1.0

    def test_flops_conserved(self):
        single, *_ = run_sum_on_cluster(16, 20, 1)
        quad, *_ = run_sum_on_cluster(16, 20, 4)
        assert quad.total_flops == single.total_flops
