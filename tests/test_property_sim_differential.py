"""Differential testing: predecoded engine vs. reference interpreter.

Randomized programs — straight-line integer/FP code, bounded loops,
memory traffic, and FREP/SSR stream kernels — are executed on both
:meth:`SnitchMachine.run` (the predecoded closure engine) and
:meth:`SnitchMachine.run_reference` (the original interpreter).  Every
observable must match bit for bit: cycle counts, every trace counter
(including the dynamic histogram), the recorded timeline, final memory
contents, and every register read.  Programs that fault must fault
identically (same exception type and message) in both engines.

A non-random sweep at the bottom runs paper kernels through all nine
named pipelines and requires the same equivalence end to end.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import api, kernels
from repro.backend.registers import FLOAT_REGISTERS, INT_REGISTERS
from repro.snitch import SnitchMachine, TCDM, assemble
from repro.snitch.isa import scfg_address
from repro.transforms.pipelines import PIPELINE_NAMES

#: Registers the generators draw from (caller-saved, no ABI duties).
INT_POOL = ("t0", "t1", "t2", "t3", "a0", "a1", "a2")
FP_POOL = ("fa0", "fa1", "fa2", "fa3", "ft3", "ft4", "ft5")

#: Scratch window both engines may address freely.
SCRATCH_BASE = 64
SCRATCH_WORDS = 32


def run_differential(
    asm,
    int_args=None,
    float_args=None,
    seed_memory=None,
    max_instructions=20_000,
):
    """Execute on both engines and assert observable equivalence."""
    program = assemble(asm)
    outcomes = []
    for reference in (False, True):
        memory = TCDM()
        if seed_memory:
            memory.data[: len(seed_memory)] = seed_memory
        machine = SnitchMachine(
            program,
            memory,
            max_instructions=max_instructions,
            record_timeline=True,
        )
        runner = machine.run_reference if reference else machine.run
        error = None
        try:
            runner("main", int_args=int_args, float_args=float_args)
        except Exception as exc:
            error = exc
        outcomes.append((machine, error))
    (fast, fast_error), (ref, ref_error) = outcomes
    if ref_error is None:
        assert fast_error is None, repr(fast_error)
    else:
        assert type(fast_error) is type(ref_error), (
            fast_error, ref_error,
        )
        assert str(fast_error) == str(ref_error)
    assert fast.trace == ref.trace
    assert fast.timeline == ref.timeline
    assert bytes(fast.memory.data) == bytes(ref.memory.data)
    for name in INT_REGISTERS + FLOAT_REGISTERS:
        assert fast.read_int(name) == ref.read_int(name), name
        assert fast.read_float_bits(name) == ref.read_float_bits(name), name
    assert fast.int_time == ref.int_time
    assert fast.fpu_time == ref.fpu_time
    assert fast._executed == ref._executed
    assert fast.streaming == ref.streaming
    for fast_mover, ref_mover in zip(fast.movers, ref.movers):
        assert fast_mover == ref_mover
    return fast


# -- strategies -----------------------------------------------------------------

int_reg = st.sampled_from(INT_POOL)
fp_reg = st.sampled_from(FP_POOL)
small_imm = st.integers(min_value=-64, max_value=64)
scratch_offset = st.integers(min_value=0, max_value=SCRATCH_WORDS - 2).map(
    lambda w: w * 4
)


@st.composite
def int_instruction(draw):
    shape = draw(
        st.sampled_from(
            ("li", "mv", "add", "sub", "mul", "addi", "slli", "lw", "sw")
        )
    )
    rd = draw(int_reg)
    a = draw(int_reg)
    b = draw(int_reg)
    if shape == "li":
        return f"li {rd}, {draw(small_imm)}"
    if shape == "mv":
        return f"mv {rd}, {a}"
    if shape in ("add", "sub", "mul"):
        return f"{shape} {rd}, {a}, {b}"
    if shape == "addi":
        return f"addi {rd}, {a}, {draw(small_imm)}"
    if shape == "slli":
        return f"slli {rd}, {a}, {draw(st.integers(0, 8))}"
    offset = draw(scratch_offset)
    if shape == "lw":
        return f"lw {rd}, {offset}(s0)"
    return f"sw {rd}, {offset}(s0)"


@st.composite
def fp_instruction(draw):
    shape = draw(
        st.sampled_from(
            (
                "fadd.d", "fsub.d", "fmul.d", "fmax.d", "fmin.d",
                "fmadd.d", "fmv.d", "fcvt.d.w", "fld", "fsd",
                "vfadd.s", "vfmul.s", "vfmac.s", "vfcpka.s.s",
            )
        )
    )
    rd = draw(fp_reg)
    a = draw(fp_reg)
    b = draw(fp_reg)
    if shape == "fmadd.d":
        return f"fmadd.d {rd}, {a}, {b}, {draw(fp_reg)}"
    if shape == "vfmac.s":
        return f"vfmac.s {rd}, {a}, {b}"
    if shape == "fmv.d":
        return f"fmv.d {rd}, {a}"
    if shape == "fcvt.d.w":
        return f"fcvt.d.w {rd}, {draw(int_reg)}"
    if shape == "fld":
        return f"fld {rd}, {draw(scratch_offset) * 2}(s0)"
    if shape == "fsd":
        return f"fsd {rd}, {draw(scratch_offset) * 2}(s0)"
    return f"{shape} {rd}, {a}, {b}"


def scratch_preamble():
    return [f"li s0, {SCRATCH_BASE}"]


class TestRandomScalarPrograms:
    @settings(max_examples=60, deadline=None)
    @given(
        body=st.lists(int_instruction(), min_size=1, max_size=24),
        trip=st.integers(min_value=1, max_value=6),
        seeds=st.lists(small_imm, min_size=3, max_size=3),
    )
    def test_integer_loop_programs(self, body, trip, seeds):
        lines = ["main:"] + scratch_preamble()
        lines += [f"li a{i}, {v}" for i, v in enumerate(seeds)]
        lines += [f"li s1, {trip}", "loop:"]
        lines += body
        lines += ["addi s1, s1, -1", "bnez s1, loop", "ret"]
        run_differential("\n".join(lines))

    @settings(max_examples=60, deadline=None)
    @given(
        body=st.lists(fp_instruction(), min_size=1, max_size=24),
        floats=st.lists(
            st.floats(
                min_value=-8.0,
                max_value=8.0,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=4,
            max_size=4,
        ),
    )
    def test_fp_programs(self, body, floats):
        lines = ["main:"] + scratch_preamble()
        lines += body
        lines.append("ret")
        float_args = {f"fa{i}": v for i, v in enumerate(floats)}
        run_differential("\n".join(lines), float_args=float_args)


@st.composite
def stream_config(draw):
    """One data mover's pattern: dims, bounds, strides, repeat."""
    dims = draw(st.integers(1, 3))
    bounds = [draw(st.integers(0, 3)) for _ in range(dims)]
    strides = [
        draw(st.sampled_from((8, 16, 24))) for _ in range(dims)
    ]
    repeat = draw(st.integers(0, 2))
    return dims, bounds, strides, repeat


@st.composite
def frep_ssr_program(draw):
    """A streaming kernel: configure 1-2 read movers (+ optionally the
    ft2 write mover), enable streaming, FREP a random FPU body.

    The generator does not try to balance element counts against pops —
    programs that run a stream past its end must fault *identically*
    in both engines, which is itself a property worth testing.
    """
    lines = ["main:"]
    readers = draw(st.integers(1, 2))
    for mover in range(readers):
        dims, bounds, strides, repeat = draw(stream_config())
        for d, bound in enumerate(bounds):
            lines += [
                f"li t0, {bound}",
                f"scfgwi t0, {scfg_address(mover, d)}",
            ]
        for d, stride in enumerate(strides):
            lines += [
                f"li t0, {stride}",
                f"scfgwi t0, {scfg_address(mover, 8 + d)}",
            ]
        lines += [
            f"li t0, {repeat}",
            f"scfgwi t0, {scfg_address(mover, 16)}",
            f"li t0, {SCRATCH_BASE + mover * 256}",
            f"scfgwi t0, {scfg_address(mover, 24 + dims - 1)}",
        ]
    writer = draw(st.booleans())
    if writer:
        dims, bounds, strides, _ = draw(stream_config())
        for d, bound in enumerate(bounds):
            lines += [
                f"li t0, {bound}",
                f"scfgwi t0, {scfg_address(2, d)}",
            ]
        for d, stride in enumerate(strides):
            lines += [
                f"li t0, {stride}",
                f"scfgwi t0, {scfg_address(2, 8 + d)}",
            ]
        lines += [
            f"li t0, {SCRATCH_BASE + 2 * 256}",
            f"scfgwi t0, {scfg_address(2, 28 + dims - 1)}",
        ]
    stream_sources = ["ft0", "ft1"][:readers]
    result_regs = ["ft2", "fa0"] if writer else ["fa0", "fa1"]
    ops = ("fadd.d", "fmul.d", "fmadd.d", "fmv.d", "fmax.d")
    body = []
    for _ in range(draw(st.integers(1, 3))):
        op = draw(st.sampled_from(ops))
        rd = draw(st.sampled_from(result_regs))
        a = draw(st.sampled_from(stream_sources + ["fa2"]))
        b = draw(st.sampled_from(stream_sources + ["fa3"]))
        if op == "fmv.d":
            body.append(f"fmv.d {rd}, {a}")
        elif op == "fmadd.d":
            body.append(f"fmadd.d {rd}, {a}, {b}, {rd}")
        else:
            body.append(f"{op} {rd}, {a}, {b}")
    trip = draw(st.integers(1, 8))
    lines += [
        "csrsi ssrcfg, 1",
        f"li t1, {trip - 1}",
        f"frep.o t1, {len(body)}, 0, 0",
        *body,
        "csrci ssrcfg, 1",
        "ret",
    ]
    return "\n".join(lines)


class TestRandomStreamPrograms:
    @settings(max_examples=60, deadline=None)
    @given(
        asm=frep_ssr_program(),
        data=st.lists(
            st.floats(
                min_value=-4.0,
                max_value=4.0,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=8,
            max_size=8,
        ),
    )
    def test_frep_ssr_programs(self, asm, data):
        memory = TCDM()
        block = np.array(
            (data * ((3 * 256) // (8 * len(data)) + 1))[: (3 * 256) // 8]
        )
        memory.write_array(SCRATCH_BASE, block)
        run_differential(
            asm,
            float_args={"fa2": 1.5, "fa3": -0.75},
            seed_memory=bytes(memory.data[: SCRATCH_BASE + block.nbytes]),
        )

    @settings(max_examples=20, deadline=None)
    @given(
        trip=st.integers(0, 12),
        budget=st.integers(5, 60),
        length=st.integers(1, 3),
    )
    def test_budget_parity_under_frep(self, trip, budget, length):
        """The instruction budget must trip at the same instruction —
        including inside a FREP replay — on both engines."""
        body = [
            "fadd.d fa0, fa1, fa2",
            "fmul.d fa3, fa0, fa1",
            "fmadd.d fa4, fa3, fa1, fa4",
        ][:length]
        asm = "\n".join(
            [
                "main:",
                f"li t0, {trip}",
                f"frep.o t0, {length}, 0, 0",
                *body,
                "li t2, 5",
                "ret",
            ]
        )
        run_differential(
            asm,
            float_args={"fa1": 1.0, "fa2": 2.0},
            max_instructions=budget,
        )


class TestPipelineKernelSweep:
    """Paper kernels through every named pipeline, both engines."""

    @pytest.mark.parametrize("pipeline", sorted(PIPELINE_NAMES))
    def test_kernels_bit_identical_across_engines(self, pipeline):
        cases = [
            (kernels.matmul, (1, 5, 4)),
            (kernels.relu, (3, 4)),
        ]
        for builder, sizes in cases:
            module, spec = builder(*sizes)
            compiled = api.compile_linalg(module, pipeline=pipeline)
            arguments = spec.random_arguments(seed=7)
            states = []
            for reference in (False, True):
                memory = TCDM()
                int_args = {}
                float_args = {}
                next_int = next_float = 0
                for argument in arguments:
                    if isinstance(argument, np.ndarray):
                        base = memory.allocate(argument.nbytes)
                        memory.write_array(base, argument)
                        int_args[f"a{next_int}"] = base
                        next_int += 1
                    else:
                        float_args[f"fa{next_float}"] = float(argument)
                        next_float += 1
                machine = SnitchMachine(
                    compiled.program, memory, record_timeline=True
                )
                runner = (
                    machine.run_reference if reference else machine.run
                )
                trace = runner(
                    compiled.entry,
                    int_args=int_args,
                    float_args=float_args,
                )
                states.append((trace, machine))
            (fast_trace, fast), (ref_trace, ref) = states
            assert fast_trace == ref_trace, (pipeline, builder.__name__)
            assert fast.timeline == ref.timeline
            assert bytes(fast.memory.data) == bytes(ref.memory.data)
